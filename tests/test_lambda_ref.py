"""Tests for the section-5 formal calculus: typechecking with the
T-QUALCASE template, evaluation, and semantic conformance (fig. 11)."""

import pytest

from repro.core.qualifiers.library import POS_SOURCE, standard_qualifiers
from repro.core.qualifiers.parser import parse_qualifier
from repro.core.qualifiers.ast import QualifierSet
from repro.semantics.lambda_ref import (
    EBin,
    EConst,
    EDeref,
    ELam,
    ENeg,
    EUnit,
    EVar,
    LambdaTypeError,
    SApp,
    SAssign,
    SExpr,
    SLet,
    SRef,
    SSeq,
    Stmt,
    TFun,
    TIntL,
    TRef,
    TUnit,
    check_conformance,
    evaluate,
    subtype,
    typecheck,
)

QUALS = standard_qualifiers()

POS_INT = TIntL(quals=frozenset({"pos"}))
INT = TIntL()


def expr(e) -> Stmt:
    return SExpr(e)


# ------------------------------------------------------------------ subtyping


def test_subtype_val_qual():
    assert subtype(POS_INT, INT)
    assert not subtype(INT, POS_INT)


def test_subtype_qual_reorder():
    a = TIntL(quals=frozenset({"pos", "nonzero"}))
    b = TIntL(quals=frozenset({"nonzero", "pos"}))
    assert subtype(a, b) and subtype(b, a)


def test_no_subtyping_under_ref():
    assert not subtype(TRef(inner=POS_INT), TRef(inner=INT))
    assert subtype(TRef(inner=POS_INT), TRef(inner=POS_INT))


def test_function_subtyping_contravariant():
    f1 = TFun(param=INT, result=POS_INT)  # accepts any int, returns pos
    f2 = TFun(param=POS_INT, result=INT)
    assert subtype(f1, f2)
    assert not subtype(f2, f1)


# --------------------------------------------------------------- typechecking


def test_constant_gets_pos():
    t = typecheck(expr(EConst(3)), QUALS)
    assert "pos" in t.quals and "nonzero" in t.quals


def test_zero_not_pos():
    t = typecheck(expr(EConst(0)), QUALS)
    assert "pos" not in t.quals and "nonzero" not in t.quals


def test_negative_constant_neg():
    t = typecheck(expr(EConst(-2)), QUALS)
    assert "neg" in t.quals and "nonzero" in t.quals


def test_product_rule():
    prog = SLet(
        "x",
        expr(EConst(3)),
        SLet(
            "y",
            expr(EConst(4)),
            expr(EBin("*", EVar("x"), EVar("y"))),
            ascription=POS_INT,
        ),
        ascription=POS_INT,
    )
    t = typecheck(prog, QUALS)
    assert "pos" in t.quals


def test_negation_of_neg_is_pos():
    t = typecheck(expr(ENeg(EConst(-3))), QUALS)
    assert "pos" in t.quals


def test_sum_not_pos():
    t = typecheck(expr(EBin("+", EConst(2), EConst(3))), QUALS)
    assert "pos" not in t.quals  # pos has no rule for +


def test_subsumption_nonzero_from_pos():
    # nonzero's clause `E1 where pos(E1)` (figure 3).
    t = typecheck(expr(EConst(7)), QUALS)
    assert "nonzero" in t.quals


def test_let_ascription_subtyping():
    prog = SLet("x", expr(EConst(3)), expr(EVar("x")), ascription=INT)
    t = typecheck(prog, QUALS)
    # tainted's case clause matches any expression (fig. 4), so the body
    # may pick it back up; what matters is that the declared quals stuck.
    assert subtype(t, INT)
    assert "pos" not in t.quals


def test_let_ascription_rejects_bad_qualifier():
    prog = SLet("x", expr(EConst(0)), expr(EVar("x")), ascription=POS_INT)
    with pytest.raises(LambdaTypeError):
        typecheck(prog, QUALS)


def test_ref_and_assignment():
    prog = SLet(
        "r",
        SRef(expr(EConst(5))),
        SSeq(
            SAssign(expr(EVar("r")), expr(EConst(7))),
            expr(EDeref(EVar("r"))),
        ),
    )
    t = typecheck(prog, QUALS)
    assert isinstance(t, TIntL)


def test_store_into_qualified_ref_checked():
    # ref (int pos) cells only accept pos values.
    prog = SLet(
        "r",
        SLet("x", expr(EConst(5)), SRef(expr(EVar("x"))), ascription=POS_INT),
        SAssign(expr(EVar("r")), expr(EConst(0))),
    )
    with pytest.raises(LambdaTypeError):
        typecheck(prog, QUALS)


def test_application_checks_argument():
    double = ELam("x", POS_INT, expr(EBin("*", EVar("x"), EVar("x"))))
    good = SApp(expr(double), expr(EConst(3)))
    assert isinstance(typecheck(good, QUALS), TIntL)
    bad = SApp(expr(double), expr(EConst(0)))
    with pytest.raises(LambdaTypeError):
        typecheck(bad, QUALS)


def test_unbound_variable_rejected():
    with pytest.raises(LambdaTypeError):
        typecheck(expr(EVar("ghost")), QUALS)


# ----------------------------------------------------------------- evaluation


def test_eval_arithmetic():
    value, _ = evaluate(expr(EBin("*", EConst(6), EConst(7))))
    assert value == 42


def test_eval_let_and_ref():
    prog = SLet(
        "r",
        SRef(expr(EConst(1))),
        SSeq(
            SAssign(expr(EVar("r")), expr(EConst(9))),
            expr(EDeref(EVar("r"))),
        ),
    )
    value, store = evaluate(prog)
    assert value == 9
    assert list(store.values()) == [9]


def test_eval_application():
    inc = ELam("x", INT, expr(EBin("+", EVar("x"), EConst(1))))
    value, _ = evaluate(SApp(expr(inc), expr(EConst(41))))
    assert value == 42


# ---------------------------------------------------------------- conformance


def test_conformance_positive():
    prog = SLet(
        "x",
        expr(EConst(3)),
        expr(EBin("*", EVar("x"), EVar("x"))),
        ascription=POS_INT,
    )
    t = typecheck(prog, QUALS)
    value, store = evaluate(prog)
    assert check_conformance(value, t, store, QUALS) == []


def test_conformance_detects_violation():
    # Manufactured violation: claim pos for a value that is not.
    assert check_conformance(-5, POS_INT, {}, QUALS)


def test_unsound_rule_breaks_preservation():
    """The E1 - E2 mutation of pos passes (bogus) typechecking but the
    evaluated value violates the invariant — exactly what Theorem 5.1
    rules out for rules that pass the soundness checker."""
    bad_pos = parse_qualifier(POS_SOURCE.replace("E1 * E2", "E1 - E2"))
    bad_quals = QualifierSet(
        [bad_pos] + [q for q in QUALS if q.name != "pos"]
    )
    prog = SLet(
        "x",
        expr(EConst(1)),
        SLet(
            "y",
            expr(EConst(5)),
            expr(EBin("-", EVar("x"), EVar("y"))),
            ascription=POS_INT,
        ),
        ascription=POS_INT,
    )
    t = typecheck(prog, bad_quals)  # typechecks under the bad rule
    assert "pos" in t.quals
    value, store = evaluate(prog)
    assert value == -4
    problems = check_conformance(value, t, store, bad_quals)
    assert problems, "the unsound rule must produce a conformance violation"
