"""Tests for the CIL interpreter and run-time qualifier checks."""

import pytest

from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.instrument import instrument_program
from repro.core.qualifiers.library import standard_qualifiers
from repro.semantics.csem import (
    CInterpreter,
    CRuntimeError,
    FormatStringError,
    NullDereference,
    QualifierViolation,
    run_program,
)

QUALS = standard_qualifiers()
QUAL_NAMES = {"pos", "neg", "nonzero", "nonnull", "tainted", "untainted",
              "unique", "unaliased"}


def compile_c(src):
    return lower_unit(parse_c(src, qualifier_names=QUAL_NAMES))


def run(src, entry="main", args=(), quals=QUALS):
    return run_program(compile_c(src), quals=quals, entry=entry, args=args)


def test_arithmetic():
    value, _ = run("int main() { return 2 * 3 + 10 / 2 - 1; }")
    assert value == 10


def test_c_division_truncates_toward_zero():
    value, _ = run("int main() { return -7 / 2; }")
    assert value == -3


def test_locals_and_loops():
    value, _ = run(
        """
        int main() {
          int total = 0;
          int i;
          for (i = 1; i <= 10; i++) total += i;
          return total;
        }
        """
    )
    assert value == 55


def test_while_with_break_continue():
    value, _ = run(
        """
        int main() {
          int n = 0; int i = 0;
          while (1) {
            i++;
            if (i > 10) break;
            if (i % 2 == 0) continue;
            n += i;
          }
          return n;
        }
        """
    )
    assert value == 25


def test_function_calls_and_recursion():
    value, _ = run(
        """
        int fib(int n) {
          if (n < 2) return n;
          return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """
    )
    assert value == 55


def test_pointers_and_malloc():
    value, _ = run(
        """
        int main() {
          int* p = (int*)malloc(sizeof(int) * 4);
          p[0] = 10; p[1] = 20;
          int* q = p;
          return q[0] + q[1];
        }
        """
    )
    assert value == 30


def test_structs():
    value, _ = run(
        """
        struct point { int x; int y; };
        int main() {
          struct point pt;
          pt.x = 3; pt.y = 4;
          struct point* p = &pt;
          return p->x * p->y;
        }
        """
    )
    assert value == 12


def test_globals_initialized():
    value, _ = run("int g = 40; int main() { return g + 2; }")
    assert value == 42


def test_address_of_and_deref():
    value, _ = run(
        """
        void bump(int* p) { *p = *p + 1; }
        int main() { int x = 41; bump(&x); return x; }
        """
    )
    assert value == 42


def test_null_deref_raises():
    with pytest.raises((NullDereference, CRuntimeError)):
        run("int main() { int* p = NULL; return *p; }")


def test_division_by_zero_raises():
    with pytest.raises(CRuntimeError):
        run("int main() { int z = 0; return 4 / z; }")


def test_printf_output():
    _, output = run(
        """
        int printf(char* fmt, ...);
        int main() { printf("x=%d y=%s\\n", 7, "hi"); return 0; }
        """
    )
    assert output == ["x=7 y=hi\n"]


def test_format_string_attack_detected():
    # The paper's bftpd scenario: a %s directive with no argument.
    with pytest.raises(FormatStringError):
        run(
            """
            int printf(char* fmt, ...);
            int main() { printf("%s"); return 0; }
            """
        )


def test_runtime_cast_check_passes():
    value, _ = run(
        """
        int main() {
          int x = 5;
          int pos y = (int pos)x;
          return y;
        }
        """
    )
    assert value == 5


def test_runtime_cast_check_fails():
    # Section 2.1.3: a fatal error is signaled if the test fails.
    with pytest.raises(QualifierViolation):
        run(
            """
            int main() {
              int x = -5;
              int pos y = (int pos)x;
              return y;
            }
            """
        )


def test_lcm_example_cast_checked_at_runtime():
    src = """
    int gcd(int pos n, int pos m) {
      while (m != 0) { int t = m; m = n % m; n = t; }
      return n;
    }
    int pos lcm(int pos a, int pos b) {
      int pos d = (int pos)gcd(a, b);
      int pos prod = a * b;
      return (int pos) (prod / d);
    }
    int main() { return lcm(4, 6); }
    """
    value, _ = run(src)
    assert value == 12


def test_nonnull_cast_violation():
    with pytest.raises(QualifierViolation):
        run(
            """
            int main() {
              int* p = NULL;
              int* nonnull q = (int* nonnull)p;
              return 0;
            }
            """
        )


def test_ref_qualifier_casts_unchecked():
    # Casts involving reference qualifiers remain unchecked (2.2.3).
    value, _ = run(
        """
        int main() {
          int x = 1;
          int* unique p = (int* unique)&x;
          return 0;
        }
        """
    )
    assert value == 0


def test_instrumented_program_runs_checks():
    prog = compile_c(
        """
        int main() {
          int x = 3;
          int pos y = (int pos)x;
          return y;
        }
        """
    )
    instrumented = instrument_program(prog, QUALS)
    interp = CInterpreter(instrumented, quals=QUALS)
    assert interp.run("main") == 3


def test_instrumented_program_traps_violation():
    prog = compile_c(
        """
        int main() {
          int x = -3;
          int pos y = (int pos)x;
          return y;
        }
        """
    )
    instrumented = instrument_program(prog, QUALS)
    interp = CInterpreter(instrumented, quals=QUALS)
    with pytest.raises(QualifierViolation):
        interp.run("main")


def test_strcpy_and_strlen():
    value, _ = run(
        """
        int strlen(char* s);
        char* strcpy(char* dst, char* src);
        int main() {
          char buf[32];
          strcpy(buf, "hello");
          return strlen(buf);
        }
        """
    )
    assert value == 5


def test_unknown_extern_is_stubbed():
    value, _ = run(
        """
        void mystery(int x);
        int main() { mystery(3); return 1; }
        """
    )
    assert value == 1


def test_step_budget_guards_infinite_loops():
    prog = compile_c("int main() { while (1) { } return 0; }")
    interp = CInterpreter(prog, max_steps=10_000)
    with pytest.raises(CRuntimeError):
        interp.run("main")
