"""Tests for the shared dataflow engine (repro.dataflow): lattice
laws, the priority worklist solver, and the kleene fixpoint driver."""

import types

import pytest

from repro.cfront.parser import parse_c
from repro.cil.cfg import (
    CFG,
    BRANCH,
    EXIT,
    BasicBlock,
    Edge,
    Terminator,
    build_cfg,
)
from repro.cil.lower import lower_unit
from repro.core.checker.flow import GuardAnalysis, solve_guard_facts
from repro.core.qualifiers.library import standard_qualifiers
from repro.dataflow import (
    UNIVERSE,
    FlatLattice,
    ForwardSolver,
    MapLattice,
    MustSetLattice,
    SolverDivergence,
    kleene_fixpoint,
)

QUALS = standard_qualifiers()
NAMES = {"pos", "neg", "nonzero", "nonnull", "tainted", "untainted",
         "unique", "unaliased"}


def compile_c(src):
    return lower_unit(parse_c(src, qualifier_names=NAMES))


# ---------------------------------------------------------------- lattices


def test_must_set_lattice_laws():
    lat = MustSetLattice()
    a = frozenset({"x", "y"})
    b = frozenset({"y", "z"})
    assert lat.bottom() is UNIVERSE
    assert lat.top() == frozenset()
    # UNIVERSE is the identity of intersection.
    assert lat.join(UNIVERSE, a) == a
    assert lat.join(a, UNIVERSE) == a
    assert lat.join(a, b) == {"y"}
    # Must-analysis order is reverse inclusion: more facts = lower.
    assert lat.leq(UNIVERSE, a)
    assert lat.leq(a, frozenset({"y"}))
    assert not lat.leq(frozenset({"y"}), a)
    assert lat.eq(a, frozenset({"x", "y"}))


def test_flat_lattice_laws():
    lat = FlatLattice()
    assert lat.join(lat.BOTTOM, 3) == 3
    assert lat.join(3, 3) == 3
    assert lat.join(3, 4) is lat.TOP
    assert lat.leq(lat.BOTTOM, 3) and lat.leq(3, lat.TOP)
    assert not lat.leq(lat.TOP, 3)


def test_map_lattice_pointwise_join():
    lat = MapLattice(FlatLattice())
    left = {"a": 1, "b": 2}
    right = {"a": 1, "b": 3, "c": 4}
    joined = lat.join(left, right)
    assert joined["a"] == 1
    assert joined["b"] is FlatLattice.TOP
    assert joined["c"] == 4


# ------------------------------------------------------------------ solver


def diamond_cfg():
    """A hand-built diamond:  B0 -(T)-> B1 -> B3 -> B4(exit)
                              B0 -(F)-> B2 -> B3"""
    blocks = [BasicBlock(index=i) for i in range(5)]
    b0, b1, b2, b3, b4 = blocks
    b0.terminator = Terminator(BRANCH, None)
    b4.terminator = Terminator(EXIT)

    def connect(src, dst, guard=None):
        e = Edge(src, dst, guard)
        src.succs.append(e)
        dst.preds.append(e)

    connect(b0, b1, True)
    connect(b0, b2, False)
    connect(b1, b3)
    connect(b2, b3)
    connect(b3, b4)
    for i, b in enumerate(blocks):
        b.rpo = i
    func = types.SimpleNamespace(name="diamond")
    cfg = CFG(function=func, blocks=blocks, entry=b0, exit=b4)
    cfg._n_reachable = len(blocks)
    return cfg


def test_diamond_join_is_intersection():
    # Conflicting facts on the two arms: only the agreement survives
    # the merge, and the solver converges in one visit per block.
    cfg = diamond_cfg()

    def edge_transfer(edge, out):
        if edge.guard is True:
            return frozenset(out | {"p_nonnull", "q_pos"})
        if edge.guard is False:
            return frozenset(out | {"q_pos", "r_neg"})
        return out

    solver = ForwardSolver(
        cfg,
        MustSetLattice(),
        lambda block, facts: facts,
        edge_transfer,
        entry_value=frozenset(),
    )
    result = solver.solve()
    assert result.block_in[1] == {"p_nonnull", "q_pos"}
    assert result.block_in[2] == {"q_pos", "r_neg"}
    assert result.block_in[3] == {"q_pos"}
    stats = result.stats
    assert stats.blocks == 5
    assert stats.edges == 5
    # RPO priority means a diamond settles with one visit per block.
    assert stats.iterations == 5
    assert stats.ms >= 0


def test_solver_converges_on_loop():
    cfg = build_cfg(
        compile_c(
            "int f(int n) { int t = 0; while (n) { t = t + n; n = n - 1; }"
            " return t; }"
        ).function("f")
    )
    guards = GuardAnalysis(QUALS)
    solution = solve_guard_facts(cfg, guards)
    stats = solution.stats
    assert stats.blocks == len(cfg.blocks)
    assert stats.iterations >= len(cfg.blocks)
    # Every block got an entry fact set (unreachable included).
    assert set(solution.block_entry) == {b.index for b in cfg.blocks}


def test_solver_divergence_budget():
    # A transfer that never stabilizes must hit the visit budget, not
    # spin forever.
    cfg = diamond_cfg()
    # Loop the diamond back on itself so the worklist can cycle.
    e = Edge(cfg.blocks[3], cfg.blocks[0])
    cfg.blocks[3].succs.append(e)
    cfg.blocks[0].preds.append(e)
    counter = {"n": 0}

    class Unstable:
        """Deliberately non-monotone 'lattice' to defeat convergence."""

        def bottom(self):
            return -1

        def top(self):
            return 0

        def join(self, a, b):
            counter["n"] += 1
            return counter["n"]

        def leq(self, a, b):
            return False

        def eq(self, a, b):
            return False

        def widen(self, old, new):
            return self.join(old, new)

    solver = ForwardSolver(
        cfg,
        Unstable(),
        lambda block, value: value,
        max_visits_per_block=8,
    )
    with pytest.raises(SolverDivergence):
        solver.solve()


# --------------------------------------------------------- kleene fixpoint


def test_kleene_fixpoint_counts_iterations():
    # Shrink a set by one element per step: |initial| demotion steps
    # plus the final confirming pass.
    def step(s):
        return frozenset(sorted(s)[1:]) if s else s

    fix, iterations = kleene_fixpoint(step, frozenset({"a", "b", "c"}))
    assert fix == frozenset()
    assert iterations == 4


def test_kleene_fixpoint_immediate():
    fix, iterations = kleene_fixpoint(lambda s: s, frozenset({"a"}))
    assert fix == {"a"}
    assert iterations == 1


def test_kleene_fixpoint_divergence():
    flip = {0: 1, 1: 0}
    with pytest.raises(SolverDivergence):
        kleene_fixpoint(lambda s: flip[s], 0, max_iterations=10)


# ----------------------------------------------- guard-fact point solution


def test_point_facts_at_each_instruction():
    src = """
    int g(int* p);
    int f(int* p) {
      int x = 0;
      if (p != NULL) {
        x = g(p);
        p = NULL;
        x = g(p);
      }
      return x;
    }
    """
    prog = compile_c(src)
    func = prog.function("f")
    cfg = build_cfg(func)
    guards = GuardAnalysis(QUALS)
    solution = solve_guard_facts(cfg, guards)
    then_block = next(e.dst for e in cfg.entry.succs if e.guard is True)
    instr_facts = [solution.point[id(i)] for i in then_block.instrs]
    # The first call sees the nonnull fact; after ``p = 0`` it is gone.
    assert any(instr_facts[0])
    assert not instr_facts[-1]
