"""Push/pop incrementality: metamorphic and golden identity tests.

The incremental theory stack re-plumbs every combination check — the
SMT loop asserts/retracts literals along the SAT trail instead of
rebuilding closure state — so its non-negotiable properties are path
independence (any push/pop sequence reaching the same asserted set
yields the same verdict and equivalence classes as a cold run) and
verdict identity between the ``--no-explain`` ablation and the
default, all the way up to byte-compared batch reports at ``--jobs 2``
(mirroring ``tests/test_shard.py``).
"""

import json
import random
import re

import pytest

import repro
from repro import api
from repro.core.qualifiers.library import standard_qualifiers
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.obligations import generate_obligations
from repro.prover import combine
from repro.prover.session import ProverSession
from repro.prover.terms import Eq, Int, fn

QUALS = standard_qualifiers()
AXIOMS = semantics_axioms()

CONSTS = [fn(name) for name in "abcde"]


def _random_eq_literals(rng, n):
    """Random (dis)equality literals over a small EUF vocabulary."""

    def term():
        r = rng.random()
        if r < 0.5:
            return rng.choice(CONSTS)
        if r < 0.7:
            return Int(rng.randint(0, 2))
        return fn("f", rng.choice(CONSTS))

    return [
        (Eq(term(), term()), rng.random() < 0.75) for _ in range(n)
    ]


def _consistent_literal_set(seed, n=10):
    """A random literal set that the cold checker finds consistent (so
    push sequences never conflict and end states are comparable)."""
    rng = random.Random(f"incremental:{seed}")
    while True:
        literals = _random_eq_literals(rng, n)
        if combine._check(list(literals)) is None:
            return literals


def _atom_terms(literals):
    terms = []
    for atom, _ in literals:
        terms.extend((atom.left, atom.right))
    return terms


def _partition(cc, terms):
    """The equivalence relation restricted to ``terms``, as a
    comparable signature."""
    return [
        tuple(cc.are_equal(x, y) for y in terms) for x in terms
    ]


class TestPushPopPathIndependence:
    @pytest.mark.parametrize("seed", range(20))
    def test_any_pushpop_walk_matches_cold_run(self, seed):
        literals = _consistent_literal_set(seed)
        rng = random.Random(f"walk:{seed}")

        walked = combine.TheoryState()
        index = 0
        while index < len(literals):
            if walked.depth > 0 and rng.random() < 0.35:
                count = rng.randint(1, walked.depth)
                walked.pop(count)
                index -= count
            else:
                walked.push(literals[index])
                index += 1

        cold = combine.TheoryState()
        for literal in literals:
            cold.push(literal)

        assert walked.depth == cold.depth == len(literals)
        terms = _atom_terms(literals)
        assert _partition(walked.cc, terms) == _partition(cold.cc, terms)

        def flat(constraints):
            return [
                (c.coeffs, c.const, c.op, c.tags) for c in constraints
            ]

        assert flat(walked.constraints) == flat(cold.constraints)

    @pytest.mark.parametrize("seed", range(12))
    def test_check_history_is_invisible(self, seed):
        # Interleaving checks of arbitrary other literal lists must not
        # change what a final check of the target list concludes.
        rng = random.Random(f"history:{seed}")
        target = _random_eq_literals(rng, 8)
        state = combine.TheoryState()
        for _ in range(5):
            state.check(_random_eq_literals(rng, rng.randint(2, 10)))
        warm = state.check(list(target))
        cold = combine._check(list(target))
        assert (warm is None) == (cold is None)
        if warm is None:
            terms = _atom_terms(target)
            fresh = combine.TheoryState()
            assert fresh.check(list(target)) is None
            assert _partition(state.cc, terms) == _partition(
                fresh.cc, terms
            )
        else:
            assert not combine._consistent(warm)

    def test_rewind_to_empty_forgets_everything(self):
        state = combine.TheoryState()
        a, b = CONSTS[0], CONSTS[1]
        assert state.check([(Eq(a, b), True), (Eq(a, b), False)]) is not None
        state.rewind(0)
        assert state.depth == 0
        assert state.check([(Eq(a, b), True)]) is None


class TestSessionWarmForest:
    def _obligations(self, names, limit=4):
        goals = []
        for qdef in QUALS:
            if qdef.name not in names:
                continue
            goals.extend(
                o.goal
                for o in generate_obligations(qdef, QUALS)
                if not o.trivial
            )
        return goals[:limit]

    def test_explain_and_ddmin_sessions_agree(self):
        goals = self._obligations(("nonneg", "pos", "nonnull"), limit=8)
        assert goals
        forest = ProverSession(AXIOMS, context="t", time_limit=15)
        ddmin = ProverSession(
            AXIOMS, context="t", time_limit=15, explain=False
        )
        assert forest.theory_state is not None
        assert ddmin.theory_state is None
        for goal in goals:
            assert (
                forest.prove(goal).verdict == ddmin.prove(goal).verdict
            )

    def test_set_explain_flip_preserves_verdicts(self):
        goals = self._obligations(("nonneg", "pos"), limit=4)
        session = ProverSession(AXIOMS, context="t", time_limit=15)
        before = [session.prove(goal).verdict for goal in goals]
        session.set_explain(False)
        assert session.theory_state is None
        assert [session.prove(g).verdict for g in goals] == before
        session.set_explain(True)
        assert session.theory_state is not None
        assert [session.prove(g).verdict for g in goals] == before


class TestExplainVsDdminOracle:
    def test_oracle_smoke_on_generated_cases(self):
        from repro.difftest import runner
        from repro.difftest.generator import GenConfig, generate_case

        compared = 0
        for index in range(3):
            case = generate_case(7, index, GenConfig())
            outcome = runner.run_case(
                case, time_limit=10.0, which=("explain-vs-ddmin",)
            )
            assert outcome.findings == [], [
                f.to_dict() for f in outcome.findings
            ]
            compared += outcome.counters.get(
                "explain_vs_ddmin.compared", 0
            )
        assert compared > 0, "oracle never compared a verdict"


# ----------------------------------------- golden verdict identity (API)

NN_QUAL = """
value qualifier nn3(int Expr E)
  case E of
      decl int Const C:
        C, where C >= 0
    | decl int Expr E1, E2:
        E1 + E2, where nn3(E1) && nn3(E2)
  invariant value(E) >= 0
"""

POS_QUAL = """
value qualifier pp3(int Expr E)
  case E of
      decl int Const C:
        C, where C > 0
    | decl int Expr E1, E2:
        E1 * E2, where pp3(E1) && pp3(E2)
  invariant value(E) > 0
"""


def _scrub(node):
    """Drop wall-clock fields and search statistics.  Conflict counts
    (like milliseconds) depend on the SAT search path, which learned
    cores legitimately steer differently per strategy; verdicts,
    reasons, and countermodels must still match exactly."""
    if isinstance(node, dict):
        return {k: _scrub(v) for k, v in node.items() if k != "elapsed"}
    if isinstance(node, list):
        return [_scrub(v) for v in node]
    if isinstance(node, str):
        node = re.sub(r"[0-9.]+ m?s\b", "_", node)
        return re.sub(r"(rounds|instances|conflicts)=[0-9]+", r"\1=_", node)
    return node


def _normalize(payload):
    """A prove payload minus the documented additive counter blocks
    (session/cache/scheduler stats legitimately differ between core
    strategies — e.g. how many cores were learned — while per-unit
    reports must not)."""
    payload = _scrub(payload)
    for key in ("sessions", "cache", "scheduler", "incremental"):
        payload.pop(key, None)
    for unit in payload["units"]:
        for key in ("sessions", "cache", "incremental"):
            (unit.get("detail") or {}).pop(key, None)
    return payload


class TestGoldenVerdictIdentity:
    @pytest.fixture
    def qual_files(self, tmp_path):
        a = tmp_path / "nn.qual"
        b = tmp_path / "pp.qual"
        a.write_text(NN_QUAL)
        b.write_text(POS_QUAL)
        return (str(a), str(b))

    def test_no_explain_report_is_byte_identical_at_jobs_2(
        self, qual_files
    ):
        session = repro.Session()
        forest = session.prove(
            api.ProveRequest(files=qual_files, cache=False, jobs=2)
        ).to_dict()
        ddmin = session.prove(
            api.ProveRequest(
                files=qual_files, cache=False, jobs=2, explain=False
            )
        ).to_dict()
        assert json.dumps(_normalize(forest), sort_keys=True) == json.dumps(
            _normalize(ddmin), sort_keys=True
        )
        # Both paths really ran the sharded scheduler.
        assert forest["scheduler"]["obligations"] > 0
        assert ddmin["scheduler"]["obligations"] > 0

    def test_no_explain_serial_matches_default(self, qual_files):
        session = repro.Session()
        forest = session.prove(
            api.ProveRequest(files=qual_files, cache=False)
        ).to_dict()
        ddmin = session.prove(
            api.ProveRequest(files=qual_files, cache=False, explain=False)
        ).to_dict()
        assert _normalize(forest) == _normalize(ddmin)
