"""Tests for the flow-sensitive guard refinement (the extension the
paper plans in sections 6.1 and 8)."""

import pytest

from repro.analysis.annotate import annotate_nonnull
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.flow import GuardAnalysis, _implies, _CmpShape
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.library import standard_qualifiers
from repro.corpus import generate_dfa_module

QUALS = standard_qualifiers()
NAMES = {"pos", "neg", "nonzero", "nonnull", "tainted", "untainted",
         "unique", "unaliased"}


def check(src, flow_sensitive):
    prog = lower_unit(parse_c(src, qualifier_names=NAMES))
    return QualifierChecker(prog, QUALS, flow_sensitive=flow_sensitive).check()


# -------------------------------------------------------------- guard facts


def test_null_guard_validates_deref():
    src = """
    int f(int* p) {
      int x = 0;
      if (p != NULL) { x = *p; }
      return x;
    }
    """
    assert not check(src, flow_sensitive=False).ok
    assert check(src, flow_sensitive=True).ok


def test_truthiness_guard():
    src = "int f(int* p) { int x = 0; if (p) { x = *p; } return x; }"
    assert check(src, True).ok


def test_inverted_guard_else_branch():
    src = """
    int f(int* p) {
      int x = 0;
      if (p == NULL) { x = 1; } else { x = *p; }
      return x;
    }
    """
    assert not check(src, False).ok
    assert check(src, True).ok


def test_negated_condition():
    src = """
    int f(int* p) {
      int x = 0;
      if (!(p == NULL)) { x = *p; }
      return x;
    }
    """
    assert check(src, True).ok


def test_conjunction_guard():
    src = """
    int f(int* p, int n) {
      int x = 0;
      if (p != NULL && n > 0) { x = *p / n; }
      return x;
    }
    """
    report = check(src, True)
    assert report.ok, report.summary()


def test_disjunction_else_branch():
    src = """
    int f(int* p, int* q) {
      int x = 0;
      if (p == NULL || q == NULL) { x = 1; }
      else { x = *p + *q; }
      return x;
    }
    """
    assert check(src, True).ok


def test_guard_for_pos_and_nonzero():
    src = """
    int f(int a, int b) {
      int c = 0;
      if (b != 0) { c = a / b; }
      if (a > 0) { int pos p = a; c = c + p; }
      if (a < 0) { int neg n = a; c = c + n; }
      return c;
    }
    """
    assert not check(src, False).ok
    assert check(src, True).ok


def test_guard_with_comparison_on_right():
    src = "int f(int a) { int c = 0; if (0 < a) { int pos p = a; c = p; } return c; }"
    assert check(src, True).ok


def test_stronger_guard_implies_weaker_invariant():
    # a > 5 implies a > 0 and a != 0.
    src = """
    int f(int a) {
      int c = 0;
      if (a > 5) { int pos p = a; c = 1 / a + p; }
      return c;
    }
    """
    assert check(src, True).ok


# --------------------------------------------------------------------- kills


def test_fact_killed_by_reassignment():
    src = """
    int f(int* p, int* q) {
      int x = 0;
      if (p != NULL) {
        p = q;
        x = *p;
      }
      return x;
    }
    """
    report = check(src, True)
    assert not report.ok  # the guard no longer covers the new value


def test_fact_killed_by_memory_write_when_address_taken():
    src = """
    void scramble(int** h);
    int f(int* p, int** h) {
      int x = 0;
      if (p != NULL && h != NULL) {
        *h = NULL;      /* may alias p if p's address escaped */
        x = *p;
      }
      return x;
    }
    """
    # p's address is never taken here, so the fact survives.
    assert check(src, True).ok

    src_taken = """
    int f(int* p) {
      int** h = &p;
      int x = 0;
      if (p != NULL) {
        *h = NULL;
        x = *p;
      }
      return x;
    }
    """
    assert not check(src_taken, True).ok


def test_fact_does_not_leak_out_of_branch():
    src = """
    int f(int* p) {
      int x = 0;
      if (p != NULL) { x = 1; }
      x = *p;
      return x;
    }
    """
    assert not check(src, True).ok


def test_loop_guard_facts():
    src = """
    int f(int* p, int n) {
      int total = 0;
      while (p != NULL && n > 0) {
        total = total + *p;
        n = n - 1;
      }
      return total;
    }
    """
    assert check(src, True).ok


def test_loop_guard_killed_when_body_reassigns():
    src = """
    int* next_node(int* p);
    int f(int* p) {
      int total = 0;
      while (p != NULL) {
        total = total + *p;
        p = next_node(p);
        total = total + *p;   /* p may be NULL again here */
      }
      return total;
    }
    """
    assert not check(src, True).ok


def test_guarded_pointer_indexing():
    # The grep idiom: the guard covers p + i derefs too (logical model).
    src = """
    int f(int* t, int c) {
      int works = 0;
      if (t != NULL) {
        works = t[c];
      }
      return works;
    }
    """
    assert check(src, True).ok


# ----------------------------------------------------------------- ablation


def test_flow_sensitivity_reduces_casts_on_corpus():
    prog = lower_unit(parse_c(generate_dfa_module()))
    fi = annotate_nonnull(prog)
    fs = annotate_nonnull(prog, flow_sensitive=True)
    assert fi.errors == 0 and fs.errors == 0
    assert fs.casts < fi.casts
    assert fs.annotations == fi.annotations


# ----------------------------------------------------------- implication law


@pytest.mark.parametrize(
    "known_op,known_b,target_op,target_b,expected",
    [
        (">", 0, "!=", 0, True),
        (">", 5, ">", 0, True),
        (">", 0, ">", 5, False),
        ("<", 0, "!=", 0, True),
        (">=", 1, ">", 0, True),
        (">=", 0, ">", 0, False),
        ("==", 3, ">", 0, True),
        ("==", 0, "!=", 0, False),
        ("<=", -1, "<", 0, True),
        ("<=", 0, "<", 0, False),
    ],
)
def test_implication_table(known_op, known_b, target_op, target_b, expected):
    assert _implies(known_op, known_b, _CmpShape(target_op, target_b)) is expected


def test_implication_table_is_sound_by_brute_force():
    """Every (op, bound) pair the table says implies another must hold
    on all integers in a window around the bounds."""
    ops = {
        "==": lambda v, b: v == b,
        "!=": lambda v, b: v != b,
        "<": lambda v, b: v < b,
        ">": lambda v, b: v > b,
        "<=": lambda v, b: v <= b,
        ">=": lambda v, b: v >= b,
    }
    for known_op in ops:
        for known_b in range(-3, 4):
            for target_op in ops:
                for target_b in range(-3, 4):
                    claimed = _implies(
                        known_op, known_b, _CmpShape(target_op, target_b)
                    )
                    if claimed:
                        for v in range(-12, 13):
                            if ops[known_op](v, known_b):
                                assert ops[target_op](v, target_b), (
                                    known_op, known_b, target_op, target_b, v
                                )
