"""Unit tests for the C type representation and IR typing."""

import pytest

from repro.cfront.ctypes import (
    ArrayType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    deep_quals_equal,
    is_pointer_like,
    pointee_of,
    type_to_str,
)
from repro.cfront.parser import parse_c
from repro.cil import ir
from repro.cil.lower import lower_unit
from repro.cil.typesof import (
    TypeError_,
    TypingContext,
    rtype_of_lvalue,
    type_of_expr,
    type_of_lvalue,
)

INT = IntType()
POS_INT = IntType().with_quals(["pos"])


# -------------------------------------------------------------------- ctypes


def test_with_and_without_quals():
    t = INT.with_quals(["pos", "nonzero"])
    assert t.quals == {"pos", "nonzero"}
    assert t.without_quals(["pos"]).quals == {"nonzero"}
    assert t.strip_quals().quals == frozenset()


def test_qualifier_sets_unordered():
    assert INT.with_quals(["a", "b"]) == INT.with_quals(["b", "a"])


def test_same_shape_ignores_quals():
    assert POS_INT.same_shape(INT)
    assert PointerType(pointee=POS_INT).same_shape(PointerType(pointee=INT))
    assert not PointerType(pointee=INT).same_shape(INT)


def test_type_to_str_postfix():
    assert type_to_str(POS_INT) == "int pos"
    assert type_to_str(PointerType(pointee=POS_INT)) == "int pos*"
    assert (
        type_to_str(PointerType(pointee=INT).with_quals(["unique"]))
        == "int* unique"
    )


def test_deep_quals_equal():
    assert deep_quals_equal(
        PointerType(pointee=POS_INT), PointerType(pointee=POS_INT)
    )
    assert not deep_quals_equal(
        PointerType(pointee=POS_INT), PointerType(pointee=INT)
    )
    # Top-level qualifiers are not compared here.
    assert deep_quals_equal(
        PointerType(pointee=INT).with_quals(["unique"]),
        PointerType(pointee=INT),
    )


def test_deep_quals_nested_two_levels():
    inner_a = PointerType(pointee=POS_INT)
    inner_b = PointerType(pointee=INT)
    assert not deep_quals_equal(
        PointerType(pointee=inner_a), PointerType(pointee=inner_b)
    )


def test_pointee_of():
    assert pointee_of(PointerType(pointee=INT)) == INT
    assert pointee_of(ArrayType(elem=INT, size=4)) == INT
    with pytest.raises(TypeError):
        pointee_of(INT)


def test_is_pointer_like():
    assert is_pointer_like(PointerType())
    assert is_pointer_like(ArrayType())
    assert not is_pointer_like(INT)
    assert not is_pointer_like(VoidType())


# ------------------------------------------------------------------- typesof


def _context(src, func="f", ref_quals=frozenset()):
    prog = lower_unit(parse_c(src, qualifier_names={"pos", "unique", "nonnull"}))
    return (
        prog,
        TypingContext.for_function(prog, prog.function(func), ref_quals=ref_quals),
    )


def test_variable_type():
    _, ctx = _context("void f(int pos x) { }")
    lv = ir.Lvalue(ir.VarHost("x"))
    assert type_of_lvalue(ctx, lv).quals == {"pos"}


def test_deref_type():
    _, ctx = _context("void f(int pos * p) { }")
    lv = ir.Lvalue(ir.MemHost(ir.Lval(ir.Lvalue(ir.VarHost("p")))))
    assert type_of_lvalue(ctx, lv).quals == {"pos"}


def test_deref_of_non_pointer_raises():
    _, ctx = _context("void f(int x) { }")
    lv = ir.Lvalue(ir.MemHost(ir.Lval(ir.Lvalue(ir.VarHost("x")))))
    with pytest.raises(TypeError_):
        type_of_lvalue(ctx, lv)


def test_field_type():
    _, ctx = _context(
        """
        struct s { int pos v; };
        void f(struct s* p) { }
        """
    )
    lv = ir.Lvalue(
        ir.MemHost(ir.Lval(ir.Lvalue(ir.VarHost("p")))), ir.FieldOff("v")
    )
    assert type_of_lvalue(ctx, lv).quals == {"pos"}


def test_unknown_field_raises():
    _, ctx = _context(
        """
        struct s { int v; };
        void f(struct s* p) { }
        """
    )
    lv = ir.Lvalue(
        ir.MemHost(ir.Lval(ir.Lvalue(ir.VarHost("p")))), ir.FieldOff("ghost")
    )
    with pytest.raises(TypeError_):
        type_of_lvalue(ctx, lv)


def test_rtype_strips_ref_quals_only():
    _, ctx = _context(
        "void f(int* unique p) { }", ref_quals=frozenset({"unique"})
    )
    lv = ir.Lvalue(ir.VarHost("p"))
    assert type_of_lvalue(ctx, lv).quals == {"unique"}
    assert rtype_of_lvalue(ctx, lv).quals == frozenset()


def test_addr_of_keeps_full_type():
    _, ctx = _context(
        "void f(int* unique p) { }", ref_quals=frozenset({"unique"})
    )
    expr = ir.AddrOf(ir.Lvalue(ir.VarHost("p")))
    t = type_of_expr(ctx, expr)
    assert isinstance(t, PointerType)
    assert t.pointee.quals == {"unique"}


def test_ptradd_keeps_pointer_type():
    _, ctx = _context("void f(int* nonnull p, int i) { }")
    expr = ir.BinOp(
        "ptradd",
        ir.Lval(ir.Lvalue(ir.VarHost("p"))),
        ir.Lval(ir.Lvalue(ir.VarHost("i"))),
    )
    t = type_of_expr(ctx, expr)
    assert isinstance(t, PointerType)
    assert t.quals == {"nonnull"}


def test_comparison_types_int():
    _, ctx = _context("void f(int* p) { }")
    expr = ir.BinOp("==", ir.Lval(ir.Lvalue(ir.VarHost("p"))), ir.NullConst())
    assert isinstance(type_of_expr(ctx, expr), IntType)


def test_arithmetic_strips_quals():
    _, ctx = _context("void f(int pos x) { }")
    expr = ir.BinOp(
        "+",
        ir.Lval(ir.Lvalue(ir.VarHost("x"))),
        ir.IntConst(1),
    )
    assert type_of_expr(ctx, expr).quals == frozenset()


def test_unbound_variable_raises():
    _, ctx = _context("void f() { }")
    with pytest.raises(TypeError_):
        type_of_expr(ctx, ir.Lval(ir.Lvalue(ir.VarHost("ghost"))))


def test_string_and_null_types():
    _, ctx = _context("void f() { }")
    assert isinstance(type_of_expr(ctx, ir.StrConst("hi")), PointerType)
    assert isinstance(type_of_expr(ctx, ir.NullConst()), PointerType)
    assert isinstance(type_of_expr(ctx, ir.IntConst(3)), IntType)
