"""The deterministic fault-injection layer: spec parsing, seeded
decisions, worker gating, and the activation lifecycle."""

import os

import pytest

from repro import faults
from repro.harness.watchdog import Deadline


@pytest.fixture(autouse=True)
def clean_fault_state():
    """Every test starts and ends with no plan, no worker mark, and a
    clean fired-once ledger (module state is process-global)."""
    faults.deactivate()
    faults._IN_WORKER = False
    yield
    faults.deactivate()
    faults._IN_WORKER = False


class TestSpecParsing:
    def test_parse_full_spec(self):
        plan = faults.FaultPlan.parse(
            "seed=7,kill=0.25,stall=0.1,drop_pipe=1,corrupt_cache=0,"
            "stall_s=2.5,slow_prover_s=0.5"
        )
        assert plan.seed == 7
        assert plan.rate("kill") == 0.25
        assert plan.rate("drop_pipe") == 1.0
        assert plan.rate("corrupt_cache") == 0.0
        assert plan.rate("slow_prover") == 0.0  # unmentioned: off
        assert plan.stall_s == 2.5
        assert plan.slow_prover_s == 0.5

    def test_spec_round_trips(self):
        spec = "seed=3,kill=0.5,corrupt_cache=1,stall_s=9"
        plan = faults.FaultPlan.parse(spec)
        assert faults.FaultPlan.parse(plan.to_spec()) == plan

    def test_empty_and_whitespace_items_ignored(self):
        plan = faults.FaultPlan.parse("seed=1, kill=0.5 ,")
        assert plan.seed == 1 and plan.rate("kill") == 0.5

    @pytest.mark.parametrize(
        "spec",
        [
            "kill",  # no value
            "kill=1.5",  # rate out of range
            "kill=-0.1",
            "kill=abc",  # not a float
            "seed=xyz",
            "explode=0.5",  # unknown site
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(faults.FaultSpecError):
            faults.FaultPlan.parse(spec)


class TestDecisions:
    def test_deterministic_across_calls(self):
        plan = faults.FaultPlan(seed=0, rates={"kill": 0.5})
        keys = [f"unit-{i}" for i in range(64)]
        first = [plan.decide("kill", k) for k in keys]
        second = [plan.decide("kill", k) for k in keys]
        assert first == second
        assert any(first) and not all(first)  # a real mix at rate 0.5

    def test_seed_changes_the_schedule(self):
        a = faults.FaultPlan(seed=0, rates={"kill": 0.5})
        b = faults.FaultPlan(seed=1, rates={"kill": 0.5})
        keys = [f"unit-{i}" for i in range(64)]
        assert [a.decide("kill", k) for k in keys] != [
            b.decide("kill", k) for k in keys
        ]

    def test_rate_edges(self):
        always = faults.FaultPlan(rates={"kill": 1.0})
        never = faults.FaultPlan(rates={"kill": 0.0})
        for key in ("a", "b", "c"):
            assert always.decide("kill", key)
            assert not never.decide("kill", key)

    def test_rate_roughly_respected(self):
        plan = faults.FaultPlan(seed=42, rates={"kill": 0.3})
        hits = sum(
            plan.decide("kill", f"k{i}") for i in range(1000)
        )
        assert 200 < hits < 400  # sha256 is a good uniform roll


class TestActivation:
    def test_activate_sets_module_and_environment(self):
        plan = faults.activate("seed=5,kill=0.5")
        assert faults.active() == plan
        assert os.environ[faults.ENV_VAR] == plan.to_spec()
        faults.deactivate()
        assert faults.active() is None
        assert faults.ENV_VAR not in os.environ

    def test_active_falls_back_to_environment(self):
        # How a spawned child (fresh module state) picks up the plan.
        os.environ[faults.ENV_VAR] = "seed=9,stall=1"
        plan = faults.active()
        assert plan is not None
        assert plan.seed == 9 and plan.rate("stall") == 1.0

    def test_malformed_environment_is_ignored(self):
        os.environ[faults.ENV_VAR] = "not a spec"
        assert faults.active() is None
        del os.environ[faults.ENV_VAR]


class TestFiring:
    def test_worker_only_sites_gated_outside_workers(self):
        faults.activate("seed=0,kill=1,stall=1,drop_pipe=1")
        for site in ("kill", "stall", "drop_pipe"):
            assert not faults.fire(site, "unit")
        faults.enter_worker()
        for site in ("kill", "stall", "drop_pipe"):
            assert faults.fire(site, "unit")

    def test_parent_sites_fire_without_worker_mark(self):
        faults.activate("seed=0,corrupt_cache=1,slow_prover=1")
        assert faults.fire("corrupt_cache", "x")
        assert faults.fire("slow_prover", "y")

    def test_nothing_fires_without_a_plan(self):
        faults.enter_worker()
        assert not faults.fire("kill", "unit")

    def test_fire_once_fires_exactly_once(self):
        faults.activate("seed=0,corrupt_cache=1")
        assert faults.fire_once("corrupt_cache", "db")
        assert not faults.fire_once("corrupt_cache", "db")
        assert faults.fire_once("corrupt_cache", "other-db")


class TestPayloads:
    def test_corrupt_file_garbles_bytes(self, tmp_path):
        target = tmp_path / "victim.bin"
        target.write_bytes(b"A" * 4096)
        assert faults.corrupt_file(str(target))
        data = target.read_bytes()
        assert data[:4] == b"\xde\xad\xbe\xef"
        assert data != b"A" * 4096

    def test_corrupt_file_missing_or_empty(self, tmp_path):
        assert not faults.corrupt_file(str(tmp_path / "nope"))
        empty = tmp_path / "empty"
        empty.write_bytes(b"")
        assert not faults.corrupt_file(str(empty))

    def test_slow_prover_respects_deadline(self):
        faults.activate("seed=0,slow_prover=1,slow_prover_s=30")
        import time

        start = time.perf_counter()
        faults.maybe_slow_prover("key", deadline=Deadline.after(0.05))
        assert time.perf_counter() - start < 5.0  # stopped at the deadline

    def test_slow_prover_noop_when_site_off(self):
        faults.activate("seed=0,kill=1")
        import time

        start = time.perf_counter()
        faults.maybe_slow_prover("key", deadline=None)
        assert time.perf_counter() - start < 0.5
