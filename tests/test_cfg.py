"""Tests for CFG construction over CIL (repro.cil.cfg).

Pins the edge cases the structured walks could not represent: goto
into and out of loops, switch fallthrough, unreachable code after a
return, and empty function bodies — plus the diagnostic-order and
live-object invariants the dataflow clients rely on.
"""

import pytest

from repro.cfront.parser import parse_c
from repro.cil import ir
from repro.cil.cfg import (
    BRANCH,
    EXIT,
    GOTO,
    RETURN,
    build_cfg,
    has_unstructured_flow,
)
from repro.cil.lower import lower_unit
from repro.cil.printer import program_to_c
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.library import standard_qualifiers
from repro.semantics.csem import run_program

QUALS = standard_qualifiers()
NAMES = {"pos", "neg", "nonzero", "nonnull", "tainted", "untainted",
         "unique", "unaliased"}


def compile_c(src):
    return lower_unit(parse_c(src, qualifier_names=NAMES))


def cfg_of(src, name):
    return build_cfg(compile_c(src).function(name))


def run(src, entry, args=()):
    return run_program(compile_c(src), quals=QUALS, entry=entry, args=args)


# ------------------------------------------------------------- basic shapes


def test_empty_body_is_entry_to_exit():
    cfg = cfg_of("int f(void) { }", "f")
    assert len(cfg.blocks) == 2
    assert cfg.entry.succs[0].dst is cfg.exit
    assert cfg.exit.terminator.kind == EXIT
    assert cfg.n_edges == 1


def test_straightline_is_one_block():
    cfg = cfg_of("int f(int a) { int b = a + 1; return b; }", "f")
    assert cfg.entry.terminator.kind == RETURN
    assert [e.dst for e in cfg.entry.succs] == [cfg.exit]
    assert len(cfg.entry.instrs) == 1


def test_if_else_makes_a_diamond():
    cfg = cfg_of(
        "int f(int a) { int b; if (a) { b = 1; } else { b = 2; } return b; }",
        "f",
    )
    assert cfg.entry.terminator.kind == BRANCH
    guards = sorted(e.guard for e in cfg.entry.succs)
    assert guards == [False, True]
    then_b, else_b = (e.dst for e in cfg.entry.succs)
    # Both arms rejoin at the same block.
    assert then_b.succs[0].dst is else_b.succs[0].dst


def test_while_has_back_edge():
    cfg = cfg_of("int f(int n) { while (n) { n = n - 1; } return n; }", "f")
    headers = [b for b in cfg.blocks if b.terminator.kind == BRANCH]
    assert len(headers) == 1
    header = headers[0]
    back = [e for e in header.preds if e.src.rpo > header.rpo]
    assert back, "loop body must edge back to the header"


def test_blocks_numbered_in_syntactic_order():
    # Diagnostic ordering depends on creation order == source order.
    cfg = cfg_of(
        """
        int f(int a) {
          if (a) { a = 1; }
          while (a) { a = a - 1; }
          return a;
        }
        """,
        "f",
    )
    assert [b.index for b in cfg.blocks] == list(range(len(cfg.blocks)))
    rpos = [b.rpo for b in cfg.blocks]
    assert sorted(rpos) == list(range(len(cfg.blocks)))


def test_blocks_reference_live_instructions():
    # CFG blocks alias the tree's instruction objects: an in-place
    # rewrite through one view is visible through the other.
    prog = compile_c("int f(int a) { int b = a; return b; }")
    func = prog.function("f")
    cfg = build_cfg(func)
    (instr,) = cfg.entry.instrs
    tree_instrs = [
        i for s in func.body if isinstance(s, ir.Instr) for i in s.instrs
    ]
    assert instr is tree_instrs[0]


# ------------------------------------------------------- unreachable blocks


def test_unreachable_after_return():
    cfg = cfg_of(
        "int f(void) { int x = 1; return x; x = 2; return x; }", "f"
    )
    dead = [b for b in cfg.blocks if not b.preds and b is not cfg.entry]
    assert dead, "code after return must land in a predecessor-less block"
    reachable = cfg.reachable()
    assert all(b not in reachable for b in dead)
    # Unreachable blocks still get unique priorities for the worklist.
    assert sorted(b.rpo for b in cfg.blocks) == list(range(len(cfg.blocks)))


# ------------------------------------------------------------------- gotos


def test_goto_out_of_loop():
    src = """
    int f(int n) {
      int total = 0;
      while (1) {
        if (n <= 0) goto out;
        total = total + n;
        n = n - 1;
      }
      out:
      return total;
    }
    """
    prog = compile_c(src)
    assert has_unstructured_flow(prog.function("f"))
    cfg = build_cfg(prog.function("f"))
    gotos = [b for b in cfg.blocks if b.terminator.kind == GOTO]
    assert len(gotos) == 1
    assert gotos[0].succs[0].dst is cfg.labels["out"]
    value, _ = run(src, "f", (4,))
    assert value == 10


def test_goto_into_loop():
    src = """
    int f(int n) {
      int i = 0;
      goto inside;
      while (n > 0) {
        inside:
        i = i + 1;
        n = n - 1;
      }
      return i;
    }
    """
    prog = compile_c(src)
    cfg = build_cfg(prog.function("f"))
    # The labeled block sits inside the loop: it reaches the header.
    inside = cfg.labels["inside"]
    header = next(b for b in cfg.blocks if b.terminator.kind == BRANCH)
    assert any(e.dst is header for e in inside.succs)
    # Entry jumps straight into the loop body, bypassing the first test.
    value, _ = run(src, "f", (3,))
    assert value == 3


def test_goto_based_loop_executes():
    src = """
    int f(int n) {
      int total = 0;
      loop:
      if (n <= 0) goto done;
      total = total + n;
      n = n - 1;
      goto loop;
      done:
      return total;
    }
    """
    value, _ = run(src, "f", (5,))
    assert value == 15


def test_goto_to_unknown_label_falls_off_to_exit():
    # Panic-recovery stub: the label never materialized.  The builder
    # must stay total and route the jump to the exit block.
    prog = compile_c("int f(void) { return 0; }")
    func = prog.function("f")
    func.body.append(ir.Goto("nowhere"))
    cfg = build_cfg(func)
    goto_blocks = [b for b in cfg.blocks if b.terminator.kind == GOTO]
    assert goto_blocks[0].succs[0].dst is cfg.exit


def test_goto_prints_and_reparses():
    src = """
    int f(int n) {
      again:
      if (n > 0) { n = n - 1; goto again; }
      return n;
    }
    """
    text = program_to_c(compile_c(src))
    assert "goto again;" in text
    assert "again:" in text


# ------------------------------------------------------ switch fallthrough


def test_switch_fallthrough_shape_and_semantics():
    src = """
    int f(int x) {
      int r = 0;
      switch (x) {
        case 1: r = r + 1;
        case 2: r = r + 10; break;
        default: r = 99;
      }
      return r;
    }
    """
    # case 1 falls through into case 2.
    assert run(src, "f", (1,))[0] == 11
    assert run(src, "f", (2,))[0] == 10
    assert run(src, "f", (7,))[0] == 99
    cfg = cfg_of(src, "f")
    # The desugared dispatch chain is all branch blocks; every path
    # reaches the single return block.
    branches = [b for b in cfg.blocks if b.terminator.kind == BRANCH]
    assert len(branches) >= 2
    returns = [b for b in cfg.blocks if b.terminator.kind == RETURN]
    assert len(returns) == 1


# ----------------------------------------- the old walk's blind spot, fixed


def check(src, flow_sensitive):
    prog = compile_c(src)
    return QualifierChecker(prog, QUALS, flow_sensitive=flow_sensitive).check()


def test_goto_loop_guard_refinement():
    # A linked-list walk written with goto instead of while.  The old
    # structured walk had no representation for this loop at all; the
    # CFG solver refines the guard exactly as for a while loop.
    src = """
    int* next_node(int* p);
    int sum(int* p) {
      int total = 0;
      loop:
      if (p == NULL) goto done;
      total = total + *p;
      p = next_node(p);
      goto loop;
      done:
      return total;
    }
    """
    assert not check(src, flow_sensitive=False).ok
    assert check(src, flow_sensitive=True).ok


def test_goto_loop_reassignment_still_warns():
    # ... but the refinement must die at the reassignment: moving the
    # deref after next_node() has to warn even flow-sensitively.
    src = """
    int* next_node(int* p);
    int sum(int* p) {
      int total = 0;
      loop:
      if (p == NULL) goto done;
      p = next_node(p);
      total = total + *p;
      goto loop;
      done:
      return total;
    }
    """
    assert not check(src, flow_sensitive=True).ok
