"""Checker edge cases: calls, returns, globals, ref-assign predicates,
recursive structures, and diagnostic quality."""

import pytest

from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import standard_qualifiers
from repro.core.qualifiers.parser import parse_qualifier

QUALS = standard_qualifiers()
NAMES = {"pos", "neg", "nonzero", "nonnull", "tainted", "untainted",
         "unique", "unaliased"}


def check(src, quals=QUALS, extra_names=()):
    prog = lower_unit(parse_c(src, qualifier_names=set(NAMES) | set(extra_names)))
    return check_program(prog, quals)


# ------------------------------------------------------------------ globals


def test_global_initializer_checked():
    report = check("int pos bad = -1;")
    assert not report.ok
    assert report.diagnostics[0].function == "__global_init__"


def test_global_initializer_ok():
    assert check("int pos good = 3;").ok


# ------------------------------------------------------------------- calls


def test_varargs_extra_args_unchecked():
    assert check(
        """
        int printf(char* untainted fmt, ...);
        void f(char* buf) { printf((char* untainted)"%s %s", buf, buf); }
        """
    ).ok


def test_fewer_args_than_params_checked_pairwise():
    # Passing fewer args than declared parameters: only the supplied
    # ones are checked (C would reject; the qualifier checker is lax).
    report = check(
        """
        int two(int pos a, int pos b);
        void f() { int r = two(3); }
        """
    )
    assert report.ok


def test_recursive_function_signature_used():
    report = check(
        """
        int pos fact(int pos n) {
          if (n == 1) { return (int pos)1; }
          return (int pos)(n * fact((int pos)(n - 1)));
        }
        """
    )
    assert report.ok, report.summary()


def test_unknown_function_args_unchecked():
    assert check("void f(int x) { mystery(x); }").ok


def test_call_diagnostic_names_parameter():
    report = check(
        """
        void takes_pos(int pos n);
        void f(int x) { takes_pos(x); }
        """
    )
    assert not report.ok
    assert "argument 'n' of takes_pos" in report.diagnostics[0].message


# --------------------------------------------------------------- structures


def test_recursive_struct_checked():
    report = check(
        """
        struct node { int pos weight; struct node* next; };
        void f(struct node* nonnull n) {
          n->weight = 5;
          n->next = NULL;
        }
        """
    )
    assert report.ok, report.summary()


def test_recursive_struct_violation_found():
    report = check(
        """
        struct node { int pos weight; struct node* next; };
        void f(struct node* nonnull n) { n->weight = 0; }
        """
    )
    assert not report.ok


def test_nested_struct_field_path():
    report = check(
        """
        struct inner { int pos v; };
        struct outer { struct inner in; };
        void f(struct outer* nonnull o) { o->in.v = -1; }
        """
    )
    assert not report.ok


# -------------------------------------------------------- ref assign + where


def test_ref_assign_clause_with_predicate():
    nonneg_cell = parse_qualifier(
        """
        ref qualifier nonneg_cell(int LValue L)
          assign L
            decl int Const C:
              C, where C >= 0
          invariant value(L) >= 0
        """
    )
    quals = QualifierSet([nonneg_cell])
    good = check(
        "int nonneg_cell g; void f() { g = 5; g = 0; }",
        quals=quals,
        extra_names={"nonneg_cell"},
    )
    assert good.ok, good.summary()
    bad = check(
        "int nonneg_cell g; void f() { g = -1; }",
        quals=quals,
        extra_names={"nonneg_cell"},
    )
    assert not bad.ok


def test_ref_assign_clause_with_qual_check_predicate():
    pos_cell = parse_qualifier(
        """
        ref qualifier pos_cell(int LValue L)
          assign L
            decl int Expr E1:
              E1, where pos(E1)
          invariant value(L) > 0
        """
    )
    quals = QualifierSet(list(QUALS) + [pos_cell])
    good = check(
        "int pos_cell g; void f(int pos n) { g = n; g = 7; }",
        quals=quals,
        extra_names={"pos_cell"},
    )
    assert good.ok, good.summary()
    bad = check(
        "int pos_cell g; void f(int n) { g = n; }",
        quals=quals,
        extra_names={"pos_cell"},
    )
    assert not bad.ok


# ---------------------------------------------------------------- diagnostics


def test_diagnostics_carry_location_and_function():
    report = check(
        """
        void f() {
          int a = 0;
          int pos b = a;
        }
        """
    )
    assert not report.ok
    diag = report.diagnostics[0]
    assert diag.function == "f"
    assert diag.loc.line == 4


def test_checking_continues_after_errors():
    # Section 3.2: errors are warnings; the whole program is checked.
    report = check(
        """
        void f() { int pos a = -1; }
        void g() { int pos b = -2; }
        """
    )
    assert report.error_count == 2


def test_report_errors_for_filter():
    report = check(
        """
        void f(int* p) {
          int pos a = -1;
          int x = *p;
        }
        """
    )
    assert report.errors_for("pos")
    assert report.errors_for("nonnull")
    assert not report.errors_for("unique")
