"""Unit tests for the C parser."""

import pytest

from repro.cfront import ast as A
from repro.cfront.ctypes import (
    ArrayType,
    IntType,
    PointerType,
    StructType,
    VoidType,
)
from repro.cfront.parser import ParseError, parse_c


def test_global_decl():
    unit = parse_c("int x = 3;")
    assert len(unit.globals) == 1
    g = unit.globals[0]
    assert g.name == "x"
    assert isinstance(g.ctype, IntType)
    assert isinstance(g.init, A.IntLit) and g.init.value == 3


def test_function_definition_and_prototype():
    unit = parse_c(
        """
        int gcd(int n, int m);
        int lcm(int a, int b) { return a * b; }
        """
    )
    assert unit.function("gcd").is_prototype
    lcm = unit.function("lcm")
    assert not lcm.is_prototype
    assert [p.name for p in lcm.params] == ["a", "b"]


def test_varargs_prototype():
    unit = parse_c("int printf(char* fmt, ...);")
    f = unit.function("printf")
    assert f.varargs
    assert isinstance(f.params[0].ctype, PointerType)


def test_qualifier_attribute_syntax():
    unit = parse_c("int __attribute__((pos)) x;")
    assert unit.globals[0].ctype.quals == {"pos"}


def test_qualifier_macro_via_preprocessor():
    unit = parse_c(
        """
        #define pos __attribute__((pos))
        int pos x;
        """
    )
    assert unit.globals[0].ctype.quals == {"pos"}


def test_registered_qualifier_names():
    unit = parse_c("int pos x;", qualifier_names={"pos"})
    assert unit.globals[0].ctype.quals == {"pos"}


def test_postfix_qualifier_under_pointer():
    # int pos * : pointer to positive int.
    unit = parse_c("int pos * p;", qualifier_names={"pos"})
    t = unit.globals[0].ctype
    assert isinstance(t, PointerType)
    assert t.pointee.quals == {"pos"}
    assert t.quals == frozenset()


def test_postfix_qualifier_on_pointer():
    # int* unique : unique pointer to int.
    unit = parse_c("int* unique p;", qualifier_names={"unique"})
    t = unit.globals[0].ctype
    assert isinstance(t, PointerType)
    assert t.quals == {"unique"}


def test_multiple_qualifiers_order_irrelevant():
    a = parse_c("int pos nonzero x;", qualifier_names={"pos", "nonzero"})
    b = parse_c("int nonzero pos x;", qualifier_names={"pos", "nonzero"})
    assert a.globals[0].ctype == b.globals[0].ctype
    assert a.globals[0].ctype.quals == {"pos", "nonzero"}


def test_struct_definition_with_qualified_field():
    unit = parse_c(
        """
        struct dfa_state {
          int index;
          char* nonnull name;
          struct dfa_state* next;
        };
        """,
        qualifier_names={"nonnull"},
    )
    s = unit.struct("dfa_state")
    assert [f[0] for f in s.fields] == ["index", "name", "next"]
    assert s.fields[1][1].quals == {"nonnull"}
    assert isinstance(s.fields[2][1], PointerType)
    assert isinstance(s.fields[2][1].pointee, StructType)


def test_array_declarations():
    unit = parse_c("int buf[16]; int open_ended[];")
    assert isinstance(unit.globals[0].ctype, ArrayType)
    assert unit.globals[0].ctype.size == 16
    assert unit.globals[1].ctype.size is None


def test_control_flow_statements():
    unit = parse_c(
        """
        void f(int n) {
          int i;
          for (i = 0; i < n; i++) {
            if (i == 3) continue;
            if (i == 5) break;
          }
          while (n > 0) { n--; }
          do { n++; } while (n < 10);
          return;
        }
        """
    )
    body = unit.function("f").body
    assert any(isinstance(s, A.For) for s in body.stmts)
    assert any(isinstance(s, A.While) for s in body.stmts)
    assert any(isinstance(s, A.DoWhile) for s in body.stmts)


def test_assignment_in_condition():
    # The grep idiom quoted in the paper.
    unit = parse_c(
        """
        void f(int* t, int* d) {
          if ((t = d) != 0) { t = 0; }
        }
        """
    )
    stmt = unit.function("f").body.stmts[0]
    assert isinstance(stmt, A.If)
    assert isinstance(stmt.cond, A.Binary)
    assert isinstance(stmt.cond.left, A.Assign)


def test_cast_expression():
    unit = parse_c("void f() { int x; x = (int)3; }")
    assign = unit.function("f").body.stmts[1].expr
    assert isinstance(assign.value, A.Cast)
    assert isinstance(assign.value.to_type, IntType)


def test_cast_to_qualified_type():
    unit = parse_c(
        "void f() { int x; x = (int pos)(3); }", qualifier_names={"pos"}
    )
    assign = unit.function("f").body.stmts[1].expr
    assert assign.value.to_type.quals == {"pos"}


def test_member_access_and_arrow():
    unit = parse_c(
        """
        struct point { int x; int y; };
        int get(struct point* p) { return p->x + (*p).y; }
        """
    )
    ret = unit.function("get").body.stmts[0]
    assert isinstance(ret.value, A.Binary)
    assert isinstance(ret.value.left, A.Member) and ret.value.left.arrow
    assert isinstance(ret.value.right, A.Member) and not ret.value.right.arrow


def test_call_with_args():
    unit = parse_c("void f() { g(1, 2 + 3); }", qualifier_names=set())
    call = unit.function("f").body.stmts[0].expr
    assert isinstance(call, A.Call)
    assert call.func == "g" and len(call.args) == 2


def test_sizeof_type_and_expr():
    unit = parse_c("void f(int n) { n = sizeof(int) + sizeof(n); }")
    assign = unit.function("f").body.stmts[0].expr
    assert isinstance(assign.value.left, A.SizeofType)
    assert isinstance(assign.value.right, A.SizeofType)


def test_conditional_expression():
    unit = parse_c("void f(int a) { a = a > 0 ? a : -a; }")
    assign = unit.function("f").body.stmts[0].expr
    assert isinstance(assign.value, A.Conditional)


def test_malloc_call_parses():
    unit = parse_c(
        "void f(int n) { int* p; p = (int*)malloc(sizeof(int) * n); }"
    )
    assign = unit.function("f").body.stmts[1].expr
    assert isinstance(assign.value, A.Cast)
    assert isinstance(assign.value.operand, A.Call)
    assert assign.value.operand.func == "malloc"


def test_string_literal_concatenation():
    unit = parse_c('char* s = "a" "b";')
    assert unit.globals[0].init.value == "ab"


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as info:
        parse_c("int x = ;")
    assert "line 1" in str(info.value)


def test_compound_assignment_and_incdec():
    unit = parse_c("void f(int x) { x += 2; x--; ++x; }")
    stmts = unit.function("f").body.stmts
    assert isinstance(stmts[0].expr, A.Assign) and stmts[0].expr.op == "+="
    assert isinstance(stmts[1].expr, A.IncDec) and not stmts[1].expr.prefix
    assert isinstance(stmts[2].expr, A.IncDec) and stmts[2].expr.prefix


def test_ifdef_handling():
    unit = parse_c(
        """
        #define FEATURE
        #ifdef FEATURE
        int x;
        #else
        int y;
        #endif
        #ifndef FEATURE
        int z;
        #endif
        """
    )
    assert [g.name for g in unit.globals] == ["x"]


def test_multi_declarator_statement():
    unit = parse_c("void f() { int a = 1, b = 2; a = b; }")
    body = unit.function("f").body
    block = body.stmts[0]
    assert isinstance(block, A.Block)
    assert [d.name for d in block.stmts] == ["a", "b"]


def test_void_param_list():
    unit = parse_c("int f(void) { return 0; }")
    assert unit.function("f").params == []


def test_unsigned_and_long_kinds():
    unit = parse_c("unsigned int a; long b; unsigned long c; short d;")
    kinds = [g.ctype.kind for g in unit.globals]
    assert kinds == ["unsigned int", "long", "unsigned long", "short"]
