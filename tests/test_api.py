"""The repro.api facade and its versioned report schema.

The field sets pinned here are a compatibility contract: SCHEMA_VERSION
must be bumped whenever one of these assertions has to change for a
*removal or rename* (additions are fine — consumers tolerate new keys,
so extend the pinned set instead).
"""

import json

import pytest

import repro
from repro import api
from repro.cli import main

GOOD_C = "int f(void) { int pos a = 2; int pos b = a * a; return b; }"

QUAL_A = """
value qualifier tagged(int Expr E)
  case E of
    decl int Const C:
      C, where C > 0
  invariant value(E) > 0
"""

# Same name, different rule: composition order must decide the winner.
QUAL_B = QUAL_A.replace("C > 0", "C > 10")


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "good.c"
    path.write_text(GOOD_C)
    return str(path)


@pytest.fixture
def qual_file(tmp_path):
    path = tmp_path / "defs.qual"
    path.write_text(QUAL_A)
    return str(path)


class TestFacade:
    def test_exported_from_package_root(self):
        assert repro.Session is api.Session
        assert repro.SCHEMA_VERSION == 1
        assert repro.ProveRequest is api.ProveRequest

    def test_check_clean_file(self, c_file):
        report = repro.Session().check(api.CheckRequest(files=(c_file,)))
        assert report.exit_code == 0
        assert report.counts() == {"OK": 1}
        (unit,) = report.results
        assert unit.unit == c_file

    def test_prove_uncached_and_cached(self, qual_file, tmp_path):
        session = repro.Session()
        request = api.ProveRequest(
            files=(qual_file,), cache_dir=str(tmp_path / "cache")
        )
        cold = session.prove(request).to_dict()
        warm = session.prove(request).to_dict()
        assert cold["cache"]["hits"] == 0 and cold["cache"]["stores"] > 0
        assert warm["cache"]["hits"] == cold["cache"]["stores"]
        assert warm["cache"]["misses"] == 0

        def verdicts(payload):
            return [
                (o["rule"], o["verdict"], o["proved"], o["reason"])
                for u in payload["units"]
                for q in u["detail"]["qualifiers"]
                for o in q["obligations"]
            ]

        assert verdicts(cold) == verdicts(warm)
        assert all(
            o["cached"]
            for u in warm["units"]
            for q in u["detail"]["qualifiers"]
            for o in q["obligations"]
        )

    def test_prove_cache_disabled(self, qual_file):
        report = repro.Session().prove(
            api.ProveRequest(files=(qual_file,), cache=False)
        )
        assert report.to_dict()["cache"] == {"enabled": False}

    def test_infer_unknown_qualifier_raises(self, c_file):
        with pytest.raises(api.UnknownQualifierError):
            repro.Session().infer(
                api.InferRequest(files=(c_file,), qualifier="no_such")
            )

    def test_session_is_immutable(self):
        with pytest.raises(Exception):
            repro.Session().no_std = True


class TestQualifierComposition:
    def test_later_quals_files_override_earlier(self, tmp_path):
        a = tmp_path / "a.qual"
        b = tmp_path / "b.qual"
        a.write_text(QUAL_A)
        b.write_text(QUAL_B)
        quals = repro.Session(quals=(str(a), str(b))).qualifier_set()
        assert "C > 10" in quals.get("tagged").source
        # ... and the mirror order restores the first definition.
        quals = repro.Session(quals=(str(b), str(a))).qualifier_set()
        assert "C > 0" in quals.get("tagged").source

    def test_cli_quals_flag_is_repeatable(self, tmp_path, capsys):
        a = tmp_path / "a.qual"
        b = tmp_path / "b.qual"
        a.write_text(QUAL_A)
        b.write_text(QUAL_B)
        src = tmp_path / "t.c"
        # Legal under a.qual's rule (2 > 0) but not b.qual's (2 > 10):
        # with both loaded, b wins and the annotation must warn.
        src.write_text("int f(void) { int tagged x = 2; return x; }")
        assert main(["check", str(src), "--quals", str(a)]) == 0
        capsys.readouterr()
        code = main(
            ["check", str(src), "--quals", str(a), "--quals", str(b)]
        )
        assert code == 1
        assert "tagged" in capsys.readouterr().out


class TestSchemaContract:
    CHECK_TOP = {
        "schema_version", "command", "version", "units", "counts", "elapsed",
        "exit_code",
    }
    UNIT = {"unit", "verdict", "elapsed", "diagnostics", "error", "detail"}

    def test_check_payload_fields(self, c_file):
        payload = repro.Session().check(
            api.CheckRequest(files=(c_file,))
        ).to_dict()
        assert set(payload) == self.CHECK_TOP | {"dataflow"}
        assert payload["schema_version"] == api.SCHEMA_VERSION == 1
        assert payload["command"] == "check"
        (unit,) = payload["units"]
        assert set(unit) == self.UNIT
        # Per-function solver stats ride along in the unit detail and
        # are aggregated at the top level.
        per_function = unit["detail"]["dataflow"]["functions"]
        for stats in per_function.values():
            assert {"blocks", "edges", "iterations", "ms"} == set(stats)
        assert payload["dataflow"]["functions"] == len(per_function)
        json.dumps(payload)  # JSON-ready, no dataclasses leaking through

    def test_prove_payload_fields(self, qual_file, tmp_path):
        payload = repro.Session().prove(
            api.ProveRequest(
                files=(qual_file,), cache_dir=str(tmp_path / "cache")
            )
        ).to_dict()
        assert set(payload) == self.CHECK_TOP | {"cache", "sessions"}
        assert payload["command"] == "prove"
        assert {
            "enabled", "dir", "entries",
            "hits", "misses", "stores", "evictions", "stale", "errors",
        } <= set(payload["cache"])
        # Additive since schema v1: incremental prover-session counters
        # (absent entirely under --no-session).
        assert payload["sessions"]["enabled"] is True
        assert {"proofs", "session_reuse"} <= set(payload["sessions"])
        obligation = payload["units"][0]["detail"]["qualifiers"][0][
            "obligations"
        ][0]
        assert {
            "rule", "verdict", "proved", "reason", "elapsed", "cached",
        } == set(obligation)
        json.dumps(payload)

    def test_cli_json_is_exactly_the_facade_payload(self, c_file, capsys):
        code = main(["check", c_file, "--format", "json"])
        printed = json.loads(capsys.readouterr().out)
        assert code == 0
        assert printed["schema_version"] == 1
        assert set(printed) == self.CHECK_TOP | {"dataflow"}

    def test_cache_stats_payload_fields(self, tmp_path, capsys):
        where = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", where, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "schema_version", "command", "version", "path", "disk", "entries",
            "size_bytes", "lifetime",
        }
        assert payload["command"] == "cache-stats"
        assert payload["entries"] == 0
        # Asking for stats must not create the cache directory.
        assert not (tmp_path / "cache").exists()

    def test_cache_clear_cli(self, qual_file, tmp_path, capsys):
        where = str(tmp_path / "cache")
        main(["prove", qual_file, "--cache-dir", where])
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", where]) == 0
        assert "removed" in capsys.readouterr().out
        assert api.cache_stats(cache_dir=where)["entries"] == 0
