"""Tests for nonneg, ref-qualified returns, and richer rule forms."""

import pytest

from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import NONNEG, UNIQUE, standard_qualifiers
from repro.core.qualifiers.parser import parse_qualifier
from repro.core.soundness.checker import check_soundness

QUALS = standard_qualifiers()
NAMES = {"pos", "neg", "nonneg", "nonzero", "nonnull", "tainted",
         "untainted", "unique", "unaliased"}


def check(src, quals=QUALS):
    return check_program(lower_unit(parse_c(src, qualifier_names=NAMES)), quals)


# --------------------------------------------------------------------- nonneg


def test_nonneg_proved_sound():
    report = check_soundness(NONNEG, QUALS, time_limit=25)
    assert report.sound, report.summary()


def test_nonneg_closed_under_sum_and_product():
    report = check(
        """
        void f(int nonneg a, int nonneg b) {
          int nonneg s = a + b;
          int nonneg p = a * b;
          int nonneg z = 0;
        }
        """
    )
    assert report.ok, report.summary()


def test_pos_subsumes_nonneg():
    assert check("void f(int pos a) { int nonneg n = a; }").ok


def test_nonneg_minus_rejected():
    assert not check(
        "void f(int nonneg a, int nonneg b) { int nonneg d = a - b; }"
    ).ok


def test_nonneg_mutation_caught():
    from repro.core.qualifiers.library import NONNEG_SOURCE

    bad = parse_qualifier(NONNEG_SOURCE.replace("E1 + E2", "E1 - E2"))
    report = check_soundness(bad, QUALS, time_limit=20)
    assert not report.sound


# --------------------------------------------------------- ref-qual returns


def test_unique_return_of_allocation_not_directly_expressible():
    """`return malloc(...)` lowers through a temp, so the rules can't
    see the allocation — like the paper's fresh-return limitation
    (section 2.2.1); a cast is the documented workaround."""
    report = check(
        """
        int* unique fresh_cell(void) {
          return (int* unique)malloc(sizeof(int));
        }
        """,
        quals=QualifierSet([UNIQUE]),
    )
    assert report.ok, report.summary()


def test_unique_return_of_plain_pointer_rejected():
    report = check(
        """
        int* unique launder(int* p) { return p; }
        """,
        quals=QualifierSet([UNIQUE]),
    )
    assert not report.ok
    assert any(d.kind == "assign" for d in report.diagnostics)


def test_unique_return_null_ok():
    report = check(
        "int* unique nothing(void) { return NULL; }",
        quals=QualifierSet([UNIQUE]),
    )
    assert report.ok, report.summary()


def test_call_to_unique_returning_function_trusted():
    report = check(
        """
        int* unique make(void);
        int* unique holder;
        void f() { holder = make(); }
        """,
        quals=QualifierSet([UNIQUE]),
    )
    assert report.ok, report.summary()


# ------------------------------------------------- restrict with disjunction


def test_restrict_predicate_with_disjunction():
    """Section 2.1.1: 'the predicate in a restrict clause may contain
    conjunctions and disjunctions of qualifier checks.'"""
    q = parse_qualifier(
        """
        value qualifier signed_div(int Expr E)
          restrict
              decl int Expr E1, E2:
                E1 / E2, where pos(E2) || neg(E2)
          invariant value(E) != 0
        """
    )
    from repro.core.qualifiers.library import NEG, POS

    quals = QualifierSet([POS, NEG, q])
    ok = check("void f(int a, int pos b, int neg c) { int x = a/b + a/c; }", quals)
    assert ok.ok, ok.summary()
    bad = check("void f(int a, int b) { int x = a / b; }", quals)
    assert any(d.qualifier == "signed_div" for d in bad.diagnostics)
