"""Tests for the Simplify-style prover: ground EUF + arithmetic."""

from repro.prover import (
    And,
    Eq,
    ForAll,
    Iff,
    Implies,
    Int,
    Le,
    Lt,
    Not,
    Or,
    Pr,
    Prover,
    TVar,
    fn,
)
from repro.prover.prover import prove_valid

a, b, c = fn("a"), fn("b"), fn("c")
x, y = TVar("x"), TVar("y")


def proved(goal, axioms=()):
    return prove_valid(goal, list(axioms)).proved


# ----------------------------------------------------------------- boolean


def test_tautology():
    assert proved(Or(Pr("p", ()), Not(Pr("p", ()))))


def test_contradiction_not_proved():
    assert not proved(And(Pr("p", ()), Not(Pr("p", ()))))


def test_modus_ponens():
    p, q = Pr("p", ()), Pr("q", ())
    assert proved(q, [p, Implies(p, q)])


def test_iff_roundtrip():
    p, q = Pr("p", ()), Pr("q", ())
    assert proved(Iff(p, q), [Implies(p, q), Implies(q, p)])


# ---------------------------------------------------------------- equality


def test_eq_reflexive():
    assert proved(Eq(a, a))


def test_eq_symmetric():
    assert proved(Eq(b, a), [Eq(a, b)])


def test_eq_transitive():
    assert proved(Eq(a, c), [Eq(a, b), Eq(b, c)])


def test_congruence():
    assert proved(Eq(fn("f", a), fn("f", b)), [Eq(a, b)])


def test_congruence_two_levels():
    assert proved(
        Eq(fn("g", fn("f", a)), fn("g", fn("f", b))),
        [Eq(a, b)],
    )


def test_disequality_blocks():
    assert not proved(Eq(a, b), [Not(Eq(a, c))])


def test_distinct_integers():
    assert proved(Not(Eq(Int(1), Int(2))))


def test_predicate_congruence():
    assert proved(
        Pr("isHeapLoc", (b,)),
        [Pr("isHeapLoc", (a,)), Eq(a, b)],
    )


def test_predicate_negative_congruence():
    # a = b, P(a), not P(b) is inconsistent -> anything provable.
    assert proved(
        Eq(Int(0), Int(1)),
        [Eq(a, b), Pr("p", (a,)), Not(Pr("p", (b,)))],
    )


# -------------------------------------------------------------- arithmetic


def test_ordering_transitive():
    assert proved(Lt(a, c), [Lt(a, b), Lt(b, c)])


def test_le_antisymmetric():
    assert proved(Eq(a, b), [Le(a, b), Le(b, a)])


def test_arith_constants():
    assert proved(Lt(Int(1), Int(2)))
    assert not proved(Lt(Int(2), Int(1)))


def test_linear_combination():
    # a + b <= 10, a >= 4 |- b <= 6
    assert proved(
        Le(b, Int(6)),
        [Le(fn("+", a, b), Int(10)), Le(Int(4), a)],
    )


def test_integer_tightening():
    # Over the integers, a > 0 means a >= 1.
    assert proved(Le(Int(1), a), [Lt(Int(0), a)])


def test_strictly_between_integers_impossible():
    # no integer strictly between 0 and 1: 0 < a < 1 is inconsistent.
    assert proved(
        Eq(Int(0), Int(1)),
        [Lt(Int(0), a), Lt(a, Int(1))],
    )


def test_pos_implies_nonzero():
    assert proved(Not(Eq(a, Int(0))), [Lt(Int(0), a)])


def test_arith_and_euf_exchange():
    # f(a) where a forced equal to b arithmetically.
    assert proved(
        Eq(fn("f", a), fn("f", b)),
        [Le(a, b), Le(b, a)],
    )


def test_negation_arithmetic():
    # a < 0 |- -a > 0 (unary minus).
    assert proved(Lt(Int(0), fn("-", a)), [Lt(a, Int(0))])


# ---------------------------------------------------- nonlinear sign lemmas


def test_product_of_positives_is_positive():
    goal = Implies(
        And(Lt(Int(0), a), Lt(Int(0), b)),
        Lt(Int(0), fn("*", a, b)),
    )
    assert proved(goal)


def test_product_of_negatives_is_positive():
    goal = Implies(
        And(Lt(a, Int(0)), Lt(b, Int(0))),
        Lt(Int(0), fn("*", a, b)),
    )
    assert proved(goal)


def test_product_nonzero():
    goal = Implies(
        And(Not(Eq(a, Int(0))), Not(Eq(b, Int(0)))),
        Not(Eq(fn("*", a, b), Int(0))),
    )
    assert proved(goal)


def test_difference_of_positives_not_positive():
    # The paper's buggy-rule scenario: a > 0, b > 0 does NOT prove a-b > 0.
    goal = Implies(
        And(Lt(Int(0), a), Lt(Int(0), b)),
        Lt(Int(0), fn("-", a, b)),
    )
    assert not proved(goal)


def test_sum_of_positives_not_provably_negative():
    goal = Implies(
        And(Lt(Int(0), a), Lt(Int(0), b)),
        Lt(fn("+", a, b), Int(0)),
    )
    assert not proved(goal)


def test_sum_of_positives_is_positive():
    goal = Implies(
        And(Lt(Int(0), a), Lt(Int(0), b)),
        Lt(Int(0), fn("+", a, b)),
    )
    assert proved(goal)
