"""Tests for qualifier inference (section-8 future work, implemented)."""

import pytest

from repro.analysis.infer import infer_value_qualifier
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import NONNULL, NONZERO, POS, standard_qualifiers
from repro.corpus import generate_dfa_module

QUALS = standard_qualifiers()


def compile_c(src):
    return lower_unit(parse_c(src))


def infer(src, qdef, **kwargs):
    return infer_value_qualifier(compile_c(src), qdef, QUALS, **kwargs)


def test_constants_propagate():
    res = infer(
        """
        int f(void) {
          int a = 5;
          int b = a;
          int c = a * b;
          return c;
        }
        """,
        POS,
    )
    names = {e[-1] for e in res.inferred}
    assert {"a", "b", "c"} <= names


def test_unknown_source_demoted():
    res = infer(
        """
        int source(void);
        int f(void) {
          int a = 3;
          int d = source();
          return a + d;
        }
        """,
        POS,
    )
    names = {e[-1] for e in res.inferred}
    assert "a" in names and "d" not in names


def test_demotion_cascades():
    # b is fed from d which is unknown; c is fed from b: both demote.
    res = infer(
        """
        int source(void);
        int f(void) {
          int d = source();
          int b = d;
          int c = b;
          return c;
        }
        """,
        POS,
    )
    names = {e[-1] for e in res.inferred}
    assert names & {"b", "c", "d"} == set()


def test_inferred_program_checks_clean():
    src = """
    int f(int x) {
      int a = 2;
      int b = a * a;
      int q = x / b;
      return q;
    }
    """
    res = infer(src, NONZERO)
    report = check_program(res.program, QUALS)
    assert report.ok, report.summary()
    assert {e[-1] for e in res.inferred} >= {"a", "b"}


def test_inference_through_calls():
    res = infer(
        """
        int helper(int n) { return n * n; }
        int f(void) {
          int a = 4;
          int b = helper(a);
          return b;
        }
        """,
        POS,
    )
    names = {e[-1] for e in res.inferred}
    # helper's formal receives only positives; its return is declared
    # int (returns are not inferred), so b must demote but n must not.
    assert "a" in names and "n" in names
    assert "b" not in names


def test_formal_demoted_by_bad_call_site():
    res = infer(
        """
        int source(void);
        int helper(int n) { return n; }
        int f(void) {
          int a = helper(3);
          int b = helper(source());
          return a + b;
        }
        """,
        POS,
    )
    names = {e[-1] for e in res.inferred}
    assert "n" not in names


def test_nullable_pointer_demoted_for_nonnull():
    res = infer(
        """
        int f(int* p) {
          int* q = p;
          int* r = NULL;
          int x;
          q = &x;
          return *q;
        }
        """,
        NONNULL,
    )
    names = {e[-1] for e in res.inferred}
    assert "r" not in names
    # p is a formal never assigned; with no call sites it stays
    # optimistically annotated.
    assert "p" in names


def test_flow_sensitive_inference_keeps_more():
    src = """
    int source(void);
    int f(void) {
      int d = source();
      int kept = 1;
      if (d > 0) {
        kept = d;
      }
      return kept;
    }
    """
    base = infer(src, POS)
    flow = infer(src, POS, flow_sensitive=True)
    assert "kept" not in {e[-1] for e in base.inferred}
    assert "kept" in {e[-1] for e in flow.inferred}


def test_inference_on_corpus_scales():
    program = lower_unit(parse_c(generate_dfa_module()))
    res = infer_value_qualifier(
        program, NONNULL, QualifierSet([NONNULL]), max_iterations=40
    )
    # Cast-free inference annotates fewer sites than the cast-assisted
    # workflow (138), but a substantial set survives.
    assert 20 <= res.count <= 140
    # No assignment-related nonnull diagnostics remain.
    report = check_program(res.program, QualifierSet([NONNULL]))
    assert not [
        d for d in report.diagnostics
        if d.qualifier == "nonnull" and d.kind in ("assign", "call", "return")
    ]


def test_ref_qualifier_rejected():
    from repro.core.qualifiers.library import UNIQUE

    with pytest.raises(ValueError):
        infer_value_qualifier(compile_c("int x;"), UNIQUE, QUALS)
