"""Unit tests for the congruence closure engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.prover.euf import CongruenceClosure, EufConflict
from repro.prover.terms import Int, fn

a, b, c, d = fn("a"), fn("b"), fn("c"), fn("d")


def test_reflexivity():
    cc = CongruenceClosure()
    cc.add_term(a)
    assert cc.are_equal(a, a)


def test_symmetry_and_transitivity():
    cc = CongruenceClosure()
    cc.assert_eq(a, b)
    cc.assert_eq(b, c)
    assert cc.are_equal(c, a)
    assert not cc.are_equal(a, d)


def test_congruence_single_level():
    cc = CongruenceClosure()
    cc.add_term(fn("f", a))
    cc.add_term(fn("f", b))
    cc.assert_eq(a, b)
    assert cc.are_equal(fn("f", a), fn("f", b))


def test_congruence_added_after_merge():
    # Terms registered after the merge must still be congruent.
    cc = CongruenceClosure()
    cc.assert_eq(a, b)
    cc.add_term(fn("f", a))
    cc.add_term(fn("f", b))
    assert cc.are_equal(fn("f", a), fn("f", b))


def test_congruence_nested():
    cc = CongruenceClosure()
    t1 = fn("g", fn("f", a), b)
    t2 = fn("g", fn("f", c), b)
    cc.add_term(t1)
    cc.add_term(t2)
    cc.assert_eq(a, c)
    assert cc.are_equal(t1, t2)


def test_congruence_chain():
    cc = CongruenceClosure()
    cc.add_term(fn("f", fn("f", fn("f", a))))
    cc.add_term(fn("f", a))
    # f(a) = a implies f(f(f(a))) = a after closure.
    cc.assert_eq(fn("f", a), a)
    assert cc.are_equal(fn("f", fn("f", fn("f", a))), a)


def test_disequality_conflict():
    cc = CongruenceClosure()
    cc.assert_neq(a, b)
    with pytest.raises(EufConflict):
        cc.assert_eq(a, b)


def test_disequality_via_congruence():
    cc = CongruenceClosure()
    cc.assert_neq(fn("f", a), fn("f", b))
    with pytest.raises(EufConflict):
        cc.assert_eq(a, b)


def test_distinct_integers_conflict():
    cc = CongruenceClosure()
    with pytest.raises(EufConflict):
        cc.assert_eq(Int(1), Int(2))


def test_distinct_integers_via_chain():
    cc = CongruenceClosure()
    cc.assert_eq(a, Int(1))
    with pytest.raises(EufConflict):
        cc.assert_eq(a, Int(2))


def test_integer_representative_kept():
    cc = CongruenceClosure()
    cc.assert_eq(a, Int(5))
    cc.assert_eq(b, a)
    assert cc.are_equal(b, Int(5))


def test_classes():
    cc = CongruenceClosure()
    cc.assert_eq(a, b)
    cc.add_term(c)
    classes = cc.classes()
    groups = [members for members in classes.values() if {a, b} <= members]
    assert len(groups) == 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        min_size=0,
        max_size=12,
    )
)
def test_equivalence_closure_matches_naive_union_find(pairs):
    """Congruence closure restricted to constants must agree with a
    naive union-find (no function symbols involved)."""
    consts = [fn(f"k{i}") for i in range(6)]
    cc = CongruenceClosure()
    parent = list(range(6))

    def find(i):
        while parent[i] != i:
            i = parent[i]
        return i

    for i, j in pairs:
        cc.assert_eq(consts[i], consts[j])
        parent[find(i)] = find(j)

    for i in range(6):
        for j in range(6):
            assert cc.are_equal(consts[i], consts[j]) == (find(i) == find(j))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8)
)
def test_congruence_is_sound_for_unary_f(pairs):
    """If the closure says f(x) = f(y), then x and y must be provably
    equal from the asserted pairs (soundness of congruence for unary f
    over a small constant universe)."""
    consts = [fn(f"k{i}") for i in range(4)]
    cc = CongruenceClosure()
    for i in range(4):
        cc.add_term(fn("f", consts[i]))
    parent = list(range(4))

    def find(i):
        while parent[i] != i:
            i = parent[i]
        return i

    for i, j in pairs:
        cc.assert_eq(consts[i], consts[j])
        parent[find(i)] = find(j)

    for i in range(4):
        for j in range(4):
            if cc.are_equal(fn("f", consts[i]), fn("f", consts[j])):
                assert find(i) == find(j) or cc.are_equal(consts[i], consts[j])
