"""Unit tests for program statistics (the table-column metrics)."""

from repro.analysis.stats import (
    count_dereferences,
    count_lines,
    count_printf_calls,
    program_stats,
)
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit


def compile_c(src):
    return lower_unit(parse_c(src))


# -------------------------------------------------------------- line counts


def test_count_lines_skips_blank_and_comments():
    src = """
// leading comment
int x;

/* block
   comment */
int y;   // trailing comment counts the line
"""
    assert count_lines(src) == 2  # only the two declaration lines


def test_count_lines_block_comment_inline():
    assert count_lines("int /* c */ x;\n") == 1


def test_count_lines_empty():
    assert count_lines("") == 0
    assert count_lines("\n\n// only comments\n/* and this */\n") == 0


# ------------------------------------------------------------- dereferences


def test_deref_counts_reads_and_writes():
    prog = compile_c(
        """
        void f(int* p) {
          int a = *p;     /* 1 */
          *p = a;         /* 2 */
        }
        """
    )
    assert count_dereferences(prog) == 2


def test_deref_counts_fields_and_indexing():
    prog = compile_c(
        """
        struct s { int v; int* arr; };
        int f(struct s* p, int i) {
          return p->v + p->arr[i];   /* p->v, p->arr, p->arr[i] */
        }
        """
    )
    assert count_dereferences(prog) == 3


def test_deref_counts_conditions_and_returns():
    prog = compile_c(
        """
        int f(int* p) {
          if (*p > 0) { return *p; }
          while (*p < 10) { *p = *p + 1; }
          return 0;
        }
        """
    )
    # if-cond + return + while-cond + body write + body read = 5
    assert count_dereferences(prog) == 5


def test_array_locals_not_counted_as_derefs():
    prog = compile_c("int f() { int a[4]; a[1] = 2; return a[1]; }")
    assert count_dereferences(prog) == 0  # direct offsets, no pointer deref


def test_deref_in_call_arguments():
    prog = compile_c(
        """
        void g(int x);
        void f(int* p) { g(*p); }
        """
    )
    assert count_dereferences(prog) == 1


# -------------------------------------------------------------- printf calls


def test_printf_family_counted():
    prog = compile_c(
        """
        int printf(char* fmt, ...);
        int fprintf(int s, char* fmt, ...);
        int sprintf(char* b, char* fmt, ...);
        void f(char* b) {
          printf("a");
          fprintf(2, "b");
          sprintf(b, "c");
        }
        """
    )
    assert count_printf_calls(prog) == 3


def test_wrappers_counted_when_named():
    prog = compile_c(
        """
        int reply(char* fmt, ...) { return 0; }
        void f() { reply("x"); reply("y"); }
        """
    )
    assert count_printf_calls(prog) == 0
    assert count_printf_calls(prog, wrappers=("reply",)) == 2


def test_program_stats_bundle():
    src = """
    int printf(char* fmt, ...);
    void f(int* p) { printf("%d", *p); }
    """
    stats = program_stats(src, compile_c(src))
    assert stats.lines == 2
    assert stats.dereferences == 1
    assert stats.printf_calls == 1
    assert "lines: 2" in str(stats)
