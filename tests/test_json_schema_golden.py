"""Golden-file snapshots of the ``--format json`` payloads.

The JSON report shape is a documented, versioned contract
(``schema_version`` in ``repro.api``): consumers parse it in CI and
scripts.  These tests freeze the *whole* payload for one check, one
infer, and one difftest invocation against golden files in
``tests/golden/``, after normalizing the volatile fields (timings,
tool version, absolute paths).  An accidental field rename, type
change, or dropped key fails the diff; an intentional schema change
must edit the golden file in the same commit — which is exactly the
review surface we want.

To regenerate after an intentional change::

    python tests/test_json_schema_golden.py --regenerate
"""

import json
import os
import sys

import pytest

from repro import api

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
GOLDEN_DIR = os.path.join(HERE, "golden")


def _normalize(obj, base_dir):
    """Zero out timings, stamp-stable the version, relativize paths."""
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if key in ("elapsed", "ms"):
                out[key] = 0.0
            elif key.endswith("_ms") or key.endswith(".ms"):
                # timings-block values ("total_ms", "prover.sat_ms",
                # "dataflow.ms", ...) are wall-clock; shape is golden,
                # magnitude is not.
                out[key] = 0.0
            elif key == "version":
                out[key] = "X.Y.Z"
            else:
                out[key] = _normalize(value, base_dir)
        return out
    if isinstance(obj, list):
        return [_normalize(v, base_dir) for v in obj]
    if isinstance(obj, str) and base_dir in obj:
        return obj.replace(base_dir, "<repo>")
    return obj


def _payloads():
    """(name, payload) for each snapshotted command, deterministic."""
    session = api.Session()
    # profile=True freezes the additive `timings` block too (counts
    # are deterministic; the millisecond values are normalized away).
    check = session.check(
        api.CheckRequest(
            files=(os.path.join(REPO, "examples", "nonnull.c"),),
            flow_sensitive=True,
            profile=True,
        )
    )
    infer = session.infer(
        api.InferRequest(
            files=(os.path.join(REPO, "examples", "lcm.c"),),
            qualifier="pos",
        )
    )
    difftest = session.difftest(
        api.DifftestRequest(seed=0, count=3, time_limit=10.0)
    )
    return [
        ("check", check.to_dict()),
        ("infer", infer.to_dict()),
        ("difftest", difftest.to_dict()),
    ]


@pytest.mark.parametrize("name", ["check", "infer", "difftest"])
def test_json_payload_matches_golden(name):
    payload = dict(_payloads())[name]
    normalized = _normalize(payload, REPO)
    golden_path = os.path.join(GOLDEN_DIR, f"{name}.json")
    with open(golden_path, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert normalized == golden, (
        f"{name} JSON payload changed; if intentional, regenerate with "
        f"`python tests/test_json_schema_golden.py --regenerate`"
    )


def _regenerate():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, payload in _payloads():
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                _normalize(payload, REPO), handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
