"""Property-based check of Theorem 5.1 (preservation).

For randomly generated programs of the section-5 calculus: whatever
(qualified) type the extensible type system assigns, the evaluated
value and the final store semantically conform to it (figure 11) —
because every rule in the standard qualifier library passed the
soundness checker.
"""

from hypothesis import given, settings, strategies as st

from repro.core.qualifiers.library import standard_qualifiers
from repro.semantics.lambda_ref import (
    EBin,
    EConst,
    EDeref,
    ENeg,
    EVar,
    LambdaTypeError,
    SAssign,
    SExpr,
    SLet,
    SRef,
    SSeq,
    check_conformance,
    evaluate,
    typecheck,
)

QUALS = standard_qualifiers()


def int_exprs(int_vars):
    """Strategy for integer expressions over the given variable names."""
    base = st.one_of(
        st.integers(min_value=-20, max_value=20).map(EConst),
        *( [st.sampled_from(sorted(int_vars)).map(EVar)] if int_vars else [] ),
    )
    return st.recursive(
        base,
        lambda children: st.one_of(
            children.map(ENeg),
            st.tuples(st.sampled_from(["+", "-", "*"]), children, children).map(
                lambda t: EBin(*t)
            ),
        ),
        max_leaves=8,
    )


@st.composite
def programs(draw, depth=3, int_vars=frozenset(), ref_vars=frozenset()):
    """Random well-formed statements of int type."""
    if depth <= 0:
        return SExpr(draw(int_exprs(int_vars)))
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        return SExpr(draw(int_exprs(int_vars)))
    if choice == 1:  # let over an int binding
        name = f"v{draw(st.integers(min_value=0, max_value=5))}"
        bound = draw(programs(depth=depth - 1, int_vars=int_vars, ref_vars=ref_vars))
        body = draw(
            programs(
                depth=depth - 1,
                int_vars=int_vars | {name},
                ref_vars=ref_vars - {name},
            )
        )
        return SLet(name, bound, body)
    if choice == 2:  # sequence
        first = draw(programs(depth=depth - 1, int_vars=int_vars, ref_vars=ref_vars))
        second = draw(programs(depth=depth - 1, int_vars=int_vars, ref_vars=ref_vars))
        return SSeq(first, second)
    if choice == 3 and True:  # let a ref cell, update it, read it back
        name = f"r{draw(st.integers(min_value=0, max_value=3))}"
        init = draw(int_exprs(int_vars))
        update = draw(int_exprs(int_vars))
        return SLet(
            name,
            SRef(SExpr(init)),
            SSeq(
                SAssign(SExpr(EVar(name)), SExpr(update)),
                SExpr(EDeref(EVar(name))),
            ),
        )
    return SExpr(draw(int_exprs(int_vars)))


@settings(max_examples=120, deadline=None)
@given(programs())
def test_preservation(prog):
    """Theorem 5.1: Γ ⊢ s : τ and <σ,s> → <σ',v> imply Γ';τ ⊢ <σ',v>."""
    try:
        ltype = typecheck(prog, QUALS)
    except LambdaTypeError:
        return  # ill-typed programs are outside the theorem
    value, store = evaluate(prog)
    problems = check_conformance(value, ltype, store, QUALS)
    assert problems == [], f"{prog} : {ltype} evaluated to {value}: {problems}"


@settings(max_examples=60, deadline=None)
@given(int_exprs(frozenset()))
def test_principal_qualifiers_are_invariant_respecting(expr):
    """Every qualifier the checker derives for a closed int expression
    holds of its value."""
    stmt = SExpr(expr)
    ltype = typecheck(stmt, QUALS)
    value, store = evaluate(stmt)
    assert check_conformance(value, ltype, store, QUALS) == []


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=-50, max_value=50))
def test_constant_qualifiers_exact(n):
    """The derived qualifier set of a constant matches its sign exactly
    (the paper's constant case clauses are tight)."""
    ltype = typecheck(SExpr(EConst(n)), QUALS)
    assert ("pos" in ltype.quals) == (n > 0)
    assert ("neg" in ltype.quals) == (n < 0)
    assert ("nonzero" in ltype.quals) == (n != 0)
