"""Panic-mode error recovery in the C parser (parse_c(recover=True)):
every syntax error in a unit is reported, not just the first, and the
well-formed remainder still parses."""

import pytest

from repro.cfront.parser import ParseError, parse_c


def test_default_mode_still_raises_on_first_error():
    with pytest.raises(ParseError):
        parse_c("int f( { }")


def test_recover_collects_multiple_errors():
    unit = parse_c(
        """
        int f( { }
        int g(int x) { return x  }
        int ok(int x) { return x; }
        """,
        recover=True,
    )
    assert len(unit.errors) == 2
    assert [f.name for f in unit.functions] == ["g", "ok"]


def test_recover_reports_every_statement_error_in_one_body():
    unit = parse_c(
        "void h() { int y = ; y = 3; bad bad bad; y = 4; }",
        recover=True,
    )
    assert len(unit.errors) == 2
    (func,) = unit.functions
    # The two well-formed assignments around the bad statements survive.
    assert len(func.body.stmts) == 2


def test_recovery_synchronizes_past_nested_braces():
    unit = parse_c(
        """
        void broken() { if (1) { int z = ; } }
        int fine() { return 1; }
        """,
        recover=True,
    )
    assert len(unit.errors) == 1
    assert [f.name for f in unit.functions] == ["broken", "fine"]


def test_truncated_source_reports_eof_not_hang():
    unit = parse_c("int f() { int x = 1;", recover=True)
    assert any("end of file" in str(e) for e in unit.errors)
    assert [f.name for f in unit.functions] == ["f"]


def test_garbage_between_functions():
    unit = parse_c(
        """
        int a() { return 1; }
        $$$ %% what even is this;
        int b() { return 2; }
        """,
        recover=True,
    )
    assert unit.errors
    assert [f.name for f in unit.functions] == ["a", "b"]


def test_clean_source_has_no_errors():
    unit = parse_c("int f(int x) { return x; }", recover=True)
    assert unit.errors == []
    assert [f.name for f in unit.functions] == ["f"]


def test_error_locations_are_preserved():
    unit = parse_c("void f() {\n  int x = ;\n}", recover=True)
    (err,) = unit.errors
    assert err.token.line == 2


def test_recovery_never_loops_on_stray_close_brace():
    unit = parse_c("} } } int f() { return 0; }", recover=True)
    assert [f.name for f in unit.functions] == ["f"]
    assert unit.errors
