"""Pinning tests for the checker's *documented* unsoundnesses
(paper section 3.3).

These behaviours are deliberate: the checker "can be used to statically
detect potential errors but cannot guarantee the absence of errors of a
particular kind."  Each test demonstrates the checker accepting a
program whose invariant fails at run time, so any future change that
silently alters the trade-off shows up here.
"""

import pytest

from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import NONNULL, POS, standard_qualifiers
from repro.semantics.csem import run_program

QUALS = standard_qualifiers()
NAMES = {"pos", "nonnull", "nonzero", "neg"}


def compile_c(src):
    return lower_unit(parse_c(src, qualifier_names=NAMES))


def test_pointer_arithmetic_is_trusted():
    """Section 3.3: the type of p+i is the type of p (logical memory
    model).  p+i keeps nonnull even though it could overflow/escape."""
    report = check_program(
        compile_c(
            """
            void f(int* nonnull p, int i) {
              int x = p[i];
            }
            """
        ),
        QualifierSet([NONNULL]),
    )
    assert report.ok


def test_uninitialized_variables_are_trusted():
    """Section 3.3: 'allows variables to be used before being
    initialized' — a pos local holds its (zero) default before any
    assignment, violating the invariant at run time."""
    src = """
    int main() {
      int pos p;
      return p;   /* read before initialization */
    }
    """
    report = check_program(compile_c(src), QUALS)
    assert report.ok  # documented: no warning
    value, _ = run_program(compile_c(src), quals=QUALS)
    assert value == 0  # the pos invariant is silently violated


def test_arithmetic_overflow_ignored():
    """Section 3.3: 'our checker is unsound in the presence of
    arithmetic overflow.'  pos * pos is accepted; the interpreter's
    unbounded integers never overflow, so we just pin the static
    behaviour here."""
    report = check_program(
        compile_c(
            """
            void f(int pos a, int pos b) {
              int pos c = a * b;
            }
            """
        ),
        QUALS,
    )
    assert report.ok


def test_union_punning_is_trusted():
    """Section 3.3: union fields may be qualified but checking them is
    unsound (see also test_c_subset_extensions)."""
    report = check_program(
        compile_c(
            """
            union pun { int plain; int pos positive; };
            void f(union pun* nonnull u) {
              u->plain = -1;
              int pos p = u->positive;
            }
            """
        ),
        QUALS,
    )
    assert report.ok


def test_library_macros_would_be_errors():
    """Section 3.3's library-macro problem, shown from the other side:
    an unannotated library signature causes errors until the alternate
    annotated header (the paper's workaround) is supplied."""
    without_header = compile_c(
        """
        char* getenv(char* name);
        int printf(char* __attribute__((untainted)) fmt, ...);
        void f() { printf(getenv("PS1")); }
        """
    )
    report = check_program(without_header, QUALS)
    assert not report.ok  # getenv's result isn't untainted: a true positive

    with_header = compile_c(
        """
        char* __attribute__((untainted)) getenv(char* name);
        int printf(char* __attribute__((untainted)) fmt, ...);
        void f() { printf(getenv("PS1")); }
        """
    )
    report = check_program(with_header, QUALS)
    assert report.ok  # the alternate signature silences it (trusted)
