"""Unit tests for the resource guards (harness.watchdog)."""

import sys
import time

import pytest

from repro.harness.watchdog import (
    NEVER,
    NO_RETRY,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    recursion_guard,
)


class TestDeadline:
    def test_unbounded_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        assert d.remaining() == float("inf")
        d.check()  # must not raise

    def test_after_and_expiry(self):
        d = Deadline.after(0.01)
        assert not d.expired()
        time.sleep(0.02)
        assert d.expired()
        with pytest.raises(DeadlineExceeded):
            d.check("unit x")

    def test_check_message(self):
        d = Deadline.after(-1.0)  # already past
        with pytest.raises(DeadlineExceeded, match="E-matching"):
            d.check("E-matching")

    def test_remaining_clamped_at_zero(self):
        assert Deadline.after(-5.0).remaining() == 0.0

    def test_tightened_takes_the_earlier(self):
        loose = Deadline.after(100.0)
        tight = loose.tightened(0.001)
        assert tight.at < loose.at
        assert loose.tightened(None) is loose
        assert Deadline(None).tightened(5.0).at is not None

    def test_after_none_is_unbounded(self):
        assert Deadline.after(None).at is None


class TestRetryPolicy:
    def test_no_retry_is_single_attempt(self):
        assert list(NO_RETRY.attempts()) == [1]

    def test_backoff_schedule_is_exponential(self):
        p = RetryPolicy(max_attempts=4, backoff=0.1, backoff_factor=2.0)
        assert p.delay_before(1) == 0.0
        assert p.delay_before(2) == pytest.approx(0.1)
        assert p.delay_before(3) == pytest.approx(0.2)
        assert p.delay_before(4) == pytest.approx(0.4)

    def test_budget_escalation(self):
        p = RetryPolicy(budget_factor=3.0)
        assert p.budget_scale(1) == 1.0
        assert p.budget_scale(2) == 3.0
        assert p.budget_scale(3) == 9.0

    def test_attempts_sleep_between_tries(self):
        p = RetryPolicy(max_attempts=3, backoff=0.01, backoff_factor=1.0)
        start = time.perf_counter()
        assert list(p.attempts()) == [1, 2, 3]
        assert time.perf_counter() - start >= 0.02

    def test_attempts_stop_when_deadline_cannot_fund_backoff(self):
        p = RetryPolicy(max_attempts=5, backoff=10.0)
        # Only the free first attempt fits in a 50 ms budget.
        assert list(p.attempts(Deadline.after(0.05))) == [1]

    def test_never_deadline_allows_all_attempts(self):
        p = RetryPolicy(max_attempts=2, backoff=0.001)
        assert list(p.attempts(NEVER)) == [1, 2]


class TestRecursionGuard:
    def test_raises_limit_and_restores(self):
        before = sys.getrecursionlimit()
        with recursion_guard(before + 1000):
            assert sys.getrecursionlimit() == before + 1000
        assert sys.getrecursionlimit() == before

    def test_never_lowers_the_limit(self):
        before = sys.getrecursionlimit()
        with recursion_guard(10):
            assert sys.getrecursionlimit() == before

    def test_restores_on_exception(self):
        before = sys.getrecursionlimit()
        with pytest.raises(ValueError):
            with recursion_guard(before + 500):
                raise ValueError("boom")
        assert sys.getrecursionlimit() == before

    def test_gives_headroom_for_deep_recursion(self):
        def depth(n):
            return 0 if n == 0 else 1 + depth(n - 1)

        need = sys.getrecursionlimit() + 200
        with pytest.raises(RecursionError):
            depth(need)
        with recursion_guard(need * 3):
            assert depth(need) == need
