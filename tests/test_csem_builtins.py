"""Interpreter built-ins and memory-model details."""

import pytest

from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.semantics.csem import (
    CInterpreter,
    CRuntimeError,
    FormatStringError,
    run_program,
)


def compile_c(src):
    return lower_unit(parse_c(src))


def run(src, entry="main", args=()):
    return run_program(compile_c(src), entry=entry, args=args)


def test_calloc_zeroes():
    value, _ = run(
        """
        void* calloc(int n, int size);
        int main() {
          int* p = (int*)calloc(8, sizeof(int));
          return p[0] + p[7];
        }
        """
    )
    assert value == 0


def test_malloc_returns_distinct_blocks():
    value, _ = run(
        """
        int main() {
          int* a = (int*)malloc(sizeof(int) * 4);
          int* b = (int*)malloc(sizeof(int) * 4);
          a[3] = 1;
          b[0] = 2;
          return a[3] + b[0];
        }
        """
    )
    assert value == 3


def test_heap_addresses_are_heap():
    prog = compile_c("int main() { int* p = (int*)malloc(4); return 0; }")
    interp = CInterpreter(prog)
    addr = interp._alloc_heap(4)
    assert interp.is_heap_address(addr)
    stack = interp._alloc_stack()
    assert not interp.is_heap_address(stack)


def test_sprintf_writes_buffer():
    value, output = run(
        """
        int printf(char* fmt, ...);
        int sprintf(char* buf, char* fmt, ...);
        int strlen(char* s);
        int main() {
          char buf[64];
          sprintf(buf, "x=%d", 42);
          printf("%s!\\n", buf);
          return strlen(buf);
        }
        """
    )
    assert value == 4
    assert output == ["x=42!\n"]


def test_fprintf_skips_stream_argument():
    _, output = run(
        """
        int fprintf(int stream, char* fmt, ...);
        int main() { fprintf(2, "err %d\\n", 9); return 0; }
        """
    )
    assert output == ["err 9\n"]


def test_percent_percent_literal():
    _, output = run(
        """
        int printf(char* fmt, ...);
        int main() { printf("100%%\\n"); return 0; }
        """
    )
    assert output == ["100%\n"]


def test_width_flags_consumed():
    _, output = run(
        """
        int printf(char* fmt, ...);
        int main() { printf("%04d|%-8s|\\n", 7, "ok"); return 0; }
        """
    )
    # Width/precision are parsed (not rendered); the directive still
    # consumes exactly one argument.
    assert output == ["7|ok|\n"]


def test_varargs_forwarding_through_wrapper():
    _, output = run(
        """
        int printf(char* fmt, ...);
        int log_msg(char* fmt, ...) { return printf(fmt); }
        int main() { log_msg("n=%d\\n", 5); return 0; }
        """
    )
    assert output == ["n=5\n"]


def test_excess_printf_args_harmless():
    _, output = run(
        """
        int printf(char* fmt, ...);
        int main() { printf("just this\\n", 1, 2, 3); return 0; }
        """
    )
    assert output == ["just this\n"]


def test_missing_arg_is_format_string_error():
    with pytest.raises(FormatStringError):
        run(
            """
            int printf(char* fmt, ...);
            int main() { printf("%d and %d", 1); return 0; }
            """
        )


def test_free_is_noop_and_safe():
    value, _ = run(
        """
        void free(void* p);
        int main() {
          int* p = (int*)malloc(4);
          *p = 3;
          free(p);
          return 0;
        }
        """
    )
    assert value == 0


def test_exit_unwinds():
    value, _ = run(
        """
        void exit(int code);
        int main() { exit(42); return 0; }
        """
    )
    assert value == 42


def test_entry_with_arguments():
    value, _ = run(
        "int add(int a, int b) { return a + b; }", entry="add", args=[20, 22]
    )
    assert value == 42


def test_global_state_persists_across_calls():
    prog = compile_c(
        """
        int counter = 0;
        int bump(void) { counter = counter + 1; return counter; }
        """
    )
    interp = CInterpreter(prog)
    assert interp.run("bump") == 1
    assert interp.run("bump") == 2
    assert interp.run("bump") == 3


def test_shift_and_bitwise_ops():
    value, _ = run("int main() { return (1 << 4) | (12 & 10) ^ 1; }")
    assert value == ((1 << 4) | (12 & 10) ^ 1)
