"""Tests for the synthetic corpus and the annotation workflows."""

import pytest

from repro.analysis.annotate import annotate_nonnull, annotate_untainted
from repro.analysis.stats import count_dereferences, count_lines, count_printf_calls
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.corpus import (
    generate_bftpd,
    generate_dfa_module,
    generate_identd,
    generate_mingetty,
)
from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import NONNULL, UNIQUE


def compile_c(src):
    return lower_unit(parse_c(src))


# ----------------------------------------------------------------- corpus


def test_dfa_module_parses_and_lowers():
    prog = compile_c(generate_dfa_module())
    assert prog.function("dfa_match") is not None
    assert prog.function("dfa_compile") is not None


def test_dfa_module_scale_matches_paper():
    src = generate_dfa_module()
    prog = compile_c(src)
    lines = count_lines(src)
    derefs = count_dereferences(prog)
    # Paper: 2287 lines, 1072 dereferences.  Synthetic corpus is
    # calibrated to the same scale (within ~15%).
    assert 1900 <= lines <= 2700, lines
    assert 900 <= derefs <= 1250, derefs


def test_dfa_module_deterministic():
    assert generate_dfa_module() == generate_dfa_module()
    assert generate_dfa_module(seed=1) != generate_dfa_module(seed=2)


def test_servers_scale_matches_paper():
    cases = [
        (generate_bftpd(), ("sendstrf", "log_event"), 750, 134),
        (generate_mingetty(), ("error",), 293, 23),
        (generate_identd(), (), 228, 21),
    ]
    for src, wrappers, lines_target, calls_target in cases:
        prog = compile_c(src)
        lines = count_lines(src)
        calls = count_printf_calls(prog, wrappers)
        assert abs(lines - lines_target) <= lines_target * 0.2
        assert abs(calls - calls_target) <= max(4, calls_target * 0.15)


def test_bftpd_contains_planted_vulnerability():
    src = generate_bftpd()
    assert "sendstrf(sess->sock, entry->d_name);" in src


def test_dfa_module_executes():
    """The synthetic corpus is real code: compile it to IR and run it."""
    from repro.semantics.csem import CInterpreter

    prog = compile_c(generate_dfa_module())
    interp = CInterpreter(prog)
    interp.run("dfa_compile", [4])
    total = interp.run("dfa_global_reset")
    assert total == 4


# ------------------------------------------------------- nonnull workflow


@pytest.fixture(scope="module")
def nonnull_result():
    return annotate_nonnull(compile_c(generate_dfa_module()))


def test_nonnull_workflow_reaches_zero_errors(nonnull_result):
    assert nonnull_result.errors == 0, nonnull_result.report.summary()


def test_nonnull_workflow_counts_in_paper_range(nonnull_result):
    # Paper: 114 annotations, 59 casts.  Same order of magnitude, with
    # annotations ≈ 10-15% of dereference sites and casts below
    # annotations.
    assert 90 <= nonnull_result.annotations <= 180
    assert 40 <= nonnull_result.casts <= 110
    assert nonnull_result.casts < nonnull_result.annotations


def test_nonnull_annotated_program_checks_clean(nonnull_result):
    report = check_program(nonnull_result.program, QualifierSet([NONNULL]))
    assert report.ok


def test_unannotated_dfa_module_fails_nonnull():
    prog = compile_c(generate_dfa_module())
    report = check_program(prog, QualifierSet([NONNULL]))
    # Every one of the ~1000 dereferences errors without annotations.
    assert report.error_count > 500


# ------------------------------------------------------ untainted workflow


def test_untainted_bftpd_matches_paper_exactly():
    result = annotate_untainted(compile_c(generate_bftpd()))
    assert result.annotations == 2
    assert result.casts == 0
    assert result.errors == 1
    assert any("d_name" in str(d) for d in result.report.diagnostics)


def test_untainted_mingetty_matches_paper_exactly():
    result = annotate_untainted(compile_c(generate_mingetty()))
    assert (result.annotations, result.casts, result.errors) == (1, 0, 0)


def test_untainted_identd_matches_paper_exactly():
    result = annotate_untainted(compile_c(generate_identd()))
    assert (result.annotations, result.casts, result.errors) == (0, 0, 0)


def test_untainted_without_const_rule_needs_casts():
    # Section 2.1.4: without the constants-are-untainted clause, every
    # literal format string needs a cast.
    result = annotate_untainted(compile_c(generate_identd()), trust_constants=False)
    assert result.casts > 0
    assert result.errors == 0


def test_fixing_bftpd_vulnerability():
    """Replacing the d_name format with a literal removes the error —
    the fix the paper's diagnosis implies."""
    src = generate_bftpd().replace(
        'sendstrf(sess->sock, entry->d_name);',
        'sendstrf(sess->sock, "%s", entry->d_name);',
    )
    result = annotate_untainted(compile_c(src))
    assert result.errors == 0


# ---------------------------------------------------------- uniqueness


def test_uniqueness_experiment():
    from repro.analysis.experiments import uniqueness_experiment

    result = uniqueness_experiment()
    assert result["errors"] == 0, result["error_messages"]
    # Paper: 49 validated references.
    assert 35 <= result["validated_references"] <= 60


def test_unique_global_passed_to_procedure_fails():
    """Section 6.2: passing the unique global as an argument violates
    the disallow clause."""
    src = generate_dfa_module() + """
    int consume(struct dfa_obj* d);
    int leak_global(void) { return consume(dfa); }
    """
    prog = compile_c(src)
    for g in prog.globals:
        if g.name == "dfa":
            g.ctype = g.ctype.with_quals(["unique"])
    report = check_program(prog, QualifierSet([UNIQUE]))
    assert any(d.kind == "disallow" for d in report.diagnostics)
