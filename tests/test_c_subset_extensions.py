"""Tests for the C-subset extensions: typedef, union, switch — and the
paper's documented union unsoundness (section 3.3)."""

import pytest

from repro.cfront.ctypes import IntType, PointerType, StructType
from repro.cfront.parser import parse_c
from repro.cil import ir
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import POS, standard_qualifiers
from repro.semantics.csem import run_program

NAMES = {"pos", "nonnull"}


def compile_c(src):
    return lower_unit(parse_c(src, qualifier_names=NAMES))


def run(src, entry="main", quals=None):
    return run_program(compile_c(src), quals=quals, entry=entry)


# ------------------------------------------------------------------- typedef


def test_typedef_basic():
    unit = parse_c("typedef int word; word w;")
    assert isinstance(unit.globals[0].ctype, IntType)


def test_typedef_pointer():
    unit = parse_c("typedef int* intp; intp p;")
    assert isinstance(unit.globals[0].ctype, PointerType)


def test_typedef_struct():
    unit = parse_c(
        """
        struct node { int v; };
        typedef struct node node_t;
        node_t n;
        """
    )
    assert isinstance(unit.globals[0].ctype, StructType)


def test_typedef_with_qualifier():
    unit = parse_c(
        "typedef int pos count_t; count_t c;", qualifier_names={"pos"}
    )
    assert unit.globals[0].ctype.quals == {"pos"}


def test_typedef_in_function_signature_and_body():
    value, _ = run(
        """
        typedef int money;
        money add(money a, money b) { return a + b; }
        int main() { money x = 40; return add(x, 2); }
        """
    )
    assert value == 42


def test_typedef_checked_like_underlying_type():
    report = check_program(
        compile_c(
            """
            typedef int pos positive;
            void f() { positive p = -3; }
            """
        ),
        standard_qualifiers(),
    )
    assert not report.ok


# --------------------------------------------------------------------- union


def test_union_parses_and_runs():
    value, _ = run(
        """
        union cell { int as_int; int* as_ptr; };
        int main() {
          union cell c;
          c.as_int = 42;
          return c.as_int;
        }
        """
    )
    assert value == 42


def test_union_members_overlay():
    value, _ = run(
        """
        union cell { int a; int b; };
        int main() {
          union cell c;
          c.a = 10;
          c.b = 32;
          return c.a + c.b;   /* both read 32: same storage */
        }
        """
    )
    assert value == 64


def test_union_sizeof_is_max():
    value, _ = run(
        """
        struct big { int x; int y; int z; };
        union u { int small; struct big large; };
        int main() { return sizeof(union u); }
        """
    )
    assert value == 3


def test_union_qualifier_checking_is_unsound_as_documented():
    """Section 3.3: 'Fields of unions may also be given qualified types,
    but the usual unsoundness for C unions makes our qualifier checking
    in this case unsound as well.'  The checker accepts this program,
    and at run time the pos invariant is silently violated."""
    src = """
    union pun { int plain; int pos positive; };
    int main() {
      union pun u;
      u.plain = -5;        /* fine: plain int */
      return u.positive;   /* reads -5 through the pos-qualified member */
    }
    """
    report = check_program(compile_c(src), standard_qualifiers())
    assert report.ok  # the documented unsoundness: no warning
    value, _ = run(src)
    assert value == -5  # and the invariant is indeed violated silently


# -------------------------------------------------------------------- switch


def test_switch_basic():
    src = """
    int classify(int n) {
      switch (n) {
        case 0: return 100;
        case 1: return 200;
        default: return 300;
      }
    }
    int main() { return classify(%d); }
    """
    assert run(src % 0)[0] == 100
    assert run(src % 1)[0] == 200
    assert run(src % 9)[0] == 300


def test_switch_with_breaks():
    value, _ = run(
        """
        int main() {
          int r = 0;
          switch (2) {
            case 1: r = 10; break;
            case 2: r = 20; break;
            case 3: r = 30; break;
          }
          return r;
        }
        """
    )
    assert value == 20


def test_switch_fallthrough():
    value, _ = run(
        """
        int main() {
          int r = 0;
          switch (1) {
            case 1: r = r + 1;   /* falls through */
            case 2: r = r + 2; break;
            case 3: r = r + 100; break;
          }
          return r;
        }
        """
    )
    assert value == 3


def test_switch_no_match_no_default():
    value, _ = run(
        """
        int main() {
          int r = 7;
          switch (99) { case 1: r = 0; break; }
          return r;
        }
        """
    )
    assert value == 7


def test_switch_default_position_independent():
    value, _ = run(
        """
        int main() {
          int r = 0;
          switch (42) {
            default: r = 5; break;
            case 1: r = 1; break;
          }
          return r;
        }
        """
    )
    assert value == 5


def test_switch_char_labels():
    value, _ = run(
        """
        int main() {
          int c = 'b';
          switch (c) {
            case 'a': return 1;
            case 'b': return 2;
          }
          return 0;
        }
        """
    )
    assert value == 2


def test_switch_negative_labels():
    value, _ = run(
        """
        int main() {
          switch (-2) {
            case -2: return 22;
            default: return 0;
          }
        }
        """
    )
    assert value == 22


def test_switch_scrutinee_side_effects_once():
    value, _ = run(
        """
        int counter = 0;
        int tick(void) { counter = counter + 1; return counter; }
        int main() {
          switch (tick()) {
            case 1: break;
            case 2: break;
          }
          return counter;
        }
        """
    )
    assert value == 1


def test_switch_qualifier_checking_inside_cases():
    report = check_program(
        compile_c(
            """
            void f(int n) {
              switch (n) {
                case 1: { int pos p = -1; break; }
              }
            }
            """
        ),
        QualifierSet([POS]),
    )
    assert not report.ok
