"""Property-based round-trip tests for the front end and interpreter.

A structured model of a small C program is generated; it is rendered to
C source and independently evaluated by a reference evaluator written
directly against C's semantics.  The pipeline must

* parse and lower the source without error,
* print back to C that reparses, and
* produce the reference result under the interpreter, both before and
  after the print/reparse round trip.
"""

from hypothesis import given, settings, strategies as st

from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.cil.printer import program_to_c
from repro.semantics.csem import run_program

# ----------------------------------------------------------- program model

NAMES = ["v0", "v1", "v2"]


def exprs(depth=3):
    base = st.one_of(
        st.tuples(st.just("num"), st.integers(-9, 9)),
        st.tuples(st.just("var"), st.sampled_from(NAMES)),
    )
    if depth <= 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.just("bin"), st.sampled_from("+-*"), sub, sub),
        st.tuples(st.just("neg"), sub),
        st.tuples(
            st.just("cmp"),
            st.sampled_from(["<", ">", "==", "!=", "<=", ">="]),
            sub,
            sub,
        ),
        st.tuples(st.just("logic"), st.sampled_from(["&&", "||"]), sub, sub),
    )


def stmts(depth=2):
    base = st.one_of(
        st.tuples(st.just("assign"), st.sampled_from(NAMES), exprs()),
        st.tuples(st.just("aug"), st.sampled_from(NAMES), st.integers(-3, 3)),
        st.tuples(st.just("skip")),
    )
    if depth <= 0:
        return base
    sub = st.lists(stmts(depth - 1), min_size=0, max_size=2)
    return st.one_of(
        base,
        st.tuples(st.just("if"), exprs(2), sub, sub),
        st.tuples(
            st.just("while"),
            st.sampled_from(NAMES),
            st.integers(1, 4),
            sub,
        ),
    )


programs = st.tuples(
    st.tuples(*[st.integers(-5, 5) for _ in NAMES]),
    st.lists(stmts(), min_size=1, max_size=4),
    exprs(),
)


# -------------------------------------------------------------- rendering


def render_expr(e) -> str:
    kind = e[0]
    if kind == "num":
        return str(e[1])
    if kind == "var":
        return e[1]
    if kind == "bin":
        return f"({render_expr(e[2])} {e[1]} {render_expr(e[3])})"
    if kind == "neg":
        return f"(- {render_expr(e[1])})"  # space: avoid lexing `--`
    if kind in ("cmp", "logic"):
        return f"({render_expr(e[2])} {e[1]} {render_expr(e[3])})"
    raise AssertionError(kind)


def render_stmt(s, indent="  ") -> str:
    kind = s[0]
    if kind == "assign":
        return f"{indent}{s[1]} = {render_expr(s[2])};"
    if kind == "aug":
        return f"{indent}{s[1]} += {s[2]};"
    if kind == "skip":
        return f"{indent};"
    if kind == "if":
        then = "\n".join(render_stmt(x, indent + "  ") for x in s[2])
        other = "\n".join(render_stmt(x, indent + "  ") for x in s[3])
        return (
            f"{indent}if ({render_expr(s[1])}) {{\n{then}\n{indent}}} "
            f"else {{\n{other}\n{indent}}}"
        )
    if kind == "while":
        # Bounded loop: while (name < limit) { body; name += 1; }
        name, limit, body = s[1], s[2], s[3]
        inner = "\n".join(render_stmt(x, indent + "  ") for x in body)
        return (
            f"{indent}while ({name} < {limit}) {{\n{inner}\n"
            f"{indent}  {name} += 1;\n{indent}}}"
        )
    raise AssertionError(kind)


def render_program(model) -> str:
    inits, body, result = model
    decls = "\n".join(
        f"  int {n} = {v};" for n, v in zip(NAMES, inits)
    )
    stmts_text = "\n".join(render_stmt(s) for s in body)
    return (
        "int main() {\n"
        + decls
        + "\n"
        + stmts_text
        + f"\n  return {render_expr(result)};\n}}\n"
    )


# -------------------------------------------------- reference evaluation


class _Diverged(Exception):
    pass


def eval_expr(e, env) -> int:
    kind = e[0]
    if kind == "num":
        return e[1]
    if kind == "var":
        return env[e[1]]
    if kind == "bin":
        left, right = eval_expr(e[2], env), eval_expr(e[3], env)
        return {"+": left + right, "-": left - right, "*": left * right}[e[1]]
    if kind == "neg":
        return -eval_expr(e[1], env)
    if kind == "cmp":
        left, right = eval_expr(e[2], env), eval_expr(e[3], env)
        return int(
            {
                "<": left < right,
                ">": left > right,
                "==": left == right,
                "!=": left != right,
                "<=": left <= right,
                ">=": left >= right,
            }[e[1]]
        )
    if kind == "logic":
        left = eval_expr(e[2], env)
        if e[1] == "&&":
            return int(bool(left) and bool(eval_expr(e[3], env)))
        return int(bool(left) or bool(eval_expr(e[3], env)))
    raise AssertionError(kind)


def eval_stmt(s, env, fuel) -> None:
    if fuel[0] <= 0:
        raise _Diverged()
    fuel[0] -= 1
    kind = s[0]
    if kind == "assign":
        env[s[1]] = eval_expr(s[2], env)
    elif kind == "aug":
        env[s[1]] += s[2]
    elif kind == "skip":
        pass
    elif kind == "if":
        branch = s[2] if eval_expr(s[1], env) else s[3]
        for inner in branch:
            eval_stmt(inner, env, fuel)
    elif kind == "while":
        name, limit, body = s[1], s[2], s[3]
        while env[name] < limit:
            if fuel[0] <= 0:
                raise _Diverged()
            fuel[0] -= 1
            for inner in body:
                eval_stmt(inner, env, fuel)
            env[name] += 1


def reference_result(model):
    inits, body, result = model
    env = dict(zip(NAMES, inits))
    fuel = [10_000]
    for s in body:
        eval_stmt(s, env, fuel)
    return eval_expr(result, env)


# ---------------------------------------------------------------- the tests


@settings(max_examples=120, deadline=None)
@given(programs)
def test_interpreter_matches_reference_semantics(model):
    try:
        expected = reference_result(model)
    except _Diverged:
        return
    source = render_program(model)
    program = lower_unit(parse_c(source))
    got, _ = run_program(program)
    assert got == expected, source


@settings(max_examples=120, deadline=None)
@given(programs)
def test_print_reparse_preserves_behaviour(model):
    try:
        expected = reference_result(model)
    except _Diverged:
        return
    source = render_program(model)
    program = lower_unit(parse_c(source))
    printed = program_to_c(program)
    reparsed = lower_unit(parse_c(printed))
    got, _ = run_program(reparsed)
    assert got == expected, f"{source}\n-- printed --\n{printed}"
