"""Prover tests with quantified axioms (E-matching instantiation)."""

from repro.prover import (
    And,
    Eq,
    ForAll,
    Implies,
    Int,
    Le,
    Lt,
    Not,
    Or,
    Pr,
    TVar,
    fn,
)
from repro.prover.prover import prove_valid

a, b, c = fn("a"), fn("b"), fn("c")
x, y, m, k, v = TVar("x"), TVar("y"), TVar("m"), TVar("k"), TVar("v")


def proved(goal, axioms=()):
    return prove_valid(goal, list(axioms)).proved


def test_simple_instantiation():
    # forall x. f(x) = x |- f(a) = a
    ax = ForAll(("x",), Eq(fn("f", x), x))
    assert proved(Eq(fn("f", a), a), [ax])


def test_chained_instantiation():
    # forall x. f(x) = g(x); forall x. g(x) = x |- f(a) = a
    ax1 = ForAll(("x",), Eq(fn("f", x), fn("g", x)))
    ax2 = ForAll(("x",), Eq(fn("g", x), x))
    assert proved(Eq(fn("f", a), a), [ax1, ax2])


def test_instantiation_creates_new_terms():
    # Round 2 must match g(f(a)) created by round 1.
    ax1 = ForAll(("x",), Eq(fn("f", x), fn("g", fn("f", x))))
    ax2 = ForAll(("x",), Eq(fn("g", x), fn("h", x)))
    assert proved(Eq(fn("f", a), fn("h", fn("f", a))), [ax1, ax2])


def test_quantified_hypothesis_in_goal():
    # (forall x. P(x)) => P(a) is valid.
    goal = Implies(ForAll(("x",), Pr("P", (x,))), Pr("P", (a,)))
    assert proved(goal)


def test_quantified_conclusion_skolemized():
    # P(a) does not prove forall x. P(x).
    goal = ForAll(("x",), Pr("P", (x,)))
    assert not proved(goal, [Pr("P", (a,))])


def test_forall_conclusion_from_forall_hyp():
    goal = Implies(
        ForAll(("x",), Pr("P", (x,))),
        ForAll(("y",), Or(Pr("P", (y,)), Pr("Q", (y,)))),
    )
    assert proved(goal)


# --------------------------------------------------------- select / store


def select(m_, k_):
    return fn("select", m_, k_)


def store(m_, k_, v_):
    return fn("store", m_, k_, v_)


SELECT_STORE_AXIOMS = [
    ForAll(("m", "k", "v"), Eq(select(store(m, k, v), k), v)),
    ForAll(
        ("m", "k", "j", "v"),
        Implies(
            Not(Eq(k, TVar("j"))),
            Eq(select(store(m, k, v), TVar("j")), select(m, TVar("j"))),
        ),
        triggers=((select(store(m, k, v), TVar("j")),),),
    ),
]


def test_select_of_store_same_key():
    goal = Eq(select(store(fn("s"), a, b), a), b)
    assert proved(goal, SELECT_STORE_AXIOMS)


def test_select_of_store_other_key():
    goal = Implies(
        Not(Eq(a, c)),
        Eq(select(store(fn("s"), a, b), c), select(fn("s"), c)),
    )
    assert proved(goal, SELECT_STORE_AXIOMS)


def test_store_preserves_distinct_cell():
    # The shape of the paper's preservation obligations: after writing
    # v at a' != a_l, the cell at a_l is unchanged.
    s = fn("s")
    goal = Implies(
        And(Not(Eq(a, c)), Eq(select(s, a), fn("old"))),
        Eq(select(store(s, c, b), a), fn("old")),
    )
    assert proved(goal, SELECT_STORE_AXIOMS)


def test_uniqueness_quantifier_shape():
    # forall P: select(s,P) = V => P = A   (the unique invariant), plus a
    # write of W (W != V) at address D != A, must preserve the property
    # for the new store.
    s, A, V, D, W = fn("s"), fn("A"), fn("V"), fn("D"), fn("W")
    P = TVar("P")
    old_inv = ForAll(
        ("P",),
        Implies(Eq(select(s, P), V), Eq(P, A)),
        triggers=((select(s, P),),),
    )
    s2 = store(s, D, W)
    new_inv = ForAll(
        ("P",),
        Implies(Eq(select(s2, P), V), Eq(P, A)),
    )
    goal = Implies(
        And(old_inv, Not(Eq(D, A)), Not(Eq(W, V))),
        new_inv,
    )
    assert proved(goal, SELECT_STORE_AXIOMS)


def test_uniqueness_shape_fails_when_value_written():
    # Writing V itself at D != A must NOT preserve the property.
    s, A, V, D = fn("s"), fn("A"), fn("V"), fn("D")
    P = TVar("P")
    old_inv = ForAll(
        ("P",),
        Implies(Eq(select(s, P), V), Eq(P, A)),
        triggers=((select(s, P),),),
    )
    s2 = store(s, D, V)
    new_inv = ForAll(("P",), Implies(Eq(select(s2, P), V), Eq(P, A)))
    goal = Implies(And(old_inv, Not(Eq(D, A))), new_inv)
    assert not proved(goal, SELECT_STORE_AXIOMS)


def test_triggers_respected():
    # An axiom whose trigger never matches stays dormant.
    ax = ForAll(
        ("x",),
        Eq(fn("f", x), Int(1)),
        triggers=((fn("never_used", x),),),
    )
    assert not proved(Eq(fn("f", a), Int(1)), [ax])


def test_arith_with_quantifier():
    # forall x. g(x) >= 0, g(a) <= -1 is inconsistent.
    ax = ForAll(("x",), Le(Int(0), fn("g", x)))
    goal = Implies(Le(fn("g", a), Int(-1)), Eq(Int(0), Int(1)))
    assert proved(goal, [ax])
