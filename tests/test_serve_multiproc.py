"""Process-mode ``repro serve``: worker-process sharding, the TCP
transport, cross-request obligation dedup, and crash isolation — plus
the serve/supervisor lifecycle bugfixes that shipped with them
(stale-socket probing, env-knob fallback, mid-stream disconnects)."""

from __future__ import annotations

import asyncio
import copy
import errno
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import api
from repro.cache import fingerprint as _fp
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.parser import parse_qualifiers
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.checker import check_soundness
from repro.core.soundness.obligations import generate_obligations
from repro.core.soundness.workitems import proof_result_to_dict
from repro.harness import supervisor
from repro.serve import connect, protocol
from repro.serve import server as serve_server
from repro.serve.client import ServeError
from repro.serve.dedup import ObligationDedup
from repro.serve.server import ServeServer

THREE_FUNCS = """\
int pos f(int pos x) { return x + 1; }
int g(int y) { return y; }
int h(int w) { return w * 2; }
"""

NN2 = """\
value qualifier nn2(int Expr E)
  case E of
      decl int Const C:
        C, where C >= 0
    | decl int Expr E1, E2:
        E1 + E2, where nn2(E1) && nn2(E2)
  invariant value(E) >= 0
"""


def write_c(tmp_path, name="prog.c", text=THREE_FUNCS):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def _strip_volatile(payload: dict) -> dict:
    out = copy.deepcopy(payload)
    out.pop("elapsed", None)
    out.pop("incremental", None)
    for unit in out.get("units", ()):
        unit.pop("elapsed", None)
        detail = unit.get("detail", {})
        detail.pop("incremental", None)
        if "dataflow" in detail:
            detail["dataflow"]["totals"].pop("ms", None)
            for stats in detail["dataflow"]["functions"].values():
                stats.pop("ms", None)
    meta_dataflow = out.get("dataflow")
    if isinstance(meta_dataflow, dict):
        meta_dataflow.pop("ms", None)
    return out


@pytest.fixture()
def procdaemon(tmp_path):
    """A process-mode daemon (two workers) on a unix socket *and* an
    ephemeral TCP port."""
    sock = str(tmp_path / "serve.sock")
    server = ServeServer(sock, listen=("127.0.0.1", 0), workers=2)

    def run():
        asyncio.run(server.run())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert server.ready.wait(10.0), "daemon never bound"
    yield sock, server
    if not server._shutting_down:
        try:
            with connect(sock) as client:
                client.shutdown()
        except OSError:
            pass
    thread.join(timeout=15)
    assert not thread.is_alive(), "daemon did not stop"


# ----------------------------------------------------------- addresses


def test_parse_address_forms():
    assert protocol.parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert protocol.parse_address(".repro-serve.sock") == (
        "unix",
        ".repro-serve.sock",
    )
    assert protocol.parse_address("name.sock") == ("unix", "name.sock")
    assert protocol.parse_address("tcp://10.0.0.2:4000") == (
        "tcp",
        "10.0.0.2",
        4000,
    )
    assert protocol.parse_address("127.0.0.1:4000") == (
        "tcp",
        "127.0.0.1",
        4000,
    )
    assert protocol.parse_address(":4000") == ("tcp", "127.0.0.1", 4000)
    assert protocol.parse_address("[::1]:4000") == ("tcp", "::1", 4000)
    # the documented ambiguity: relative paths that look like host:port
    # resolve TCP; a leading ./ forces the unix reading
    assert protocol.parse_address("./name:123") == ("unix", "./name:123")
    assert protocol.parse_listen("0.0.0.0:0") == ("0.0.0.0", 0)
    assert protocol.parse_listen("tcp://[::1]:8000") == ("::1", 8000)
    with pytest.raises(ValueError):
        protocol.parse_listen("no-port-here")
    assert protocol.format_address(("::1", 8000)) == "[::1]:8000"
    assert protocol.format_address(("127.0.0.1", 9)) == "127.0.0.1:9"


def test_default_server_address_env(monkeypatch):
    monkeypatch.delenv(protocol.ADDR_ENV, raising=False)
    monkeypatch.delenv("REPRO_SERVE_SOCKET", raising=False)
    assert protocol.default_server_address() is None
    monkeypatch.setenv("REPRO_SERVE_SOCKET", "/tmp/a.sock")
    assert protocol.default_server_address() == "/tmp/a.sock"
    # the address variable wins over the socket variable
    monkeypatch.setenv(protocol.ADDR_ENV, "127.0.0.1:4000")
    assert protocol.default_server_address() == "127.0.0.1:4000"


# ------------------------------------------------- stale-socket probing


class _FakeSocketModule:
    """A socket module whose probe connect fails a scripted way."""

    AF_UNIX = getattr(socket, "AF_UNIX", 1)
    SOCK_STREAM = socket.SOCK_STREAM
    timeout = socket.timeout

    def __init__(self, connect_effect):
        self._effect = connect_effect

    def socket(self, *args, **kwargs):
        effect = self._effect

        class _Probe:
            def settimeout(self, value):
                pass

            def connect(self, path):
                if effect is not None:
                    raise effect

            def close(self):
                pass

        return _Probe()


def _prepare(tmp_path, monkeypatch, effect):
    sock = tmp_path / "stale.sock"
    sock.write_text("")  # stands in for a leftover socket file
    server = ServeServer(str(sock))
    monkeypatch.setattr(
        serve_server, "socket_module", _FakeSocketModule(effect)
    )
    return sock, server


def test_probe_timeout_refuses_to_unlink(tmp_path, monkeypatch):
    """A connect *timeout* means someone is listening (just slow to
    accept) — that must read as address-in-use, never as stale."""
    sock, server = _prepare(tmp_path, monkeypatch, socket.timeout("slow"))
    with pytest.raises(OSError) as err:
        server._prepare_socket_path()
    assert err.value.errno == errno.EADDRINUSE
    assert sock.exists(), "a live daemon's socket was unlinked"


def test_probe_refused_unlinks_stale_socket(tmp_path, monkeypatch):
    sock, server = _prepare(
        tmp_path, monkeypatch, OSError(errno.ECONNREFUSED, "refused")
    )
    server._prepare_socket_path()  # no error: the socket was stale
    assert not sock.exists()


def test_probe_enoent_unlinks_stale_socket(tmp_path, monkeypatch):
    sock, server = _prepare(
        tmp_path, monkeypatch, OSError(errno.ENOENT, "gone")
    )
    server._prepare_socket_path()
    assert not sock.exists()


def test_probe_other_errors_propagate(tmp_path, monkeypatch):
    sock, server = _prepare(
        tmp_path, monkeypatch, OSError(errno.EACCES, "not yours")
    )
    with pytest.raises(OSError) as err:
        server._prepare_socket_path()
    assert err.value.errno == errno.EACCES
    assert sock.exists(), "an unprobeable socket was unlinked"


def test_probe_live_daemon_refuses(tmp_path, monkeypatch):
    sock, server = _prepare(tmp_path, monkeypatch, None)  # connect succeeds
    with pytest.raises(OSError) as err:
        server._prepare_socket_path()
    assert err.value.errno == errno.EADDRINUSE
    assert sock.exists()


# ------------------------------------------------------------ env knobs


def test_env_knob_malformed_falls_back_and_warns_once(monkeypatch, capsys):
    for name in (
        "REPRO_HANG_TIMEOUT",
        "REPRO_HEARTBEAT_INTERVAL",
        "REPRO_MAX_WORKER_DEATHS",
    ):
        supervisor._WARNED_ENV.discard(name)
    monkeypatch.setenv("REPRO_HANG_TIMEOUT", "soon")
    monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.5")
    monkeypatch.setenv("REPRO_MAX_WORKER_DEATHS", "lots")
    config = supervisor.SupervisorConfig.from_env()
    defaults = supervisor.SupervisorConfig()
    # each knob parses independently: the good one applies, the two
    # bad ones fall back to defaults instead of crashing the batch
    assert config.hang_timeout == defaults.hang_timeout
    assert config.heartbeat_interval == 0.5
    assert config.max_worker_deaths == defaults.max_worker_deaths
    err = capsys.readouterr().err
    assert "REPRO_HANG_TIMEOUT" in err
    assert "REPRO_MAX_WORKER_DEATHS" in err
    assert "REPRO_HEARTBEAT_INTERVAL" not in err
    # warned once per process, not once per batch
    supervisor.SupervisorConfig.from_env()
    assert capsys.readouterr().err == ""


def test_env_knob_valid_values_still_apply(monkeypatch):
    monkeypatch.setenv("REPRO_HANG_TIMEOUT", "2.5")
    monkeypatch.setenv("REPRO_MAX_WORKER_DEATHS", "7")
    config = supervisor.SupervisorConfig.from_env()
    assert config.hang_timeout == 2.5
    assert config.max_worker_deaths == 7


def test_env_knob_explicit_env_mapping():
    assert supervisor.env_knob("K", 4, int, env={"K": "9"}) == 9
    assert supervisor.env_knob("K", 4, int, env={}) == 4


# -------------------------------------------------------- dedup (table)


def test_dedup_single_flight_contract():
    table = ObligationDedup()
    key = ("env", "obligation")
    role, ticket = table.acquire(key)
    assert (role, ticket) == ("leader", None)
    role2, ticket2 = table.acquire(key)
    assert role2 == "follower"
    table.publish(key, {"verdict": "PROVED"})
    assert table.wait(ticket2, timeout=1.0) == {"verdict": "PROVED"}
    assert table.counters == {
        "leaders": 1,
        "waits": 1,
        "shared": 1,
        "misses": 0,
    }
    # publish removed the key: the next request leads again (and would
    # hit the proof cache, which now holds the settled verdict)
    assert table.acquire(key)[0] == "leader"


def test_dedup_empty_handed_leader_is_a_miss():
    table = ObligationDedup()
    key = ("env", "obligation")
    table.acquire(key)
    _, ticket = table.acquire(key)
    table.publish(key, None)  # leader had nothing shareable
    assert table.wait(ticket, timeout=1.0) is None
    assert table.counters["misses"] == 1
    assert table.counters["shared"] == 0


def test_dedup_overdue_leader_is_a_miss():
    table = ObligationDedup()
    key = ("env", "obligation")
    table.acquire(key)
    _, ticket = table.acquire(key)
    assert table.wait(ticket, timeout=0.05) is None  # gave up waiting
    assert table.counters["misses"] == 1
    table.publish(key, {"verdict": "PROVED"})  # late publish is harmless


# ------------------------------------------- client: connection-lost


def _stub_daemon(tmp_path, script):
    """A protocol-speaking stub that accepts one connection, reads the
    request line, runs ``script(conn, rid)``, then hangs up."""
    sock_path = str(tmp_path / "stub.sock")
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(sock_path)
    listener.listen(1)

    def run():
        conn, _ = listener.accept()
        try:
            line = conn.makefile("rb").readline()
            rid = json.loads(line).get("id")
            script(conn, rid)
        finally:
            conn.close()
            listener.close()

    threading.Thread(target=run, daemon=True).start()
    return sock_path


def test_connection_lost_before_any_stream_line(tmp_path):
    sock = _stub_daemon(tmp_path, lambda conn, rid: None)  # just hang up
    with connect(sock) as client:
        with pytest.raises(ServeError) as err:
            client.request(
                "check", {"files": ["x.c"]}, on_unit=lambda unit: None
            )
    assert err.value.code == protocol.E_CONNECTION_LOST
    assert err.value.mid_stream is False


def test_connection_lost_mid_stream_is_flagged(tmp_path):
    def script(conn, rid):
        conn.sendall(
            protocol.encode(
                {"id": rid, "stream": "unit", "unit": {"verdict": "OK"}}
            )
        )

    sock = _stub_daemon(tmp_path, script)
    units = []
    with connect(sock) as client:
        with pytest.raises(ServeError) as err:
            client.request("check", {"files": ["x.c"]}, on_unit=units.append)
    assert err.value.code == protocol.E_CONNECTION_LOST
    assert err.value.mid_stream is True
    assert units == [{"verdict": "OK"}]


def test_undelivered_stream_lines_do_not_count_as_mid_stream(tmp_path):
    """mid_stream tracks what reached a *callback*: with no callbacks
    registered nothing reached the caller, so a rerun duplicates
    nothing and the fallback stays safe."""

    def script(conn, rid):
        conn.sendall(
            protocol.encode(
                {"id": rid, "stream": "unit", "unit": {"verdict": "OK"}}
            )
        )

    sock = _stub_daemon(tmp_path, script)
    with connect(sock) as client:
        with pytest.raises(ServeError) as err:
            client.request("check", {"files": ["x.c"]})
    assert err.value.mid_stream is False


def test_connection_dropped_mid_line(tmp_path):
    def script(conn, rid):
        payload = protocol.encode({"id": rid, "done": True, "report": {}})
        conn.sendall(payload[: len(payload) // 2])  # die mid-write

    sock = _stub_daemon(tmp_path, script)
    with connect(sock) as client:
        with pytest.raises(ServeError) as err:
            client.request("check", {"files": ["x.c"]})
    assert err.value.code == protocol.E_CONNECTION_LOST


# ----------------------------------------------------- client: via CLI


def _cli(args, cwd, env=None):
    full_env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
    if env:
        full_env.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=full_env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_cli_falls_back_when_connection_lost_before_output(tmp_path):
    path = write_c(tmp_path, text="int f(int x) { return x; }\n")
    sock = _stub_daemon(tmp_path, lambda conn, rid: None)
    result = _cli(
        ["check", path, "--server", sock, "--format", "json"], cwd=tmp_path
    )
    assert result.returncode == 0
    assert "running in-process" in result.stderr
    payload = json.loads(result.stdout)
    assert payload["schema_version"] == api.SCHEMA_VERSION


def test_cli_exits_3_when_connection_lost_mid_stream(tmp_path):
    """Once output has streamed, a silent in-process rerun would print
    every unit twice — the CLI must fail cleanly instead."""
    path = write_c(tmp_path, text="int f(int x) { return x; }\n")

    def script(conn, rid):
        conn.sendall(
            protocol.encode(
                {
                    "id": rid,
                    "stream": "unit",
                    "unit": {"unit": path, "verdict": "OK"},
                }
            )
        )

    sock = _stub_daemon(tmp_path, script)
    result = _cli(
        ["check", path, "--server", sock, "--format", "jsonl"], cwd=tmp_path
    )
    assert result.returncode == 3
    assert "connection-lost" in result.stderr
    assert "running in-process" not in result.stderr
    lines = [l for l in result.stdout.splitlines() if l.strip()]
    assert len(lines) == 1  # the one streamed record, nothing duplicated
    assert json.loads(lines[0])["record"] == "unit"


# --------------------------------------------------- process-mode daemon


def test_tcp_and_unix_transports_serve_identical_reports(
    procdaemon, tmp_path
):
    sock, server = procdaemon
    path = write_c(tmp_path)
    with connect(sock) as client:
        unix_report = client.request("check", {"files": [path]})["report"]
    addr = protocol.format_address(server.tcp_address)
    with connect(addr) as client:
        tcp_report = client.request("check", {"files": [path]})["report"]
        status = client.status()
    assert _strip_volatile(tcp_report) == _strip_volatile(unix_report)
    one_shot = api.Session().check(api.CheckRequest(files=(path,))).to_dict()
    assert _strip_volatile(tcp_report) == _strip_volatile(one_shot)
    # process-mode status reports both endpoints and the worker block
    assert status["workers"] == 2
    assert status["listen"] == addr
    assert status["socket"] == sock
    worker = status["workspaces"][0]["worker"]
    assert worker["alive"] is True
    assert isinstance(worker["pid"], int) and worker["pid"] != os.getpid()
    assert set(status["dedup"]) == {"leaders", "waits", "shared", "misses"}


def test_worker_crash_mid_request_poisons_only_its_workspace(
    procdaemon, tmp_path
):
    """Kill a worker while its request is provably in flight (parked
    as a dedup follower on a key the test leads): the request answers
    ``worker-crashed``, other workspaces keep serving, and the next
    request on the poisoned configuration respawns transparently."""
    sock, server = procdaemon
    small = write_c(tmp_path, "small.c", "int f(int x) { return x; }\n")
    other = write_c(tmp_path, "other.c", "int g(int y) { return y; }\n")
    qual = tmp_path / "nn2.qual"
    qual.write_text(NN2)
    keys, _ = _dedup_keys_and_payloads(NN2)
    with connect(sock) as client:
        client.request("check", {"files": [small]})
        status = client.status()
    pid = status["workspaces"][0]["worker"]["pid"]
    assert status["workspaces"][0]["worker"]["alive"]

    # lead the prove's first obligation so the worker's request blocks
    # mid-flight, waiting on the test's publish
    assert server.dedup.acquire(keys[0])[0] == "leader"
    outcome = {}

    def prove():
        with connect(sock) as client:
            try:
                outcome["report"] = client.request(
                    "prove", {"files": [str(qual)], "cache": False}
                )["report"]
            except ServeError as exc:
                outcome["error"] = exc

    thread = threading.Thread(target=prove, daemon=True)
    thread.start()
    try:
        deadline = time.monotonic() + 30.0
        while server.dedup.counters["waits"] < 1:
            assert time.monotonic() < deadline, "prove never reached dedup"
            time.sleep(0.01)
        os.kill(pid, signal.SIGKILL)
        time.sleep(0.3)  # let the kill land before waking the pump

        # the other configuration's workspace keeps serving throughout
        with connect(sock) as client:
            unaffected = client.request(
                "check", {"files": [other], "trust_constants": True}
            )["report"]
        assert unaffected["units"][0]["verdict"] in ("OK", "WARN")
    finally:
        # wake the parked request; its reply hits the dead pipe
        server.dedup.publish(keys[0], None)

    thread.join(timeout=60)
    assert not thread.is_alive()
    assert "error" in outcome, (
        "the killed worker's request should have failed "
        f"(got report: {outcome.get('report', {}).get('exit_code')!r})"
    )
    assert outcome["error"].code == protocol.E_WORKER_CRASH

    # the poisoned workspace respawns transparently on the next request
    with connect(sock) as client:
        again = client.request("check", {"files": [small]})["report"]
        status2 = client.status()
    assert again["schema_version"] == api.SCHEMA_VERSION
    assert server.counters["workers_crashed"] == 1
    assert server.counters["workers_spawned"] >= 3
    pids = [
        ws["worker"]["pid"]
        for ws in status2["workspaces"]
        if ws["worker"]["alive"]
    ]
    assert pid not in pids


def test_idle_worker_death_respawns_invisibly(procdaemon, tmp_path):
    sock, server = procdaemon
    path = write_c(tmp_path)
    with connect(sock) as client:
        first = client.request("check", {"files": [path]})["report"]
        pid = client.status()["workspaces"][0]["worker"]["pid"]
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while any(
        host.pid == pid and host.alive for host in server._hosts.values()
    ):
        assert time.monotonic() < deadline, "kill never registered"
        time.sleep(0.02)
    # no error surfaces: the idle corpse is detected and replaced
    with connect(sock) as client:
        second = client.request("check", {"files": [path]})["report"]
    assert [u["verdict"] for u in second["units"]] == [
        u["verdict"] for u in first["units"]
    ]
    assert server.counters["workers_crashed"] == 1


def _dedup_keys_and_payloads(qual_text):
    """The exact dedup keys a prove of ``qual_text`` acquires, in
    discharge order, with shareable payloads from a one-shot run."""
    quals = QualifierSet(list(parse_qualifiers(qual_text)))
    (qdef,) = list(quals)
    env = _fp.environment_key(
        list(semantics_axioms()), context=qdef.source
    )
    obligations = [
        ob
        for ob in generate_obligations(qdef, quals)
        if not ob.trivial and ob.goal is not None
    ]
    keys = [(env, _fp.obligation_key(ob.goal)) for ob in obligations]
    report = check_soundness(qdef, quals, cache=None)
    payloads = {}
    for entry in report.results:
        ob = entry.obligation
        if ob.trivial or ob.goal is None:
            continue
        if entry.result is not None and entry.result.verdict in (
            "PROVED",
            "REFUTED",
        ):
            payloads[(env, _fp.obligation_key(ob.goal))] = (
                proof_result_to_dict(entry.result)
            )
    return keys, [payloads.get(key) for key in keys]


def test_dedup_single_flight_spans_worker_processes(procdaemon, tmp_path):
    """A prove whose obligations are already led by another request
    waits (follower), then reuses the published payloads — across the
    process boundary, through the pipe-backed proxy."""
    sock, server = procdaemon
    qual = tmp_path / "nn2.qual"
    qual.write_text(NN2)
    keys, payloads = _dedup_keys_and_payloads(NN2)
    assert keys, "nn2 should yield non-trivial obligations"
    assert all(payloads), "one-shot run should settle every obligation"

    # the test plays the concurrent leader for every obligation
    for key in keys:
        role, _ = server.dedup.acquire(key)
        assert role == "leader"
    baseline_waits = server.dedup.counters["waits"]

    outcome = {}

    def prove():
        with connect(sock) as client:
            outcome["report"] = client.request(
                "prove", {"files": [str(qual)], "cache": False}
            )["report"]

    thread = threading.Thread(target=prove, daemon=True)
    thread.start()
    try:
        # obligations discharge serially in generation order, so the
        # follower blocks on one key at a time: publish each as the
        # waits counter shows it arrive
        for i, (key, payload) in enumerate(zip(keys, payloads)):
            deadline = time.monotonic() + 60.0
            while server.dedup.counters["waits"] < baseline_waits + i + 1:
                assert (
                    time.monotonic() < deadline
                ), f"prove never waited on obligation {i}"
                time.sleep(0.01)
            server.dedup.publish(key, payload)
    finally:
        for key in keys:  # unstick followers if an assertion fired
            server.dedup.publish(key, None)
    thread.join(timeout=120)
    assert not thread.is_alive()

    counters = server.dedup.counters
    assert counters["waits"] == baseline_waits + len(keys)
    assert counters["shared"] == len(keys)
    assert counters["misses"] == 0
    qualifiers = outcome["report"]["units"][0]["detail"]["qualifiers"]
    assert [q["sound"] for q in qualifiers] == [True]


def test_eviction_skips_busy_workspace(tmp_path):
    """With the cap at one workspace, a second configuration arriving
    while the first is mid-request must not close the busy workspace —
    the store transiently exceeds the cap, then settles back."""
    sock = str(tmp_path / "serve.sock")
    server = ServeServer(sock, workers=2)
    server.max_workspaces = 1
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run()), daemon=True
    )
    thread.start()
    assert server.ready.wait(10.0), "daemon never bound"
    try:
        small = write_c(tmp_path, "small.c", "int f(int x) { return x; }\n")
        qual = tmp_path / "nn2.qual"
        qual.write_text(NN2)
        keys, payloads = _dedup_keys_and_payloads(NN2)
        # lead the prove's first obligation: the first configuration's
        # request parks mid-flight, provably busy, until we publish
        assert server.dedup.acquire(keys[0])[0] == "leader"
        outcome = {}

        def long_prove():
            with connect(sock) as client:
                outcome["report"] = client.request(
                    "prove", {"files": [str(qual)], "cache": False}
                )["report"]

        busy = threading.Thread(target=long_prove, daemon=True)
        busy.start()
        try:
            wait_until = time.monotonic() + 30.0
            while server.dedup.counters["waits"] < 1:
                assert (
                    time.monotonic() < wait_until
                ), "long prove never started"
                time.sleep(0.01)
            # a second configuration lands while the first is busy
            with connect(sock) as client:
                other = client.request(
                    "check", {"files": [small], "trust_constants": True}
                )["report"]
            assert other["units"][0]["verdict"] in ("OK", "WARN")
        finally:
            server.dedup.publish(keys[0], payloads[0])
        busy.join(timeout=120)
        assert not busy.is_alive()
        assert outcome["report"]["schema_version"] == api.SCHEMA_VERSION
        assert outcome["report"]["exit_code"] == 0
        # one more request settles the store back under the cap
        with connect(sock) as client:
            client.request(
                "check", {"files": [small], "trust_constants": True}
            )
        assert len(server._hosts) == 1
        assert server.counters["evictions"] >= 1
    finally:
        try:
            with connect(sock) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(timeout=15)
    assert not thread.is_alive()
