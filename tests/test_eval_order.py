"""Regression tests pinning the evaluation order contract between the
interpreter and the instrumenter (docs/architecture.md, "Pinned
evaluation order").

The contract under test: a native run (interpreter-enforced casts) and
an instrumented run (inserted ``__check_*`` calls only) of the same
program observe side effects in the same order and trip the same
qualifier first.  Before the order was pinned, an assignment evaluated
its right-hand side before resolving the l-value in one world and
after in the other, and nested casts were checked outer-first by the
instrumenter while the interpreter produced the inner value first.
"""

import pytest

from repro.cfront.parser import parse_c
from repro.cil import ir
from repro.cil.lower import lower_unit
from repro.core.checker.instrument import instrument_program
from repro.core.qualifiers.library import standard_qualifiers
from repro.semantics.csem import CInterpreter, QualifierViolation

QUALS = standard_qualifiers()


def _program(src: str) -> ir.Program:
    unit = parse_c(src, qualifier_names=QUALS.names)
    assert not unit.errors, [str(e) for e in unit.errors]
    return lower_unit(unit)


def _outcome(interp: CInterpreter):
    """(exit-or-violated-qualifier, printf output) of one run."""
    try:
        value = interp.run("main", [])
        return ("exit", value), "".join(interp.output)
    except QualifierViolation as exc:
        return ("violation", exc.qualifier), "".join(interp.output)


def both_runs(src: str):
    """Native outcome and instrumented outcome of the same source."""
    program = _program(src)
    native = _outcome(CInterpreter(program, quals=QUALS))
    instrumented_prog = instrument_program(
        _program(src), QUALS, flow_sensitive=True
    )
    instrumented = _outcome(
        CInterpreter(instrumented_prog, quals=QUALS, native_checks=False)
    )
    return native, instrumented


SIDE_EFFECT_HEADER = """
int t = 0;
int tick(int k) { t = t * 10 + k; return k; }
"""


# ------------------------------------------------- call-argument order


def test_call_arguments_left_to_right():
    src = SIDE_EFFECT_HEADER + """
    int use3(int a, int b, int c) { return a + b + c; }
    int main() {
      int v = use3(tick(1), tick(2), tick(3));
      printf("%d\\n", t);
      return v;
    }
    """
    native, instrumented = both_runs(src)
    assert native == instrumented
    assert native[1] == "123\n"  # left to right, pinned


def test_failing_cast_in_argument_sees_earlier_effects():
    # tick(1) runs before the failing cast of the second argument:
    # both worlds must agree the effect of the first argument landed.
    src = SIDE_EFFECT_HEADER + """
    int use2(int pos a, int pos b) { return a + b; }
    int main() {
      int v = use2((int pos)tick(1), (int pos)(tick(2) - 9));
      printf("%d\\n", t);
      return v;
    }
    """
    native, instrumented = both_runs(src)
    assert native == instrumented
    assert native[0] == ("violation", "pos")


# -------------------------------------------------- assignment order


def test_lvalue_address_before_rhs():
    # *p = e resolves p before evaluating e; a failing cast inside e
    # must trip identically in both worlds, after the address resolve.
    src = """
    int main() {
      int x = 5;
      int* p = &x;
      *p = (int pos)(0 - 3);
      return x;
    }
    """
    native, instrumented = both_runs(src)
    assert native == instrumented
    assert native[0] == ("violation", "pos")


# ------------------------------------------------------- nested casts


def test_nested_casts_checked_inner_first():
    # (int pos)((int neg)(5)): inner neg check fires first in the
    # interpreter (the value is produced inner-first); instrumentation
    # must agree, not report the outer qualifier.
    src = """
    int main() {
      int v = (int pos)((int neg)(5) + 10);
      return v;
    }
    """
    native, instrumented = both_runs(src)
    assert native == instrumented
    assert native[0] == ("violation", "neg")


def test_nested_casts_passing_then_failing_outer():
    src = """
    int main() {
      int v = (int neg)((int neg)(0 - 5) + 100);
      return v;
    }
    """
    native, instrumented = both_runs(src)
    assert native == instrumented
    assert native[0] == ("violation", "neg")


# --------------------------------------------- subexprs_postorder unit


def test_subexprs_postorder_is_evaluation_order():
    src = "int f(int a, int b) { return (a + b) * (0 - b); }"
    program = _program(src)
    func = program.function("f")
    exprs = []
    for block in [func.body]:
        for stmt in block:
            if isinstance(stmt, ir.Return) and stmt.expr is not None:
                exprs = list(ir.subexprs_postorder(stmt.expr))
    assert exprs, "return expression not found"
    rendered = [str(e) for e in exprs]
    # children strictly precede parents; left subtree fully precedes
    # the right subtree of the same parent
    root = rendered[-1]
    assert "*" in root
    assert rendered.index("a") < rendered.index("b")
    for child in rendered[:-1]:
        assert rendered.index(child) < len(rendered) - 1
