"""Prover deadline discipline and the retry policy.

The acceptance bar: a hard obligation with ``time_limit=0.01`` must
come back ``TIMEOUT`` within ~10x the limit — the deadline fires
*inside* an E-matching instantiation round, not just between rounds.
"""

import time

import pytest

from repro.harness.watchdog import Deadline, RetryPolicy
from repro.prover.prover import (
    GAVE_UP,
    PROVED,
    REFUTED,
    TIMEOUT,
    Prover,
    prove_valid,
)
from repro.prover.terms import And, Eq, ForAll, Implies, Int, Lt, Pr, TVar, fn


def _explosive_axioms(n=80):
    """Axioms whose first instantiation round is combinatorial: a
    3-variable multi-pattern trigger over ``n`` ground facts yields an
    O(n^3) E-matching pass (~several seconds unguarded)."""
    axioms = [Pr("P", (fn(f"c{i}"),)) for i in range(n)]
    x, y, z = TVar("x"), TVar("y"), TVar("z")
    trigger = ((fn("@p_P", x), fn("@p_P", y), fn("@p_P", z)),)
    body = Implies(
        And(Pr("P", (x,)), Pr("P", (y,)), Pr("P", (z,))),
        Eq(fn("h", x, y), fn("h", y, z)),
    )
    axioms.append(ForAll(("x", "y", "z"), body, trigger))
    return axioms


class TestDeadlineInsideInstantiation:
    def test_hard_obligation_times_out_within_10x_limit(self):
        prover = Prover(time_limit=0.01)
        prover.add_axioms(_explosive_axioms())
        start = time.perf_counter()
        result = prover.prove(Pr("Q", (fn("c0"),)))
        elapsed = time.perf_counter() - start
        assert result.verdict == TIMEOUT
        assert not result.proved
        assert result.reason == "time limit"
        # ~10x the 10 ms limit, with headroom for slow CI machines.
        assert elapsed < 0.25

    def test_generous_limit_does_not_time_out(self):
        result = prove_valid(
            Eq(fn("f", fn("c")), fn("c")),
            axioms=[ForAll(("x",), Eq(fn("f", TVar("x")), TVar("x")))],
            time_limit=30.0,
        )
        assert result.verdict == PROVED

    def test_external_deadline_caps_the_time_limit(self):
        prover = Prover(time_limit=60.0)
        prover.add_axioms(_explosive_axioms())
        start = time.perf_counter()
        result = prover.prove(
            Pr("Q", (fn("c0"),)), deadline=Deadline.after(0.01)
        )
        assert result.verdict == TIMEOUT
        assert time.perf_counter() - start < 0.25


class TestVerdictTaxonomy:
    def test_proved(self):
        result = prove_valid(Lt(Int(0), Int(1)))
        assert result.verdict == PROVED and result.proved

    def test_refuted_on_saturation_with_countermodel(self):
        # 0 < x is not valid; instantiation saturates immediately.
        result = prove_valid(Lt(Int(0), fn("x")))
        assert result.verdict == REFUTED
        assert not result.proved

    def test_gave_up_on_round_limit(self):
        # Proving f(c) = h(c) needs two chained instantiation rounds;
        # max_rounds=1 exhausts the budget first.
        x = TVar("x")
        axioms = [
            ForAll(("x",), Eq(fn("f", x), fn("g", x))),
            ForAll(("x",), Eq(fn("g", x), fn("h", x))),
        ]
        result = prove_valid(
            Eq(fn("f", fn("c")), fn("h", fn("c"))),
            axioms=axioms,
            max_rounds=0,
        )
        assert result.verdict == GAVE_UP
        assert not result.proved


class TestRetryPolicy:
    def _chained_goal_prover(self, max_rounds):
        """Needs 2 instantiation rounds: round 1 rewrites f(c)->g(c),
        round 2 (over the new g(c) term) rewrites g(c)->c0."""
        x = TVar("x")
        prover = Prover(max_rounds=max_rounds, time_limit=30.0)
        prover.add_axioms(
            [
                ForAll(("x",), Eq(fn("f", x), fn("g", x))),
                ForAll(("x",), Eq(fn("g", x), fn("c0"))),
            ]
        )
        return prover, Eq(fn("f", fn("c")), fn("c0"))

    def test_escalating_budget_turns_gave_up_into_proved(self):
        prover, goal = self._chained_goal_prover(max_rounds=1)
        first = prover.prove(goal)
        assert first.verdict == GAVE_UP  # budget too small on its own
        retried = prover.prove_with_retry(
            goal, retry=RetryPolicy(max_attempts=3, backoff=0.001)
        )
        assert retried.verdict == PROVED
        assert retried.attempts >= 2

    def test_no_retry_when_first_attempt_settles(self):
        prover, goal = self._chained_goal_prover(max_rounds=6)
        result = prover.prove_with_retry(
            goal, retry=RetryPolicy(max_attempts=5, backoff=0.001)
        )
        assert result.verdict == PROVED
        assert result.attempts == 1

    def test_timeout_is_not_retried(self):
        prover = Prover(time_limit=0.01)
        prover.add_axioms(_explosive_axioms())
        start = time.perf_counter()
        result = prover.prove_with_retry(
            Pr("Q", (fn("c0"),)),
            retry=RetryPolicy(max_attempts=5, backoff=0.05),
        )
        assert result.verdict == TIMEOUT
        assert result.attempts == 1
        assert time.perf_counter() - start < 0.5

    def test_persistent_gave_up_reports_attempt_count(self):
        x = TVar("x")
        # Unprovable goal that never saturates: each round grows the
        # term pool (f(c), f(f(c)), ...) so the round limit always hits.
        prover = Prover(max_rounds=0, max_conflicts=10, time_limit=5.0)
        prover.add_axioms(
            [ForAll(("x",), Implies(Pr("P", (x,)), Pr("P", (fn("f", x),)))),
             Pr("P", (fn("c"),))]
        )
        result = prover.prove_with_retry(
            Pr("Q", (fn("c"),)),
            retry=RetryPolicy(max_attempts=2, backoff=0.001, budget_factor=1.0),
        )
        assert result.verdict in (GAVE_UP, REFUTED)
        if result.verdict == GAVE_UP:
            assert result.attempts == 2
