"""Chaos suite: every injected failure mode must end in a complete,
correctly-coded report.

Each test drives the real CLI over ``examples/`` with a seeded,
deterministic fault plan (see ``repro.faults``) and asserts the
acceptance contract: unaffected units keep their correct verdicts,
poison units are quarantined as ``GAVE_UP`` with a ``Q007``
diagnostic, the JSONL stream contains every unit exactly once plus a
valid final summary record, and the exit code follows the documented
taxonomy.  A no-fault streaming run must be verdict-identical to the
pre-refactor golden snapshots.
"""

import glob
import json
import os

import pytest

from repro import faults
from repro.cli import main

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
EXAMPLES = sorted(glob.glob(os.path.join(REPO, "examples", "*.c")))
QUALS = sorted(glob.glob(os.path.join(REPO, "examples", "*.qual")))


@pytest.fixture(autouse=True)
def fast_liveness(monkeypatch):
    """Make hang detection fast and fault state clean for every test."""
    monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.05")
    monkeypatch.setenv("REPRO_HANG_TIMEOUT", "0.5")
    faults.deactivate()
    yield
    faults.deactivate()


def run_jsonl(argv, capsys):
    """Run the CLI, parse its stdout as a JSONL stream, and validate
    the stream invariants: unit records first (each unit exactly once),
    one summary record last."""
    code = main(argv)
    out = capsys.readouterr().out
    records = [json.loads(line) for line in out.strip().splitlines()]
    assert records, "stream must not be empty"
    summary = records[-1]
    units = records[:-1]
    assert summary["record"] == "summary"
    assert all(r["record"] == "unit" for r in units)
    assert all(r["schema_version"] == 1 for r in records)
    names = [r["unit"] for r in units]
    assert len(names) == len(set(names)), "every unit exactly once"
    assert summary["exit_code"] == code
    assert sum(summary["counts"].values()) == len(units)
    return code, units, summary


def pick_seed(units, site, rate, attempts=(2, 3), want=1, span=500):
    """The first seed whose schedule kills exactly ``want`` unit(s) on
    attempt 1 and spares every retry — found by replaying the same
    deterministic rolls the workers will make."""
    for seed in range(span):
        plan = faults.FaultPlan(seed=seed, rates={site: rate})
        first = [u for u in units if plan.decide(site, f"{u}#1")]
        retries_clean = not any(
            plan.decide(site, f"{u}#{a}") for u in first for a in attempts
        )
        if len(first) == want and retries_clean:
            return seed
    raise AssertionError(f"no such seed in range({span})")


class TestWorkerCrashChaos:
    def test_poison_units_quarantined_with_diagnostics(self, capsys):
        code, units, summary = run_jsonl(
            [
                "check", *EXAMPLES, "--keep-going", "--jobs", "2",
                "--format", "jsonl", "--inject-faults", "seed=0,kill=1",
            ],
            capsys,
        )
        assert code == 2
        assert len(units) == len(EXAMPLES)
        for record in units:
            assert record["verdict"] == "GAVE_UP"
            assert any(d["code"] == "Q007" for d in record["diagnostics"])
        assert summary["counts"] == {"GAVE_UP": len(EXAMPLES)}
        assert summary["supervisor"]["quarantined"] == len(EXAMPLES)

    def test_transient_crash_recovers_with_correct_verdicts(self, capsys):
        seed = pick_seed(EXAMPLES, "kill", 0.4)
        code, units, summary = run_jsonl(
            [
                "check", *EXAMPLES, "--keep-going", "--jobs", "2",
                "--format", "jsonl",
                "--inject-faults", f"seed={seed},kill=0.4",
            ],
            capsys,
        )
        assert code == 0
        assert {r["unit"] for r in units} == set(EXAMPLES)
        assert all(r["verdict"] == "OK" for r in units)
        assert summary["supervisor"]["deaths"] >= 1
        assert summary["supervisor"]["quarantined"] == 0
        # Exactly one unit needed a second attempt.
        assert [r.get("attempts") for r in units].count(2) == 1


class TestWorkerHangChaos:
    def test_hung_worker_detected_and_run_completes(self, capsys):
        seed = pick_seed(EXAMPLES, "stall", 0.4)
        code, units, summary = run_jsonl(
            [
                "check", *EXAMPLES, "--keep-going", "--jobs", "2",
                "--format", "jsonl",
                "--inject-faults", f"seed={seed},stall=0.4,stall_s=30",
            ],
            capsys,
        )
        assert code == 0
        assert all(r["verdict"] == "OK" for r in units)
        assert summary["supervisor"]["hangs"] == 1
        assert summary["supervisor"]["deaths"] == 1


class TestPipeDropChaos:
    def test_dropped_pipes_quarantine_not_crash(self, capsys):
        code, units, summary = run_jsonl(
            [
                "check", *EXAMPLES, "--keep-going", "--jobs", "2",
                "--format", "jsonl",
                "--inject-faults", "seed=0,drop_pipe=1",
            ],
            capsys,
        )
        assert code == 2
        assert all(r["verdict"] == "GAVE_UP" for r in units)
        assert "CRASH" not in summary["counts"]


class TestCacheCorruptionChaos:
    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        # Warm the cache fault-free.
        warm = main(
            ["prove", *QUALS, "--keep-going", "--cache-dir", cache_dir,
             "--format", "json"]
        )
        warm_payload = json.loads(capsys.readouterr().out)
        assert warm == 0
        assert warm_payload["cache"]["stores"] >= 1
        # Re-prove with the sqlite file garbled at open time.
        code, units, summary = run_jsonl(
            [
                "prove", *QUALS, "--keep-going", "--cache-dir", cache_dir,
                "--format", "jsonl",
                "--inject-faults", "seed=0,corrupt_cache=1",
            ],
            capsys,
        )
        assert code == 0  # corruption never changes a verdict
        assert all(r["verdict"] == "OK" for r in units)
        assert summary["cache"]["degraded"] >= 1
        assert summary["cache"]["hits"] == 0  # the warm state was lost


class TestSlowProverChaos:
    def test_inflated_prover_deadline_times_out_cleanly(self, capsys):
        code, units, summary = run_jsonl(
            [
                "prove", QUALS[0], QUALS[-1], "--keep-going", "--no-cache",
                "--unit-timeout", "1.5", "--jobs", "2", "--format", "jsonl",
                "--inject-faults", "seed=0,slow_prover=1,slow_prover_s=30",
            ],
            capsys,
        )
        # Every obligation stalls for 30 s against a 1.5 s unit budget:
        # the units must be preemptively killed as clean TIMEOUTs
        # (severity 2), never retried, never CRASH.
        assert code == 2
        assert all(r["verdict"] == "TIMEOUT" for r in units)
        assert "CRASH" not in summary["counts"]
        assert "supervisor" not in summary  # timeouts are not deaths

    def test_brief_stall_changes_nothing(self, capsys):
        code, units, summary = run_jsonl(
            [
                "prove", QUALS[0], "--no-cache", "--format", "jsonl",
                "--inject-faults", "seed=0,slow_prover=1,slow_prover_s=0.05",
            ],
            capsys,
        )
        assert code == 0
        assert all(r["verdict"] == "OK" for r in units)


class TestNoFaultStreaming:
    def test_jsonl_verdicts_match_json_report(self, capsys):
        argv = ["check", *EXAMPLES, "--keep-going", "--jobs", "2"]
        json_code = main([*argv, "--format", "json"])
        json_payload = json.loads(capsys.readouterr().out)
        jsonl_code, units, summary = run_jsonl(
            [*argv, "--format", "jsonl"], capsys
        )
        assert jsonl_code == json_code
        assert {u["unit"]: u["verdict"] for u in units} == {
            u["unit"]: u["verdict"] for u in json_payload["units"]
        }
        assert summary["counts"] == json_payload["counts"]
        assert "supervisor" not in summary  # no faults, no meta noise

    def test_streaming_run_matches_golden_snapshot(self, capsys):
        """The acceptance bar: a no-faults streaming run is
        verdict-identical to the pre-refactor golden payload."""
        with open(os.path.join(HERE, "golden", "check.json")) as handle:
            golden_unit = json.load(handle)["units"][0]
        code, units, _ = run_jsonl(
            [
                "check", os.path.join(REPO, "examples", "nonnull.c"),
                "--flow-sensitive", "--format", "jsonl",
            ],
            capsys,
        )
        (record,) = units
        assert code == 0
        assert record["verdict"] == golden_unit["verdict"]
        assert record["diagnostics"] == golden_unit["diagnostics"]
        assert record["error"] == golden_unit["error"]
        assert (
            record["detail"]["warnings"] == golden_unit["detail"]["warnings"]
        )


class TestDifftestUnderChaos:
    def test_difftest_survives_one_worker_crash(self, tmp_path, capsys):
        cases = [f"case-{i:05d}" for i in range(6)]
        seed = pick_seed(cases, "kill", 0.2)
        code, units, summary = run_jsonl(
            [
                "difftest", "--count", "6", "--seed", "0",
                "--jobs", "2", "--keep-going",
                "--out-dir", str(tmp_path / "artifacts"),
                "--format", "jsonl",
                "--inject-faults", f"seed={seed},kill=0.2",
            ],
            capsys,
        )
        assert code == 0  # the oracle corpus at seed 0 has no findings
        assert {r["unit"] for r in units} == set(cases)
        assert all(r["verdict"] == "OK" for r in units)
        assert summary["supervisor"]["deaths"] == 1
        assert summary["supervisor"]["quarantined"] == 0
