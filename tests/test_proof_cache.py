"""The content-addressed proof cache: keys, tiers, invalidation.

Covers the contract promised in docs/caching.md:

* same obligation + same environment → hit (memory and disk tiers);
* different goal / axioms / definition text / salt → different key;
* same obligation under a *changed* environment → stale: detected,
  purged, counted, never replayed;
* only settled verdicts (PROVED/REFUTED) are ever stored — TIMEOUT and
  GAVE_UP are budget artifacts and must be re-attempted;
* a corrupted store degrades to a cold run, never to a crash.
"""

import sqlite3

import pytest

from repro.cache import (
    CACHEABLE_VERDICTS,
    ProofCache,
    ProofKey,
    canonical_formula,
    obligation_key,
    proof_key,
)
from repro.core.qualifiers.parser import parse_qualifiers
from repro.core.soundness.checker import check_soundness
from repro.prover.prover import Prover
from repro.prover.terms import Implies, Lt, TApp, TInt

A = TApp("a")
#: a < 0  ⇒  a < 5 — valid, settles as PROVED in microseconds.
EASY = Implies(Lt(A, TInt(0)), Lt(A, TInt(5)))
#: a < 0 alone — invalid, settles as REFUTED (stable countermodel).
FALSE = Lt(A, TInt(0))
#: a < 5  ⇒  a < 0 — also invalid; a second distinct obligation.
OTHER = Implies(Lt(A, TInt(5)), Lt(A, TInt(0)))

PROVED_PAYLOAD = {"proved": True, "verdict": "PROVED", "reason": ""}


QUAL = """
value qualifier tagged(int Expr E)
  case E of
    decl int Const C:
      C, where C > 0
  invariant value(E) > 0
"""

#: Equivalent invariant, different text and formula: even an unchanged
#: rule must not replay verdicts proved under the old definition.
QUAL_EDITED = QUAL.replace("value(E) > 0", "value(E) >= 1")


def parse_one(text):
    (qdef,) = parse_qualifiers(text)
    return qdef


# ------------------------------------------------------------- fingerprints


class TestFingerprint:
    def test_key_is_deterministic(self):
        assert proof_key(EASY, [FALSE]) == proof_key(EASY, [FALSE])

    def test_goal_changes_obligation_key(self):
        base = proof_key(EASY, [])
        assert proof_key(FALSE, []).obligation != base.obligation

    def test_extra_axioms_change_obligation_key(self):
        assert obligation_key(EASY) != obligation_key(EASY, [FALSE])

    def test_axioms_change_environment_key_only(self):
        base = proof_key(EASY, [])
        with_ax = proof_key(EASY, [OTHER])
        assert with_ax.obligation == base.obligation
        assert with_ax.environment != base.environment

    def test_context_and_salt_change_environment_key(self):
        base = proof_key(EASY, [])
        assert proof_key(EASY, [], context="v2").environment != base.environment
        assert (
            proof_key(EASY, [], salt="repro-prover/2").environment
            != base.environment
        )

    def test_canonical_rendering_is_stable_sexpr(self):
        assert canonical_formula(EASY) == "(=> (< (a a) (i 0)) (< (a a) (i 5)))"


# ------------------------------------------------------------------- tiers


class TestStore:
    def test_memory_roundtrip(self):
        cache = ProofCache(cache_dir=None)
        key = cache.key(EASY, [])
        assert cache.get(key) is None
        assert cache.put(key, PROVED_PAYLOAD)
        assert cache.get(key)["verdict"] == "PROVED"
        assert cache.counters["hits"] == 1
        assert cache.counters["misses"] == 1

    def test_disk_persistence_across_instances(self, tmp_path):
        where = str(tmp_path / "cache")
        with ProofCache(cache_dir=where) as cache:
            cache.put(cache.key(EASY, []), PROVED_PAYLOAD)
        with ProofCache(cache_dir=where) as reopened:
            hit = reopened.get(reopened.key(EASY, []))
            assert hit is not None and hit["proved"]
            assert reopened.entry_count() == 1

    def test_unsettled_verdicts_never_stored(self, tmp_path):
        cache = ProofCache(cache_dir=str(tmp_path / "cache"))
        key = cache.key(EASY, [])
        for verdict in ("TIMEOUT", "GAVE_UP", "bogus"):
            assert verdict not in CACHEABLE_VERDICTS
            assert not cache.put(key, {"proved": False, "verdict": verdict})
        assert cache.get(key) is None
        assert cache.entry_count() == 0
        assert cache.counters["stores"] == 0

    def test_lru_eviction_bounds_memory(self):
        cache = ProofCache(cache_dir=None, max_memory_entries=2)
        for goal in (EASY, FALSE, OTHER):
            cache.put(cache.key(goal, []), PROVED_PAYLOAD)
        assert cache.counters["evictions"] == 1
        assert cache.get(cache.key(EASY, [])) is None  # oldest fell out
        assert cache.get(cache.key(OTHER, [])) is not None

    def test_stale_entries_purged_on_environment_change(self, tmp_path):
        cache = ProofCache(cache_dir=str(tmp_path / "cache"))
        old = cache.key(EASY, [], context="defs-v1")
        cache.put(old, PROVED_PAYLOAD)
        new = cache.key(EASY, [], context="defs-v2")
        assert old.obligation == new.obligation
        assert cache.get(new) is None
        assert cache.counters["stale"] == 1
        # The superseded entry is gone from both tiers, for good.
        assert cache.entry_count() == 0
        assert cache.get(old) is None

    def test_corrupted_database_degrades_to_cold_run(self, tmp_path):
        where = tmp_path / "cache"
        where.mkdir()
        (where / "proofs.sqlite").write_bytes(b"this is not a database\0\xff")
        cache = ProofCache(cache_dir=str(where))
        key = cache.key(EASY, [])
        assert cache.get(key) is None  # no crash: cold run, not a crash
        cache.put(key, PROVED_PAYLOAD)
        assert cache.get(key) is not None
        # Corruption is *rebuilt* (damaged file deleted, fresh schema),
        # so the disk tier survives for the rest of the run.
        assert cache.disk_available
        assert cache.entry_count() == 1  # the put above reached disk
        assert cache.counters["errors"] >= 1
        assert cache.counters["degraded"] >= 1

    def test_format_version_mismatch_rebuilds(self, tmp_path):
        where = str(tmp_path / "cache")
        with ProofCache(cache_dir=where) as cache:
            cache.put(cache.key(EASY, []), PROVED_PAYLOAD)
            path = cache.path
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'format'")
        conn.commit()
        conn.close()
        with ProofCache(cache_dir=where) as reopened:
            assert reopened.get(reopened.key(EASY, [])) is None
            assert reopened.disk_available  # rebuilt, not abandoned

    def test_mid_session_corruption_rebuilds_disk_tier(self, tmp_path):
        """Garbling the sqlite file *mid-session* (after entries were
        stored) degrades to a cold-but-live disk tier: the damaged file
        is deleted and rebuilt, verdicts already in the memory tier
        survive, and the degradation is counted."""
        where = str(tmp_path / "cache")
        cache = ProofCache(cache_dir=where)
        cache.put(cache.key(EASY, []), PROVED_PAYLOAD)
        path = cache.path
        size = (tmp_path / "cache" / "proofs.sqlite").stat().st_size
        with open(path, "r+b") as handle:  # garble header + mid-file
            handle.write(b"\xde\xad\xbe\xef" * 4)
            handle.seek(size // 2)
            handle.write(b"\xff\x00" * 32)
        # sqlite's page cache can mask in-place damage on the live
        # handle; the failure surfaces on the next (re)connection —
        # exactly what every post-fork pool worker does.  Drop the
        # cached handle to take that path deterministically.
        cache._conn.close()
        cache._conn = None
        assert cache.get(cache.key(OTHER, [])) is None  # cold, no crash
        assert cache.get(cache.key(EASY, [])) is not None  # memory tier
        assert cache.disk_available  # rebuilt, not abandoned
        assert cache.counters["degraded"] >= 1
        cache.put(cache.key(OTHER, []), PROVED_PAYLOAD)
        assert cache.entry_count() >= 1  # fresh disk tier accepts writes

    def test_second_corruption_bypasses_disk_tier(self, tmp_path):
        """The rebuild budget is one per instance: corruption striking
        again downgrades to bypass (memory-only), never a rebuild loop."""
        where = tmp_path / "cache"
        where.mkdir()
        (where / "proofs.sqlite").write_bytes(b"garbage one")
        cache = ProofCache(cache_dir=str(where))
        assert cache.get(cache.key(EASY, [])) is None
        assert cache.disk_available  # first strike: rebuilt
        (where / "proofs.sqlite").write_bytes(b"garbage two")
        cache._conn.close()
        cache._conn = None
        cache.put(cache.key(EASY, []), PROVED_PAYLOAD)
        assert cache.get(cache.key(EASY, [])) is not None  # memory tier
        assert not cache.disk_available  # second strike: bypassed
        assert cache.counters["degraded"] >= 2

    def test_locked_database_bypasses_not_deletes(self, tmp_path):
        """'database is locked' is an OperationalError: another process
        may hold a healthy file, so triage must bypass, never delete."""
        where = str(tmp_path / "cache")
        with ProofCache(cache_dir=where) as cache:
            cache.put(cache.key(EASY, []), PROVED_PAYLOAD)
            path = cache.path
            cache._disk_failure(sqlite3.OperationalError("database is locked"))
            assert not cache.disk_available
            assert cache.counters["degraded"] == 1
        import os

        assert os.path.exists(path)  # the healthy file was preserved
        with ProofCache(cache_dir=where) as reopened:
            assert reopened.get(reopened.key(EASY, [])) is not None

    def test_degradation_counts_in_obs(self, tmp_path):
        from repro import obs

        where = tmp_path / "cache"
        where.mkdir()
        (where / "proofs.sqlite").write_bytes(b"not a database")
        obs.enable()
        marker = obs.mark()
        try:
            cache = ProofCache(cache_dir=str(where))
            assert cache.get(cache.key(EASY, [])) is None
            counters = obs.since(marker)["counters"]
            assert counters.get("cache.degraded", 0) >= 1
        finally:
            obs.disable()
            obs.reset()

    def test_clear_removes_entries_and_counters(self, tmp_path):
        where = str(tmp_path / "cache")
        with ProofCache(cache_dir=where) as cache:
            cache.put(cache.key(EASY, []), PROVED_PAYLOAD)
            cache.flush_counters()
            assert cache.clear() == 1
            assert cache.entry_count() == 0
            assert cache.lifetime_counters()["stores"] == 0


# ------------------------------------------------------- prover integration


class TestProverIntegration:
    def prover(self):
        return Prover(time_limit=10.0)

    def test_warm_prove_replays_settled_verdicts(self):
        cache = ProofCache(cache_dir=None)
        for goal, verdict in ((EASY, "PROVED"), (FALSE, "REFUTED")):
            cold = self.prover().prove(goal, cache=cache)
            warm = self.prover().prove(goal, cache=cache)
            assert cold.verdict == warm.verdict == verdict
            assert not cold.cached and warm.cached
            assert warm.rounds == cold.rounds
            assert warm.countermodel == cold.countermodel
        assert cache.counters["hits"] == 2

    def test_prove_with_retry_consults_cache_once(self):
        cache = ProofCache(cache_dir=None)
        self.prover().prove_with_retry(EASY, cache=cache)
        before = cache.snapshot()
        result = self.prover().prove_with_retry(EASY, cache=cache)
        assert result.cached
        delta = cache.delta(before)
        assert delta["hits"] == 1 and delta["misses"] == 0

    def test_cache_context_isolates_environments(self):
        cache = ProofCache(cache_dir=None)
        self.prover().prove(EASY, cache=cache, cache_context="one")
        rerun = self.prover().prove(EASY, cache=cache, cache_context="two")
        assert not rerun.cached
        assert cache.counters["stale"] == 1


# ---------------------------------------------- soundness-checker integration


class TestCheckerIntegration:
    def test_second_check_soundness_is_fully_cached(self, tmp_path):
        where = str(tmp_path / "cache")
        qdef = parse_one(QUAL)
        with ProofCache(cache_dir=where) as cache:
            cold = check_soundness(qdef, cache=cache)
        assert cold.sound and cold.cached_count == 0
        with ProofCache(cache_dir=where) as cache:
            warm = check_soundness(qdef, cache=cache)
        assert warm.sound
        nontrivial = [r for r in warm.results if not r.obligation.trivial]
        assert nontrivial and all(r.result.cached for r in nontrivial)
        # The replayed report is verdict-identical to the cold one.
        strip = lambda d: {
            k: [
                {f: o[f] for f in ("rule", "verdict", "proved", "reason")}
                for o in d["obligations"]
            ]
            if k == "obligations"
            else d[k]
            for k in d
            if k != "elapsed"
        }
        assert strip(cold.to_dict()) == strip(warm.to_dict())

    def test_edited_definition_invalidates(self, tmp_path):
        where = str(tmp_path / "cache")
        with ProofCache(cache_dir=where) as cache:
            check_soundness(parse_one(QUAL), cache=cache)
        with ProofCache(cache_dir=where) as cache:
            edited = check_soundness(parse_one(QUAL_EDITED), cache=cache)
            assert edited.cached_count == 0
            # ... and the original, if re-checked, re-proves too (its
            # entries were only purged where obligations collide).
            assert cache.counters["misses"] >= 1

    def test_budget_starved_run_caches_nothing(self, tmp_path):
        where = str(tmp_path / "cache")
        qdef = parse_one(QUAL)
        with ProofCache(cache_dir=where) as cache:
            report = check_soundness(qdef, time_limit=1e-9, cache=cache)
            unsettled = {
                r.verdict for r in report.results if not r.obligation.trivial
            }
            assert unsettled <= {"TIMEOUT", "GAVE_UP"}
            assert cache.entry_count() == 0
        # A later full-budget run starts cold but still settles.
        with ProofCache(cache_dir=where) as cache:
            full = check_soundness(qdef, cache=cache)
            assert full.sound and full.cached_count == 0
