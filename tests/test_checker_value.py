"""Extensible-typechecker tests for value qualifiers.

Uses the paper's running examples: figure 2 (lcm with pos), section
2.1.1/2.1.2 snippets, figure 3 (nonzero / division), and figure 12
(nonnull).
"""

import pytest

from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.library import standard_qualifiers

QUALS = standard_qualifiers()
QUAL_NAMES = {"pos", "neg", "nonzero", "nonnull", "tainted", "untainted",
              "unique", "unaliased"}


def check(src):
    unit = parse_c(src, qualifier_names=QUAL_NAMES)
    program = lower_unit(unit)
    return check_program(program, QUALS)


# ----------------------------------------------------------------- figure 2


FIGURE2 = """
int pos gcd(int pos n, int pos m);

int pos lcm(int pos a, int pos b) {
  int pos d = gcd(a, b);
  int pos prod = a * b;
  return (int pos) (prod / d);
}
"""


def test_figure2_lcm_typechecks_with_cast():
    report = check(FIGURE2)
    assert report.ok, report.summary()
    # The cast inserts exactly one runtime check for pos.
    assert [c.qualifier for c in report.runtime_checks] == ["pos"]


def test_figure2_without_cast_fails():
    src = FIGURE2.replace("(int pos) (prod / d)", "prod / d")
    report = check(src)
    assert not report.ok
    assert report.errors_for("pos")
    assert any(d.kind == "return" for d in report.diagnostics)


def test_product_of_pos_is_pos():
    report = check(
        """
        void f(int pos a, int pos b) {
          int pos p = a * b;
        }
        """
    )
    assert report.ok, report.summary()


def test_sum_of_pos_is_not_pos():
    # pos has no rule for +; the checker must reject.
    report = check(
        """
        void f(int pos a, int pos b) {
          int pos p = a + b;
        }
        """
    )
    assert not report.ok


def test_positive_constant_is_pos():
    report = check("void f() { int pos x = 3; }")
    assert report.ok, report.summary()


def test_nonpositive_constant_rejected():
    report = check("void f() { int pos x = 0; }")
    assert not report.ok


def test_negation_of_neg_is_pos():
    report = check(
        """
        void f(int neg n) {
          int pos p = -n;
        }
        """
    )
    assert report.ok, report.summary()


def test_mutual_recursion_pos_neg():
    # -(-5) requires neg(-5), which requires pos(5).
    report = check("void f() { int pos x = - - 5; }")
    # - -5 lowers to UnOp('-', UnOp('-', 5)); neg(-5) via neg's -E1 rule
    # needs pos(5), true by constant rule.
    assert report.ok, report.summary()


def test_call_result_uses_declared_signature():
    report = check(
        """
        int pos gcd(int pos n, int pos m);
        void f(int pos a) {
          int pos d = gcd(a, a);
          int plain = gcd(a, a);
        }
        """
    )
    assert report.ok, report.summary()


def test_call_argument_requires_qualifier():
    report = check(
        """
        int pos gcd(int pos n, int pos m);
        void f(int x) { int d = gcd(x, 3); }
        """
    )
    assert not report.ok
    assert any(d.kind == "call" for d in report.diagnostics)


# -------------------------------------------------------------- subtyping


def test_value_qualified_is_subtype_of_unqualified():
    report = check(
        """
        void f() {
          int pos x = 3;
          int y = x;
        }
        """
    )
    assert report.ok, report.summary()


def test_no_subtyping_under_pointers():
    # The unsound example from section 2.1.2 must be rejected.
    report = check(
        """
        void f() {
          int pos x = 3;
          int* p = &x;
        }
        """
    )
    assert not report.ok
    assert any("nested qualifiers" in d.message for d in report.diagnostics)


def test_pointer_with_matching_nested_quals_ok():
    report = check(
        """
        void f() {
          int pos x = 3;
          int pos * p = &x;
        }
        """
    )
    assert report.ok, report.summary()


def test_multiple_qualifiers_order_irrelevant():
    report = check(
        """
        void f(int pos nonzero a, int nonzero pos b) {
          int pos nonzero c = a;
          int nonzero pos d = b;
          c = d;
        }
        """
    )
    assert report.ok, report.summary()


# ---------------------------------------------------------------- nonzero


def test_division_requires_nonzero_denominator():
    report = check("void f(int a, int b) { int c = a / b; }")
    assert not report.ok
    assert any(d.kind == "restrict" for d in report.diagnostics)


def test_division_by_pos_ok_via_subsumption():
    # pos => nonzero via nonzero's second case clause (figure 3).
    report = check("void f(int a, int pos b) { int c = a / b; }")
    assert report.ok, report.summary()


def test_division_by_nonzero_constant_ok():
    report = check("void f(int a) { int c = a / 2; }")
    assert report.ok, report.summary()


def test_division_by_zero_constant_rejected():
    report = check("void f(int a) { int c = a / 0; }")
    assert not report.ok


def test_product_of_nonzero_is_nonzero():
    report = check(
        "void f(int nonzero a, int nonzero b) { int c = 1 / (a * b); }"
    )
    assert report.ok, report.summary()


def test_nonzero_cast_adds_runtime_check():
    report = check("void f(int a) { int c = a / (int nonzero)a; }")
    assert report.ok, report.summary()
    assert any(c.qualifier == "nonzero" for c in report.runtime_checks)


# ---------------------------------------------------------------- nonnull


def test_deref_requires_nonnull():
    report = check("void f(int* p) { int x = *p; }")
    assert not report.ok
    assert report.errors_for("nonnull")


def test_deref_of_nonnull_ok():
    report = check("void f(int* nonnull p) { int x = *p; }")
    assert report.ok, report.summary()


def test_address_of_is_nonnull():
    report = check(
        """
        void f() {
          int x;
          int* nonnull p = &x;
          int y = *p;
        }
        """
    )
    assert report.ok, report.summary()


def test_write_through_pointer_also_checked():
    report = check("void f(int* p) { *p = 3; }")
    assert not report.ok
    assert report.errors_for("nonnull")


def test_field_deref_checked():
    report = check(
        """
        struct node { int v; };
        int get(struct node* p) { return p->v; }
        """
    )
    assert not report.ok


def test_null_assignment_to_nonnull_rejected():
    report = check("void f(int* nonnull p) { p = NULL; }")
    assert not report.ok


def test_nonnull_cast_accepted_with_runtime_check():
    report = check(
        """
        void f(int* p) {
          int* nonnull q = (int* nonnull)p;
          int x = *q;
        }
        """
    )
    assert report.ok, report.summary()
    assert any(c.qualifier == "nonnull" for c in report.runtime_checks)


def test_array_index_through_pointer_checked_once_for_base():
    # p[i] is *(p+i); the logical memory model gives p+i the type of p,
    # so a nonnull p suffices.
    report = check("void f(int* nonnull p, int i) { int x = p[i]; }")
    assert report.ok, report.summary()


# ------------------------------------------------------------- conditionals


def test_conditional_requires_both_branches():
    ok = check("void f(int pos a, int pos b, int c) { int pos m = c ? a : b; }")
    assert ok.ok, ok.summary()
    bad = check("void f(int pos a, int c) { int pos m = c ? a : 0; }")
    assert not bad.ok
