"""Unit tests for the mini-preprocessor."""

from repro.cfront.preprocess import preprocess


def test_object_macro_expansion():
    result = preprocess("#define N 4\nint a[N];")
    assert "int a[4];" in result.text
    assert result.defines == {"N": "4"}


def test_macro_word_boundaries():
    result = preprocess("#define N 4\nint NN = N;")
    assert "int NN = 4;" in result.text  # NN untouched, N expanded


def test_self_referential_macro_stops():
    result = preprocess("#define pos __attribute__((pos))\nint pos x;")
    assert "int __attribute__((pos)) x;" in result.text


def test_nested_macros():
    result = preprocess(
        "#define A B\n#define B 7\nint v = A;"
    )
    assert "int v = 7;" in result.text


def test_includes_recorded_and_skipped():
    result = preprocess('#include <stdio.h>\n#include "local.h"\nint x;')
    assert result.includes == ["stdio.h", "local.h"]
    assert "include" not in result.text


def test_line_numbers_preserved():
    src = "#define N 1\n\nint x = N;"
    result = preprocess(src)
    # The define line becomes empty but still occupies line 1.
    assert result.text.splitlines()[2] == "int x = 1;"


def test_ifdef_true_branch():
    result = preprocess("#define F\n#ifdef F\nint x;\n#endif\nint y;")
    assert "int x;" in result.text and "int y;" in result.text


def test_ifdef_false_branch():
    result = preprocess("#ifdef F\nint x;\n#endif\nint y;")
    assert "int x;" not in result.text and "int y;" in result.text


def test_ifndef_and_else():
    result = preprocess(
        "#ifndef F\nint a;\n#else\nint b;\n#endif"
    )
    assert "int a;" in result.text and "int b;" not in result.text


def test_nested_conditionals():
    src = """#define A
#ifdef A
#ifdef B
int x;
#endif
int y;
#endif
"""
    result = preprocess(src)
    assert "int x;" not in result.text and "int y;" in result.text


def test_predefined_macros():
    result = preprocess("int v = K;", predefined={"K": "9"})
    assert "int v = 9;" in result.text


def test_defines_inside_inactive_region_ignored():
    result = preprocess("#ifdef NOPE\n#define X 1\n#endif\nint v = X;")
    assert "int v = X;" in result.text


def test_unknown_directive_dropped():
    result = preprocess("#pragma once\nint x;")
    assert "pragma" not in result.text and "int x;" in result.text
