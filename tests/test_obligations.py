"""Unit tests for proof-obligation *generation* (section 4.2) —
structure of the goals, independent of whether the prover can discharge
them."""

import pytest

from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import (
    NONNULL,
    NONZERO,
    POS,
    TAINTED,
    UNALIASED,
    UNIQUE,
    UNTAINTED,
    standard_qualifiers,
)
from repro.core.qualifiers.parser import parse_qualifier
from repro.core.soundness.obligations import (
    ObligationError,
    generate_obligations,
    ref_invariant,
    value_invariant,
)
from repro.prover.terms import (
    And,
    Eq,
    ForAll,
    Implies,
    Lt,
    Not,
    TVar,
    fn,
    free_vars,
)

QUALS = standard_qualifiers()
RHO = TVar("rho")


def test_one_obligation_per_case_clause():
    obs = generate_obligations(POS, QUALS)
    assert len(obs) == len(POS.cases)
    assert all(ob.qualifier == "pos" for ob in obs)


def test_obligations_are_closed_formulas():
    for qdef in (POS, NONZERO, NONNULL, UNIQUE, UNALIASED):
        for ob in generate_obligations(qdef, QUALS):
            if not ob.trivial:
                assert free_vars(ob.goal) == frozenset(), ob.rule


def test_value_obligation_shape():
    ob = generate_obligations(POS, QUALS)[0]  # constant clause
    assert isinstance(ob.goal, ForAll)
    assert "rho" in ob.goal.vars
    body = ob.goal.body
    assert isinstance(body, Implies)


def test_flow_qualifiers_trivial():
    for qdef in (TAINTED, UNTAINTED):
        obs = generate_obligations(qdef, QUALS)
        assert all(ob.trivial for ob in obs)


def test_ref_obligations_cover_assign_and_preservation():
    obs = generate_obligations(UNIQUE, QUALS)
    rules = [ob.rule for ob in obs]
    assert sum(r.startswith("assign") for r in rules) == 2
    preservation = [r for r in rules if r.startswith("preservation")]
    # constant, read, addr-of, allocation, unary, binary.
    assert len(preservation) == 6


def test_ondecl_obligation_generated():
    obs = generate_obligations(UNALIASED, QUALS)
    assert any("ondecl" in ob.rule for ob in obs)


def test_disallow_reference_weakens_read_case():
    """With `disallow L` the read-preservation obligation hypothesizes a
    distinct address; without it the hypothesis disappears (making the
    obligation strictly harder)."""

    def read_goal(qdef):
        obs = generate_obligations(qdef, QUALS)
        (ob,) = [o for o in obs if "read of an l-value" in o.rule]
        return str(ob.goal)

    with_disallow = read_goal(UNIQUE)
    without = parse_qualifier(
        UNIQUE.source.replace("disallow L", "")
        if False
        else _unique_source_without_disallow()
    )
    without_goal = read_goal(without)
    assert "location(?rho, ?l_read)" in with_disallow
    # The distinctness hypothesis is present only with the disallow.
    assert with_disallow.count("l_read") > without_goal.count("l_read")


def _unique_source_without_disallow():
    from repro.core.qualifiers.library import UNIQUE_SOURCE

    return UNIQUE_SOURCE.replace("disallow L", "")


def test_value_invariant_translation():
    inv = value_invariant(POS, RHO, fn("e0"))
    assert inv == Lt(
        __import__("repro.prover.terms", fromlist=["Int"]).Int(0),
        fn("evalExpr", RHO, fn("e0")),
    )


def test_ref_invariant_translation_quantifier():
    inv = ref_invariant(UNIQUE, RHO, fn("l0"))
    text = str(inv)
    assert "select(getStore(?rho), location(?rho, l0))" in text
    assert "∀P" in text


def test_predicate_referencing_unknown_qualifier_rejected():
    bad = parse_qualifier(
        """
        value qualifier q(int Expr E)
          case E of
            decl int Expr E1: E1, where ghost(E1)
          invariant value(E) > 0
        """
    )
    with pytest.raises(ObligationError):
        generate_obligations(bad, QualifierSet([bad]))


def test_invariantless_referenced_qualifier_gives_true_hypothesis():
    # untainted has no invariant; a rule depending on it gets a vacuous
    # hypothesis (sound: weaker assumptions).
    q = parse_qualifier(
        """
        value qualifier q(int Expr E)
          case E of
            decl int Expr E1: E1, where untainted(E1)
          invariant value(E) > 0
        """
    )
    obs = generate_obligations(q, QUALS)
    # The obligation is then unprovable (as it should be).
    from repro.core.soundness.checker import check_soundness

    report = check_soundness(q, QUALS, time_limit=15)
    assert not report.sound
