"""Tests for the qualifier-definition language parser."""

import pytest

from repro.core.qualifiers import ast as Q
from repro.core.qualifiers.library import (
    NEG,
    NONNULL,
    NONZERO,
    POS,
    TAINTED,
    UNALIASED,
    UNIQUE,
    UNTAINTED,
    UNTAINTED_WITH_CONSTS,
    standard_qualifiers,
)
from repro.core.qualifiers.parser import QualParseError, parse_qualifier, parse_qualifiers


def test_pos_header():
    assert POS.name == "pos"
    assert POS.kind == "value"
    assert POS.dtype == Q.DInt()
    assert POS.classifier is Q.Classifier.EXPR
    assert POS.var == "E"


def test_pos_clauses():
    assert len(POS.cases) == 3
    const_clause, mult_clause, neg_clause = POS.cases
    assert isinstance(const_clause.pattern, Q.PVar)
    assert const_clause.decls[0].classifier is Q.Classifier.CONST
    assert const_clause.predicate == Q.PredCmp(">", Q.AVar("C"), Q.ANum(0))
    assert mult_clause.pattern == Q.PBinop("*", "E1", "E2")
    assert mult_clause.predicate == Q.PredAnd(
        Q.PredQual("pos", "E1"), Q.PredQual("pos", "E2")
    )
    assert neg_clause.pattern == Q.PUnop("-", "E1")
    assert neg_clause.predicate == Q.PredQual("neg", "E1")


def test_pos_invariant():
    assert POS.invariant == Q.ICmp(">", Q.IValue("E"), Q.INum(0))


def test_shared_decl_type_for_multiple_names():
    clause = POS.cases[1]
    assert [d.name for d in clause.decls] == ["E1", "E2"]
    assert all(d.dtype == Q.DInt() for d in clause.decls)
    assert all(d.classifier is Q.Classifier.EXPR for d in clause.decls)


def test_nonzero_restrict_clause():
    assert len(NONZERO.restricts) == 1
    r = NONZERO.restricts[0]
    assert r.pattern == Q.PBinop("/", "E1", "E2")
    assert r.predicate == Q.PredQual("nonzero", "E2")


def test_nonzero_subsumes_pos_clause():
    # Second case clause: E1 where pos(E1) encodes pos <= nonzero.
    clause = NONZERO.cases[1]
    assert clause.pattern == Q.PVar("E1")
    assert clause.predicate == Q.PredQual("pos", "E1")


def test_untainted_has_no_rules():
    assert UNTAINTED.cases == []
    assert UNTAINTED.restricts == []
    assert UNTAINTED.invariant is None


def test_tainted_matches_anything():
    assert len(TAINTED.cases) == 1
    clause = TAINTED.cases[0]
    assert clause.decls == ()
    assert clause.pattern == Q.PVar("E")


def test_untainted_with_consts():
    clause = UNTAINTED_WITH_CONSTS.cases[0]
    assert clause.decls[0].classifier is Q.Classifier.CONST
    assert isinstance(clause.decls[0].dtype, Q.DTypeVar)


def test_unique_definition():
    assert UNIQUE.kind == "ref"
    assert UNIQUE.classifier is Q.Classifier.LVALUE
    assert isinstance(UNIQUE.dtype, Q.DPtr)
    assert len(UNIQUE.assigns) == 2
    assert UNIQUE.assigns[0].pattern == Q.PNull()
    assert UNIQUE.assigns[1].pattern == Q.PNew()
    assert UNIQUE.disallow == Q.DisallowClause(forbid_reference=True)


def test_unique_invariant_structure():
    inv = UNIQUE.invariant
    assert isinstance(inv, Q.IOr)
    assert inv.left == Q.ICmp("==", Q.IValue("L"), Q.INull())
    assert isinstance(inv.right, Q.IAnd)
    assert inv.right.left == Q.IIsHeapLoc(Q.IValue("L"))
    forall = inv.right.right
    assert isinstance(forall, Q.IForall)
    assert forall.var == "P"
    assert forall.dtype == Q.DPtr(Q.DPtr(Q.DTypeVar("T")))
    assert isinstance(forall.body, Q.IImplies)
    assert forall.body.left == Q.ICmp("==", Q.IDeref(Q.IVar("P")), Q.IValue("L"))
    assert forall.body.right == Q.ICmp("==", Q.IVar("P"), Q.ILocation("L"))


def test_unaliased_definition():
    assert UNALIASED.ondecl
    assert UNALIASED.classifier is Q.Classifier.VAR
    assert UNALIASED.disallow == Q.DisallowClause(forbid_address_of=True)
    inv = UNALIASED.invariant
    assert isinstance(inv, Q.IForall)
    assert inv.body == Q.ICmp("!=", Q.IDeref(Q.IVar("P")), Q.ILocation("X"))


def test_nonnull_definition():
    assert NONNULL.invariant == Q.ICmp("!=", Q.IValue("E"), Q.INull())
    case = NONNULL.cases[0]
    assert case.pattern == Q.PAddrOf("L")
    assert case.decls[0].classifier is Q.Classifier.LVALUE
    restrict = NONNULL.restricts[0]
    assert restrict.pattern == Q.PDeref("E1")


def test_mutual_recursion_references():
    assert "neg" in POS.referenced_qualifiers()
    assert "pos" in NEG.referenced_qualifiers()


def test_qualifier_set():
    qs = standard_qualifiers()
    assert "pos" in qs and "unique" in qs
    assert qs.missing_references() == set()
    assert {d.name for d in qs.ref_qualifiers()} == {"unique", "unaliased"}


def test_multiple_definitions_in_one_source():
    defs = parse_qualifiers(
        """
        value qualifier a(int Expr E)
          invariant value(E) > 0
        value qualifier b(int Expr E)
          case E of decl int Expr E1: E1, where a(E1)
        """
    )
    assert [d.name for d in defs] == ["a", "b"]
    assert defs[1].referenced_qualifiers() == {"a"}


def test_value_qualifier_rejects_ref_blocks():
    with pytest.raises(QualParseError):
        parse_qualifier(
            """
            value qualifier bad(int Expr E)
              disallow E
            """
        )


def test_ref_qualifier_rejects_case_blocks():
    with pytest.raises(QualParseError):
        parse_qualifier(
            """
            ref qualifier bad(int* LValue L)
              case L of decl int Const C: C
            """
        )


def test_ref_qualifier_requires_lvalue_classifier():
    with pytest.raises(QualParseError):
        parse_qualifier("ref qualifier bad(int* Expr E)")


def test_case_subject_must_be_qualifier_var():
    with pytest.raises(QualParseError):
        parse_qualifier(
            """
            value qualifier bad(int Expr E)
              case F of decl int Const C: C
            """
        )


def test_bad_classifier_rejected():
    with pytest.raises(QualParseError):
        parse_qualifier("value qualifier bad(int Thing E)")


def test_predicate_or_and_parens():
    qdef = parse_qualifier(
        """
        value qualifier q(int Expr E)
          case E of
            decl int Const C:
              C, where (C > 0 && C < 10) || C == 42
        """
    )
    pred = qdef.cases[0].predicate
    assert isinstance(pred, Q.PredOr)
    assert isinstance(pred.left, Q.PredAnd)


def test_arithmetic_in_predicate():
    qdef = parse_qualifier(
        """
        value qualifier q(int Expr E)
          case E of
            decl int Const C:
              C, where C % 2 == 0
        """
    )
    pred = qdef.cases[0].predicate
    assert pred == Q.PredCmp("==", Q.ABin("%", Q.AVar("C"), Q.ANum(2)), Q.ANum(0))


def test_negative_number_in_invariant():
    qdef = parse_qualifier(
        """
        value qualifier q(int Expr E)
          invariant value(E) > -5
        """
    )
    assert qdef.invariant == Q.ICmp(">", Q.IValue("E"), Q.INum(-5))


def test_source_round_trip_recorded():
    assert "case E of" in " ".join(POS.source.split())
