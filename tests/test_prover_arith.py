"""Tests for the prover's integer-arithmetic extensions: GCD
tightening, unit-pivot Gaussian elimination, and the Euclidean
division/modulus lemmas (used by qualifiers with arithmetic
invariants, e.g. the `even` example)."""

from hypothesis import given, settings, strategies as st

from repro.prover.prover import prove_valid
from repro.prover.terms import (
    And,
    Eq,
    Implies,
    Int,
    Le,
    Lt,
    Not,
    Or,
    fn,
)

a, b, c = fn("a"), fn("b"), fn("c")


def proved(goal, axioms=()):
    return prove_valid(goal, list(axioms)).proved


def mod2(t):
    return fn("%", t, Int(2))


# ------------------------------------------------------------ GCD tightening


def test_even_between_zero_and_one_is_zero():
    # m = 2t and 0 <= m <= 1 force m = 0.
    t = fn("t")
    goal = Implies(
        And(Eq(a, fn("*", Int(2), t)), Le(Int(0), a), Le(a, Int(1))),
        Eq(a, Int(0)),
    )
    assert proved(goal)


def test_no_integer_solution_to_2x_eq_1():
    goal = Implies(Eq(fn("*", Int(2), a), Int(1)), Eq(Int(0), Int(1)))
    assert proved(goal)


def test_3x_between_1_and_2_impossible():
    goal = Implies(
        And(Le(Int(1), fn("*", Int(3), a)), Le(fn("*", Int(3), a), Int(2))),
        Eq(Int(0), Int(1)),
    )
    assert proved(goal)


def test_rationally_satisfiable_not_over_tightened():
    # x + y = 1 with 0 <= x, y has integer solutions; must not prove false.
    goal = Implies(
        And(
            Eq(fn("+", a, b), Int(1)),
            Le(Int(0), a),
            Le(Int(0), b),
        ),
        Eq(Int(0), Int(1)),
    )
    assert not proved(goal)


# ------------------------------------------------------------ modulus lemmas


def test_even_plus_even_is_even():
    goal = Implies(
        And(Eq(mod2(a), Int(0)), Eq(mod2(b), Int(0))),
        Eq(mod2(fn("+", a, b)), Int(0)),
    )
    assert proved(goal)


def test_even_minus_even_is_even():
    goal = Implies(
        And(Eq(mod2(a), Int(0)), Eq(mod2(b), Int(0))),
        Eq(mod2(fn("-", a, b)), Int(0)),
    )
    assert proved(goal)


def test_even_plus_odd_not_provably_even():
    goal = Implies(Eq(mod2(a), Int(0)), Eq(mod2(fn("+", a, b)), Int(0)))
    assert not proved(goal)


def test_product_with_even_factor_is_even():
    goal = Implies(
        Or(Eq(mod2(a), Int(0)), Eq(mod2(b), Int(0))),
        Eq(mod2(fn("*", a, b)), Int(0)),
    )
    assert proved(goal)


def test_negation_preserves_evenness():
    goal = Implies(
        Eq(mod2(a), Int(0)), Eq(mod2(fn("-", Int(0), a)), Int(0))
    )
    assert proved(goal)


def test_mod_bounds():
    # a % 3 is strictly between -3 and 3 under C semantics.
    m = fn("%", a, Int(3))
    assert proved(Implies(Eq(m, m), Lt(m, Int(3))))
    assert proved(Implies(Eq(m, m), Lt(Int(-3), m)))


def test_mod_sign_follows_dividend():
    m = fn("%", a, Int(3))
    assert proved(Implies(Le(Int(0), a), Le(Int(0), m)))
    assert not proved(Implies(Eq(m, m), Le(Int(0), m)))  # negative a


def test_divisibility_not_assumed():
    # a % 2 = 0 does not prove a = 0.
    goal = Implies(Eq(mod2(a), Int(0)), Eq(a, Int(0)))
    assert not proved(goal)


def _c_mod(x: int, k: int) -> int:
    q = abs(x) // abs(k)
    if (x >= 0) != (k >= 0):
        q = -q
    return x - k * q


@settings(max_examples=30, deadline=None)
@given(st.integers(-20, 20), st.integers(2, 5))
def test_mod_lemmas_agree_with_concrete_c_semantics(v, k):
    """On concrete dividends the lemmas pin x % k to its C value: the
    correct equation is provable and any wrong value is refutable."""
    m = fn("%", Int(v), Int(k))
    correct = _c_mod(v, k)
    assert proved(Eq(m, Int(correct)))
    wrong = correct + 1 if correct + 1 < k else correct - 1
    assert proved(Not(Eq(m, Int(wrong))))
