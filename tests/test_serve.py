"""The ``repro serve`` daemon: protocol, concurrency, incremental
re-checking, malformed-request survival, graceful shutdown, and
golden equivalence with one-shot runs (see docs/serve.md)."""

from __future__ import annotations

import asyncio
import copy
import json
import os
import socket as socket_module
import subprocess
import sys
import threading
import time

import pytest

from repro import api, obs
from repro.serve import connect, protocol
from repro.serve.client import ServeError
from repro.serve.server import ServeServer

THREE_FUNCS = """\
int pos f(int pos x) { return x + 1; }
int g(int y) { return y; }
int h(int w) { return w * 2; }
"""


@pytest.fixture()
def daemon(tmp_path):
    """An in-process daemon on a fresh socket (thread + event loop)."""
    sock = str(tmp_path / "serve.sock")
    server = ServeServer(sock)

    def run():
        asyncio.run(server.run())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert server.ready.wait(10.0), "daemon never bound its socket"
    yield sock, server
    if not server._shutting_down:
        try:
            with connect(sock) as client:
                client.shutdown()
        except OSError:
            pass
    thread.join(timeout=10)
    assert not thread.is_alive(), "daemon did not stop"


def write_c(tmp_path, name="prog.c", text=THREE_FUNCS):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def check_params(path, **extra):
    return {"files": [path], **extra}


# ------------------------------------------------------------ round trips


def test_check_roundtrip_schema_v1(daemon, tmp_path):
    sock, _server = daemon
    path = write_c(tmp_path)
    with connect(sock) as client:
        units = []
        final = client.request(
            "check", check_params(path), on_unit=units.append
        )
    report = final["report"]
    assert report["schema_version"] == api.SCHEMA_VERSION
    assert report["command"] == "check"
    assert report["exit_code"] == 1  # the pos-annotated unit warns
    assert [u["unit"] for u in report["units"]] == [path]
    # the streamed unit record is the same dict that lands in the report
    assert len(units) == 1
    assert units[0]["verdict"] == report["units"][0]["verdict"]


def test_incremental_recheck_only_changed_function(daemon, tmp_path):
    sock, server = daemon
    path = write_c(tmp_path)
    obs.enable()
    marker = obs.mark()
    try:
        with connect(sock) as client:
            first = client.request("check", check_params(path))["report"]
            assert first["incremental"]["rechecked"] == 3
            assert first["incremental"]["replayed"] == 0

            # untouched file: the whole unit replays, parse and all
            second = client.request("check", check_params(path))["report"]
            assert second["incremental"]["rechecked"] == 0
            assert second["incremental"]["replayed"] == 3
            assert second["incremental"]["units_replayed"] == 1

            # edit one function: only it re-checks
            edited = THREE_FUNCS.replace("w * 2", "w * 3")
            (tmp_path / "prog.c").write_text(edited)
            third = client.request("check", check_params(path))["report"]
            assert third["incremental"]["rechecked"] == 1
            assert third["incremental"]["replayed"] == 2
            # verdicts identical to a cold one-shot run of the edit
            cold = api.Session().check(api.CheckRequest(files=(path,)))
            assert [u["verdict"] for u in third["units"]] == [
                r.verdict for r in cold.results
            ]
        hits = obs.since(marker)["counters"].get("serve.incremental_hits", 0)
        assert hits == 5  # 3 whole-unit replays + 2 per-function replays
    finally:
        obs.disable()
        obs.reset()
    # the always-on workspace counters tell the same story via status
    stats = server.status()["workspaces"][0]
    assert stats["counters"]["functions_replayed"] == 5
    assert stats["counters"]["functions_checked"] == 4


def test_qual_file_edit_invalidates_everything(daemon, tmp_path):
    sock, _server = daemon
    path = write_c(tmp_path)
    qual = tmp_path / "nn2.qual"
    qual.write_text(
        "value qualifier nn2(int Expr E)\n"
        "  case E of\n"
        "      decl int Const C:\n"
        "        C, where C >= 0\n"
        "  invariant value(E) >= 0\n"
    )
    params = check_params(path, quals=[str(qual)])
    with connect(sock) as client:
        first = client.request("check", params)["report"]
        assert first["incremental"]["rechecked"] == 3
        # editing the qualifier environment re-checks every function
        qual.write_text(
            "value qualifier nn2(int Expr E)\n"
            "  case E of\n"
            "      decl int Const C:\n"
            "        C, where C > 0\n"
            "  invariant value(E) >= 0\n"
        )
        second = client.request("check", params)["report"]
        assert second["incremental"]["rechecked"] == 3
        assert second["incremental"]["replayed"] == 0


def test_invalidate_drops_workspace_state(daemon, tmp_path):
    sock, _server = daemon
    path = write_c(tmp_path)
    with connect(sock) as client:
        client.request("check", check_params(path))
        dropped = client.request("invalidate")["result"]["dropped"]
        assert dropped == 1
        again = client.request("check", check_params(path))["report"]
        assert again["incremental"]["rechecked"] == 3


# ------------------------------------------------------------- concurrency


def test_concurrent_requests_one_daemon(daemon, tmp_path):
    sock, server = daemon
    paths = [
        write_c(tmp_path, f"unit{i}.c", THREE_FUNCS.replace("f(", f"f{i}("))
        for i in range(4)
    ]
    results: dict = {}

    def one(i: int, path: str) -> None:
        # odd requests use a distinct config -> a second workspace
        params = check_params(path, trust_constants=bool(i % 2))
        with connect(sock) as client:
            results[i] = client.request("check", params)["report"]

    threads = [
        threading.Thread(target=one, args=(i, p)) for i, p in enumerate(paths)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert sorted(results) == [0, 1, 2, 3]
    for i, report in results.items():
        assert report["exit_code"] == 1
        assert report["units"][0]["unit"] == paths[i]
    status = server.status()
    assert status["counters"]["requests"] >= 4
    assert len(status["workspaces"]) == 2  # one per distinct config


def test_interleaved_requests_one_connection(daemon, tmp_path):
    # two requests pipelined on one socket: both answered, ids kept apart
    sock, _server = daemon
    path = write_c(tmp_path)
    raw = socket_module.socket(socket_module.AF_UNIX)
    raw.connect(sock)
    reader = raw.makefile("r")
    try:
        for rid in ("a", "b"):
            raw.sendall(
                protocol.encode(
                    {"id": rid, "op": "check", "params": check_params(path)}
                )
            )
        done = {}
        while len(done) < 2:
            msg = json.loads(reader.readline())
            if msg.get("done"):
                done[msg["id"]] = msg["report"]["exit_code"]
        assert done == {"a": 1, "b": 1}
    finally:
        reader.close()
        raw.close()


# ------------------------------------------------------- malformed requests


def test_malformed_requests_daemon_survives(daemon, tmp_path):
    sock, server = daemon
    path = write_c(tmp_path)
    raw = socket_module.socket(socket_module.AF_UNIX)
    raw.connect(sock)
    reader = raw.makefile("r")

    def roundtrip(line: bytes) -> dict:
        raw.sendall(line)
        return json.loads(reader.readline())

    try:
        bad = roundtrip(b"this is not json\n")
        assert bad["id"] is None
        assert bad["error"]["code"] == protocol.E_BAD_JSON

        bad = roundtrip(b'[1, 2, 3]\n')
        assert bad["error"]["code"] == protocol.E_BAD_JSON

        bad = roundtrip(b'{"id": 1, "op": "frobnicate"}\n')
        assert bad["id"] == 1
        assert bad["error"]["code"] == protocol.E_UNKNOWN_OP

        bad = roundtrip(b'{"id": 2, "op": "check", "params": {"files": []}}\n')
        assert bad["error"]["code"] == protocol.E_BAD_REQUEST

        bad = roundtrip(
            b'{"id": 3, "op": "check", '
            b'"params": {"files": ["x.c"], "typo": true}}\n'
        )
        assert bad["error"]["code"] == protocol.E_BAD_REQUEST
        assert "typo" in bad["error"]["message"]

        bad = roundtrip(
            b'{"id": 4, "op": "infer", "params": {"files": ["x.c"]}}\n'
        )
        assert bad["error"]["code"] == protocol.E_BAD_REQUEST  # no qualifier
    finally:
        reader.close()
        raw.close()
    # the daemon shrugged it all off and still serves real work
    with connect(sock) as client:
        report = client.request("check", check_params(path))["report"]
    assert report["exit_code"] == 1
    assert server.counters["errors"] == 6


def test_missing_file_is_input_verdict_not_crash(daemon, tmp_path):
    sock, _server = daemon
    missing = str(tmp_path / "nope.c")
    with connect(sock) as client:
        report = client.request("check", check_params(missing))["report"]
    # same contract as in-process: a structured ERROR unit, exit 2
    assert report["units"][0]["verdict"] == "ERROR"
    assert report["exit_code"] == 2


# -------------------------------------------------------------- shutdown


def test_graceful_shutdown_waits_for_inflight(daemon, tmp_path):
    sock, _server = daemon
    # enough functions that the check is reliably still in flight when
    # the shutdown lands on the other connection
    body = "\n".join(
        f"int pos f{i}(int pos x) {{ int pos y = x + {i}; return y; }}"
        for i in range(120)
    )
    path = write_c(tmp_path, "big.c", body + "\n")
    outcome: dict = {}

    def inflight():
        with connect(sock) as client:
            outcome["report"] = client.request("check", check_params(path))[
                "report"
            ]

    worker = threading.Thread(target=inflight)
    worker.start()
    time.sleep(0.05)
    with connect(sock) as client:
        result = client.shutdown()
    assert result["stopping"] is True
    worker.join(timeout=30)
    assert not worker.is_alive()
    # the in-flight request completed with a full report
    assert outcome["report"]["units"][0]["unit"] == path
    # ... and the socket is gone once the daemon exits
    deadline = time.monotonic() + 10.0
    while os.path.exists(sock) and time.monotonic() < deadline:
        time.sleep(0.02)
    assert not os.path.exists(sock)


def test_requests_after_shutdown_are_refused(daemon, tmp_path):
    sock, server = daemon
    path = write_c(tmp_path)
    server._shutting_down = True  # as if a shutdown is draining
    with connect(sock) as client:
        with pytest.raises(ServeError) as exc:
            client.request("check", check_params(path))
        assert exc.value.code == protocol.E_SHUTTING_DOWN
    server._shutting_down = False  # let the fixture stop it for real


# ------------------------------------------------------ golden equivalence


def _strip_volatile(payload: dict) -> dict:
    """Drop timing and incremental bookkeeping, keeping verdicts,
    diagnostics, and every other schema field for exact comparison."""
    out = copy.deepcopy(payload)
    out.pop("elapsed", None)
    out.pop("incremental", None)
    for unit in out.get("units", ()):
        unit.pop("elapsed", None)
        unit.get("detail", {}).pop("incremental", None)
        # dataflow solve times vary run to run
        detail = unit.get("detail", {})
        if "dataflow" in detail:
            detail["dataflow"]["totals"].pop("ms", None)
            for stats in detail["dataflow"]["functions"].values():
                stats.pop("ms", None)
    meta_dataflow = out.get("dataflow")
    if isinstance(meta_dataflow, dict):
        meta_dataflow.pop("ms", None)
    return out


def test_serve_check_equals_one_shot(daemon, tmp_path):
    sock, _server = daemon
    path = write_c(tmp_path)
    with connect(sock) as client:
        client.request("check", check_params(path))  # warm it
        served = client.request("check", check_params(path))["report"]
    one_shot = api.Session().check(api.CheckRequest(files=(path,))).to_dict()
    assert _strip_volatile(served) == _strip_volatile(one_shot)


def test_serve_prove_equals_one_shot(daemon, tmp_path):
    sock, _server = daemon
    qual = tmp_path / "defs.qual"
    qual.write_text(
        "value qualifier nn2(int Expr E)\n"
        "  case E of\n"
        "      decl int Const C:\n"
        "        C, where C >= 0\n"
        "    | decl int Expr E1, E2:\n"
        "        E1 + E2, where nn2(E1) && nn2(E2)\n"
        "  invariant value(E) >= 0\n"
    )
    params = {"files": [str(qual)], "cache": False}
    with connect(sock) as client:
        served = client.request("prove", params)["report"]
    one_shot = (
        api.Session()
        .prove(api.ProveRequest(files=(str(qual),), cache=False))
        .to_dict()
    )
    served_quals = served["units"][0]["detail"]["qualifiers"]
    one_shot_quals = one_shot["units"][0]["detail"]["qualifiers"]
    assert [q["sound"] for q in served_quals] == [
        q["sound"] for q in one_shot_quals
    ]
    assert served["exit_code"] == one_shot["exit_code"]
    assert served["units"][0]["verdict"] == one_shot["units"][0]["verdict"]


def test_report_from_dict_round_trip(tmp_path):
    path = write_c(tmp_path)
    report = api.Session().check(api.CheckRequest(files=(path,)))
    payload = report.to_dict()
    rebuilt = api.report_from_dict(json.loads(json.dumps(payload)))
    assert rebuilt.to_dict() == payload
    assert rebuilt.exit_code == report.exit_code


# ---------------------------------------------------------------- CLI


def _cli(args, cwd, env=None):
    full_env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
    if env:
        full_env.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=full_env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_cli_server_proxy_matches_in_process(daemon, tmp_path):
    sock, _server = daemon
    path = write_c(tmp_path)
    local = _cli(["check", path, "--format", "json"], cwd=tmp_path)
    proxied = _cli(
        ["check", path, "--server", sock, "--format", "json"], cwd=tmp_path
    )
    assert local.returncode == proxied.returncode == 1
    assert _strip_volatile(json.loads(proxied.stdout)) == _strip_volatile(
        json.loads(local.stdout)
    )


def test_cli_server_fallback_when_no_daemon(tmp_path):
    path = write_c(tmp_path)
    gone = str(tmp_path / "no-such.sock")
    result = _cli(
        ["check", path, "--server", gone, "--format", "json"], cwd=tmp_path
    )
    assert result.returncode == 1  # ran in-process instead
    assert "running in-process" in result.stderr
    payload = json.loads(result.stdout)
    assert payload["schema_version"] == api.SCHEMA_VERSION


# ------------------------------------- prove incrementality & eviction

NN_QUAL = """\
value qualifier nn2(int Expr E)
  case E of
      decl int Const C:
        C, where C >= 0
    | decl int Expr E1, E2:
        E1 + E2, where nn2(E1) && nn2(E2)
  invariant value(E) >= 0
"""


def write_qual(tmp_path, name="defs.qual", text=NN_QUAL):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def _obligations(report):
    return [
        (o["rule"], o["verdict"], o["proved"], o["reason"])
        for u in report["units"]
        for q in u["detail"]["qualifiers"]
        for o in q["obligations"]
    ]


def test_serve_prove_replays_unchanged_file(daemon, tmp_path):
    """``prove`` gets the same fingerprint-aware incrementality over
    serve that ``check`` has: unchanged files replay whole."""
    sock, server = daemon
    path = write_qual(tmp_path)
    params = {"files": [path], "cache": False}
    with connect(sock) as client:
        first = client.request("prove", params)["report"]
        assert first["incremental"]["units_replayed"] == 0
        assert first["incremental"]["rechecked"] > 0

        second = client.request("prove", params)["report"]
        assert second["incremental"]["units_replayed"] == 1
        assert second["incremental"]["rechecked"] == 0
        assert (
            second["incremental"]["replayed"]
            == first["incremental"]["rechecked"]
        )
        unit_inc = second["units"][0]["detail"]["incremental"]
        assert unit_inc["unit_replayed"] is True
        assert _obligations(second) == _obligations(first)

        # an edit invalidates the stored verdicts
        write_qual(tmp_path, text=NN_QUAL.replace("C >= 0", "C >= 1"))
        third = client.request("prove", params)["report"]
        assert third["incremental"]["units_replayed"] == 0
        assert third["incremental"]["rechecked"] > 0
    stats = server.status()["workspaces"][0]
    assert stats["counters"]["prove_units_replayed"] == 1
    assert stats["counters"]["obligations_replayed"] > 0
    assert stats["prove_units"] >= 1


def test_serve_prove_counters_match_in_process(daemon, tmp_path):
    """The served replay counters are JSON field-identical to an
    in-process incremental workspace's."""
    sock, _server = daemon
    path = write_qual(tmp_path)
    params = {"files": [path], "cache": False}
    with connect(sock) as client:
        client.request("prove", params)
        served = client.request("prove", params)["report"]
    workspace = api.Workspace(api.SessionConfig(), incremental=True)
    request = api.ProveRequest(files=(path,), cache=False)
    workspace.prove(request)
    local = workspace.prove(request).to_dict()
    assert served["incremental"] == local["incremental"]
    assert (
        served["units"][0]["detail"]["incremental"]
        == local["units"][0]["detail"]["incremental"]
    )
    assert set(served["sessions"]) == set(local["sessions"])


def test_serve_prove_session_and_shard_params(daemon, tmp_path):
    sock, _server = daemon
    path = write_qual(tmp_path)
    with connect(sock) as client:
        plain = client.request(
            "prove", {"files": [path], "cache": False}
        )["report"]
        assert plain["sessions"]["enabled"] is True
        cold = client.request(
            "prove",
            {"files": [path], "cache": False, "session": False},
        )["report"]
        assert "sessions" not in cold
        assert _obligations(cold) == _obligations(plain)


def test_workspace_lru_eviction(daemon, tmp_path):
    """The daemon keeps at most ``max_workspaces`` resident; the least
    recently used one is closed and counted."""
    sock, server = daemon
    server.max_workspaces = 1
    path = write_c(tmp_path)
    with connect(sock) as client:
        client.request("check", check_params(path))
        client.request(
            "check", check_params(path, trust_constants=True)
        )
        status = client.request("status")["result"]
    assert len(status["workspaces"]) == 1
    assert status["counters"]["evictions"] == 1
    # the surviving workspace is the most recently used configuration
    assert server.status()["workspaces"][0]["config"]["trust_constants"]


def test_unit_state_lru_eviction(monkeypatch, tmp_path):
    """Per-workspace verdict stores are bounded: beyond the cap the
    oldest unit state is dropped and counted."""
    monkeypatch.setenv("REPRO_WORKSPACE_MAX_UNITS", "1")
    a = write_qual(tmp_path, "a.qual")
    b = write_qual(tmp_path, "b.qual")
    workspace = api.Workspace(api.SessionConfig(), incremental=True)
    for path in (a, b, a):
        report = workspace.prove(
            api.ProveRequest(files=(path,), cache=False)
        ).to_dict()
        # nothing ever replays: each request evicts the previous state
        assert report["incremental"]["units_replayed"] == 0
    assert workspace.counters["units_evicted"] >= 2
    assert workspace.stats()["prove_units"] == 1
