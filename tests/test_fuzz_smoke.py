"""Fuzz smoke test: seeded random mutations of the example C sources
must flow through parse -> lower -> check producing a diagnostic or a
clean report — never an uncaught exception.

This is the robustness contract the batch harness relies on: input
badness surfaces as ``ParseError``/``LexError``/``LowerError`` (or as
recovered diagnostics on the unit), everything else is a bug.
"""

import glob
import os
import random

from repro.cfront.lexer import LexError
from repro.cfront.parser import ParseError, parse_c
from repro.cil.lower import LowerError, lower_unit
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.library import standard_qualifiers
from repro.harness.watchdog import recursion_guard

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples", "*.c")
MUTANTS = 200
PUNCT = "{}();*&=+-<>,![]\"'%/"


def _seed_sources():
    paths = sorted(glob.glob(EXAMPLES))
    assert paths, "examples/*.c are the fuzz corpus; none found"
    out = []
    for path in paths:
        with open(path) as handle:
            out.append(handle.read())
    return out


def _mutate(rng: random.Random, src: str) -> str:
    for _ in range(rng.randint(1, 4)):
        if not src:
            break
        op = rng.randrange(5)
        i = rng.randrange(len(src))
        j = min(len(src), i + rng.randint(1, 12))
        if op == 0:
            src = src[:i] + src[j:]  # delete a span
        elif op == 1:
            src = src[:i] + src[i:j] + src[i:]  # duplicate a span
        elif op == 2:
            src = src[:i] + rng.choice(PUNCT) + src[i:]  # insert punct
        elif op == 3:
            src = src[:i] + src[i:j][::-1] + src[j:]  # reverse a span
        else:
            src = src[: rng.randrange(len(src) + 1)]  # truncate
    return src


def _pipeline(source: str, quals) -> None:
    """parse -> lower -> typecheck; recovered parse errors are
    diagnostics, the rest of the pipeline must cope with whatever
    (possibly partial) unit recovery produced."""
    unit = parse_c(source, qualifier_names=quals.names, recover=True)
    program = lower_unit(unit)
    QualifierChecker(program, quals).check()


def test_fuzz_mutants_never_crash_the_pipeline():
    quals = standard_qualifiers()
    seeds = _seed_sources()
    rng = random.Random(0xC0FFEE)
    failures = []
    for index in range(MUTANTS):
        source = _mutate(rng, rng.choice(seeds))
        try:
            with recursion_guard():
                _pipeline(source, quals)
        except (ParseError, LexError, LowerError):
            pass  # a diagnostic, not a crash
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append((index, f"{type(exc).__name__}: {exc}", source))
    assert not failures, (
        f"{len(failures)}/{MUTANTS} mutants crashed; first: "
        f"{failures[0][1]}\nsource:\n{failures[0][2][:400]}"
    )


def test_fuzz_is_deterministic_for_a_fixed_seed():
    rng_a, rng_b = random.Random(42), random.Random(42)
    seeds = _seed_sources()
    assert [_mutate(rng_a, seeds[0]) for _ in range(5)] == [
        _mutate(rng_b, seeds[0]) for _ in range(5)
    ]


def test_strict_mode_mutants_raise_only_parse_errors():
    """Without recovery the same corpus may raise — but only the
    documented input-error types."""
    quals = standard_qualifiers()
    seeds = _seed_sources()
    rng = random.Random(1337)
    raised = 0
    for _ in range(50):
        source = _mutate(rng, rng.choice(seeds))
        try:
            with recursion_guard():
                unit = parse_c(source, qualifier_names=quals.names)
                QualifierChecker(lower_unit(unit), quals).check()
        except (ParseError, LexError, LowerError):
            raised += 1
    assert raised > 0  # the mutator does produce broken inputs
