"""Extensible-typechecker tests for reference qualifiers (unique,
unaliased) — paper figures 5, 6, 7 and section 2.2."""

from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import UNIQUE, standard_qualifiers

QUALS = standard_qualifiers()
QUAL_NAMES = {"pos", "neg", "nonzero", "nonnull", "tainted", "untainted",
              "unique", "unaliased"}


def check(src, quals=QUALS):
    unit = parse_c(src, qualifier_names=QUAL_NAMES)
    program = lower_unit(unit)
    return check_program(program, quals)


# ---------------------------------------------------------------- figure 6


FIGURE6 = """
int* unique array;

void make_array(int n) {
  array = (int*)malloc(sizeof(int) * n);
  int i;
  for (i = 0; i < n; i++)
    array[i] = i;
}
"""


def test_figure6_make_array_typechecks():
    # The paper checks this example with the unique qualifier alone;
    # loading nonnull as well would (correctly) demand annotations on
    # the array dereference too.
    report = check(FIGURE6, quals=QualifierSet([UNIQUE]))
    assert report.ok, report.summary()


def test_assign_null_to_unique_ok():
    report = check("int* unique p; void f() { p = NULL; }")
    assert report.ok, report.summary()


def test_assign_malloc_to_unique_ok():
    report = check("int* unique p; void f() { p = (int*)malloc(4); }")
    assert report.ok, report.summary()


def test_assign_other_pointer_to_unique_rejected():
    report = check("int* unique p; void f(int* q) { p = q; }")
    assert not report.ok
    assert any(d.kind == "assign" and d.qualifier == "unique"
               for d in report.diagnostics)


def test_unique_reference_disallowed():
    # Section 2.2.1: int* q = p violates uniqueness.
    report = check(
        """
        int* unique p;
        void f() { int* q = p; }
        """
    )
    assert not report.ok
    assert any(d.kind == "disallow" and d.qualifier == "unique"
               for d in report.diagnostics)


def test_unique_dereference_allowed():
    # Section 2.2.1: int i = *p is perfectly safe.
    report = check(
        """
        int* unique p;
        void f() { int i = *(int* nonnull)p; }
        """
    )
    assert report.ok, report.summary()


def test_assignment_through_unique_deref_unrestricted():
    # Figure 6: array[i] = i is fine; so is *p = v.
    report = check(
        """
        int* unique p;
        void f(int v) { *(int* nonnull)p = v; }
        """
    )
    assert report.ok, report.summary()


def test_passing_unique_as_argument_disallowed():
    # Section 6.2: passing a unique global to a procedure violates the
    # disallow clause (the global is no longer unique inside).
    report = check(
        """
        void use(int* q);
        int* unique p;
        void f() { use(p); }
        """
    )
    assert not report.ok
    assert any(d.kind == "disallow" for d in report.diagnostics)


def test_unique_in_condition_is_a_reference():
    report = check(
        """
        int* unique p;
        void f() { if (p != NULL) { p = NULL; } }
        """
    )
    assert not report.ok
    assert any(d.kind == "disallow" for d in report.diagnostics)


def test_ref_qual_cast_is_unchecked():
    # Casts involving reference qualifiers remain unchecked (2.2.3).
    report = check(
        """
        int* unique p;
        void f(int* q) { p = (int* unique)q; }
        """
    )
    # The assign rule is bypassed by the cast; but reading q is fine, so
    # only... nothing should be reported.
    assert report.ok, report.summary()


def test_unique_struct_field():
    report = check(
        """
        struct holder { int* unique buf; };
        void f(struct holder* nonnull h) {
          h->buf = (int*)malloc(16);
          h->buf = NULL;
        }
        """
    )
    assert report.ok, report.summary()


def test_unique_struct_field_bad_assign():
    report = check(
        """
        struct holder { int* unique buf; };
        void f(struct holder* nonnull h, int* q) {
          h->buf = q;
        }
        """
    )
    assert not report.ok


def test_deep_unique_pointer_assignment_rejected():
    # &p has type (int* unique)*, not int**: nested qualifiers differ.
    report = check(
        """
        int* unique p;
        void f() { int** q = &p; }
        """
    )
    assert not report.ok
    assert any("nested qualifiers" in d.message for d in report.diagnostics)


# ---------------------------------------------------------------- figure 7


def test_unaliased_any_value_ok():
    report = check(
        """
        void f(int x) {
          int unaliased v = x;
          v = x + 1;
        }
        """
    )
    assert report.ok, report.summary()


def test_unaliased_address_of_rejected():
    report = check(
        """
        void f() {
          int unaliased v = 0;
          int* p = &v;
        }
        """
    )
    assert not report.ok
    assert any(d.kind == "disallow" and d.qualifier == "unaliased"
               for d in report.diagnostics)


def test_unaliased_reference_allowed():
    # disallow &X only forbids address-taking; reads are fine.
    report = check(
        """
        void f() {
          int unaliased v = 3;
          int w = v;
        }
        """
    )
    assert report.ok, report.summary()


def test_unaliased_address_as_call_argument_rejected():
    report = check(
        """
        void g(int* p);
        void f() {
          int unaliased v = 0;
          g(&v);
        }
        """
    )
    assert not report.ok


# ---------------------------------------------------- flow qualifiers (fig 4)


def test_untainted_requires_cast_without_const_rule():
    report = check(
        """
        int printf(char* untainted fmt, ...);
        void f(char* buf) {
          char* untainted fmt = (char* untainted) "%s";
          printf(fmt, buf);
        }
        """
    )
    assert report.ok, report.summary()
    assert any(c.qualifier == "untainted" for c in report.runtime_checks)


def test_printf_with_untrusted_buffer_rejected():
    report = check(
        """
        int printf(char* untainted fmt, ...);
        void f(char* buf) { printf(buf); }
        """
    )
    assert not report.ok
    assert report.errors_for("untainted")


def test_untainted_constant_rule_obviates_cast():
    quals = standard_qualifiers(trust_constants=True)
    unit = parse_c(
        """
        int printf(char* untainted fmt, ...);
        void f(char* buf) { printf("%s", buf); }
        """,
        qualifier_names=QUAL_NAMES,
    )
    report = check_program(lower_unit(unit), quals)
    assert report.ok, report.summary()


def test_anything_is_tainted():
    report = check(
        """
        void sink(char* tainted data);
        void f(char* buf) { sink(buf); }
        """
    )
    assert report.ok, report.summary()


def test_untainted_flows_to_unqualified():
    # T untainted is a subtype of T.
    report = check(
        """
        void use(char* s);
        void f(char* untainted fmt) { use(fmt); }
        """
    )
    assert report.ok, report.summary()
