"""Tests for the batch engine: per-unit isolation, verdicts, exit
codes, keep-going semantics, and the process pool."""

import time

import pytest

from repro.cfront.parser import ParseError
from repro.cfront.lexer import Token
from repro.harness import batch
from repro.harness.watchdog import Deadline, DeadlineExceeded


def _ok(unit, deadline):
    return batch.UnitResult(unit=unit, verdict=batch.OK)


def _scripted(unit, deadline):
    """Worker whose behaviour is encoded in the unit name."""
    if unit.startswith("parse-error"):
        raise ParseError("expected type", Token("punct", "{", 1, 1))
    if unit.startswith("io-error"):
        raise OSError("unreadable")
    if unit.startswith("crash"):
        raise ZeroDivisionError("internal bug")
    if unit.startswith("deep"):
        raise RecursionError()
    if unit.startswith("slow"):
        deadline.check("slow unit")
        time.sleep(0.05)
        deadline.check("slow unit")
    if unit.startswith("warn"):
        return batch.UnitResult(
            unit=unit, verdict=batch.WARNINGS, diagnostics=[{"message": "w"}]
        )
    return batch.UnitResult(unit=unit, verdict=batch.OK)


class TestRunOne:
    def test_ok(self):
        res = batch.run_one("u", _ok)
        assert res.verdict == batch.OK
        assert res.severity == 0
        assert res.elapsed >= 0

    def test_input_error_downgrades(self):
        res = batch.run_one("parse-error", _scripted)
        assert res.verdict == batch.ERROR
        assert "expected type" in res.error
        assert res.severity == 2

    def test_os_error_is_input_error(self):
        assert batch.run_one("io-error", _scripted).verdict == batch.ERROR

    def test_internal_crash_survives(self):
        res = batch.run_one("crash", _scripted)
        assert res.verdict == batch.CRASH
        assert "ZeroDivisionError" in res.error
        assert res.severity == 3

    def test_recursion_error_is_an_input_error(self):
        res = batch.run_one("deep", _scripted)
        assert res.verdict == batch.ERROR
        assert "nested" in res.error

    def test_cooperative_timeout(self):
        res = batch.run_one("slow", _scripted, unit_timeout=0.01)
        assert res.verdict == batch.TIMEOUT
        assert res.severity == 2


class TestRunUnitsSequential:
    def test_mixed_batch_reports_every_unit(self):
        report = batch.run_units(
            ["ok-1", "parse-error-2", "warn-3", "crash-4"],
            _scripted,
            keep_going=True,
        )
        verdicts = [r.verdict for r in report.results]
        assert verdicts == [batch.OK, batch.ERROR, batch.WARNINGS, batch.CRASH]
        assert report.exit_code == 3  # a crash was survived
        assert report.counts() == {
            batch.OK: 1, batch.ERROR: 1, batch.WARNINGS: 1, batch.CRASH: 1,
        }

    def test_exit_code_taxonomy(self):
        assert batch.run_units(["a", "b"], _scripted).exit_code == 0
        assert batch.run_units(["warn-a"], _scripted).exit_code == 1
        assert batch.run_units(["parse-error"], _scripted).exit_code == 2
        assert batch.run_units(["crash"], _scripted).exit_code == 3

    def test_warnings_do_not_stop_the_batch_without_keep_going(self):
        report = batch.run_units(
            ["warn-1", "ok-2"], _scripted, keep_going=False
        )
        assert [r.verdict for r in report.results] == [
            batch.WARNINGS, batch.OK,
        ]

    def test_stop_on_error_without_keep_going(self):
        report = batch.run_units(
            ["ok-1", "parse-error-2", "ok-3"], _scripted, keep_going=False
        )
        assert [r.verdict for r in report.results] == [
            batch.OK, batch.ERROR, batch.SKIPPED,
        ]
        assert report.exit_code == 2  # the skip does not mask the error

    def test_keep_going_checks_everything(self):
        report = batch.run_units(
            ["parse-error-1", "ok-2", "warn-3"], _scripted, keep_going=True
        )
        assert [r.verdict for r in report.results] == [
            batch.ERROR, batch.OK, batch.WARNINGS,
        ]

    def test_to_dict_shape(self):
        report = batch.run_units(["ok", "warn-x"], _scripted)
        data = report.to_dict()
        assert data["exit_code"] == 1
        assert [u["verdict"] for u in data["units"]] == [
            batch.OK, batch.WARNINGS,
        ]
        assert data["units"][1]["diagnostics"] == [{"message": "w"}]
        assert data["counts"][batch.WARNINGS] == 1

    def test_summary_mentions_counts(self):
        report = batch.run_units(["ok", "crash"], _scripted)
        assert "1 CRASH" in report.summary()
        assert "1 OK" in report.summary()


def _pool_worker(unit, deadline):
    if unit == "hang":
        while True:  # ignores its deadline: must be killed preemptively
            time.sleep(0.05)
    if unit == "crash":
        raise ZeroDivisionError("boom")
    return batch.UnitResult(unit=unit, verdict=batch.OK)


class TestProcessPool:
    def test_pool_preserves_order_and_isolates_failures(self):
        report = batch.run_units(
            ["a", "crash", "b"], _pool_worker, jobs=3, keep_going=True
        )
        assert [r.unit for r in report.results] == ["a", "crash", "b"]
        assert [r.verdict for r in report.results] == [
            batch.OK, batch.CRASH, batch.OK,
        ]

    def test_pool_kills_hung_unit_and_reaps_it(self):
        start = time.perf_counter()
        report = batch.run_units(
            ["a", "hang", "b"],
            _pool_worker,
            jobs=3,
            keep_going=True,
            unit_timeout=0.5,
        )
        elapsed = time.perf_counter() - start
        by_unit = {r.unit: r for r in report.results}
        assert by_unit["hang"].verdict == batch.TIMEOUT
        assert by_unit["a"].verdict == batch.OK
        assert by_unit["b"].verdict == batch.OK
        assert elapsed < 10.0  # the hang did not stall the run

    def test_pool_single_job_fallback(self):
        # jobs=1 takes the sequential path even when requested via pool
        report = batch.run_units(["a", "b"], _pool_worker, jobs=1)
        assert report.exit_code == 0
