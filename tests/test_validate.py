"""Tests for qualifier-definition validation (lint)."""

from repro.core.qualifiers.library import standard_qualifiers
from repro.core.qualifiers.parser import parse_qualifier
from repro.core.qualifiers.validate import validate_definition, validate_set

QUALS = standard_qualifiers()


def problems_of(src):
    return validate_definition(parse_qualifier(src), QUALS)


def test_standard_library_is_clean():
    assert validate_set(QUALS) == []


def test_undefined_qualifier_reference():
    problems = problems_of(
        """
        value qualifier q(int Expr E)
          case E of
            decl int Expr E1: E1, where ghostqual(E1)
        """
    )
    assert any("ghostqual" in p for p in problems)


def test_comparison_on_non_const():
    problems = problems_of(
        """
        value qualifier q(int Expr E)
          case E of
            decl int Expr E1: E1, where E1 > 0
        """
    )
    assert any("Const" in p for p in problems)


def test_unbound_predicate_variable():
    problems = problems_of(
        """
        value qualifier q(int Expr E)
          case E of
            decl int Expr E1, E2: -E1, where q(E2)
        """
    )
    assert any("E2" in p and "not bind" in p for p in problems)


def test_unused_declared_variable():
    problems = problems_of(
        """
        value qualifier q(int Expr E)
          case E of
            decl int Expr E1, E2: -E1
        """
    )
    assert any("never bound" in p for p in problems)


def test_invariant_wrong_subject_name():
    problems = problems_of(
        """
        value qualifier q(int Expr E)
          invariant value(F) > 0
        """
    )
    assert any("does not name the subject" in p for p in problems)


def test_location_in_value_invariant():
    problems = problems_of(
        """
        value qualifier q(int Expr E)
          invariant location(E) != NULL
        """
    )
    assert any("reference qualifiers" in p for p in problems)


def test_unbound_invariant_variable():
    problems = problems_of(
        """
        ref qualifier q(int* LValue L)
          assign L NULL
          invariant *P != location(L)
        """
    )
    assert any("unbound variable 'P'" in p for p in problems)


def test_forall_binds_invariant_variable():
    problems = problems_of(
        """
        ref qualifier q(int* LValue L)
          assign L NULL
          invariant forall int* P: *P != location(L)
        """
    )
    assert problems == []


def test_ref_qualifier_without_introduction():
    problems = problems_of(
        """
        ref qualifier q(int* LValue L)
          disallow L
          invariant value(L) == NULL
        """
    )
    assert any("neither assign rules nor ondecl" in p for p in problems)


def test_value_invariant_without_cases_noted():
    problems = problems_of(
        """
        value qualifier q(int Expr E)
          invariant value(E) > 0
        """
    )
    assert any("only casts" in p for p in problems)
