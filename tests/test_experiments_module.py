"""Tests for the experiments module (the rows the benchmark harness and
EXPERIMENTS.md are generated from)."""

import pytest

from repro.analysis.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    soundness_timings,
    table1_nonnull,
    table2_untainted,
    typecheck_timings,
    uniqueness_experiment,
)


@pytest.fixture(scope="module")
def t1():
    return table1_nonnull()


@pytest.fixture(scope="module")
def t2():
    return table2_untainted()


def test_table1_row_is_complete(t1):
    for key in ("lines", "dereferences", "annotations", "casts", "errors"):
        assert key in t1
        assert key in t1["paper"]


def test_table1_shape(t1):
    assert t1["errors"] == 0
    derefs = t1["dereferences"]
    assert 0.05 * derefs <= t1["annotations"] <= 0.2 * derefs
    assert t1["casts"] < t1["annotations"]


def test_table1_scale_within_20_percent_of_paper(t1):
    for key in ("lines", "dereferences"):
        paper = PAPER_TABLE1[key]
        assert abs(t1[key] - paper) <= 0.2 * paper, key


def test_table2_exact_result_columns(t2):
    for program, row in t2.items():
        for key in ("annotations", "casts", "errors"):
            assert row[key] == PAPER_TABLE2[program][key], (program, key)


def test_table2_vulnerability_is_the_paper_one(t2):
    assert len(t2["bftpd"]["error_messages"]) == 1
    assert "d_name" in t2["bftpd"]["error_messages"][0]


def test_uniqueness_row():
    row = uniqueness_experiment()
    assert row["errors"] == 0
    paper_refs = row["paper"]["validated_references"]
    assert abs(row["validated_references"] - paper_refs) <= 0.3 * paper_refs


def test_typecheck_timings_under_paper_bound():
    rows = typecheck_timings()
    assert set(rows) == {
        "dfa (synthetic grep)",
        "bftpd (synthetic)",
        "mingetty (synthetic)",
        "identd (synthetic)",
    }
    for name, row in rows.items():
        assert row["seconds"] < row["paper_bound_seconds"], name


@pytest.mark.slow
def test_soundness_timings_table():
    rows = soundness_timings(time_limit=45)
    assert all(row["sound"] for row in rows.values())
    value_max = max(
        row["seconds"] for row in rows.values() if row["kind"] == "value"
    )
    ref_max = max(
        row["seconds"] for row in rows.values() if row["kind"] == "ref"
    )
    # Shape: values prove much faster than refs; refs within paper bound.
    assert value_max < ref_max
    assert ref_max < 30
