"""The observability layer (repro.obs) and its pipeline integration.

Covers the contract promised in docs/observability.md:

* spans nest, time monotonically, and survive mispaired exits;
* the disabled path allocates nothing (a shared no-op singleton);
* pool workers ship their collector snapshot home through the result
  pipe and the parent merges it (sums counters, maxes ``*_peak`` ones,
  grafts spans with the child pid stamped);
* ``mark``/``since`` slice one invocation out of a long-lived
  collector; ``build_timings`` derives the per-theory prover split;
* a timed-out pool batch leaks no file descriptors (regression: the
  abort path used to drop the read ends unclosed);
* ``profile=True`` on an API request adds the additive ``timings``
  block — and ``profile=False`` adds nothing;
* the cache-store fixes: ``created`` is a monotonic insertion
  sequence, and ``stores`` is not counted when the disk tier failed;
* the difftest minimizer records *why* it crashed instead of silently
  returning None.
"""

import dataclasses
import json
import os
import sqlite3
import time

import pytest

from repro import obs
from repro.cache.store import ProofCache
from repro.cache.fingerprint import ProofKey
from repro.harness import batch
from repro.obs.collector import NULL_SPAN, Collector


@pytest.fixture(autouse=True)
def _clean_collector():
    """Every test starts and ends with profiling off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ------------------------------------------------------------ collector


class TestCollector:
    def test_spans_nest_and_time(self):
        obs.enable()
        with obs.span("outer", unit="u"):
            time.sleep(0.002)
            with obs.span("inner"):
                time.sleep(0.002)
        (root,) = obs.snapshot()["spans"]
        assert root["name"] == "outer"
        assert root["attrs"] == {"unit": "u"}
        (child,) = root["children"]
        assert child["name"] == "inner"
        assert root["ms"] >= child["ms"] > 0

    def test_counters_timer_and_peak(self):
        obs.enable()
        obs.incr("a", 2)
        obs.incr("a")
        with obs.timer("t_ms"):
            time.sleep(0.002)
        obs.count_max("q_peak", 5)
        obs.count_max("q_peak", 3)
        counters = obs.snapshot()["counters"]
        assert counters["a"] == 3
        assert counters["t_ms"] > 0
        assert counters["q_peak"] == 5

    def test_disabled_mode_returns_shared_noop_singleton(self):
        assert not obs.enabled()
        assert obs.span("x", anything=1) is NULL_SPAN
        assert obs.timer("y_ms") is NULL_SPAN
        obs.incr("never")
        obs.count_max("never_peak", 9)
        with obs.span("x"):
            pass
        assert obs.snapshot()["counters"] == {}
        assert obs.snapshot()["spans"] == []

    def test_mark_since_slices_one_invocation(self):
        obs.enable()
        obs.incr("n", 5)
        with obs.span("before"):
            pass
        marker = obs.mark()
        obs.incr("n", 2)
        with obs.span("after"):
            pass
        slice_ = obs.since(marker)
        assert slice_["counters"] == {"n": 2}
        assert [s["name"] for s in slice_["spans"]] == ["after"]

    def test_merge_sums_counters_and_maxes_peaks(self):
        obs.enable()
        obs.incr("n", 1)
        obs.count_max("c_peak", 10)
        obs.merge(
            {
                "pid": 99999,
                "counters": {"n": 4, "c_peak": 7, "fresh": 1},
                "spans": [
                    {"name": "unit", "attrs": {}, "ms": 1.5, "children": []}
                ],
            }
        )
        counters = obs.snapshot()["counters"]
        assert counters["n"] == 5
        assert counters["c_peak"] == 10  # max, not 17
        assert counters["fresh"] == 1
        grafted = [
            s for s in obs.snapshot()["spans"] if s["name"] == "unit"
        ]
        assert grafted and grafted[0]["attrs"]["pid"] == 99999

    def test_mispaired_exit_does_not_corrupt_the_stack(self):
        collector = Collector()
        outer = collector.span("outer", {})
        inner = collector.span("inner", {})
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # out of order
        inner.__exit__(None, None, None)
        # Nothing raises, every span still lands somewhere, and a fresh
        # span opened afterwards nests normally.
        with collector.span("later", {}):
            pass
        names = {s["name"] for s in collector.snapshot()["spans"]}
        assert "outer" in names and "later" in names


class TestBuildTimings:
    def test_euf_is_theory_minus_linarith(self):
        slice_ = {
            "counters": {
                "prover.theory_ms": 10.0,
                "prover.linarith_ms": 4.0,
                "prover.calls": 2,
            },
            "spans": [],
        }
        timings = obs.build_timings(slice_, total_ms=50.0)
        assert timings["prover"]["euf_ms"] == 6.0
        assert timings["prover"]["calls"] == 2
        assert timings["total_ms"] == 50.0

    def test_phase_spans_are_aggregated_with_counts(self):
        slice_ = {
            "counters": {},
            "spans": [
                {
                    "name": "parse",
                    "attrs": {},
                    "ms": 2.0,
                    "children": [
                        {"name": "parse", "attrs": {}, "ms": 1.0,
                         "children": []},
                    ],
                },
            ],
        }
        timings = obs.build_timings(slice_)
        assert timings["phases"]["parse"] == {"ms": 3.0, "count": 2}


# ------------------------------------------------------ pool integration


def _obs_worker(unit, deadline):
    obs.incr("worker.calls")
    obs.count_max("worker.n_peak", int(unit[-1]))
    with obs.span("work", unit=unit):
        pass
    return batch.UnitResult(unit=unit, verdict=batch.OK)


def _hang_worker(unit, deadline):
    if unit == "hang":
        while True:
            time.sleep(0.05)
    return batch.UnitResult(unit=unit, verdict=batch.OK)


def _flaky_worker(unit, deadline):
    if unit == "bad":
        raise OSError("broken input")
    time.sleep(0.05)
    return batch.UnitResult(unit=unit, verdict=batch.OK)


def _open_fds():
    return set(os.listdir("/proc/self/fd"))


class TestPoolObservability:
    def test_fork_workers_ship_spans_and_counters_home(self):
        obs.enable()
        report = batch.run_units(
            ["w1", "w2", "w3"], _obs_worker, jobs=2, keep_going=True
        )
        assert report.exit_code == 0
        counters = obs.snapshot()["counters"]
        assert counters["worker.calls"] == 3  # summed across children
        assert counters["worker.n_peak"] == 3  # maxed across children
        spans = obs.snapshot()["spans"]
        units = [s for s in spans if s["name"] == "unit"]
        assert len(units) == 3
        # Child spans carry their origin pid and their nested tree.
        own_pid = os.getpid()
        assert all(s["attrs"].get("pid") != own_pid for s in units)
        assert {c["name"] for u in units for c in u["children"]} == {"work"}
        # Shipped snapshots are consumed, not serialized.
        assert all(r.obs is None for r in report.results)

    def test_disabled_pool_run_ships_nothing(self):
        report = batch.run_units(
            ["w1", "w2"], _obs_worker, jobs=2, keep_going=True
        )
        assert report.exit_code == 0
        assert obs.snapshot()["counters"] == {}

    def test_timed_out_batch_leaks_no_fds(self):
        before = _open_fds()
        report = batch.run_units(
            ["ok1", "hang", "ok2"],
            _hang_worker,
            jobs=3,
            keep_going=True,
            unit_timeout=0.4,
        )
        by_unit = {r.unit: r.verdict for r in report.results}
        assert by_unit["hang"] == batch.TIMEOUT
        after = _open_fds()
        assert after - before == set(), "pool leaked file descriptors"

    def test_early_stop_leaks_no_fds(self):
        before = _open_fds()
        batch.run_units(
            ["bad"] + [f"u{i}" for i in range(6)],
            _flaky_worker,
            jobs=2,
            keep_going=False,
        )
        assert _open_fds() - before == set()


# -------------------------------------------------------- api integration


class TestApiTimings:
    EXAMPLES = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "examples",
    )

    def test_profile_request_attaches_timings(self):
        from repro import api

        report = api.Session().check(
            api.CheckRequest(
                files=(os.path.join(self.EXAMPLES, "nonnull.c"),),
                profile=True,
            )
        )
        timings = report.to_dict()["timings"]
        for phase in ("parse", "lower", "typecheck"):
            assert timings["phases"][phase]["ms"] > 0
        assert timings["total_ms"] > 0
        # The request turned the collector on; it must turn it off.
        assert not obs.enabled()

    def test_unprofiled_request_attaches_nothing(self):
        from repro import api

        report = api.Session().check(
            api.CheckRequest(
                files=(os.path.join(self.EXAMPLES, "nonnull.c"),),
            )
        )
        assert "timings" not in report.to_dict()
        assert obs.snapshot()["counters"] == {}

    def test_profiled_check_with_custom_quals_times_the_prover(self):
        from repro import api

        report = api.Session(
            quals=(os.path.join(self.EXAMPLES, "posneg.qual"),)
        ).check(
            api.CheckRequest(
                files=(os.path.join(self.EXAMPLES, "nonnull.c"),),
                profile=True,
            )
        )
        payload = report.to_dict()
        assert payload["timings"]["prover"]["calls"] > 0
        assert payload["timings"]["prover"]["proofs_ms"] > 0
        # The calibration pass never changes the check outcome.
        assert payload["exit_code"] == report.exit_code


# ------------------------------------------------------ cache store fixes


class TestStoreFixes:
    PAYLOAD = {"proved": True, "verdict": "PROVED", "reason": ""}

    def _key(self, i):
        return ProofKey(obligation=f"ob{i}", environment="env")

    def test_created_is_a_monotonic_insertion_sequence(self, tmp_path):
        cache = ProofCache(cache_dir=str(tmp_path))
        for i in range(3):
            assert cache.put(self._key(i), self.PAYLOAD)
        with sqlite3.connect(os.path.join(str(tmp_path), "proofs.sqlite")) as conn:
            rows = conn.execute(
                "SELECT obl_key, created FROM proofs ORDER BY created"
            ).fetchall()
        assert [r[0] for r in rows] == ["ob0", "ob1", "ob2"]
        assert [r[1] for r in rows] == [1, 2, 3]
        cache.close()

    def test_stores_not_counted_when_disk_write_fails(self, tmp_path):
        cache = ProofCache(cache_dir=str(tmp_path))
        # A payload json.dumps cannot serialize: the disk write fails,
        # the disk tier is abandoned — and `stores` must NOT count it.
        bad = {"verdict": "PROVED", "junk": {1, 2}}
        assert cache.put(self._key(0), bad)
        assert cache.counters["stores"] == 0
        assert not cache.disk_available
        # The memory tier still serves it back.
        assert cache.get(self._key(0)) is not None
        cache.close()

    def test_memory_only_cache_counts_stores(self):
        cache = ProofCache(cache_dir=None)
        assert cache.put(self._key(0), self.PAYLOAD)
        assert cache.counters["stores"] == 1
        cache.close()

    def test_cache_counters_mirror_into_obs(self, tmp_path):
        obs.enable()
        cache = ProofCache(cache_dir=str(tmp_path))
        cache.put(self._key(0), self.PAYLOAD)
        assert cache.get(self._key(0)) is not None
        assert cache.get(self._key(1)) is None
        counters = obs.snapshot()["counters"]
        assert counters["cache.stores"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1
        cache.close()


# -------------------------------------------------- difftest minimizer fix


class TestMinimizerErrorRecording:
    def test_minimizer_crash_is_recorded_not_swallowed(self):
        from repro.difftest.generator import GenConfig, GeneratedCase
        from repro.difftest.oracles import Finding
        from repro.difftest.runner import minimize_finding

        case = GeneratedCase(
            name="case-x",
            seed=0,
            index=0,
            config=GenConfig(),
            c_source="int main() { return 0; }",
            qual_source="",
        )
        # "case x:" makes the rule-index parse raise ValueError inside
        # the minimizer — exactly the crash class that used to vanish.
        finding = Finding(
            oracle="prover-vs-enum",
            kind="disagreement",
            case="case-x",
            detail={"rule": "case x: bogus", "qualifier": "q"},
        )
        result = minimize_finding(case, finding, time_limit=1.0)
        assert result is not None
        assert "ValueError" in result["minimize_error"]

    def test_non_reproducing_reduction_still_returns_none(self):
        from repro.difftest.generator import GenConfig, GeneratedCase
        from repro.difftest.oracles import Finding
        from repro.difftest.runner import minimize_finding

        case = GeneratedCase(
            name="case-y",
            seed=0,
            index=0,
            config=GenConfig(),
            c_source="int main() { return 0; }",
            qual_source="",
        )
        finding = Finding(
            oracle="prover-vs-enum",
            kind="disagreement",
            case="case-y",
            detail={},  # no rule/qualifier: minimizer declines cleanly
        )
        assert minimize_finding(case, finding, time_limit=1.0) is None


# ------------------------------------------------------------ bench shim


class TestBenchRunner:
    def test_discovers_the_repo_suites(self):
        from repro.obs import bench

        suites = bench.discover_suites()
        assert "typecheck_time" in suites
        assert all(p.endswith(".py") for p in suites.values())
        for smoke_suite in bench.SMOKE_SUITES:
            assert smoke_suite in suites

    def test_shim_times_and_returns_the_result(self):
        from repro.obs.bench import BenchmarkShim

        shim = BenchmarkShim(warmup=1, repeat=2)
        calls = []
        result = shim(lambda: calls.append(1) or "value")
        assert result == "value"
        assert len(calls) == 3  # 1 warmup + 2 timed rounds
        assert shim.stats["rounds"] == 2
        assert shim.stats["mean"] >= 0

    def test_parametrize_expansion_with_ids(self):
        import pytest as _pytest

        from repro.obs.bench import _expand_cases

        @_pytest.mark.parametrize("n", [1, 2], ids=lambda v: f"v{v}")
        def case(benchmark, n):
            pass

        expanded = _expand_cases(case)
        assert [(s, b["n"]) for s, b in expanded] == [
            ("[v1]", 1), ("[v2]", 2),
        ]
