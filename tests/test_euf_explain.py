"""Proof-forest explanations: unit and property tests.

The explain-mode congruence closure must answer ``explain(a, b)`` with
exactly the input literals responsible for ``a = b`` — through
transitivity, through congruence steps, and across push/pop — and the
:class:`~repro.prover.combine.TheoryState` built on it must hand the
SMT loop conflict cores that are theory-unsat, 1-minimal, and
verdict-identical to the search-based ddmin minimizer it replaces.
"""

import random

import pytest

from repro.prover import combine
from repro.prover.euf import CongruenceClosure, EufConflict
from repro.prover.terms import Eq, Int, Le, Lt, fn

a, b, c, d, e = fn("a"), fn("b"), fn("c"), fn("d"), fn("e")


def lit(atom, polarity=True):
    return (atom, polarity)


def tags(*lits):
    return frozenset(lits)


# ------------------------------------------------------- explain() units


class TestExplain:
    def test_direct_assertion(self):
        cc = CongruenceClosure(explain=True)
        l1 = lit(Eq(a, b))
        cc.assert_eq(a, b, tags=tags(l1))
        assert cc.explain(a, b) == {l1}

    def test_reflexive_pair_is_empty(self):
        cc = CongruenceClosure(explain=True)
        cc.add_term(a)
        assert cc.explain(a, a) == frozenset()

    def test_transitive_chain_unions_tags(self):
        cc = CongruenceClosure(explain=True)
        l1, l2, l3 = lit(Eq(a, b)), lit(Eq(b, c)), lit(Eq(c, d))
        cc.assert_eq(a, b, tags=tags(l1))
        cc.assert_eq(b, c, tags=tags(l2))
        cc.assert_eq(c, d, tags=tags(l3))
        assert cc.explain(a, d) == {l1, l2, l3}
        # Sub-queries stay sharp: only the needed links are blamed.
        assert cc.explain(a, c) == {l1, l2}
        assert cc.explain(c, d) == {l3}

    def test_congruence_recurses_into_arguments(self):
        cc = CongruenceClosure(explain=True)
        cc.add_term(fn("f", a))
        cc.add_term(fn("f", b))
        l1 = lit(Eq(a, b))
        cc.assert_eq(a, b, tags=tags(l1))
        assert cc.explain(fn("f", a), fn("f", b)) == {l1}

    def test_nested_congruence_collects_all_argument_reasons(self):
        cc = CongruenceClosure(explain=True)
        t1 = fn("g", fn("f", a), c)
        t2 = fn("g", fn("f", b), d)
        cc.add_term(t1)
        cc.add_term(t2)
        l1, l2 = lit(Eq(a, b)), lit(Eq(c, d))
        cc.assert_eq(a, b, tags=tags(l1))
        cc.assert_eq(c, d, tags=tags(l2))
        assert cc.explain(t1, t2) == {l1, l2}

    def test_irrelevant_assertions_not_blamed(self):
        cc = CongruenceClosure(explain=True)
        l1, noise = lit(Eq(a, b)), lit(Eq(d, e))
        cc.assert_eq(a, b, tags=tags(l1))
        cc.assert_eq(d, e, tags=tags(noise))
        assert cc.explain(a, b) == {l1}


# ------------------------------------------------------- conflict cores


class TestConflictCores:
    def test_neq_against_existing_merge(self):
        cc = CongruenceClosure(explain=True)
        l1, l2 = lit(Eq(a, b)), lit(Eq(a, b), False)
        cc.assert_eq(a, b, tags=tags(l1))
        with pytest.raises(EufConflict) as exc:
            cc.assert_neq(a, b, tags=tags(l2))
        assert exc.value.core == {l1, l2}

    def test_deferred_disequality_refires_with_full_core(self):
        cc = CongruenceClosure(explain=True)
        ln, l1, l2 = lit(Eq(a, c), False), lit(Eq(a, b)), lit(Eq(b, c))
        cc.assert_neq(a, c, tags=tags(ln))
        cc.assert_eq(a, b, tags=tags(l1))
        with pytest.raises(EufConflict) as exc:
            cc.assert_eq(b, c, tags=tags(l2))
        assert exc.value.core == {ln, l1, l2}

    def test_distinct_integers_conflict(self):
        cc = CongruenceClosure(explain=True)
        l1, l2 = lit(Eq(a, Int(1))), lit(Eq(a, Int(2)))
        cc.assert_eq(a, Int(1), tags=tags(l1))
        with pytest.raises(EufConflict) as exc:
            cc.assert_eq(a, Int(2), tags=tags(l2))
        assert exc.value.core == {l1, l2}

    def test_untagged_axioms_stay_out_of_cores(self):
        # The @true != @false axiom carries no tags, so a predicate
        # conflict blames only the input literals.
        cc = CongruenceClosure(explain=True)
        t, f = fn("@true"), fn("@false")
        cc.assert_neq(t, f)
        l1, l2 = lit(Eq(a, t)), lit(Eq(a, f))
        cc.assert_eq(a, t, tags=tags(l1))
        with pytest.raises(EufConflict) as exc:
            cc.assert_eq(a, f, tags=tags(l2))
        assert exc.value.core == {l1, l2}


# ----------------------------------------------------------- push / pop


class TestPushPop:
    def test_pop_retracts_merges_and_forest(self):
        cc = CongruenceClosure(explain=True)
        l1 = lit(Eq(a, b))
        cc.assert_eq(a, b, tags=tags(l1))
        mark = cc.mark
        cc.assert_eq(b, c, tags=tags(lit(Eq(b, c))))
        assert cc.are_equal(a, c)
        cc.pop_to(mark)
        assert cc.are_equal(a, b)
        assert not cc.are_equal(a, c)
        assert cc.explain(a, b) == {l1}

    def test_reassert_after_pop_explains_freshly(self):
        cc = CongruenceClosure(explain=True)
        l1 = lit(Eq(a, b))
        cc.assert_eq(a, b, tags=tags(l1))
        mark = cc.mark
        cc.assert_eq(b, c, tags=tags(lit(Eq(b, c))))
        cc.pop_to(mark)
        l3 = lit(Eq(a, c))
        cc.assert_eq(a, c, tags=tags(l3))
        assert cc.explain(b, c) == {l1, l3}

    def test_push_pop_frames(self):
        cc = CongruenceClosure(explain=True)
        cc.assert_eq(a, b)
        cc.push()
        cc.assert_eq(c, d)
        assert cc.are_equal(c, d)
        cc.pop()
        assert not cc.are_equal(c, d)
        assert cc.are_equal(a, b)

    def test_pop_retracts_congruence_and_new_terms(self):
        cc = CongruenceClosure(explain=True)
        cc.add_term(fn("f", a))
        mark = cc.mark
        cc.add_term(fn("f", b))
        cc.assert_eq(a, b, tags=tags(lit(Eq(a, b))))
        assert cc.are_equal(fn("f", a), fn("f", b))
        cc.pop_to(mark)
        assert not cc.are_equal(a, b)
        # Re-running the same sequence on the restored state works.
        cc.add_term(fn("f", b))
        cc.assert_eq(a, b, tags=tags(lit(Eq(a, b))))
        assert cc.are_equal(fn("f", a), fn("f", b))

    def test_pop_restores_pending_disequalities(self):
        cc = CongruenceClosure(explain=True)
        mark = cc.mark
        cc.assert_neq(a, b, tags=tags(lit(Eq(a, b), False)))
        cc.pop_to(mark)
        # The disequality was retracted with the frame.
        cc.assert_eq(a, b, tags=tags(lit(Eq(a, b))))
        assert cc.are_equal(a, b)


# --------------------------------------------- property: explained cores


def _random_literals(rng, n):
    consts = [a, b, c, d, e]

    def term():
        r = rng.random()
        if r < 0.45:
            return rng.choice(consts)
        if r < 0.70:
            return Int(rng.randint(0, 3))
        if r < 0.90:
            return fn("f", rng.choice(consts))
        return fn("g", rng.choice(consts), rng.choice(consts))

    literals = []
    for _ in range(n):
        t1, t2 = term(), term()
        kind = rng.random()
        if kind < 0.5:
            atom = Eq(t1, t2)
        elif kind < 0.8:
            atom = Le(t1, t2)
        else:
            atom = Lt(t1, t2)
        literals.append((atom, rng.random() < 0.7))
    return literals


@pytest.mark.parametrize("seed", range(60))
def test_explained_cores_are_unsat_minimal_and_verdict_identical(seed):
    rng = random.Random(f"euf-explain:{seed}")
    literals = _random_literals(rng, rng.randint(3, 12))

    forest_core = combine.TheoryState().check(list(literals))
    ddmin_core = combine._check(list(literals))

    # Verdict identity: both strategies agree on consistency.
    assert (forest_core is None) == (ddmin_core is None)
    if forest_core is None:
        return
    # The explained core is a subset of the input literals...
    assert all(l in literals for l in forest_core)
    # ...theory-unsat...
    assert not combine._consistent(forest_core)
    # ...and 1-minimal: dropping any single literal restores
    # consistency.
    for i in range(len(forest_core)):
        rest = forest_core[:i] + forest_core[i + 1 :]
        assert combine._consistent(rest), (
            f"core not 1-minimal: literal {forest_core[i]} is redundant"
        )


@pytest.mark.parametrize("seed", range(10))
def test_warm_state_reuse_preserves_verdicts(seed):
    # Re-checking permuted/extended literal lists against one warm
    # TheoryState must keep agreeing with cold ddmin checks.
    rng = random.Random(f"euf-explain-warm:{seed}")
    state = combine.TheoryState()
    base = _random_literals(rng, 8)
    for _ in range(6):
        literals = [l for l in base if rng.random() < 0.8]
        rng.shuffle(literals)
        warm = state.check(list(literals))
        cold = combine._check(list(literals))
        assert (warm is None) == (cold is None)
        if warm is not None:
            assert not combine._consistent(warm)


# ------------------------------------- difftest corpus: forest vs ddmin


def test_forest_vs_ddmin_agrees_on_difftest_corpus():
    from repro.difftest import oracles, runner
    from repro.difftest.generator import GenConfig, generate_case

    compared = 0
    for index in range(4):
        case = generate_case(0, index, GenConfig())
        quals, gen_names = runner.build_qualifier_set(case)
        findings, counters = oracles.explain_vs_ddmin(
            case, quals, gen_names, time_limit=10.0
        )
        assert findings == [], [f.to_dict() for f in findings]
        compared += counters["compared"]
    assert compared > 0, "oracle never compared a verdict"
