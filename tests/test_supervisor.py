"""The supervised pool: crash retry, hang detection, quarantine,
zombie reaping, streaming callbacks, and interrupt semantics."""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro import faults
from repro.harness import batch
from repro.harness.supervisor import Supervisor, SupervisorConfig


@pytest.fixture(autouse=True)
def clean_fault_state():
    faults.deactivate()
    yield
    faults.deactivate()


def fast_config(**overrides) -> SupervisorConfig:
    """A supervisor tuned for test speed: tight heartbeats and hang
    detection, minimal backoff."""
    defaults = dict(
        jobs=2,
        heartbeat_interval=0.05,
        hang_timeout=1.0,
        backoff=0.01,
        keep_going=True,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _scripted(unit, deadline):
    """Worker whose behaviour is encoded in the unit name.

    ``diehard:<path>`` SIGKILLs itself unless ``<path>`` exists (and
    creates it first), so the unit dies on attempt 1 and succeeds on
    attempt 2 — the canonical transient worker death.
    ``always-die`` SIGKILLs itself unconditionally (a poison unit).
    ``slow`` sleeps briefly; ``emit`` streams a progress event.
    """
    if unit.startswith("diehard:"):
        marker = unit.split(":", 1)[1]
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("died once")
            os.kill(os.getpid(), signal.SIGKILL)
        return batch.UnitResult(unit=unit, verdict=batch.OK)
    if unit.startswith("always-die"):
        os.kill(os.getpid(), signal.SIGKILL)
    if unit.startswith("drop-pipe"):
        os._exit(0)  # exits without sending a result
    if unit.startswith("slow"):
        time.sleep(0.3)
    if unit.startswith("emit"):
        batch.emit_progress({"event": "tick", "unit": unit})
    if unit.startswith("warn"):
        return batch.UnitResult(unit=unit, verdict=batch.WARNINGS)
    if unit.startswith("error"):
        raise OSError("scripted input error")
    return batch.UnitResult(unit=unit, verdict=batch.OK)


class TestRetry:
    def test_transient_death_is_retried_and_recovers(self, tmp_path):
        unit = f"diehard:{tmp_path}/marker"
        report = Supervisor(fast_config()).run([unit, "ok"], _scripted)
        by_unit = {r.unit: r for r in report.results}
        assert by_unit[unit].verdict == batch.OK
        assert by_unit[unit].attempts == 2
        assert by_unit["ok"].verdict == batch.OK
        assert report.meta["supervisor"]["deaths"] == 1
        assert report.meta["supervisor"]["retries"] == 1
        assert report.meta["supervisor"]["quarantined"] == 0
        assert report.exit_code == 0

    def test_dropped_pipe_is_a_death_not_a_crash(self):
        report = Supervisor(fast_config(max_worker_deaths=2)).run(
            ["drop-pipe", "ok"], _scripted
        )
        by_unit = {r.unit: r for r in report.results}
        assert by_unit["drop-pipe"].verdict == batch.GAVE_UP
        assert "pipe" in by_unit["drop-pipe"].error
        assert by_unit["ok"].verdict == batch.OK

    def test_undisturbed_run_has_no_supervisor_meta(self):
        report = Supervisor(fast_config()).run(["a", "b", "c"], _scripted)
        assert "supervisor" not in report.meta
        assert "interrupted" not in report.meta
        assert report.exit_code == 0


class TestQuarantine:
    def test_poison_unit_reports_gave_up_with_diagnostic(self):
        report = Supervisor(fast_config()).run(
            ["always-die", "ok-1", "ok-2"], _scripted
        )
        by_unit = {r.unit: r for r in report.results}
        poisoned = by_unit["always-die"]
        assert poisoned.verdict == batch.GAVE_UP
        assert poisoned.severity == 2
        assert poisoned.attempts == 3  # default max_worker_deaths
        (diag,) = poisoned.diagnostics
        assert diag["code"] == "Q007"
        assert diag["kind"] == "quarantine"
        assert "3 worker(s)" in diag["message"]
        # Unaffected units are unaffected.
        assert by_unit["ok-1"].verdict == batch.OK
        assert by_unit["ok-2"].verdict == batch.OK
        assert report.exit_code == 2
        assert report.meta["supervisor"]["quarantined"] == 1

    def test_quarantine_respects_max_worker_deaths(self):
        report = Supervisor(fast_config(max_worker_deaths=1)).run(
            ["always-die"], _scripted
        )
        (result,) = report.results
        assert result.verdict == batch.GAVE_UP
        assert result.attempts == 1  # no retry budget at 1


class TestHangDetection:
    def test_stalled_worker_is_detected_and_quarantined(self):
        # The stall fault silences the child's heartbeat and sleeps —
        # a hard hang only heartbeat staleness can catch.
        faults.activate("seed=0,stall=1,stall_s=60")
        report = Supervisor(
            fast_config(hang_timeout=0.4, max_worker_deaths=2)
        ).run(["victim"], _scripted)
        (result,) = report.results
        assert result.verdict == batch.GAVE_UP
        assert "hung" in result.error
        assert report.meta["supervisor"]["hangs"] == 2

    def test_transient_stall_recovers_on_retry(self):
        # Worker-fault keys include the attempt number, so pick a unit
        # whose stall fires on attempt 1 but not on attempt 2.
        plan = faults.FaultPlan(seed=0, rates={"stall": 0.5})
        unit = next(
            f"unit-{i}"
            for i in range(1000)
            if plan.decide("stall", f"unit-{i}#1")
            and not plan.decide("stall", f"unit-{i}#2")
        )
        faults.activate("seed=0,stall=0.5,stall_s=60")
        report = Supervisor(fast_config(hang_timeout=0.4)).run(
            [unit], _scripted
        )
        (result,) = report.results
        assert result.verdict == batch.OK
        assert result.attempts == 2
        assert report.meta["supervisor"]["hangs"] == 1

    def test_healthy_slow_worker_is_not_flagged_as_hung(self):
        # Heartbeats outlive a slow unit: 0.3 s of work under a 1 s
        # hang timeout with 0.05 s beats must not count as a death.
        report = Supervisor(fast_config()).run(["slow-1", "slow-2"], _scripted)
        assert all(r.verdict == batch.OK for r in report.results)
        assert "supervisor" not in report.meta


class TestTimeouts:
    def test_timeout_is_final_never_retried(self):
        report = Supervisor(
            fast_config(unit_timeout=0.2, hang_timeout=5.0)
        ).run(["slow-halt", "ok"], _scripted)
        by_unit = {r.unit: r for r in report.results}
        # "slow" sleeps 0.3 s > the 0.2 s budget: preemptively killed.
        assert by_unit["slow-halt"].verdict == batch.TIMEOUT
        assert by_unit["slow-halt"].attempts == 1
        assert by_unit["ok"].verdict == batch.OK
        assert "supervisor" not in report.meta  # a timeout is not a death


class TestReaping:
    def test_every_spawned_child_is_joined(self):
        sup = Supervisor(fast_config())
        sup.run(["a", "always-die", "b", "c"], _scripted)
        assert sup.spawned  # the run actually forked workers
        for proc in sup.spawned:
            assert not proc.is_alive()
            assert proc.exitcode is not None  # joined, not abandoned
        assert not multiprocessing.active_children()

    def test_early_stop_reaps_in_flight_workers(self):
        sup = Supervisor(fast_config(keep_going=False))
        report = sup.run(["error-1", "slow-2", "ok-3"], _scripted)
        for proc in sup.spawned:
            assert not proc.is_alive()
            assert proc.exitcode is not None
        assert not multiprocessing.active_children()
        assert report.exit_code == 2


class TestStreaming:
    def test_on_result_streams_in_completion_order(self):
        seen = []
        report = Supervisor(fast_config()).run(
            ["slow-a", "b", "c"], _scripted, on_result=seen.append
        )
        assert sorted(r.unit for r in seen) == ["b", "c", "slow-a"]
        # The slow unit settles last despite being dispatched first.
        assert seen[-1].unit == "slow-a"
        # The report itself stays in input order.
        assert [r.unit for r in report.results] == ["slow-a", "b", "c"]

    def test_on_event_receives_worker_progress(self):
        events = []
        Supervisor(fast_config()).run(
            ["emit-1", "emit-2"], _scripted, on_event=events.append
        )
        assert sorted(e["unit"] for e in events) == ["emit-1", "emit-2"]
        assert all(e["event"] == "tick" for e in events)

    def test_sequential_run_units_streams_too(self):
        seen = []
        events = []
        report = batch.run_units(
            ["emit-1", "warn-2"],
            _scripted,
            jobs=1,
            on_result=seen.append,
            on_event=events.append,
        )
        assert [r.unit for r in seen] == ["emit-1", "warn-2"]
        assert [e["unit"] for e in events] == ["emit-1"]
        assert report.exit_code == 1


class TestInterrupt:
    def _interrupt_soon(self, delay=0.25):
        pid = os.getpid()
        timer = threading.Timer(delay, lambda: os.kill(pid, signal.SIGINT))
        timer.start()
        return timer

    def test_pool_interrupt_yields_partial_report(self):
        timer = self._interrupt_soon()
        try:
            start = time.perf_counter()
            report = batch.run_units(
                [f"slow-{i}" for i in range(12)],
                _scripted,
                jobs=2,
                keep_going=True,
            )
            elapsed = time.perf_counter() - start
        finally:
            timer.cancel()
        assert report.meta.get("interrupted") is True
        assert elapsed < 5.0  # did not run all 12 slow units
        counts = report.counts()
        assert counts.get(batch.SKIPPED, 0) >= 1
        assert len(report.results) == 12  # the report covers every unit
        assert not multiprocessing.active_children()
        # Exit code stays on the documented contract: nothing failed.
        assert report.exit_code == 0

    def test_sequential_interrupt_yields_partial_report(self):
        timer = self._interrupt_soon()
        try:
            report = batch.run_units(
                [f"slow-{i}" for i in range(12)],
                _scripted,
                jobs=1,
                keep_going=True,
            )
        finally:
            timer.cancel()
        assert report.meta.get("interrupted") is True
        assert report.counts().get(batch.SKIPPED, 0) >= 1
        assert len(report.results) == 12
