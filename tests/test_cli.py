"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def lcm_file(tmp_path):
    path = tmp_path / "lcm.c"
    path.write_text(
        """
        int pos gcd(int pos n, int pos m);
        int pos lcm(int pos a, int pos b) {
          int pos d = gcd(a, b);
          int pos prod = a * b;
          return (int pos) (prod / d);
        }
        """
    )
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.c"
    path.write_text("void f() { int pos x = -1; }")
    return str(path)


def test_check_clean(lcm_file, capsys):
    assert main(["check", lcm_file]) == 0
    out = capsys.readouterr().out
    assert "0 qualifier warning(s)" in out
    assert "runtime check(s)" in out


def test_check_reports_errors(bad_file, capsys):
    assert main(["check", bad_file]) == 1
    out = capsys.readouterr().out
    assert "pos" in out


def test_check_flow_sensitive_flag(tmp_path, capsys):
    path = tmp_path / "guarded.c"
    path.write_text(
        "int f(int* p) { int x = 0; if (p != NULL) { x = *p; } return x; }"
    )
    assert main(["check", str(path)]) == 1
    assert main(["check", str(path), "--flow-sensitive"]) == 0


def test_prove_good_qualifier(tmp_path, capsys):
    path = tmp_path / "even.qual"
    path.write_text(
        """
        value qualifier even2(int Expr E)
          case E of
            decl int Const C:
              C, where C % 2 == 0
          invariant value(E) % 2 == 0
        """
    )
    assert main(["prove", str(path)]) == 0
    assert "SOUND" in capsys.readouterr().out


def test_prove_bad_qualifier(tmp_path, capsys):
    path = tmp_path / "bad.qual"
    path.write_text(
        """
        value qualifier sketchy(int Expr E)
          case E of
            decl int Const C:
              C, where C >= 0
          invariant value(E) > 0
        """
    )
    assert main(["prove", str(path)]) == 1
    assert "POTENTIALLY UNSOUND" in capsys.readouterr().out


def test_run_program(tmp_path, capsys):
    path = tmp_path / "hello.c"
    path.write_text(
        """
        int printf(char* fmt, ...);
        int main() { printf("hi %d\\n", 42); return 7; }
        """
    )
    assert main(["run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "hi 42" in out and "[exit value: 7]" in out


def test_run_traps_violation(tmp_path, capsys):
    path = tmp_path / "boom.c"
    path.write_text("int main() { int x = -3; int pos y = (int pos)x; return y; }")
    assert main(["run", str(path)]) == 2
    assert "runtime check failed" in capsys.readouterr().err


def test_show_ir(lcm_file, capsys):
    assert main(["show-ir", lcm_file]) == 0
    out = capsys.readouterr().out
    assert "lcm" in out and "int pos" in out


def test_infer(tmp_path, capsys):
    path = tmp_path / "m.c"
    path.write_text("int f(void) { int a = 2; int b = a * a; return b; }")
    assert main(["infer", str(path), "--qualifier", "pos"]) == 0
    out = capsys.readouterr().out
    assert "inferred" in out


def test_custom_qualifier_file_used_by_check(tmp_path, capsys):
    qual = tmp_path / "defs.qual"
    qual.write_text(
        """
        value qualifier even2(int Expr E)
          case E of
            decl int Const C:
              C, where C % 2 == 0
          invariant value(E) % 2 == 0
        """
    )
    good = tmp_path / "good.c"
    good.write_text("void f() { int even2 x = 4; }")
    bad = tmp_path / "bad.c"
    bad.write_text("void f() { int even2 x = 3; }")
    assert main(["check", str(good), "--quals", str(qual)]) == 0
    assert main(["check", str(bad), "--quals", str(qual)]) == 1


def test_missing_file_is_an_error(capsys):
    assert main(["check", "/nonexistent/nowhere.c"]) == 2


def test_parse_error_is_reported(tmp_path, capsys):
    path = tmp_path / "syntax.c"
    path.write_text("int f( { }")
    assert main(["check", str(path)]) == 2
    assert "error" in capsys.readouterr().err


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_json_reports_carry_tool_version(lcm_file, capsys):
    import json

    import repro

    assert main(["check", lcm_file, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == repro.__version__
