"""Unit and property tests for NNF/skolemization/Tseitin and the DPLL
SAT core."""

from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.prover import sat
from repro.prover.cnf import (
    ClauseDb,
    QuantAtom,
    assert_formula,
    encode,
    nnf,
    skolemize,
)
from repro.prover.terms import (
    And,
    Eq,
    Exists,
    FALSE,
    ForAll,
    Iff,
    Implies,
    Int,
    Not,
    Or,
    Pr,
    TRUE,
    TApp,
    TVar,
    fn,
    free_vars,
)

p, q, r = Pr("p", ()), Pr("q", ()), Pr("r", ())
a = fn("a")
x = TVar("x")


# ----------------------------------------------------------------------- NNF


def test_nnf_double_negation():
    assert nnf(Not(Not(p))) == p


def test_nnf_de_morgan():
    f = nnf(Not(And(p, q)))
    assert isinstance(f, Or)
    assert set(f.disjuncts) == {Not(p), Not(q)}


def test_nnf_implication():
    f = nnf(Implies(p, q))
    assert isinstance(f, Or)
    assert set(f.disjuncts) == {Not(p), q}


def test_nnf_iff_expands():
    f = nnf(Iff(p, q))
    assert isinstance(f, And)


def test_nnf_negated_forall_is_exists():
    f = nnf(Not(ForAll(("x",), Pr("P", (x,)))))
    assert isinstance(f, Exists)
    assert f.body == Not(Pr("P", (x,)))


def test_nnf_negated_exists_is_forall():
    f = nnf(Not(Exists(("x",), Pr("P", (x,)))))
    assert isinstance(f, ForAll)


# -------------------------------------------------------------- skolemization


def test_skolemize_top_level_exists_becomes_constant():
    f = skolemize(nnf(Exists(("x",), Pr("P", (x,)))))
    assert isinstance(f, Pr)
    (arg,) = f.args
    assert isinstance(arg, TApp) and not arg.args  # a fresh constant


def test_skolemize_under_forall_becomes_function():
    f = skolemize(
        nnf(ForAll(("x",), Exists(("y",), Pr("R", (x, TVar("y"))))))
    )
    assert isinstance(f, ForAll)
    body = f.body
    assert isinstance(body, Pr)
    witness = body.args[1]
    assert isinstance(witness, TApp)
    assert witness.args == (TVar("x"),)  # depends on the universal


def test_skolemized_formula_has_no_free_new_vars():
    f = skolemize(nnf(Exists(("x", "y"), Eq(TVar("x"), TVar("y")))))
    assert free_vars(f) == frozenset()


# --------------------------------------------------------------------- encode


def _models(db):
    """All boolean assignments over the db's variables that satisfy its
    clauses (brute force; for small encodings only)."""
    variables = sorted({abs(l) for c in db.clauses for l in c})
    out = []
    for bits in product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in db.clauses
        ):
            out.append(assignment)
    return out


def test_encode_atom_shares_variables():
    db = ClauseDb()
    l1 = encode(db, Eq(a, Int(0)))
    l2 = encode(db, Eq(Int(0), a))  # symmetric form shares the variable
    assert l1 == l2


def test_tseitin_and_is_equisatisfiable():
    db = ClauseDb()
    root = encode(db, And(p, q))
    db.add_clause([root])
    vp, vq = db.var_of_atom[p], db.var_of_atom[q]
    models = _models(db)
    assert models
    assert all(m[vp] and m[vq] for m in models)


def test_tseitin_or_requires_one():
    db = ClauseDb()
    root = encode(db, Or(p, q))
    db.add_clause([root])
    vp, vq = db.var_of_atom[p], db.var_of_atom[q]
    assert all(m[vp] or m[vq] for m in _models(db))


def test_true_false_constants():
    db = ClauseDb()
    assert_formula(db, TRUE)
    assert sat.solve(db.clauses, db.num_vars) is not None
    db2 = ClauseDb()
    assert_formula(db2, FALSE)
    assert sat.solve(db2.clauses, db2.num_vars) is None


def test_forall_becomes_quant_atom():
    db = ClauseDb()
    assert_formula(db, ForAll(("x",), Pr("P", (x,))))
    quants = list(db.quant_atoms())
    assert len(quants) == 1
    _, atom = quants[0]
    assert isinstance(atom, QuantAtom)
    assert atom.vars == ("x",)


def test_tautology_clauses_dropped():
    db = ClauseDb()
    db.add_clause([1, -1, 2])
    assert db.clauses == []


# ------------------------------------------------------------------ SAT core


def test_sat_empty():
    assert sat.solve([], 0) == {}


def test_sat_unit_propagation():
    model = sat.solve([(1,), (-1, 2), (-2, 3)], 3)
    assert model == {1: True, 2: True, 3: True}


def test_sat_conflict():
    assert sat.solve([(1,), (-1,)], 1) is None


def test_sat_backtracking():
    # Force a wrong first decision to be undone.
    clauses = [(1, 2), (-1, 2), (1, -2), (-1, -2)]
    assert sat.solve(clauses, 2) is None


def test_sat_pigeonhole_2_into_1():
    # p1 and p2 both in hole 1, but not together: unsat.
    clauses = [(1,), (2,), (-1, -2)]
    assert sat.solve(clauses, 2) is None


@st.composite
def random_cnf(draw):
    n_vars = draw(st.integers(1, 5))
    n_clauses = draw(st.integers(1, 10))
    clauses = []
    for _ in range(n_clauses):
        width = draw(st.integers(1, 3))
        clause = tuple(
            draw(st.integers(1, n_vars)) * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        )
        clauses.append(clause)
    return n_vars, clauses


def _brute_sat(n_vars, clauses):
    for bits in product([False, True], repeat=n_vars):
        assignment = {i + 1: bits[i] for i in range(n_vars)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


@settings(max_examples=200, deadline=None)
@given(random_cnf())
def test_sat_agrees_with_brute_force(case):
    n_vars, clauses = case
    model = sat.solve(list(clauses), n_vars)
    expected = _brute_sat(n_vars, clauses)
    assert (model is not None) == expected
    if model is not None:
        # The returned model really satisfies every clause.
        assert all(
            any(model.get(abs(l), False) == (l > 0) for l in clause)
            for clause in clauses
        )
