"""Fault-path tests for the CLI: exit-code taxonomy, batch isolation,
clean messages for inputs that used to produce raw tracebacks."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text("int id(int x) { return x; }")
    return str(path)


@pytest.fixture
def warn_file(tmp_path):
    path = tmp_path / "warn.c"
    path.write_text("void f() { int pos x = -1; int pos y = 0; }")
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.c"
    path.write_text("int f( { }\nvoid g() { int y = ; }")
    return str(path)


class TestCheckConsistency:
    """The printed warning count and the exit status key off the same
    quantity (satellite: they used to use different expressions)."""

    def test_warning_count_matches_exit_status(self, warn_file, capsys):
        assert main(["check", warn_file]) == 1
        out = capsys.readouterr().out
        assert "2 qualifier warning(s)" in out
        assert out.count("Q101") == 2

    def test_clean_file_is_exit_zero(self, clean_file, capsys):
        assert main(["check", clean_file]) == 0
        assert "0 qualifier warning(s)" in capsys.readouterr().out


class TestCleanErrorsNotTracebacks:
    def test_deeply_nested_expression_is_input_error(self, tmp_path, capsys):
        deep = "(" * 40000 + "1" + ")" * 40000
        path = tmp_path / "deep.c"
        path.write_text(f"int f() {{ return {deep}; }}")
        assert main(["check", str(path)]) == 2
        assert "nested" in capsys.readouterr().err

    def test_directory_as_input_is_os_error(self, tmp_path, capsys):
        assert main(["check", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err.lower()

    def test_non_utf8_source_is_input_error(self, tmp_path, capsys):
        path = tmp_path / "latin1.c"
        path.write_bytes(b"int x = 1; /* caf\xe9 */\xff\xfe")
        assert main(["check", str(path)]) == 2

    def test_missing_file_still_exit_2(self, capsys):
        assert main(["check", "/nonexistent/nowhere.c"]) == 2

    def test_run_command_nested_input(self, tmp_path, capsys):
        deep = "(" * 40000 + "1" + ")" * 40000
        path = tmp_path / "deep.c"
        path.write_text(f"int main() {{ return {deep}; }}")
        assert main(["run", str(path)]) == 2
        assert "nested" in capsys.readouterr().err


class TestMalformedQualFiles:
    def test_prove_malformed_qual(self, tmp_path, capsys):
        path = tmp_path / "bad.qual"
        path.write_text("value qualifier oops(int Expr E)\n  case E of THIS IS NOT VALID")
        assert main(["prove", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_check_with_malformed_quals_flag(self, tmp_path, clean_file, capsys):
        path = tmp_path / "bad.qual"
        path.write_text("this is not the qualifier language")
        assert main(["check", clean_file, "--quals", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_truncated_c_source(self, tmp_path, capsys):
        path = tmp_path / "trunc.c"
        path.write_text("int f() { int x = 1;")
        assert main(["check", str(path)]) == 2
        assert "end of file" in capsys.readouterr().err


class TestBatchCheck:
    def test_keep_going_checks_files_after_a_broken_one(
        self, broken_file, warn_file, clean_file, capsys
    ):
        code = main(
            ["check", broken_file, warn_file, clean_file, "--keep-going"]
        )
        captured = capsys.readouterr()
        assert code == 2  # worst unit: input error; no crash
        # Files 2 and 3 were still checked.
        assert "Q101" in captured.out
        assert "0 qualifier warning(s)" in captured.out

    def test_without_keep_going_later_units_are_skipped(
        self, broken_file, clean_file, capsys
    ):
        assert main(["check", broken_file, clean_file]) == 2
        assert "skipped" in capsys.readouterr().out

    def test_json_report_structure(
        self, broken_file, warn_file, clean_file, capsys
    ):
        code = main(
            [
                "check", broken_file, warn_file, clean_file,
                "--keep-going", "--format", "json",
            ]
        )
        data = json.loads(capsys.readouterr().out)
        assert code == 2
        assert data["exit_code"] == 2
        verdicts = [u["verdict"] for u in data["units"]]
        assert verdicts == ["ERROR", "WARNINGS", "OK"]
        broken = data["units"][0]
        assert any(d["code"] == "Q001" for d in broken["diagnostics"])
        warn = data["units"][1]
        assert any(d["code"] == "Q101" for d in warn["diagnostics"])
        assert all("elapsed" in u for u in data["units"])

    def test_parallel_jobs_match_sequential_verdicts(
        self, broken_file, warn_file, clean_file, capsys
    ):
        code = main(
            [
                "check", broken_file, warn_file, clean_file,
                "--keep-going", "--jobs", "2", "--format", "json",
            ]
        )
        data = json.loads(capsys.readouterr().out)
        assert code == 2
        assert [u["verdict"] for u in data["units"]] == [
            "ERROR", "WARNINGS", "OK",
        ]


class TestBatchProve:
    """Acceptance: a 3-unit batch where one unit raises a parse error
    and one exceeds the prover deadline completes with structured
    verdicts (ERROR/TIMEOUT/OK) and the documented exit code."""

    @pytest.fixture
    def qual_trio(self, tmp_path):
        broken = tmp_path / "broken.qual"
        broken.write_text(
            "value qualifier oops(int Expr E)\n  case E of THIS IS NOT VALID"
        )
        hard = tmp_path / "hard.qual"
        hard.write_text(
            """
            value qualifier even2(int Expr E)
              case E of
                decl int Const C:
                  C, where C % 2 == 0
              invariant value(E) % 2 == 0
            """
        )
        # No invariant: every obligation is trivially sound, so this
        # unit is OK even under a microscopic time limit.
        ok = tmp_path / "ok.qual"
        ok.write_text(
            """
            value qualifier tagged(int Expr E)
              case E of
                decl int Const C:
                  C, where C > 0
            """
        )
        return [str(broken), str(hard), str(ok)]

    def test_mixed_prove_batch_structured_verdicts(self, qual_trio, capsys):
        code = main(
            [
                # --no-cache: the timeout is simulated via a tiny
                # budget, so a warm proof cache would (correctly!)
                # replay the settled verdict and defeat the simulation.
                "prove", *qual_trio,
                "--keep-going", "--time-limit", "0.001",
                "--no-cache", "--format", "json",
            ]
        )
        data = json.loads(capsys.readouterr().out)
        assert [u["verdict"] for u in data["units"]] == [
            "ERROR", "TIMEOUT", "OK",
        ]
        assert "CRASH" not in data["counts"]
        assert code == 2 and data["exit_code"] == 2

    def test_prove_timeout_unit_reports_reason(self, qual_trio, capsys):
        main(
            [
                "prove", qual_trio[1],
                "--time-limit", "0.001", "--no-cache", "--format", "json",
            ]
        )
        data = json.loads(capsys.readouterr().out)
        (unit,) = data["units"]
        assert unit["verdict"] == "TIMEOUT"
        obligations = unit["detail"]["qualifiers"][0]["obligations"]
        assert any(o["verdict"] == "TIMEOUT" for o in obligations)

    def test_prove_retries_flag_accepted(self, qual_trio, capsys):
        # Retrying cannot rescue a parse error; exit code is stable.
        assert (
            main(
                [
                    "prove", qual_trio[0],
                    "--retries", "2", "--time-limit", "1",
                ]
            )
            == 2
        )


class TestBatchInfer:
    def test_infer_multiple_files_keep_going(
        self, tmp_path, broken_file, capsys
    ):
        good = tmp_path / "m.c"
        good.write_text("int f(void) { int a = 2; int b = a * a; return b; }")
        code = main(
            [
                "infer", broken_file, str(good),
                "--qualifier", "pos", "--keep-going", "--format", "json",
            ]
        )
        data = json.loads(capsys.readouterr().out)
        assert code == 2
        assert [u["verdict"] for u in data["units"]] == ["ERROR", "OK"]
        assert "inferred" in data["units"][1]["detail"]["summary"]
