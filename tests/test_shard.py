"""Obligation-level sharding: scheduler semantics and report identity.

The sharded prove path re-plumbs everything — generation in the
parent, discharge in pool workers, reassembly from streamed outcomes —
so its one non-negotiable property is that reports come out identical
to the serial path.  The scheduler's failure semantics (retry and
quarantine at *obligation* granularity, timeouts final) are pinned by
fault-injecting ``discharge_work_item`` itself.
"""

import json
import re

import pytest

import repro
from repro import api
from repro.core.qualifiers.library import standard_qualifiers
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.workitems import (
    discharge_work_item,
    generate_work_items,
)
from repro.harness import shard
from repro.harness.watchdog import DeadlineExceeded

QUALS = standard_qualifiers()
AXIOMS = semantics_axioms()

NN_QUAL = """
value qualifier nn2(int Expr E)
  case E of
      decl int Const C:
        C, where C >= 0
    | decl int Expr E1, E2:
        E1 + E2, where nn2(E1) && nn2(E2)
  invariant value(E) >= 0
"""

POS_QUAL = """
value qualifier pp2(int Expr E)
  case E of
      decl int Const C:
        C, where C > 0
    | decl int Expr E1, E2:
        E1 * E2, where pp2(E1) && pp2(E2)
  invariant value(E) > 0
"""


def _items(names):
    items = []
    for qdef in QUALS:
        if qdef.name in names:
            items.extend(generate_work_items(qdef, QUALS, AXIOMS, unit="t"))
    return items


def _verdicts(outcomes):
    return {
        key: (o["verdict"], o["proved"]) for key, o in outcomes.items()
    }


class TestScheduler:
    def test_outcomes_match_serial_discharge(self):
        items = _items({"pos", "nonzero", "untainted"})
        outcomes, stats = shard.run_obligations(
            items, AXIOMS, jobs=1, time_limit=15
        )
        serial = {
            i.key: discharge_work_item(i, AXIOMS, time_limit=15)
            for i in items
        }
        assert _verdicts(outcomes) == _verdicts(serial)
        assert set(outcomes) == {i.key for i in items}
        assert stats["obligations"] == len(items)
        assert stats["groups"] == len({i.env_digest for i in items})
        assert stats["rounds"] == 1
        assert stats["requeued"] == 0 and stats["quarantined"] == 0
        assert stats["sessions"]["proofs"] > 0

    def test_trivial_items_settle_in_parent(self):
        items = _items({"pos"})
        trivial = [i for i in items if i.trivial]
        outcomes, _stats = shard.run_obligations(
            items, AXIOMS, jobs=1, time_limit=15
        )
        for item in trivial:
            outcome = outcomes[item.key]
            assert outcome["trivial"] and outcome["verdict"] == "PROVED"
            assert outcome["proof"] is None

    def test_pool_jobs_identical_outcomes(self):
        items = _items({"pos", "nonzero"})
        parallel, _ = shard.run_obligations(
            items, AXIOMS, jobs=2, time_limit=15
        )
        serial, _ = shard.run_obligations(
            items, AXIOMS, jobs=1, time_limit=15
        )
        assert _verdicts(parallel) == _verdicts(serial)

    def test_crash_quarantines_one_obligation(self, monkeypatch):
        """A crashing obligation is retried, then quarantined — and its
        group mates still get proved."""
        items = _items({"pos", "nonzero"})
        nontrivial = [i for i in items if not i.trivial]
        group_digest = nontrivial[0].env_digest
        group = [i for i in nontrivial if i.env_digest == group_digest]
        assert len(group) >= 2
        poison = group[1]  # mid-group: streamed outcomes must survive

        real = shard.discharge_work_item

        def boom(item, axioms, **kwargs):
            if item.key == poison.key:
                raise RuntimeError("injected crash")
            return real(item, axioms, **kwargs)

        monkeypatch.setattr(shard, "discharge_work_item", boom)
        outcomes, stats = shard.run_obligations(
            items, AXIOMS, jobs=1, time_limit=15
        )
        assert set(outcomes) == {i.key for i in items}
        bad = outcomes[poison.key]
        assert bad["verdict"] == "GAVE_UP" and not bad["proved"]
        assert bad["proof"]["reason"] == (
            "quarantined after killing 2 worker(s)"
        )
        for item in group:
            if item.key != poison.key:
                assert outcomes[item.key]["verdict"] == "PROVED"
        assert stats["quarantined"] == 1
        assert stats["requeued"] > 0
        assert stats["rounds"] >= 2

    def test_group_timeout_is_final(self, monkeypatch):
        """A timed-out group settles its unfinished obligations as
        TIMEOUT — no requeue, exactly like per-unit timeouts."""
        items = _items({"pos", "nonzero"})
        nontrivial = [i for i in items if not i.trivial]
        group_digest = nontrivial[0].env_digest
        group = [i for i in nontrivial if i.env_digest == group_digest]
        poison = group[1]

        real = shard.discharge_work_item

        def expire(item, axioms, **kwargs):
            if item.key == poison.key:
                raise DeadlineExceeded("injected deadline")
            return real(item, axioms, **kwargs)

        monkeypatch.setattr(shard, "discharge_work_item", expire)
        outcomes, stats = shard.run_obligations(
            items, AXIOMS, jobs=1, time_limit=15
        )
        assert outcomes[group[0].key]["verdict"] == "PROVED"
        for item in group[1:]:
            outcome = outcomes[item.key]
            assert outcome["verdict"] == "TIMEOUT"
            assert outcome["proof"]["reason"] == "time limit"
        assert stats["requeued"] == 0 and stats["quarantined"] == 0
        assert stats["rounds"] == 1


def _scrub(node):
    """Drop wall-clock fields; everything else must match exactly."""
    if isinstance(node, dict):
        return {k: _scrub(v) for k, v in node.items() if k != "elapsed"}
    if isinstance(node, list):
        return [_scrub(v) for v in node]
    if isinstance(node, str):
        return re.sub(r"[0-9.]+ m?s\b", "_", node)
    return node


def _normalize(payload):
    """A prove payload minus the documented additive differences
    between the serial and sharded paths (run-level counter blocks and
    per-unit counter detail)."""
    payload = _scrub(payload)
    for key in ("sessions", "cache", "scheduler", "incremental"):
        payload.pop(key, None)
    for unit in payload["units"]:
        for key in ("sessions", "cache", "incremental"):
            (unit.get("detail") or {}).pop(key, None)
    return payload


class TestShardedProve:
    @pytest.fixture
    def qual_files(self, tmp_path):
        a = tmp_path / "nn.qual"
        b = tmp_path / "pp.qual"
        a.write_text(NN_QUAL)
        b.write_text(POS_QUAL)
        return (str(a), str(b))

    def test_sharded_report_matches_serial_golden(self, qual_files):
        session = repro.Session()
        serial = session.prove(
            api.ProveRequest(files=qual_files, cache=False)
        ).to_dict()
        sharded = session.prove(
            api.ProveRequest(files=qual_files, cache=False, jobs=2)
        ).to_dict()
        assert json.dumps(_normalize(serial), sort_keys=True) == json.dumps(
            _normalize(sharded), sort_keys=True
        )
        assert sharded["scheduler"]["groups"] >= 2
        assert sharded["scheduler"]["obligations"] > 0
        assert sharded["sessions"]["enabled"] is True
        assert sharded["sessions"]["session_reuse"] > 0
        # Counter blocks aggregate field-identically across the paths.
        assert set(serial["sessions"]) == set(sharded["sessions"])

    def test_shard_escape_hatch_keeps_pool_path(self, qual_files):
        report = repro.Session().prove(
            api.ProveRequest(
                files=qual_files, cache=False, jobs=2, shard=False
            )
        ).to_dict()
        assert "scheduler" not in report
        serial = repro.Session().prove(
            api.ProveRequest(files=qual_files, cache=False)
        ).to_dict()
        assert _normalize(report) == _normalize(serial)

    def test_sharded_without_sessions(self, qual_files):
        sharded = repro.Session().prove(
            api.ProveRequest(
                files=qual_files, cache=False, jobs=2, session=False
            )
        ).to_dict()
        assert "sessions" not in sharded
        serial = repro.Session().prove(
            api.ProveRequest(files=qual_files, cache=False, session=False)
        ).to_dict()
        assert _normalize(sharded) == _normalize(serial)

    def test_sharded_parse_errors_keep_fault_taxonomy(
        self, qual_files, tmp_path
    ):
        broken = tmp_path / "broken.qual"
        broken.write_text("value qualifier oops(\n")
        files = (str(broken),) + qual_files
        serial = repro.Session().prove(
            api.ProveRequest(files=files, cache=False)
        ).to_dict()
        sharded = repro.Session().prove(
            api.ProveRequest(files=files, cache=False, jobs=2)
        ).to_dict()
        assert [u["verdict"] for u in serial["units"]] == [
            u["verdict"] for u in sharded["units"]
        ]
        assert serial["units"][0]["verdict"] == "ERROR"
        assert sharded["exit_code"] == serial["exit_code"]
        # keep_going=False: everything after the failing unit skips.
        assert {u["verdict"] for u in sharded["units"][1:]} == {"SKIPPED"}
