"""Algebraic laws of the dataflow lattices.

The worklist solver's termination and monotonicity arguments assume
``join`` is a least upper bound: commutative, associative, idempotent,
an upper bound of both arguments, and ``bottom`` its identity.  These
tests enumerate element samples per lattice (small enough to check
every pair/triple exhaustively) and verify the laws, plus that
``widen`` is an upper bound of both arguments — the property the
solver's convergence relies on.

A flipped join (e.g. union where intersection belongs, the classic
must/may confusion) fails the upper-bound law here immediately, before
it would silently weaken guard refinement downstream.
"""

import itertools

import pytest

from repro.dataflow.lattice import (
    UNIVERSE,
    FlatLattice,
    Lattice,
    MapLattice,
    MaySetLattice,
    MustSetLattice,
)


def _must_samples():
    return [
        UNIVERSE,
        frozenset(),
        frozenset({"a"}),
        frozenset({"b"}),
        frozenset({"a", "b"}),
        frozenset({"b", "c"}),
    ]


def _may_samples():
    return [
        frozenset(),
        frozenset({"a"}),
        frozenset({"b"}),
        frozenset({"a", "b"}),
        frozenset({"b", "c"}),
    ]


def _flat_samples():
    return [FlatLattice.BOTTOM, "x", "y", 3, FlatLattice.TOP]


def _map_samples():
    f = FlatLattice
    return [
        {},
        {"v": "x"},
        {"v": "y"},
        {"w": 3},
        {"v": "x", "w": 3},
        {"v": f.TOP},
    ]


LATTICES = [
    pytest.param(MustSetLattice(), _must_samples(), id="must-set"),
    pytest.param(
        MaySetLattice(universe=frozenset({"a", "b", "c"})),
        _may_samples(),
        id="may-set",
    ),
    pytest.param(FlatLattice(), _flat_samples(), id="flat"),
    pytest.param(
        MapLattice(FlatLattice()), _map_samples(), id="map-of-flat"
    ),
]


@pytest.mark.parametrize("lat,samples", LATTICES)
def test_join_commutative(lat: Lattice, samples):
    for a, b in itertools.product(samples, repeat=2):
        assert lat.eq(lat.join(a, b), lat.join(b, a))


@pytest.mark.parametrize("lat,samples", LATTICES)
def test_join_associative(lat: Lattice, samples):
    for a, b, c in itertools.product(samples, repeat=3):
        left = lat.join(lat.join(a, b), c)
        right = lat.join(a, lat.join(b, c))
        assert lat.eq(left, right)


@pytest.mark.parametrize("lat,samples", LATTICES)
def test_join_idempotent(lat: Lattice, samples):
    for a in samples:
        assert lat.eq(lat.join(a, a), a)


@pytest.mark.parametrize("lat,samples", LATTICES)
def test_join_is_upper_bound(lat: Lattice, samples):
    for a, b in itertools.product(samples, repeat=2):
        j = lat.join(a, b)
        assert lat.leq(a, j) and lat.leq(b, j)


@pytest.mark.parametrize("lat,samples", LATTICES)
def test_join_is_least_upper_bound(lat: Lattice, samples):
    for a, b in itertools.product(samples, repeat=2):
        j = lat.join(a, b)
        for u in samples:
            if lat.leq(a, u) and lat.leq(b, u):
                assert lat.leq(j, u)


@pytest.mark.parametrize("lat,samples", LATTICES)
def test_bottom_is_join_identity(lat: Lattice, samples):
    bot = lat.bottom()
    for a in samples:
        assert lat.eq(lat.join(bot, a), a)
        assert lat.eq(lat.join(a, bot), a)
        assert lat.leq(bot, a)


@pytest.mark.parametrize("lat,samples", LATTICES)
def test_leq_is_a_partial_order(lat: Lattice, samples):
    for a in samples:
        assert lat.leq(a, a)
    for a, b, c in itertools.product(samples, repeat=3):
        if lat.leq(a, b) and lat.leq(b, c):
            assert lat.leq(a, c)


@pytest.mark.parametrize("lat,samples", LATTICES)
def test_widen_is_upper_bound(lat: Lattice, samples):
    """``widen(old, new)`` must cover both arguments — the solver
    replaces the old value with it and requires the chain to ascend."""
    for old, new in itertools.product(samples, repeat=2):
        w = lat.widen(old, new)
        assert lat.leq(old, w) and lat.leq(new, w)


@pytest.mark.parametrize("lat,samples", LATTICES)
def test_widen_monotone_in_new(lat: Lattice, samples):
    """Growing the incoming value never shrinks the widened result."""
    for old, n1, n2 in itertools.product(samples, repeat=3):
        if lat.leq(n1, n2):
            assert lat.leq(lat.widen(old, n1), lat.widen(old, n2))


def test_must_set_join_is_intersection_not_union():
    """The regression the difftest harness hunts dynamically, pinned
    statically: a must-join keeps only facts common to both paths."""
    lat = MustSetLattice()
    a, b = frozenset({"p", "q"}), frozenset({"q", "r"})
    assert lat.join(a, b) == frozenset({"q"})
    assert lat.join(UNIVERSE, a) is a


def test_flat_join_of_distinct_constants_is_top():
    lat = FlatLattice()
    assert lat.join("x", "y") is FlatLattice.TOP
    assert lat.join("x", "x") == "x"


def test_map_join_drops_bottom_entries():
    lat = MapLattice(FlatLattice())
    joined = lat.join({"v": "x"}, {"v": "x", "w": FlatLattice.BOTTOM})
    assert joined == {"v": "x"}
