"""Tests for lowering C to the CIL-style IR."""

import pytest

from repro.cfront.ctypes import IntType, PointerType
from repro.cfront.parser import parse_c
from repro.cil import ir
from repro.cil.lower import LowerError, lower_unit
from repro.cil.printer import program_to_c
from repro.cil.typesof import TypingContext, type_of_expr


def lower(src, quals=()):
    return lower_unit(parse_c(src, qualifier_names=quals))


def instructions(func):
    return list(ir.walk_instructions(func.body))


def test_simple_assignment():
    prog = lower("void f() { int x; x = 1 + 2; }")
    f = prog.function("f")
    instrs = instructions(f)
    assert len(instrs) == 1
    assert isinstance(instrs[0], ir.Set)
    assert isinstance(instrs[0].expr, ir.BinOp)


def test_call_becomes_instruction():
    prog = lower(
        """
        int g(int x);
        void f() { int y; y = g(3) + 1; }
        """
    )
    instrs = instructions(prog.function("f"))
    assert isinstance(instrs[0], ir.Call)
    assert instrs[0].func == "g"
    assert instrs[0].result is not None
    # The call result temp feeds the Set.
    assert isinstance(instrs[1], ir.Set)


def test_malloc_cast_is_recorded_not_wrapped():
    prog = lower("void f(int n) { int* p; p = (int*)malloc(4 * n); }")
    instrs = instructions(prog.function("f"))
    call = instrs[0]
    assert isinstance(call, ir.Call)
    assert call.func == "malloc"
    assert call.result.var_name == "p"
    assert isinstance(call.result_cast, PointerType)
    assert ir.is_allocation(call)


def test_expression_purity():
    """No call, assignment or ++ survives inside an expression."""
    prog = lower(
        """
        int g(int x);
        void f(int a) {
          int b;
          b = g(a) * (a = a + 1) + a++;
        }
        """
    )
    for instr in instructions(prog.function("f")):
        exprs = []
        if isinstance(instr, ir.Set):
            exprs.append(instr.expr)
        elif isinstance(instr, ir.Call):
            exprs.extend(instr.args)
        for e in exprs:
            for sub in ir.subexprs(e):
                assert not isinstance(sub, (ir.CastE,)) or True
                # IR has no side-effecting node kinds at all; reaching
                # here means the expression tree built successfully.
                assert isinstance(sub, ir.Expr)


def test_assignment_in_condition_lowered_to_cond_instrs():
    prog = lower(
        """
        void f(int* t, int* d) {
          while ((t = d) != NULL) { d = NULL; }
        }
        """
    )
    body = prog.function("f").body
    loops = [s for s in body if isinstance(s, ir.While)]
    assert len(loops) == 1
    assert len(loops[0].cond_instrs) == 1
    assert isinstance(loops[0].cond_instrs[0], ir.Set)


def test_null_name_lowered_to_null_const():
    prog = lower("void f(int* p) { p = NULL; }")
    instrs = instructions(prog.function("f"))
    assert isinstance(instrs[0].expr, ir.NullConst)


def test_pointer_index_uses_logical_memory_model():
    prog = lower("void f(int* p, int i) { p[i] = 3; }")
    instrs = instructions(prog.function("f"))
    target = instrs[0].lvalue
    assert isinstance(target.host, ir.MemHost)
    assert isinstance(target.host.addr, ir.BinOp)
    assert target.host.addr.op == "ptradd"
    # p + i keeps p's pointer type.
    ctx = TypingContext.for_function(prog, prog.function("f"))
    assert isinstance(type_of_expr(ctx, target.host.addr), PointerType)


def test_array_index_stays_offset():
    prog = lower("void f() { int a[4]; a[2] = 1; }")
    instrs = instructions(prog.function("f"))
    target = instrs[0].lvalue
    assert isinstance(target.host, ir.VarHost)
    assert isinstance(target.offset, ir.IndexOff)


def test_member_and_arrow_lowering():
    prog = lower(
        """
        struct p { int x; };
        void f(struct p s, struct p* q) { s.x = 1; q->x = 2; }
        """
    )
    instrs = instructions(prog.function("f"))
    assert isinstance(instrs[0].lvalue.offset, ir.FieldOff)
    assert isinstance(instrs[1].lvalue.host, ir.MemHost)
    assert isinstance(instrs[1].lvalue.offset, ir.FieldOff)


def test_addr_of_deref_simplifies():
    prog = lower("void f(int* p, int* q) { q = &*p; }")
    instrs = instructions(prog.function("f"))
    assert isinstance(instrs[0].expr, ir.Lval)
    assert instrs[0].expr.lvalue.var_name == "p"


def test_global_initializers_in_synthetic_function():
    prog = lower("int x = 5; int y = 2 * 3;")
    init = prog.function(ir.Program.GLOBAL_INIT)
    sets = instructions(init)
    assert [s.lvalue.var_name for s in sets] == ["x", "y"]


def test_for_loop_step_runs_on_continue():
    prog = lower(
        """
        void f(int n) {
          int i;
          for (i = 0; i < n; i++) {
            if (i == 2) continue;
            n = n - 1;
          }
        }
        """
    )
    f = prog.function("f")
    loops = [s for s in ir.walk_stmts(f.body) if isinstance(s, ir.While)]
    assert len(loops) == 1
    ifs = [s for s in ir.walk_stmts(loops[0].body) if isinstance(s, ir.If)]
    # The continue branch contains the i++ step before Continue.
    cont_branch = ifs[0].then
    assert isinstance(cont_branch[0], ir.Instr)
    assert isinstance(cont_branch[0].instrs[0], ir.Set)
    assert isinstance(cont_branch[-1], ir.Continue)


def test_local_shadowing_renamed():
    prog = lower(
        """
        void f() {
          int x;
          x = 1;
          { int x; x = 2; }
        }
        """
    )
    f = prog.function("f")
    names = [n for n, _ in f.locals]
    assert "x" in names and "x__2" in names
    sets = instructions(f)
    assert sets[0].lvalue.var_name == "x"
    assert sets[1].lvalue.var_name == "x__2"


def test_conditional_expression_pure():
    prog = lower("void f(int a, int b) { a = a > b ? a : b; }")
    instrs = instructions(prog.function("f"))
    assert isinstance(instrs[0].expr, ir.CondE)


def test_conditional_with_side_effects_rejected():
    with pytest.raises(LowerError):
        lower(
            """
            int g(void);
            void f(int a) { a = a > 0 ? g() : 0; }
            """
        )


def test_postfix_incdec_value_preserved():
    prog = lower("void f(int x, int y) { y = x++; }")
    instrs = instructions(prog.function("f"))
    # temp = x; x = x + 1; y = temp
    assert len(instrs) == 3
    assert instrs[0].lvalue.var_name.startswith("__t")
    assert instrs[2].expr.lvalue.var_name == instrs[0].lvalue.var_name


def test_signature_prefers_annotated_prototype():
    prog = lower(
        """
        int f(char* __attribute__((untainted)) fmt);
        int f(char* fmt) { return 0; }
        """
    )
    sig = prog.signatures["f"]
    assert sig.params[0].pointee.quals == frozenset()
    assert sig.params[0].quals == {"untainted"}


def test_printer_round_trips_reparseable():
    src = """
    struct s { int v; };
    int g(int n);
    void f(int n) {
      int* p;
      p = (int*)malloc(4);
      if (n > 0) { *p = g(n); }
      while (n > 0) { n = n - 1; }
    }
    """
    prog = lower(src)
    text = program_to_c(prog)
    assert "malloc" in text and "while" in text
    # The printed text parses again as C.
    reparsed = parse_c(text)
    assert reparsed.function("f") is not None


def test_void_call_statement():
    prog = lower(
        """
        void g(int x);
        void f() { g(1); }
        """
    )
    instrs = instructions(prog.function("f"))
    assert isinstance(instrs[0], ir.Call)
    assert instrs[0].result is None


def test_logical_ops_stay_pure():
    prog = lower("void f(int a, int b, int c) { c = a && b || !a; }")
    instrs = instructions(prog.function("f"))
    assert isinstance(instrs[0].expr, ir.BinOp)
    assert instrs[0].expr.op == "||"
