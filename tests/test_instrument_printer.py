"""Tests for cast instrumentation and the C printer."""

import pytest

from repro.cfront.parser import parse_c
from repro.cil import ir
from repro.cil.lower import lower_unit
from repro.cil.printer import program_to_c
from repro.core.checker.instrument import check_function_name, instrument_program
from repro.core.qualifiers.library import standard_qualifiers

QUALS = standard_qualifiers()
NAMES = {"pos", "neg", "nonzero", "nonnull", "unique", "untainted", "tainted",
         "unaliased"}


def compile_c(src):
    return lower_unit(parse_c(src, qualifier_names=NAMES))


def calls_in(program, name):
    out = []
    for func in program.functions:
        for instr in ir.walk_instructions(func.body):
            if isinstance(instr, ir.Call) and instr.func == name:
                out.append((func.name, instr))
    return out


# ------------------------------------------------------------ instrumentation


def test_value_cast_gets_check_call():
    prog = compile_c("void f(int x) { int pos y = (int pos)x; }")
    inst = instrument_program(prog, QUALS)
    checks = calls_in(inst, check_function_name("pos"))
    assert len(checks) == 1
    _, call = checks[0]
    # The check receives the cast operand.
    assert str(call.args[0]) == "x"


def test_check_precedes_use():
    prog = compile_c("void f(int x) { int pos y = (int pos)x; }")
    inst = instrument_program(prog, QUALS)
    body = inst.function("f").body
    instrs = [i for s in body if isinstance(s, ir.Instr) for i in s.instrs]
    kinds = [
        "check" if isinstance(i, ir.Call) else "set" for i in instrs
    ]
    assert kinds == ["check", "set"]


def test_call_result_cast_checked_after_call():
    prog = compile_c(
        """
        int source(void);
        void f() { int pos y; y = (int pos)source(); }
        """
    )
    inst = instrument_program(prog, QUALS)
    instrs = [
        i
        for s in inst.function("f").body
        if isinstance(s, ir.Instr)
        for i in s.instrs
    ]
    names = [i.func if isinstance(i, ir.Call) else "set" for i in instrs]
    assert names.index("source") < names.index(check_function_name("pos"))


def test_ref_qualifier_cast_not_checked():
    prog = compile_c("void f(int* q) { int* unique p = (int* unique)q; }")
    inst = instrument_program(prog, QUALS)
    assert not calls_in(inst, check_function_name("unique"))


def test_cast_in_condition_checked():
    prog = compile_c(
        "void f(int x) { if ((int pos)x > 1) { x = 0; } }"
    )
    inst = instrument_program(prog, QUALS)
    assert calls_in(inst, check_function_name("pos"))


def test_cast_in_return_checked():
    prog = compile_c("int pos f(int x) { return (int pos)x; }")
    inst = instrument_program(prog, QUALS)
    assert calls_in(inst, check_function_name("pos"))


def test_cast_in_while_cond_instr_checked_each_iteration():
    prog = compile_c(
        """
        int next(void);
        void f() {
          int v = 0;
          while ((v = (int pos)next()) > 0) { v = v - 1; }
        }
        """
    )
    inst = instrument_program(prog, QUALS)
    loops = [s for s in ir.walk_stmts(inst.function("f").body)
             if isinstance(s, ir.While)]
    assert loops
    cond_calls = [
        i for i in loops[0].cond_instrs
        if isinstance(i, ir.Call) and i.func == check_function_name("pos")
    ]
    assert cond_calls


def test_original_program_untouched():
    prog = compile_c("void f(int x) { int pos y = (int pos)x; }")
    before = program_to_c(prog)
    instrument_program(prog, QUALS)
    assert program_to_c(prog) == before


def test_multiple_quals_on_one_cast():
    prog = compile_c("void f(int x) { int pos nonzero y = (int pos nonzero)x; }")
    inst = instrument_program(prog, QUALS)
    assert calls_in(inst, check_function_name("pos"))
    assert calls_in(inst, check_function_name("nonzero"))


# -------------------------------------------------------------------- printer


def test_printer_emits_qualifiers():
    prog = compile_c("int pos g; void f(int* nonnull p) { *p = 1; }")
    text = program_to_c(prog)
    assert "int pos g;" in text
    assert "int nonnull* p" in text or "int* nonnull p" in text.replace("  ", " ")


def test_printer_struct_layout():
    prog = compile_c(
        """
        struct pair { int a; int* b; };
        void f() { }
        """
    )
    text = program_to_c(prog)
    assert "struct pair {" in text
    assert "int a;" in text and "int* b;" in text


def test_printer_control_flow_round_trip():
    src = """
    int f(int n) {
      int total = 0;
      int i;
      for (i = 0; i < n; i++) {
        if (i == 3) { continue; }
        total += i;
      }
      while (total > 100) { total = total / 2; }
      return total;
    }
    """
    prog = compile_c(src)
    text = program_to_c(prog)
    reparsed = lower_unit(parse_c(text))
    # Executing the printed program gives the same result.
    from repro.semantics.csem import run_program

    v1, _ = run_program(prog, entry="f", args=[10])
    v2, _ = run_program(reparsed, entry="f", args=[10])
    assert v1 == v2


def test_instrumented_program_prints_and_reparses():
    prog = compile_c("void f(int x) { int pos y = (int pos)x; }")
    inst = instrument_program(prog, QUALS)
    text = program_to_c(inst)
    assert "__check_pos" in text
    reparsed = parse_c(text, qualifier_names=NAMES)
    assert reparsed.function("f") is not None


def test_dominating_guard_elides_check():
    # Inside ``if (p != NULL)`` the nonnull check would re-test what
    # the guard just established; flow-sensitive placement drops it.
    src = """
    void f(int* p) {
      int* nonnull q;
      if (p != NULL) { q = (int* nonnull)p; }
    }
    """
    prog = compile_c(src)
    default = instrument_program(prog, QUALS)
    assert len(calls_in(default, check_function_name("nonnull"))) == 1
    refined = instrument_program(prog, QUALS, flow_sensitive=True)
    assert len(calls_in(refined, check_function_name("nonnull"))) == 0


def test_unguarded_cast_keeps_check_flow_sensitively():
    src = "void f(int* p) { int* nonnull q = (int* nonnull)p; }"
    refined = instrument_program(compile_c(src), QUALS, flow_sensitive=True)
    assert len(calls_in(refined, check_function_name("nonnull"))) == 1
