"""Tests for the differential testing harness (`repro.difftest`).

Three layers: the building blocks (generator determinism, the shadow
semantics), the clean path (a generated corpus produces zero
disagreements and non-vacuous counters), and the adversarial path —
inject a known bug (a dropped prover axiom; a flipped must-set join)
and require the harness to catch it and produce a minimized,
replayable artifact.
"""

import dataclasses
import json
import os
from unittest import mock

import pytest

import repro.core.soundness.checker as checker_mod
from repro import api
from repro.core.qualifiers.library import standard_qualifiers
from repro.core.qualifiers.parser import parse_qualifier, parse_qualifiers
from repro.core.qualifiers.ast import QualifierSet
from repro.dataflow.lattice import UNIVERSE, MustSetLattice
from repro.difftest import minimize, oracles, runner, shadow
from repro.difftest.generator import GenConfig, generate_case

STD = standard_qualifiers()


# ------------------------------------------------------------- generator


def test_cases_are_deterministic():
    for index in (0, 7, 123):
        a = generate_case(42, index)
        b = generate_case(42, index)
        assert a.c_source == b.c_source
        assert a.qual_source == b.qual_source
        assert a.name == b.name


def test_different_indices_differ():
    sources = {generate_case(0, i).c_source for i in range(10)}
    assert len(sources) > 1


def test_generated_sources_parse():
    case = generate_case(0, 3)
    quals, gen_names = runner.build_qualifier_set(case)
    assert gen_names  # at least one generated qualifier
    from repro.cfront.parser import parse_c

    unit = parse_c(case.c_source, qualifier_names=quals.names)
    assert not unit.errors, [str(e) for e in unit.errors]


def test_config_round_trips():
    config = GenConfig(size=5, allow_goto=False)
    assert GenConfig.from_dict(config.to_dict()) == config


# ------------------------------------------------------ shadow semantics


def _single(src: str):
    qdef = parse_qualifier(src)
    quals = QualifierSet(list(STD) + [qdef])
    return qdef, quals


def test_shadow_finds_counterexample_for_unsound_clause():
    qdef, quals = _single(
        "value qualifier q(int Expr E)\n"
        "  case E of decl int Expr E1, E2: E1 - E2, "
        "where pos(E1) && pos(E2)\n"
        "  invariant value(E) > 0\n"
    )
    verdicts = shadow.clause_verdicts(qdef, quals)
    assert len(verdicts) == 1
    _, cex = verdicts[0]
    assert isinstance(cex, dict)
    env = {k: v for k, v in cex.items()}
    assert env["E1"] > 0 and env["E2"] > 0 and env["E1"] - env["E2"] <= 0


def test_shadow_clean_box_for_sound_clause():
    qdef, quals = _single(
        "value qualifier q(int Expr E)\n"
        "  case E of decl int Expr E1, E2: E1 + E2, "
        "where pos(E1) && pos(E2)\n"
        "  invariant value(E) > 0\n"
    )
    (_, verdict), = shadow.clause_verdicts(qdef, quals)
    assert verdict is None


def test_shadow_reports_pointer_clause_unrepresentable():
    qdef, quals = _single(
        "value qualifier q(int* Expr E)\n"
        "  case E of decl int* LValue L: &L\n"
        "  invariant value(E) != NULL\n"
    )
    (_, verdict), = shadow.clause_verdicts(qdef, quals)
    assert verdict == shadow.NOT_REPRESENTABLE


# ------------------------------------------------------------ minimizer


def test_ddmin_reaches_minimal_subset():
    needle = {3, 11}
    result = minimize.ddmin(
        list(range(16)), lambda items: needle <= set(items)
    )
    assert set(result) == needle


def test_ddmin_respects_probe_budget():
    calls = []

    def pred(items):
        calls.append(1)
        return 0 in items

    minimize.ddmin(list(range(64)), pred, max_probes=10)
    assert len(calls) <= 10


def test_minimal_qual_source_keeps_premise_dependencies():
    defs = parse_qualifiers(
        "value qualifier g0(int Expr E)\n"
        "  case E of decl int Const C: C, where C > 1\n"
        "  invariant value(E) > 0\n"
        "\n"
        "value qualifier g1(int Expr E)\n"
        "  case E of decl int Expr E1: E1, where g0(E1)\n"
        "    | decl int Const C: C, where C < 0\n"
        "  invariant value(E) != 0\n"
    )
    reduced = minimize.minimal_qual_source(list(defs), "g1", 0)
    reparsed = parse_qualifiers(reduced)
    by_name = {d.name: d for d in reparsed}
    assert set(by_name) == {"g0", "g1"}
    assert len(by_name["g1"].cases) == 1  # only the offending clause


# ----------------------------------------------------------- clean path


def test_small_corpus_has_no_disagreements():
    for index in range(8):
        case = generate_case(0, index)
        outcome = runner.run_case(case, time_limit=10.0)
        assert not outcome.findings, [
            f.to_dict() for f in outcome.findings
        ]
    # non-vacuous: verdicts were actually compared
    assert outcome.counters["prover_vs_enum.obligations"] > 0


@pytest.mark.slow
def test_full_corpus_sweep_seed0():
    """The acceptance sweep: 200 cases, zero disagreements."""
    compared = 0
    for index in range(200):
        case = generate_case(0, index)
        outcome = runner.run_case(case, time_limit=10.0)
        assert not outcome.findings, [
            f.to_dict() for f in outcome.findings
        ]
        compared += outcome.counters.get("prover_vs_enum.compared", 0)
    assert compared > 500


# ------------------------------------------------------- injected bugs


_REAL_AXIOMS = checker_mod.semantics_axioms  # bind before patching


def _dropped_axioms():
    axioms = _REAL_AXIOMS()
    # Dropping the constant-evaluation axiom makes valid constant-rule
    # obligations unprovable; the prover refutes them.
    return axioms[:2] + axioms[3:]


def _flipped_join(self, a, b):
    if a is UNIVERSE:
        return b
    if b is UNIVERSE:
        return a
    return frozenset(a) | frozenset(b)  # union where intersection belongs


def _hunt(which, max_cases=60):
    for index in range(max_cases):
        case = generate_case(0, index)
        outcome = runner.run_case(case, time_limit=10.0, which=which)
        if outcome.findings:
            return case, outcome.findings[0]
    pytest.fail(f"injected bug not caught in {max_cases} cases")


def test_dropped_axiom_is_caught_minimized_and_replayable(tmp_path):
    with mock.patch.object(
        checker_mod, "semantics_axioms", _dropped_axioms
    ):
        case, finding = _hunt(("prover-vs-enum",))
        assert finding.kind == "refuted-but-valid"
        minimized = runner.minimize_finding(case, finding)
        assert minimized is not None
        # reduced to a single case clause
        reduced = parse_qualifiers(minimized["qual_source"])
        target = [d for d in reduced if d.name == finding.detail["qualifier"]]
        assert len(target) == 1 and len(target[0].cases) == 1
        path = runner.write_artifact(
            str(tmp_path), case, finding, minimized
        )
        replayed = runner.replay_artifact(path)
        assert any(
            f.kind == "refuted-but-valid" for f in replayed.findings
        )
    # with the bug fixed, the same artifact replays clean
    clean = runner.replay_artifact(path)
    assert not clean.findings


def test_flipped_join_is_caught_minimized_and_replayable(tmp_path):
    with mock.patch.object(MustSetLattice, "join", _flipped_join):
        case, finding = _hunt(("preservation",))
        assert finding.kind == "native-vs-instrumented-divergence"
        minimized = runner.minimize_finding(case, finding)
        assert minimized is not None
        original = len(case.c_source.splitlines())
        reduced = len(minimized["c_source"].splitlines())
        assert reduced < original
        path = runner.write_artifact(
            str(tmp_path), case, finding, minimized
        )
        replayed = runner.replay_artifact(path)
        assert any(
            f.kind == "native-vs-instrumented-divergence"
            for f in replayed.findings
        )
    clean = runner.replay_artifact(path)
    assert not clean.findings


def test_audit_interpreter_catches_violating_store():
    """The Thm-5.1 audit fires on a store that breaks a declared
    invariant even when no cast (hence no check) guards it."""
    from repro.cfront.parser import parse_c
    from repro.cil.lower import lower_unit
    from repro.difftest.audit import AuditInterpreter, PreservationViolation

    src = """
    int main() {
      int pos p = 5;
      p = p - 10;
      return p;
    }
    """
    program = lower_unit(parse_c(src, qualifier_names=STD.names))
    interp = AuditInterpreter(program, quals=STD)
    with pytest.raises(PreservationViolation) as err:
        interp.run("main", [])
    assert err.value.qualifier == "pos"
    assert err.value.value == -5


# ------------------------------------------------------------ api / cli


def test_api_difftest_clean_run(tmp_path):
    report = api.Session().difftest(
        api.DifftestRequest(
            seed=0, count=4, time_limit=10.0, out_dir=str(tmp_path)
        )
    )
    assert report.exit_code == 0
    payload = report.to_dict()
    assert payload["schema_version"] == api.SCHEMA_VERSION
    meta = payload["difftest"]  # BatchReport.meta keys land top-level
    assert meta["findings"] == 0
    assert meta["counters"]["preservation.compared_runs"] == 4
    assert not os.listdir(str(tmp_path))  # clean runs write nothing


def test_api_difftest_budget_skips_cases(tmp_path):
    report = api.Session().difftest(
        api.DifftestRequest(
            seed=0, count=30, budget=0.0, out_dir=str(tmp_path)
        )
    )
    assert report.exit_code == 0
    meta = report.batch.meta["difftest"]
    assert meta["cases_skipped_budget"] == 30
    assert meta["findings"] == 0


def test_api_difftest_reports_findings_as_warnings(tmp_path):
    with mock.patch.object(MustSetLattice, "join", _flipped_join):
        report = api.Session().difftest(
            api.DifftestRequest(
                seed=0, count=6, time_limit=10.0, out_dir=str(tmp_path)
            )
        )
    meta = report.batch.meta["difftest"]
    assert meta["findings"] > 0
    assert report.exit_code == 1  # WARNINGS
    assert meta["artifacts"]
    artifact = json.load(open(meta["artifacts"][0]))
    assert artifact["finding"]["oracle"] == "preservation"
    assert "--replay" in artifact["repro"]


def test_cli_difftest_runs(capsys):
    from repro.cli import main

    code = main(["difftest", "--seed", "0", "--count", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 disagreement(s)" in out
