"""Unit and property tests for the integer linear arithmetic solver."""

from fractions import Fraction
from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.prover.linarith import (
    Constraint,
    entails_eq,
    linearize,
    make_eq,
    make_le,
    satisfiable,
)
from repro.prover.terms import Int, TVar, fn

x, y, z = fn("x"), fn("y"), fn("z")


# ----------------------------------------------------------------- linearize


def test_linearize_constant():
    coeffs, const = linearize(Int(7))
    assert coeffs == {} and const == 7


def test_linearize_sum_and_difference():
    coeffs, const = linearize(fn("-", fn("+", x, Int(3)), y))
    assert coeffs == {x: 1, y: -1} and const == 3


def test_linearize_unary_minus():
    coeffs, const = linearize(fn("-", x))
    assert coeffs == {x: -1} and const == 0


def test_linearize_scalar_multiple():
    coeffs, const = linearize(fn("*", Int(4), fn("+", x, y)))
    assert coeffs == {x: 4, y: 4} and const == 0


def test_linearize_opaque_product():
    coeffs, const = linearize(fn("*", x, y))
    assert list(coeffs.values()) == [Fraction(1)]
    assert const == 0


def test_linearize_cancellation():
    coeffs, const = linearize(fn("-", x, x))
    assert coeffs == {} and const == 0


def test_opaque_symbols():
    # mod and div are not interpreted here.
    coeffs, _ = linearize(fn("%", x, Int(2)))
    assert fn("%", x, Int(2)) in coeffs


# --------------------------------------------------------------- tightening


def test_strict_tightening():
    c = make_le(x, Int(5), strict=True)
    assert c.op == "<="
    # x < 5 over ints is x <= 4: coeffs {x:1}, const -4.
    assert c.coeffs == {x: 1} and c.const == -4


def test_gcd_tightening_inequality():
    # 2x <= 1 over ints means x <= 0.
    c = make_le(fn("*", Int(2), x), Int(1), strict=False)
    assert c.coeffs == {x: 1}
    assert c.const == 0  # x - 0 <= 0


def test_gcd_tightening_equality_infeasible():
    # 2x = 1 has no integer solution.
    (c,) = make_eq(fn("*", Int(2), x), Int(1))
    assert c.is_trivial_false()


def test_gcd_tightening_equality_feasible():
    (c,) = make_eq(fn("*", Int(2), x), Int(6))
    assert c.coeffs == {x: 1} and c.const == -3


# --------------------------------------------------------------- satisfiable


def test_empty_is_sat():
    assert satisfiable([])


def test_simple_conflict():
    assert not satisfiable(
        [make_le(x, Int(1), False), make_le(Int(2), x, False)]
    )


def test_transitive_chain():
    cons = [
        make_le(x, y, True),
        make_le(y, z, True),
        make_le(z, x, True),
    ]
    assert not satisfiable(cons)


def test_equalities_via_gaussian():
    cons = make_eq(x, fn("+", y, Int(1))) + make_eq(y, Int(5)) + [
        make_le(x, Int(5), False)
    ]
    assert not satisfiable(cons)  # x = 6 but x <= 5


def test_parity_conflict():
    # x = 2q and x = 2r + 1 cannot both hold.
    q, r = fn("q"), fn("r")
    cons = make_eq(x, fn("*", Int(2), q)) + make_eq(
        x, fn("+", fn("*", Int(2), r), Int(1))
    )
    assert not satisfiable(cons)


def test_strictly_between_consecutive_integers():
    cons = [make_le(Int(0), x, True), make_le(x, Int(1), True)]
    assert not satisfiable(cons)


def test_entails_eq_positive():
    cons = [make_le(x, y, False), make_le(y, x, False)]
    assert entails_eq(cons, x, y)


def test_entails_eq_negative():
    cons = [make_le(x, y, False)]
    assert not entails_eq(cons, x, y)


def test_entails_eq_through_parity():
    # 0 <= m <= 1 and m = 2t entail m = 0.
    m, t = fn("m"), fn("t")
    cons = (
        [make_le(Int(0), m, False), make_le(m, Int(1), False)]
        + make_eq(m, fn("*", Int(2), t))
    )
    assert entails_eq(cons, m, Int(0))


# ------------------------------------------------------------ property tests


@st.composite
def small_systems(draw):
    """Random systems over 3 integer variables with small coefficients."""
    n_cons = draw(st.integers(1, 5))
    rows = []
    for _ in range(n_cons):
        coeffs = [draw(st.integers(-3, 3)) for _ in range(3)]
        const = draw(st.integers(-6, 6))
        op = draw(st.sampled_from(["<=", "<", "="]))
        rows.append((coeffs, const, op))
    return rows


def _brute_force_sat(rows, bound=8):
    for vals in product(range(-bound, bound + 1), repeat=3):
        ok = True
        for coeffs, const, op in rows:
            total = sum(c * v for c, v in zip(coeffs, vals)) + const
            if op == "<=" and not total <= 0:
                ok = False
            elif op == "<" and not total < 0:
                ok = False
            elif op == "=" and total != 0:
                ok = False
            if not ok:
                break
        if ok:
            return True
    return False


def _to_constraints(rows):
    vars_ = [fn("v0"), fn("v1"), fn("v2")]
    out = []
    for coeffs, const, op in rows:
        mapping = {
            v: Fraction(c) for v, c in zip(vars_, coeffs) if c != 0
        }
        out.append(Constraint(mapping, Fraction(const), op).tightened())
    return out


@settings(max_examples=120, deadline=None)
@given(small_systems())
def test_satisfiable_agrees_with_brute_force_when_unsat(rows):
    """Completeness direction we rely on: if the solver says UNSAT, no
    small integer assignment satisfies the system."""
    cons = _to_constraints(rows)
    if not satisfiable(cons):
        assert not _brute_force_sat(rows)


@settings(max_examples=120, deadline=None)
@given(small_systems())
def test_brute_force_sat_implies_solver_sat(rows):
    """Soundness: a concrete integer solution means the solver must not
    claim UNSAT."""
    if _brute_force_sat(rows, bound=6):
        assert satisfiable(_to_constraints(rows))
