"""Tests for countermodel reporting on failed obligations."""

from repro.core.qualifiers.library import POS_SOURCE, standard_qualifiers
from repro.core.qualifiers.parser import parse_qualifier
from repro.core.soundness.checker import check_soundness

QUALS = standard_qualifiers()


def test_mutated_pos_countermodel_names_the_gap():
    bad = parse_qualifier(POS_SOURCE.replace("E1 * E2", "E1 - E2"))
    report = check_soundness(bad, QUALS, time_limit=20)
    failure = report.failures[0]
    explanation = failure.explain_failure()
    # The scenario must say: both operands positive, difference not.
    assert "0 < evalExpr" in explanation
    assert "binop_subE" in explanation
    assert "¬(0 < evalExpr" in explanation


def test_wrong_invariant_countermodel():
    bad = parse_qualifier(POS_SOURCE.replace("value(E) > 0", "value(E) > 1"))
    report = check_soundness(bad, QUALS, time_limit=20)
    assert not report.sound
    # The constant clause C > 0 cannot establish value > 1; the
    # countermodel exhibits the boundary constant.
    failing = [f for f in report.failures if "Const" in f.obligation.rule]
    assert failing
    assert "scenario" in failing[0].explain_failure()


def test_proved_obligation_has_no_countermodel():
    from repro.core.qualifiers.library import POS

    report = check_soundness(POS, QUALS, time_limit=20)
    for result in report.results:
        assert result.proved
        assert "nothing to explain" in result.explain_failure()


# -------------------------- completeness of the printed countermodel


def test_extra_axiom_atoms_survive_into_countermodel():
    """Atoms contributed only by extra axioms must appear in the
    countermodel — assigned as literals, or tagged [unconstrained] —
    never silently dropped."""
    from repro.prover.prover import Prover
    from repro.prover.terms import Eq, Implies, Int, Pr, TVar, fn

    x = TVar("x")
    # Unprovable goal; the extra axiom mentions a function the goal
    # never uses, so its atoms exist only through the extra axiom.
    goal = Eq(fn("f", Int(1)), Int(2))
    extra = Implies(Pr("ghost", (Int(0),)), Eq(fn("g", Int(3)), Int(4)))
    result = Prover(time_limit=10).prove(goal, extra_axioms=[extra])
    assert result.verdict == "REFUTED"
    text = "\n".join(result.countermodel)
    assert "ghost" in text or "g(3)" in text


def test_explain_failure_shows_all_facts_by_default():
    bad = parse_qualifier(POS_SOURCE.replace("E1 * E2", "E1 - E2"))
    report = check_soundness(bad, QUALS, time_limit=20)
    failure = report.failures[0]
    full = failure.explain_failure()
    facts = failure.result.countermodel
    assert len(facts) > 0
    for fact in facts:
        assert fact in full
    assert "omitted" not in full


def test_explain_failure_truncation_is_announced():
    bad = parse_qualifier(POS_SOURCE.replace("E1 * E2", "E1 - E2"))
    report = check_soundness(bad, QUALS, time_limit=20)
    failure = report.failures[0]
    n = len(failure.result.countermodel)
    assert n >= 2
    truncated = failure.explain_failure(max_facts=1)
    assert f"({n - 1} more fact(s) omitted)" in truncated


def test_json_report_carries_countermodel():
    bad = parse_qualifier(POS_SOURCE.replace("E1 * E2", "E1 - E2"))
    report = check_soundness(bad, QUALS, time_limit=20)
    payload = report.to_dict()
    unproved = [o for o in payload["obligations"] if not o["proved"]]
    assert unproved
    assert unproved[0]["countermodel"]  # complete, non-empty list
    proved = [o for o in payload["obligations"] if o["proved"]]
    for entry in proved:
        assert "countermodel" not in entry  # additive: absent when clean
