"""Tests for countermodel reporting on failed obligations."""

from repro.core.qualifiers.library import POS_SOURCE, standard_qualifiers
from repro.core.qualifiers.parser import parse_qualifier
from repro.core.soundness.checker import check_soundness

QUALS = standard_qualifiers()


def test_mutated_pos_countermodel_names_the_gap():
    bad = parse_qualifier(POS_SOURCE.replace("E1 * E2", "E1 - E2"))
    report = check_soundness(bad, QUALS, time_limit=20)
    failure = report.failures[0]
    explanation = failure.explain_failure()
    # The scenario must say: both operands positive, difference not.
    assert "0 < evalExpr" in explanation
    assert "binop_subE" in explanation
    assert "¬(0 < evalExpr" in explanation


def test_wrong_invariant_countermodel():
    bad = parse_qualifier(POS_SOURCE.replace("value(E) > 0", "value(E) > 1"))
    report = check_soundness(bad, QUALS, time_limit=20)
    assert not report.sound
    # The constant clause C > 0 cannot establish value > 1; the
    # countermodel exhibits the boundary constant.
    failing = [f for f in report.failures if "Const" in f.obligation.rule]
    assert failing
    assert "scenario" in failing[0].explain_failure()


def test_proved_obligation_has_no_countermodel():
    from repro.core.qualifiers.library import POS

    report = check_soundness(POS, QUALS, time_limit=20)
    for result in report.results:
        assert result.proved
        assert "nothing to explain" in result.explain_failure()
