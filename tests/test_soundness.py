"""Tests for the automated soundness checker (paper section 4).

The positive results reproduce the paper's headline claims: pos, neg,
nonzero and nonnull are proven sound automatically; unique and
unaliased too.  The negative results reproduce the paper's error
scenarios: the ``E1 - E2`` mutation of pos (section 2.1.3) and the
omission of ``disallow`` from unique (section 2.2.3) are both caught.
"""

import pytest

from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import (
    NEG,
    NONNULL,
    NONZERO,
    POS,
    POS_SOURCE,
    TAINTED,
    UNALIASED,
    UNALIASED_SOURCE,
    UNIQUE,
    UNIQUE_SOURCE,
    UNTAINTED,
    standard_qualifiers,
)
from repro.core.qualifiers.parser import parse_qualifier
from repro.core.soundness.checker import check_soundness
from repro.core.soundness.obligations import generate_obligations

QUALS = standard_qualifiers()


@pytest.fixture(scope="module")
def reports():
    """Soundness reports for all standard qualifiers, computed once."""
    return {
        q.name: check_soundness(q, QUALS, time_limit=45)
        for q in (POS, NEG, NONZERO, NONNULL, TAINTED, UNTAINTED, UNIQUE, UNALIASED)
    }


# ------------------------------------------------------------------ positive


def test_pos_proved_sound(reports):
    assert reports["pos"].sound, reports["pos"].summary()


def test_neg_proved_sound(reports):
    assert reports["neg"].sound, reports["neg"].summary()


def test_nonzero_proved_sound(reports):
    assert reports["nonzero"].sound, reports["nonzero"].summary()


def test_nonnull_proved_sound(reports):
    assert reports["nonnull"].sound, reports["nonnull"].summary()


def test_flow_qualifiers_trivially_sound(reports):
    # tainted/untainted have no invariant: sound "for free" (2.1.4).
    assert reports["tainted"].sound
    assert reports["untainted"].sound
    assert all(r.obligation.trivial for r in reports["tainted"].results)


def test_unique_proved_sound(reports):
    assert reports["unique"].sound, reports["unique"].summary()


def test_unaliased_proved_sound(reports):
    assert reports["unaliased"].sound, reports["unaliased"].summary()


def test_value_qualifier_obligation_counts(reports):
    # One obligation per case clause (section 4.2).
    assert len(reports["pos"].results) == len(POS.cases)
    assert len(reports["nonzero"].results) == len(NONZERO.cases)


def test_ref_qualifier_obligation_shape(reports):
    rules = [r.obligation.rule for r in reports["unique"].results]
    assert any(r.startswith("assign 1") for r in rules)
    assert any(r.startswith("assign 2") for r in rules)
    assert sum(1 for r in rules if r.startswith("preservation")) == 6


def test_restrict_clauses_ignored_by_soundness():
    # nonzero's restrict clause contributes no obligation (2.1.3).
    obs = generate_obligations(NONZERO, QUALS)
    assert len(obs) == len(NONZERO.cases)


# ------------------------------------------------------------------ negative


def test_paper_mutation_pos_minus_is_caught():
    """Section 2.1.3: pattern E1 - E2 instead of E1 * E2 must fail."""
    bad = parse_qualifier(POS_SOURCE.replace("E1 * E2", "E1 - E2"))
    report = check_soundness(bad, QUALS, time_limit=20)
    assert not report.sound
    failing = [r.obligation.rule for r in report.failures]
    assert any("E1 - E2" in rule for rule in failing)
    # The other clauses still prove.
    assert len(report.failures) == 1


def test_paper_mutation_unique_without_disallow_is_caught():
    """Section 2.2.3: omitting `disallow L` breaks preservation — the
    'store the value of l in l'' case is no longer provable."""
    bad = parse_qualifier(UNIQUE_SOURCE.replace("disallow L", ""))
    report = check_soundness(bad, QUALS, time_limit=20)
    assert not report.sound
    failing = [r.obligation.rule for r in report.failures]
    assert any("read of an l-value" in rule for rule in failing)


def test_unaliased_without_disallow_is_caught():
    bad = parse_qualifier(UNALIASED_SOURCE.replace("disallow &X", ""))
    report = check_soundness(bad, QUALS, time_limit=20)
    assert not report.sound
    failing = [r.obligation.rule for r in report.failures]
    assert any("address of a variable" in rule for rule in failing)


def test_wrong_constant_rule_is_caught():
    bad = parse_qualifier(POS_SOURCE.replace("C > 0", "C >= 0"))
    report = check_soundness(bad, QUALS, time_limit=20)
    assert not report.sound


def test_wrong_invariant_is_caught():
    bad = parse_qualifier(POS_SOURCE.replace("value(E) > 0", "value(E) > 1"))
    report = check_soundness(bad, QUALS, time_limit=20)
    assert not report.sound


def test_bogus_assign_rule_is_caught():
    # Allowing arbitrary l-value reads into unique is unsound.
    bad = parse_qualifier(
        UNIQUE_SOURCE.replace(
            "assign L\n      NULL\n    | new",
            "assign L\n      NULL\n    | new\n    | decl T* LValue L2: L2",
        )
    )
    report = check_soundness(bad, QUALS, time_limit=20)
    assert not report.sound
    failing = [r.obligation.rule for r in report.failures]
    assert any(r.startswith("assign 3") for r in failing)


# ------------------------------------------------------------- performance


def test_value_qualifiers_prove_quickly(reports):
    """Paper: value qualifiers prove in under a second with Simplify;
    our pure-Python prover gets an order of magnitude of slack."""
    for name in ("pos", "neg", "nonzero", "nonnull"):
        assert reports[name].elapsed < 10, f"{name}: {reports[name].elapsed}s"


def test_ref_qualifiers_prove_within_paper_bound(reports):
    """Paper: reference qualifiers prove in under 30 seconds."""
    for name in ("unique", "unaliased"):
        assert reports[name].elapsed < 30, f"{name}: {reports[name].elapsed}s"
