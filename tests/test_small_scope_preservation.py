"""Small-scope, *exhaustive* validation of Theorem 5.1.

Where test_preservation_property samples randomly, this module
enumerates every program in a bounded fragment of the §5 calculus and
checks semantic conformance (figure 11) for each — a small-scope
mechanization of the preservation theorem for the standard qualifier
library.
"""

import itertools

import pytest

from repro.core.qualifiers.library import standard_qualifiers
from repro.semantics.lambda_ref import (
    EBin,
    EConst,
    EDeref,
    ENeg,
    EVar,
    SAssign,
    SExpr,
    SLet,
    SRef,
    SSeq,
    check_conformance,
    evaluate,
    typecheck,
)

QUALS = standard_qualifiers()

CONSTS = [-2, -1, 0, 1, 2]
OPS = ["+", "-", "*"]


def depth1_exprs():
    for c in CONSTS:
        yield EConst(c)


def depth2_exprs():
    yield from depth1_exprs()
    for e in depth1_exprs():
        yield ENeg(e)
    for op, l, r in itertools.product(OPS, depth1_exprs(), depth1_exprs()):
        yield EBin(op, l, r)


def depth3_sample_exprs():
    """Depth-3 expressions with depth-2 left subtrees (full depth 3 is
    ~10^5 programs; one-sided nesting already exercises rule recursion)."""
    for op, l, r in itertools.product(OPS, depth2_exprs(), depth1_exprs()):
        yield EBin(op, l, r)
    for e in depth2_exprs():
        yield ENeg(e)


def check_one(stmt):
    ltype = typecheck(stmt, QUALS)
    value, store = evaluate(stmt)
    problems = check_conformance(value, ltype, store, QUALS)
    assert problems == [], f"{stmt} : {ltype} -> {value}: {problems}"


def test_all_depth2_expressions():
    count = 0
    for e in depth2_exprs():
        check_one(SExpr(e))
        count += 1
    assert count == 5 + 5 + 3 * 25


def test_all_depth3_left_nested_expressions():
    for e in depth3_sample_exprs():
        check_one(SExpr(e))


def test_all_let_bindings_over_depth2():
    for bound in depth2_exprs():
        prog = SLet(
            "x",
            SExpr(bound),
            SExpr(EBin("*", EVar("x"), EVar("x"))),
        )
        check_one(prog)


def test_all_ref_cell_programs():
    """Every (init, update) pair: when the program typechecks (storing
    into a ``ref (int pos)`` cell demands a pos value — no subtyping
    under ref), the cell's contents must conform after assignment."""
    from repro.semantics.lambda_ref import LambdaTypeError

    checked = rejected = 0
    for init, update in itertools.product(depth1_exprs(), depth2_exprs()):
        prog = SLet(
            "r",
            SRef(SExpr(init)),
            SSeq(
                SAssign(SExpr(EVar("r")), SExpr(update)),
                SExpr(EDeref(EVar("r"))),
            ),
        )
        try:
            check_one(prog)
            checked += 1
        except LambdaTypeError:
            rejected += 1  # e.g. storing 0 into ref (int pos): correct
    # The richer the qualifier library, the more precise the inferred
    # cell types and the fewer update expressions still fit them; what
    # matters is that a real population passes and a real one is
    # rejected by ref-type invariance.
    assert checked >= 40
    assert rejected > 0  # the invariance of ref types really bites


def test_derived_qualifier_sets_are_tight_on_depth2():
    """For every depth-2 expression, each of pos/neg/nonzero is derived
    only if it is true of the value — and the constant rules are exact
    (the compound rules may be incomplete but never wrong)."""
    for e in depth2_exprs():
        stmt = SExpr(e)
        ltype = typecheck(stmt, QUALS)
        value, _ = evaluate(stmt)
        if "pos" in ltype.quals:
            assert value > 0
        if "neg" in ltype.quals:
            assert value < 0
        if "nonzero" in ltype.quals:
            assert value != 0
        if isinstance(e, EConst):
            assert ("pos" in ltype.quals) == (value > 0)
            assert ("neg" in ltype.quals) == (value < 0)
            assert ("nonzero" in ltype.quals) == (value != 0)
