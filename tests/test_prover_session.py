"""Incremental prover sessions: verdict identity and state lifecycle.

The session layer's whole contract is "faster, never different": a
:class:`ProverSession` may transfer learned theory cores, memoized
theory checks, and cached triggers across the obligations of one axiom
environment, but PROVED/REFUTED verdicts must be exactly those of a
cold prover, in any discharge order.  These tests pin that contract
plus the lifecycle rules (reset on environment change, pool eviction,
the ``--no-session`` escape hatch).
"""

import random

import pytest

import repro
from repro import api
from repro.core.qualifiers.library import standard_qualifiers
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.checker import check_soundness
from repro.core.soundness.workitems import (
    discharge_work_item,
    generate_work_items,
)
from repro.prover.cnf import ClauseDb
from repro.prover.session import ProverSession, SessionPool

QUALS = standard_qualifiers()
AXIOMS = semantics_axioms()


def _work_items(names=None):
    items = []
    for qdef in QUALS:
        if names is not None and qdef.name not in names:
            continue
        items.extend(generate_work_items(qdef, QUALS, AXIOMS, unit="t"))
    return items


def _verdict(outcome):
    return (
        outcome["qualifier"],
        outcome["rule"],
        outcome["verdict"],
        outcome["proved"],
    )


def _cold_outcomes(items):
    return {
        item.key: discharge_work_item(item, AXIOMS, time_limit=15)
        for item in items
    }


class TestVerdictIdentity:
    def test_cold_vs_warm_session_full_sweep(self):
        """Every standard-library obligation gets the same verdict from
        a shared session as from a cold prover."""
        items = _work_items()
        cold = _cold_outcomes(items)
        sessions = {}
        warm = {}
        for item in items:
            session = sessions.get(item.env_digest)
            if session is None:
                session = ProverSession(
                    AXIOMS, context=item.context, time_limit=15
                )
                sessions[item.env_digest] = session
            warm[item.key] = discharge_work_item(
                item, AXIOMS, session=session, time_limit=15
            )
        assert {k: _verdict(v) for k, v in warm.items()} == {
            k: _verdict(v) for k, v in cold.items()
        }
        totals = {}
        for session in sessions.values():
            for key, value in session.counters.items():
                totals[key] = totals.get(key, 0) + value
        # The sweep must actually exercise reuse, or this test proves
        # nothing about state transfer.
        assert totals["session_reuse"] > 0
        assert totals["cores_learned"] > 0
        assert totals["cores_seeded"] > 0

    def test_discharge_order_permutation(self):
        """Learned-state transfer is order-insensitive: shuffling the
        obligation stream never flips a verdict."""
        items = [i for i in _work_items() if not i.trivial]
        cold = {k: _verdict(v) for k, v in _cold_outcomes(items).items()}
        rng = random.Random(1234)
        for trial in range(2):
            shuffled = list(items)
            rng.shuffle(shuffled)
            sessions = {}
            for item in shuffled:
                session = sessions.setdefault(
                    item.env_digest,
                    ProverSession(
                        AXIOMS, context=item.context, time_limit=15
                    ),
                )
                outcome = discharge_work_item(
                    item, AXIOMS, session=session, time_limit=15
                )
                assert _verdict(outcome) == cold[item.key], (
                    f"trial {trial}: order-dependent verdict for "
                    f"{item.key}"
                )

    def test_check_soundness_sessions_hook(self):
        """check_soundness(sessions=pool) reports exactly what the
        plain path reports, while the pool records the reuse."""
        pool = SessionPool()
        for qdef in QUALS:
            plain = check_soundness(qdef, QUALS, time_limit=15)
            pooled = check_soundness(
                qdef, QUALS, time_limit=15, sessions=pool
            )
            assert [
                (r.obligation.rule, r.verdict, r.proved)
                for r in plain.results
            ] == [
                (r.obligation.rule, r.verdict, r.proved)
                for r in pooled.results
            ]
        counters = pool.counters()
        assert counters["sessions"] == len(pool.sessions())
        assert counters["session_reuse"] > 0


class TestLifecycle:
    def test_pool_keys_sessions_by_environment(self):
        pool = SessionPool()
        a1 = pool.get(AXIOMS, context="qual A")
        b = pool.get(AXIOMS, context="qual B")
        a2 = pool.get(AXIOMS, context="qual A")
        assert a1 is a2
        assert a1 is not b
        assert a1.env_digest != b.env_digest

    def test_pool_eviction_bounds_resident_state(self):
        pool = SessionPool(max_sessions=2)
        for n in range(4):
            pool.get(AXIOMS, context=f"qual {n}")
        assert len(pool.sessions()) == 2
        assert pool.evictions == 2

    def test_rebind_drops_learned_state(self):
        items = [i for i in _work_items({"pos"}) if not i.trivial]
        session = ProverSession(
            AXIOMS, context=items[0].context, time_limit=15
        )
        for item in items:
            discharge_work_item(item, AXIOMS, session=session, time_limit=15)
        assert session.counters["cores_learned"] > 0
        old_digest = session.env_digest
        session.rebind(AXIOMS, context="a different environment")
        assert session.env_digest != old_digest
        assert session.counters["resets"] == 1
        assert session._cores == []
        assert session._base is None
        assert not session._memo and not session.trigger_cache

    def test_seeding_never_mints_atoms(self):
        """A core whose atoms are absent from the target db must not be
        seeded — seeding may only reuse existing SAT variables."""
        session = ProverSession(AXIOMS, context="seed-test")
        index = session.learn_core(
            [("some-atom-object", True), ("another-atom", False)]
        )
        assert index is not None
        empty = ClauseDb()
        before = len(empty.clauses)
        session.seed_cores(empty, set())
        assert len(empty.clauses) == before
        assert session.counters["cores_seeded"] == 0


class TestEscapeHatch:
    QUAL = (
        "value qualifier nn2(int Expr E)\n"
        "  case E of\n"
        "      decl int Const C:\n"
        "        C, where C >= 0\n"
        "    | decl int Expr E1, E2:\n"
        "        E1 + E2, where nn2(E1) && nn2(E2)\n"
        "  invariant value(E) >= 0\n"
    )

    def test_no_session_restores_cold_path(self, tmp_path):
        qual = tmp_path / "defs.qual"
        qual.write_text(self.QUAL)
        files = (str(qual),)
        on = repro.Session().prove(
            api.ProveRequest(files=files, cache=False)
        ).to_dict()
        off = repro.Session().prove(
            api.ProveRequest(files=files, cache=False, session=False)
        ).to_dict()
        assert on["sessions"]["enabled"] is True
        assert "sessions" not in off

        def obligations(payload):
            return [
                (o["rule"], o["verdict"], o["proved"], o["reason"])
                for u in payload["units"]
                for q in u["detail"]["qualifiers"]
                for o in q["obligations"]
            ]

        assert obligations(on) == obligations(off)
        assert on["exit_code"] == off["exit_code"]

    def test_cli_no_session_flag(self, tmp_path, capsys):
        import json

        from repro.cli import main

        qual = tmp_path / "defs.qual"
        qual.write_text(self.QUAL)
        assert (
            main(
                [
                    "prove", str(qual), "--no-cache", "--no-session",
                    "--format", "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert "sessions" not in payload
