"""Tests for the user/kernel flow qualifiers (section 2.1.4's second
flow-qualifier example, after Johnson & Wagner)."""

import pytest

from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import KERNEL, USER
from repro.core.soundness.checker import check_soundness
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit

QUALS = QualifierSet([KERNEL, USER])
NAMES = {"user", "kernel"}


def check(src):
    return check_program(lower_unit(parse_c(src, qualifier_names=NAMES)), QUALS)


def test_kernel_pointer_dereference_allowed():
    report = check(
        """
        int read_flag(int* kernel config) {
          return *config;
        }
        """
    )
    assert report.ok, report.summary()


def test_user_pointer_dereference_rejected():
    # The user/kernel bug class: dereferencing an unchecked user pointer.
    report = check(
        """
        int syscall_arg(int* user ptr) {
          return *ptr;
        }
        """
    )
    assert not report.ok
    assert report.errors_for("user")


def test_unannotated_pointer_dereference_rejected():
    # Everything is potentially a user pointer until marked kernel.
    report = check("int f(int* p) { return *p; }")
    assert not report.ok


def test_kernel_flows_to_user_context():
    # kernel data may be passed where arbitrary (user) data is expected:
    # T kernel <= T, and `user`'s case clause accepts anything.
    report = check(
        """
        void accept_any(int* user p);
        void f(int* kernel k) { accept_any(k); }
        """
    )
    assert report.ok, report.summary()


def test_user_does_not_flow_to_kernel():
    report = check(
        """
        void kernel_only(int* kernel p);
        void f(int* user u) { kernel_only(u); }
        """
    )
    assert not report.ok
    assert report.errors_for("kernel")


def test_copy_from_user_pattern():
    # The sanctioned idiom: an explicit cast models copy_from_user's
    # verified transfer into kernel space.
    report = check(
        """
        int syscall_arg(int* user ptr) {
          int* kernel safe = (int* kernel) ptr;
          return *safe;
        }
        """
    )
    assert report.ok, report.summary()


def test_flow_qualifiers_trivially_sound():
    for qdef in (KERNEL, USER):
        report = check_soundness(qdef, QUALS)
        assert report.sound
        assert all(r.obligation.trivial for r in report.results)
