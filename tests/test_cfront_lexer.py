"""Unit tests for the C lexer."""

import pytest

from repro.cfront.lexer import LexError, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src) if t.kind != "eof"]


def texts(src):
    return [t.text for t in tokenize(src) if t.kind != "eof"]


def test_identifiers_and_ints():
    toks = tokenize("foo bar_2 42 0x1F 010")
    assert [t.kind for t in toks[:-1]] == ["id", "id", "int", "int", "int"]
    assert toks[2].int_value == 42
    assert toks[3].int_value == 31
    assert toks[4].int_value == 8


def test_integer_suffixes_are_swallowed():
    toks = tokenize("42UL 7l")
    assert toks[0].int_value == 42
    assert toks[1].int_value == 7


def test_string_and_char_literals():
    toks = tokenize('"hello\\n" \'a\' \'\\n\'')
    assert toks[0].string_value == "hello\n"
    assert toks[1].char_value == ord("a")
    assert toks[2].char_value == ord("\n")


def test_multichar_punct_longest_match():
    assert texts("a <<= b >> c != d -> e") == ["a", "<<=", "b", ">>", "c", "!=", "d", "->", "e"]


def test_comments_are_skipped():
    assert texts("a /* hi\nthere */ b // tail\nc") == ["a", "b", "c"]


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_unterminated_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_ellipsis_token():
    assert texts("f(int, ...)") == ["f", "(", "int", ",", "...", ")"]
