"""Unit tests for trigger derivation and E-matching."""

from repro.prover.cnf import QuantAtom
from repro.prover.quant import (
    derive_triggers,
    ground_pool,
    instantiate,
    match_term,
)
from repro.prover.terms import (
    And,
    Eq,
    ForAll,
    Implies,
    Int,
    Not,
    Pr,
    TVar,
    fn,
)

a, b = fn("a"), fn("b")
x, y = TVar("x"), TVar("y")


# ------------------------------------------------------------------ matching


def test_match_variable_binds():
    assert match_term(x, a, {}) == {"x": a}


def test_match_consistency():
    pattern = fn("f", x, x)
    assert match_term(pattern, fn("f", a, a), {}) == {"x": a}
    assert match_term(pattern, fn("f", a, b), {}) is None


def test_match_nested():
    pattern = fn("f", fn("g", x), y)
    ground = fn("f", fn("g", a), fn("h", b))
    assert match_term(pattern, ground, {}) == {"x": a, "y": fn("h", b)}


def test_match_respects_existing_bindings():
    pattern = fn("f", x)
    assert match_term(pattern, fn("f", a), {"x": b}) is None
    assert match_term(pattern, fn("f", a), {"x": a}) == {"x": a}


def test_match_integer_literals():
    assert match_term(Int(3), Int(3), {}) == {}
    assert match_term(Int(3), Int(4), {}) is None


def test_match_arity_and_symbol():
    assert match_term(fn("f", x), fn("g", a), {}) is None
    assert match_term(fn("f", x), fn("f", a, b), {}) is None


# ------------------------------------------------------------------ triggers


def test_explicit_triggers_win():
    atom = QuantAtom(("x",), Eq(fn("f", x), x), ((fn("mark", x),),))
    assert derive_triggers(atom) == ((fn("mark", x),),)


def test_derived_trigger_covers_all_vars():
    atom = QuantAtom(("x",), Eq(fn("f", x), Int(0)), ())
    triggers = derive_triggers(atom)
    assert ((fn("f", x),),) == triggers


def test_derived_trigger_skips_arithmetic():
    # +(x, 1) is interpreted; f(x) is the usable pattern.
    atom = QuantAtom(("x",), Eq(fn("f", x), fn("+", x, Int(1))), ())
    triggers = derive_triggers(atom)
    assert all(
        pat.fname != "+" for trig in triggers for pat in trig
    )


def test_multi_pattern_when_no_single_cover():
    atom = QuantAtom(
        ("x", "y"),
        Implies(Pr("P", (x,)), Pr("Q", (y,))),
        (),
    )
    triggers = derive_triggers(atom)
    assert triggers, "must derive something"
    # The single multi-pattern must cover both variables.
    names = {v for trig in triggers for pat in trig for v in _vars(pat)}
    assert names == {"x", "y"}


def _vars(term):
    from repro.prover.terms import term_vars

    return term_vars(term)


def test_predicate_reified_in_pool():
    pool = ground_pool([Pr("P", (a,)), Eq(b, Int(0))])
    assert fn("@p_P", a) in pool
    assert a in pool and b in pool


# -------------------------------------------------------------- instantiation


def test_instantiate_simple():
    atom = QuantAtom(("x",), Eq(fn("f", x), Int(1)), ())
    pool = ground_pool([Eq(fn("f", a), Int(0))])
    seen = set()
    out = instantiate(atom, pool, seen)
    assert ((a,), Eq(fn("f", a), Int(1))) in out


def test_instantiate_dedupes():
    atom = QuantAtom(("x",), Eq(fn("f", x), Int(1)), ())
    pool = ground_pool([Eq(fn("f", a), Int(0))])
    seen = set()
    first = instantiate(atom, pool, seen)
    second = instantiate(atom, pool, seen)
    assert first and not second


def test_instantiate_multi_pattern_cross_product():
    atom = QuantAtom(
        ("x", "y"),
        Implies(Pr("P", (x,)), Pr("Q", (y,))),
        ((fn("@p_P", x), fn("@p_Q", y)),),
    )
    pool = ground_pool([Pr("P", (a,)), Pr("Q", (b,)), Pr("Q", (a,))])
    out = instantiate(atom, pool, set())
    args = {args for args, _body in out}
    assert args == {(a, b), (a, a)}


def test_instantiate_nothing_without_matches():
    atom = QuantAtom(("x",), Eq(fn("f", x), Int(1)), ())
    pool = ground_pool([Eq(fn("g", a), Int(0))])
    assert instantiate(atom, pool, set()) == []
