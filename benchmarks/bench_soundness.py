"""Section 4: automated soundness checking, positive and negative.

The paper's claims:

* pos, neg, nonzero, nonnull each proven sound in under one second
  (Simplify on 2005 hardware);
* unique and unaliased each proven sound in under 30 seconds;
* the ``E1 - E2`` mutation of pos is caught (section 2.1.3);
* unique without ``disallow`` is caught (section 2.2.3).

Our prover is pure Python rather than Simplify; we check the *shape*:
value qualifiers prove one to two orders of magnitude faster than the
reference qualifiers, both within (generous multiples of) the paper's
bounds, and both mutations are refuted.
"""

import pytest

from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import (
    NEG,
    NONNULL,
    NONZERO,
    POS,
    POS_SOURCE,
    UNALIASED,
    UNIQUE,
    UNIQUE_SOURCE,
    standard_qualifiers,
)
from repro.core.qualifiers.parser import parse_qualifier
from repro.core.soundness.checker import check_soundness

QUALS = standard_qualifiers()


@pytest.mark.benchmark(group="soundness-value")
@pytest.mark.parametrize("qdef", [POS, NEG, NONZERO, NONNULL], ids=lambda q: q.name)
def test_value_qualifier_soundness(benchmark, qdef):
    report = benchmark.pedantic(
        lambda: check_soundness(qdef, QUALS, time_limit=30),
        iterations=1,
        rounds=3,
    )
    print(f"\n{qdef.name}: {'SOUND' if report.sound else 'UNSOUND'} "
          f"in {report.elapsed:.2f}s (paper bound: < 1 s with Simplify)")
    assert report.sound
    assert report.elapsed < 10  # generous multiple of the paper's bound


@pytest.mark.benchmark(group="soundness-ref")
@pytest.mark.parametrize("qdef", [UNIQUE, UNALIASED], ids=lambda q: q.name)
def test_ref_qualifier_soundness(benchmark, qdef):
    report = benchmark.pedantic(
        lambda: check_soundness(qdef, QUALS, time_limit=40),
        iterations=1,
        rounds=3,
    )
    print(f"\n{qdef.name}: {'SOUND' if report.sound else 'UNSOUND'} "
          f"in {report.elapsed:.2f}s (paper bound: < 30 s)")
    assert report.sound
    assert report.elapsed < 30


@pytest.mark.benchmark(group="soundness-negative")
def test_mutated_pos_refuted(benchmark):
    bad = parse_qualifier(POS_SOURCE.replace("E1 * E2", "E1 - E2"))
    report = benchmark.pedantic(
        lambda: check_soundness(bad, QUALS, time_limit=20),
        iterations=1,
        rounds=1,
    )
    print("\npos with E1 - E2:", "caught" if not report.sound else "MISSED")
    assert not report.sound


@pytest.mark.benchmark(group="soundness-negative")
def test_unique_without_disallow_refuted(benchmark):
    bad = parse_qualifier(UNIQUE_SOURCE.replace("disallow L", ""))
    report = benchmark.pedantic(
        lambda: check_soundness(bad, QUALS, time_limit=20),
        iterations=1,
        rounds=1,
    )
    print("\nunique without disallow:", "caught" if not report.sound else "MISSED")
    assert not report.sound
