"""Ablations of the soundness checker's design choices (DESIGN.md §5).

1. **Instantiation depth**: how many E-matching rounds each qualifier's
   proof needs; with the rounds capped below that, the obligation is
   (correctly) not proven — the prover degrades safely.
2. **Sign lemmas**: pos's product rule is only provable because the
   prover adds multiplication sign lemmas (Simplify had comparable
   heuristics); with the lemma module disabled, the prover answers
   "not proven" rather than anything unsound.
"""

import pytest

from repro.core.qualifiers.library import POS, UNALIASED, standard_qualifiers
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.checker import check_soundness
from repro.core.soundness.obligations import generate_obligations
from repro.prover.prover import Prover

QUALS = standard_qualifiers()


@pytest.mark.benchmark(group="ablation-depth")
@pytest.mark.parametrize("max_rounds", [0, 1, 2, 4, 6])
def test_instantiation_depth(benchmark, max_rounds):
    def run():
        return check_soundness(POS, QUALS, max_rounds=max_rounds, time_limit=20)

    report = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n  pos with max_rounds={max_rounds}: "
          f"{'SOUND' if report.sound else 'not proven'} in {report.elapsed:.2f}s")
    if max_rounds >= 2:
        assert report.sound
    # With zero rounds no axiom can instantiate: never unsound, only
    # incomplete.
    if max_rounds == 0:
        assert not report.sound


@pytest.mark.benchmark(group="ablation-depth")
@pytest.mark.parametrize("max_rounds", [1, 3, 6])
def test_ref_qualifier_depth(benchmark, max_rounds):
    def run():
        return check_soundness(UNALIASED, QUALS, max_rounds=max_rounds, time_limit=25)

    report = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\n  unaliased with max_rounds={max_rounds}: "
          f"{'SOUND' if report.sound else 'not proven'} in {report.elapsed:.2f}s")
    if max_rounds >= 3:
        assert report.sound


@pytest.mark.benchmark(group="ablation-lemmas")
def test_sign_lemmas_required_for_products(benchmark, monkeypatch):
    """Disable the nonlinear sign-lemma module: the product rule of pos
    must become unprovable (never wrongly provable)."""
    from repro.prover import prover as prover_mod

    product_obligation = [
        ob for ob in generate_obligations(POS, QUALS) if "E1 * E2" in ob.rule
    ][0]

    def with_lemmas():
        p = Prover(time_limit=20)
        p.add_axioms(semantics_axioms())
        return p.prove(product_obligation.goal)

    result = benchmark.pedantic(with_lemmas, iterations=1, rounds=1)
    assert result.proved

    monkeypatch.setattr(
        prover_mod.Prover, "_add_product_lemmas", lambda self, db, done: None
    )
    without = Prover(time_limit=20)
    without.add_axioms(semantics_axioms())
    ablated = without.prove(product_obligation.goal)
    print(f"\n  product rule with lemmas: {result.proved}; without: {ablated.proved}")
    assert not ablated.proved
