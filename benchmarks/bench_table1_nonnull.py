"""Table 1: the nonnull experiment on the (synthetic) grep dfa module.

Regenerates the paper's table:

    program:        grep
    files:          dfa.c, dfa.h
    lines:          2287
    dereferences:   1072
    annotations:    114
    casts:          59
    errors:         0

Absolute counts differ (synthetic corpus), but the shape must hold:
annotations ≈ 10-15% of dereferences, casts below annotations, zero
errors after the workflow.
"""

import pytest

from repro.analysis.experiments import table1_nonnull


@pytest.mark.benchmark(group="table1")
def test_table1_nonnull(benchmark):
    row = benchmark.pedantic(table1_nonnull, iterations=1, rounds=3)
    paper = row["paper"]
    print("\nTable 1: results from the nonnull experiment")
    print(f"{'':>16} {'paper':>12} {'measured':>12}")
    for key in ("lines", "dereferences", "annotations", "casts", "errors"):
        print(f"{key + ':':>16} {paper[key]:>12} {row[key]:>12}")
    assert row["errors"] == 0
    assert row["casts"] < row["annotations"] < row["dereferences"]
