"""Section 6: "the extra compile time for performing qualifier checking
in CIL is under one second" — measured for every experiment program,
with the full standard qualifier library loaded."""

import pytest

from repro.analysis.experiments import compile_corpus, typecheck_timings
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.library import standard_qualifiers
from repro.corpus import (
    generate_bftpd,
    generate_dfa_module,
    generate_identd,
    generate_mingetty,
)

QUALS = standard_qualifiers(trust_constants=True)

_PROGRAMS = {
    "dfa": generate_dfa_module,
    "bftpd": generate_bftpd,
    "mingetty": generate_mingetty,
    "identd": generate_identd,
}


@pytest.mark.benchmark(group="typecheck")
@pytest.mark.parametrize("name", list(_PROGRAMS))
def test_qualifier_checking_time(benchmark, name):
    program = compile_corpus(_PROGRAMS[name]())
    result = benchmark(lambda: QualifierChecker(program, QUALS).check())
    assert result is not None
    # The paper's bound: under one second per program.
    assert benchmark.stats["mean"] < 1.0


@pytest.mark.benchmark(group="typecheck")
def test_typecheck_summary(benchmark):
    rows = benchmark.pedantic(typecheck_timings, iterations=1, rounds=1)
    print("\nqualifier-checking time (paper: under one second each)")
    for name, row in rows.items():
        print(f"  {name:<24} {row['lines']:>5} lines  {row['seconds'] * 1000:8.1f} ms")
        assert row["seconds"] < row["paper_bound_seconds"]
