"""Serve-daemon throughput: process-mode workspace sharding.

The multi-process daemon's pitch is that two concurrent requests
against *distinct* configurations use distinct cores instead of
fighting over the GIL.  This suite measures that claim end to end —
client, NDJSON transport, router, worker process, pipeline — and
pins the acceptance bar: on a machine with >= 2 cores, two concurrent
distinct-config checks complete in **< 1.6x** the single-request wall
clock, with reports byte-identical to in-process runs.

Every round writes fresh file contents so the incremental layer
re-checks instead of replaying (replay would measure the cache, not
the checker).  Run with ``python -m repro bench --suite serve``;
history is committed in ``BENCH_serve.json``.
"""

import asyncio
import contextlib
import copy
import itertools
import os
import tempfile
import threading
import time

import pytest

from repro import api
from repro.serve import connect
from repro.serve.server import ServeServer

#: Functions per generated unit — big enough that pipeline work
#: dominates transport overhead, small enough for a bench round.
N_FUNCS = 600

_fresh = itertools.count()


def _unit_text(tag: int) -> str:
    return "".join(
        f"int f{i}(int x{i}) {{ return x{i} + {tag}; }}\n"
        for i in range(N_FUNCS)
    )


def _strip_volatile(payload: dict) -> dict:
    out = copy.deepcopy(payload)
    out.pop("elapsed", None)
    out.pop("incremental", None)
    # The bench runner enables the obs collector for the whole run,
    # which makes in-process checks attach a `timings` block; the
    # served worker process has its own (disabled) collector.
    out.pop("timings", None)
    for unit in out.get("units", ()):
        unit.pop("elapsed", None)
        detail = unit.get("detail", {})
        detail.pop("incremental", None)
        if "dataflow" in detail:
            detail["dataflow"]["totals"].pop("ms", None)
            for stats in detail["dataflow"]["functions"].values():
                stats.pop("ms", None)
    if isinstance(out.get("dataflow"), dict):
        out["dataflow"].pop("ms", None)
    return out


@contextlib.contextmanager
def _daemon(workers: int):
    """A live daemon on a fresh unix socket in a temp directory."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        sock = os.path.join(tmp, "bench.sock")
        server = ServeServer(sock, workers=workers)
        thread = threading.Thread(
            target=lambda: asyncio.run(server.run()), daemon=True
        )
        thread.start()
        if not server.ready.wait(10.0):
            raise RuntimeError("bench daemon never bound its socket")
        try:
            yield sock, server, tmp
        finally:
            if not server._shutting_down:
                with contextlib.suppress(OSError):
                    with connect(sock) as client:
                        client.shutdown()
            thread.join(timeout=15)


def _check(sock: str, path: str, **config):
    with connect(sock) as client:
        return client.request("check", {"files": [path], **config})["report"]


@pytest.mark.benchmark(group="serve")
def test_concurrent_distinct_configs_speedup(benchmark):
    """Two concurrent checks, two configurations, two workers — the
    pair must land well under 2x one request's wall clock."""
    with _daemon(workers=2) as (sock, server, tmp):
        path_a = os.path.join(tmp, "a.c")
        path_b = os.path.join(tmp, "b.c")
        # Warm both workspaces first: worker spawn and first-parse
        # costs are startup, not steady-state throughput.
        for path, config in (
            (path_a, {}),
            (path_b, {"trust_constants": True}),
        ):
            with open(path, "w") as handle:
                handle.write(_unit_text(next(_fresh)))
            _check(sock, path, **config)

        # Correctness gate before timing anything: served reports are
        # byte-identical (minus timings) to in-process runs.
        for path, config in (
            (path_a, {}),
            (path_b, {"trust_constants": True}),
        ):
            with open(path, "w") as handle:
                handle.write(_unit_text(next(_fresh)))
            served = _strip_volatile(_check(sock, path, **config))
            local = _strip_volatile(
                api.Session(**config)
                .check(api.CheckRequest(files=(path,)))
                .to_dict()
            )
            assert served == local, f"served report drifted for {path}"

        def single_round() -> None:
            with open(path_a, "w") as handle:
                handle.write(_unit_text(next(_fresh)))
            _check(sock, path_a)

        def concurrent_round() -> None:
            jobs = []
            failures = []

            def run(path, config):
                with open(path, "w") as handle:
                    handle.write(_unit_text(next(_fresh)))
                try:
                    report = _check(sock, path, **config)
                    assert report["exit_code"] == 0, report["exit_code"]
                except Exception as exc:  # surfaced below, on this thread
                    failures.append(exc)

            for path, config in (
                (path_a, {}),
                (path_b, {"trust_constants": True}),
            ):
                job = threading.Thread(target=run, args=(path, config))
                job.start()
                jobs.append(job)
            for job in jobs:
                job.join()
            if failures:
                raise failures[0]

        rounds = 3
        single_times = []
        for _ in range(rounds):
            started = time.perf_counter()
            single_round()
            single_times.append(time.perf_counter() - started)
        single_ms = 1000.0 * min(single_times)

        benchmark.pedantic(concurrent_round, iterations=1, rounds=rounds)
        concurrent_ms = 1000.0 * benchmark.stats["min"]

        ratio = concurrent_ms / single_ms if single_ms else float("inf")
        cores = os.cpu_count() or 1
        benchmark.extra_info.update(
            workers=2,
            functions_per_unit=N_FUNCS,
            cores=cores,
            single_ms=round(single_ms, 3),
            concurrent_ms=round(concurrent_ms, 3),
            ratio=round(ratio, 3),
            workers_spawned=server.counters["workers_spawned"],
            workers_crashed=server.counters["workers_crashed"],
        )
        print(
            f"\n  single {single_ms:.1f} ms, concurrent pair "
            f"{concurrent_ms:.1f} ms, ratio {ratio:.2f}x "
            f"({cores} core(s))"
        )
        assert server.counters["workers_crashed"] == 0
        if cores >= 2:
            assert ratio < 1.6, (
                f"concurrent distinct-config pair took {ratio:.2f}x one "
                f"request ({concurrent_ms:.1f} ms vs {single_ms:.1f} ms); "
                "process sharding should keep this under 1.6x"
            )


@pytest.mark.benchmark(group="serve")
def test_single_request_transport_overhead(benchmark):
    """What the daemon costs when it is *not* parallelizing: one fresh
    check through socket + worker process vs the same check
    in-process.  Keeps the transport honest while the tentpole case
    above keeps it fast."""
    with _daemon(workers=1) as (sock, server, tmp):
        path = os.path.join(tmp, "solo.c")
        with open(path, "w") as handle:
            handle.write(_unit_text(next(_fresh)))
        _check(sock, path)  # warm: spawn + first parse

        def served_round() -> None:
            with open(path, "w") as handle:
                handle.write(_unit_text(next(_fresh)))
            _check(sock, path)

        rounds = 3
        local_times = []
        for _ in range(rounds):
            with open(path, "w") as handle:
                handle.write(_unit_text(next(_fresh)))
            session = api.Session()
            started = time.perf_counter()
            session.check(api.CheckRequest(files=(path,)))
            local_times.append(time.perf_counter() - started)
        local_ms = 1000.0 * min(local_times)

        benchmark.pedantic(served_round, iterations=1, rounds=rounds)
        served_ms = 1000.0 * benchmark.stats["min"]
        overhead = served_ms / local_ms if local_ms else float("inf")
        benchmark.extra_info.update(
            local_ms=round(local_ms, 3),
            served_ms=round(served_ms, 3),
            overhead=round(overhead, 3),
        )
        print(
            f"\n  in-process {local_ms:.1f} ms, served {served_ms:.1f} ms "
            f"({overhead:.2f}x)"
        )
