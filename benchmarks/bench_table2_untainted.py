"""Table 2: the untainted format-string experiment on the three
synthetic daemons.

The paper's table:

    program:        bftpd   mingetty   identd
    lines:            750        293      228
    printf calls:     134         23       21
    annotations:        2          1        0
    casts:              0          0        0
    errors:             1          0        0

The annotation/cast/error columns must match exactly: two wrapper
parameters annotated in bftpd and one real vulnerability found (the
``entry->d_name`` format string); the other daemons verify clean.
"""

import pytest

from repro.analysis.experiments import table2_untainted


@pytest.mark.benchmark(group="table2")
def test_table2_untainted(benchmark):
    rows = benchmark.pedantic(table2_untainted, iterations=1, rounds=3)
    programs = ["bftpd", "mingetty", "identd"]
    print("\nTable 2: results from the untainted experiment")
    print(f"{'':>14} " + " ".join(f"{p:>18}" for p in programs))
    for key in ("lines", "printf_calls", "annotations", "casts", "errors"):
        cells = []
        for p in programs:
            cells.append(f"{rows[p]['paper'][key]:>7}/{rows[p][key]:<9}")
        print(f"{key + ':':>14} " + " ".join(f"{c:>18}" for c in cells))
    print("  (cells are paper/measured)")

    # The qualitative result columns match the paper exactly.
    for p in programs:
        for key in ("annotations", "casts", "errors"):
            assert rows[p][key] == rows[p]["paper"][key], (p, key)
    assert any("d_name" in m for m in rows["bftpd"]["error_messages"])
