"""Ablation: flow-insensitive (the paper's system) vs. the
flow-sensitive guard-refinement extension (its section-8 future work).

The paper attributes Table 1's 59 casts chiefly to flow-insensitivity
("The major source of such imprecision is due to the flow-insensitivity
of our type system", §6.1) and plans a flow-sensitive extension.  This
benchmark quantifies the prediction on the synthetic corpus: guard
refinement eliminates the NULL-guard casts while annotations and
errors stay fixed.
"""

import pytest

from repro.analysis.annotate import annotate_nonnull
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.corpus import generate_dfa_module


@pytest.fixture(scope="module")
def program():
    return lower_unit(parse_c(generate_dfa_module()))


@pytest.mark.benchmark(group="flow-ablation")
def test_flow_insensitive_baseline(benchmark, program):
    result = benchmark.pedantic(
        lambda: annotate_nonnull(program), iterations=1, rounds=3
    )
    print(f"\n  flow-insensitive: {result.row()}")
    assert result.errors == 0


@pytest.mark.benchmark(group="flow-ablation")
def test_flow_sensitive_extension(benchmark, program):
    baseline = annotate_nonnull(program)
    result = benchmark.pedantic(
        lambda: annotate_nonnull(program, flow_sensitive=True),
        iterations=1,
        rounds=3,
    )
    reduction = 100 * (baseline.casts - result.casts) / baseline.casts
    print(f"\n  flow-sensitive:   {result.row()}")
    print(f"  cast reduction:   {baseline.casts} -> {result.casts} "
          f"({reduction:.0f}% fewer)")
    assert result.errors == 0
    assert result.casts < baseline.casts
    assert result.annotations == baseline.annotations
