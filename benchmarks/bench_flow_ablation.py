"""Ablation: flow-insensitive (the paper's system) vs. the
flow-sensitive guard-refinement extension (its section-8 future work).

The paper attributes Table 1's 59 casts chiefly to flow-insensitivity
("The major source of such imprecision is due to the flow-insensitivity
of our type system", §6.1) and plans a flow-sensitive extension.  This
benchmark quantifies the prediction on the synthetic corpus: guard
refinement eliminates the NULL-guard casts while annotations and
errors stay fixed.
"""

import pytest

from repro.analysis.annotate import annotate_nonnull
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.corpus import generate_dfa_module


@pytest.fixture(scope="module")
def program():
    return lower_unit(parse_c(generate_dfa_module()))


@pytest.mark.benchmark(group="flow-ablation")
def test_flow_insensitive_baseline(benchmark, program):
    result = benchmark.pedantic(
        lambda: annotate_nonnull(program), iterations=1, rounds=3
    )
    print(f"\n  flow-insensitive: {result.row()}")
    assert result.errors == 0


@pytest.mark.benchmark(group="flow-ablation")
def test_flow_sensitive_extension(benchmark, program):
    baseline = annotate_nonnull(program)
    result = benchmark.pedantic(
        lambda: annotate_nonnull(program, flow_sensitive=True),
        iterations=1,
        rounds=3,
    )
    reduction = 100 * (baseline.casts - result.casts) / baseline.casts
    print(f"\n  flow-sensitive:   {result.row()}")
    print(f"  cast reduction:   {baseline.casts} -> {result.casts} "
          f"({reduction:.0f}% fewer)")
    assert result.errors == 0
    assert result.casts < baseline.casts
    assert result.annotations == baseline.annotations


@pytest.mark.benchmark(group="flow-ablation")
def test_worklist_engine_stats(benchmark, program):
    """Aggregate solver work for one checker pass over the corpus.

    The structured walks this engine replaced did not count their work;
    the worklist solver does, so the ablation can report where analysis
    time goes (and CI can spot superlinear blowups)."""
    from repro.core.checker.typecheck import QualifierChecker
    from repro.core.qualifiers.library import standard_qualifiers

    quals = standard_qualifiers()

    def check():
        return QualifierChecker(program, quals, flow_sensitive=True).check()

    report = benchmark.pedantic(check, iterations=1, rounds=3)
    totals = {"blocks": 0, "edges": 0, "iterations": 0, "ms": 0.0}
    for stats in report.dataflow.values():
        for key in totals:
            totals[key] += stats[key]
    print(f"\n  worklist solver:  {len(report.dataflow)} function(s), "
          f"{totals['blocks']} block(s), {totals['edges']} edge(s), "
          f"{totals['iterations']} visit(s), {totals['ms']:.1f} ms")
    # Every reachable block is visited at least once; a reducible CFG
    # should settle well before the divergence budget.
    assert totals["iterations"] >= totals["blocks"]


# ----------------------------------------------------------------- smoke mode
#
# ``python benchmarks/bench_flow_ablation.py --smoke`` replays the
# examples through the worklist engine and asserts the verdicts are
# identical to the legacy structured walks' (captured before their
# removal).  tools/ci_check.sh runs this as a regression gate.

#: Per example file: checker verdict and diagnostic count (identical
#: flow-insensitively and flow-sensitively on these inputs), run-time
#: checks the instrumenter places, and the entities inference grants.
LEGACY_GOLDEN = {
    "lcm.c": {
        "check": ("ok", 0),
        "checks_placed": 1,
        "infer": {
            "nonnull": [],
            "pos": [
                ("formal", "lcm", "a"),
                ("formal", "lcm", "b"),
                ("local", "lcm", "d"),
                ("local", "lcm", "prod"),
            ],
        },
    },
    "nonnull.c": {
        "check": ("ok", 0),
        "checks_placed": 0,
        "infer": {
            "nonnull": [
                ("formal", "deref", "p"),
                ("formal", "pick", "a"),
                ("local", "pick", "q"),
            ],
            "pos": [],
        },
    },
    "untainted.c": {
        "check": ("ok", 0),
        "checks_placed": 1,
        "infer": {
            "nonnull": [("formal", "greet", "name")],
            "pos": [],
        },
    },
}


def _smoke_one(path):
    from repro.cil import ir
    from repro.cil.lower import lower_unit
    from repro.core.checker.instrument import instrument_program
    from repro.core.checker.typecheck import QualifierChecker
    from repro.core.qualifiers.library import standard_qualifiers

    quals = standard_qualifiers()
    names = {d.name for d in quals}
    with open(path) as handle:
        source = handle.read()
    program = lower_unit(
        parse_c(source, qualifier_names=names, filename=path)
    )
    out = {}
    for flow_sensitive in (False, True):
        report = QualifierChecker(
            program, quals, flow_sensitive=flow_sensitive
        ).check()
        verdict = ("ok" if report.ok else "warn", len(report.diagnostics))
        # Both modes must agree with the single golden verdict.
        out["check"] = verdict if "check" not in out else out["check"]
        assert out["check"] == verdict, (
            f"{path}: flow-sensitivity changed the verdict: "
            f"{out['check']} vs {verdict}"
        )
    instrumented = instrument_program(program, quals)
    out["checks_placed"] = sum(
        1
        for func in instrumented.functions
        for instr in ir.walk_instructions(func.body)
        if isinstance(instr, ir.Call)
        and instr.func
        and instr.func.startswith("__check_")
    )
    out["infer"] = {}
    from repro.analysis.infer import infer_value_qualifier

    for qual in ("nonnull", "pos"):
        result = infer_value_qualifier(program, quals.get(qual), quals)
        out["infer"][qual] = sorted(result.inferred)
    return out


def run_smoke():
    import os

    here = os.path.dirname(os.path.abspath(__file__))
    examples = os.path.join(os.path.dirname(here), "examples")
    failures = []
    for name, want in sorted(LEGACY_GOLDEN.items()):
        path = os.path.join(examples, name)
        got = _smoke_one(path)
        want = dict(want, infer={
            q: [tuple(e) for e in ents]
            for q, ents in want["infer"].items()
        })
        if got == want:
            print(f"  {name}: worklist verdicts match legacy golden")
        else:
            failures.append(name)
            print(f"  {name}: MISMATCH\n    want {want}\n    got  {got}")
    if failures:
        print(f"smoke: {len(failures)} example(s) drifted from the legacy "
              "structured-walk verdicts")
        return 1
    print(f"smoke: all {len(LEGACY_GOLDEN)} examples identical to the "
          "legacy structured-walk verdicts")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument(
        "--smoke",
        action="store_true",
        help="assert worklist-engine verdicts on examples/*.c are "
        "identical to the recorded legacy structured-walk verdicts",
    )
    opts = cli.parse_args()
    if opts.smoke:
        sys.exit(run_smoke())
    cli.error("benchmark mode runs under pytest; use --smoke standalone")
