"""Section 6.2: the uniqueness experiment on the dfa global.

Paper: the unique annotation on grep's ``dfa`` global validates all 49
subsequent references with no errors; passing the global to a procedure
(which genuinely breaks uniqueness) is rejected."""

import pytest

from repro.analysis.experiments import uniqueness_experiment
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import UNIQUE
from repro.corpus import generate_dfa_module


@pytest.mark.benchmark(group="uniqueness")
def test_uniqueness_experiment(benchmark):
    result = benchmark.pedantic(uniqueness_experiment, iterations=1, rounds=3)
    paper = result["paper"]
    print("\nSection 6.2: uniqueness of the dfa global")
    print(f"  validated references: paper {paper['validated_references']}, "
          f"measured {result['validated_references']}")
    print(f"  errors: paper {paper['errors']}, measured {result['errors']}")
    assert result["errors"] == 0


@pytest.mark.benchmark(group="uniqueness")
def test_uniqueness_violation_detected(benchmark):
    """The negative control: the global passed as an argument (the
    idiom the paper could not verify) is flagged."""
    src = generate_dfa_module() + """
    int consume(struct dfa_obj* d);
    int leak_global(void) { return consume(dfa); }
    """

    def run():
        program = lower_unit(parse_c(src))
        for g in program.globals:
            if g.name == "dfa":
                g.ctype = g.ctype.with_quals(["unique"])
        return check_program(program, QualifierSet([UNIQUE]))

    report = benchmark.pedantic(run, iterations=1, rounds=3)
    disallows = [d for d in report.diagnostics if d.kind == "disallow"]
    print(f"\n  disallow violations found: {len(disallows)}")
    assert disallows
