"""Scaling: qualifier-checking time as a function of program size.

The paper only claims "under one second" for its ~2 kLoC subject; this
benchmark characterizes how the cost grows with program size on
parameterized versions of the dfa corpus, checking that the growth
stays near-linear (the checker is a single AST pass with memoized
qualifier judgments)."""

import pytest

from repro.analysis.stats import count_lines
from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.library import standard_qualifiers
from repro.corpus import generate_dfa_module

QUALS = standard_qualifiers()

#: (scale label, generator kwargs)
SIZES = {
    "quarter": dict(
        n_transition_helpers=4, n_analysis_helpers=4, n_guarded_helpers=3,
        n_builders=3, n_scalar_helpers=13,
    ),
    "half": dict(
        n_transition_helpers=8, n_analysis_helpers=8, n_guarded_helpers=7,
        n_builders=5, n_scalar_helpers=26,
    ),
    "full": dict(),
    "double": dict(
        n_transition_helpers=34, n_analysis_helpers=30, n_guarded_helpers=28,
        n_builders=20, n_scalar_helpers=104,
    ),
}


@pytest.fixture(scope="module")
def programs():
    out = {}
    for label, kwargs in SIZES.items():
        source = generate_dfa_module(**kwargs)
        out[label] = (count_lines(source), lower_unit(parse_c(source)))
    return out


@pytest.mark.benchmark(group="scaling")
@pytest.mark.parametrize("label", list(SIZES))
def test_checking_scales(benchmark, programs, label):
    lines, program = programs[label]
    benchmark.extra_info["lines"] = lines
    benchmark(lambda: QualifierChecker(program, QUALS).check())
    print(f"\n  {label}: {lines} lines, mean {benchmark.stats['mean'] * 1000:.1f} ms")


@pytest.mark.benchmark(group="scaling")
def test_growth_is_subquadratic(benchmark, programs):
    import time

    points = []
    for label in ("half", "double"):
        lines, program = programs[label]
        start = time.perf_counter()
        QualifierChecker(program, QUALS).check()
        points.append((lines, time.perf_counter() - start))
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    (l1, t1), (l2, t2) = points
    size_ratio = l2 / l1
    time_ratio = t2 / max(t1, 1e-9)
    print(f"\n  {l1} -> {l2} lines ({size_ratio:.1f}x): "
          f"time {t1 * 1000:.0f} -> {t2 * 1000:.0f} ms ({time_ratio:.1f}x)")
    # Near-linear: a 4x program should cost well under 4x^2.
    assert time_ratio < size_ratio ** 2
