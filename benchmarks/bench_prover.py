"""Prover micro-benchmarks: representative obligation shapes.

These isolate the prover's cost drivers so regressions in any layer
(SAT, congruence closure, arithmetic, instantiation) show up
independently of the soundness-checker pipeline.

Also runnable standalone, to measure the proof cache's effect and the
sharded/session sweep::

    PYTHONPATH=src python benchmarks/bench_prover.py          # cold only
    PYTHONPATH=src python benchmarks/bench_prover.py --warm   # cold + warm
    PYTHONPATH=src python benchmarks/bench_prover.py --cold --jobs 8
    PYTHONPATH=src python benchmarks/bench_prover.py --cold --no-session
    PYTHONPATH=src python benchmarks/bench_prover.py --cold --no-explain
    PYTHONPATH=src python benchmarks/bench_prover.py --cold --quick --json

``--cold --json`` emits a machine-readable record (theory/explain
times plus the per-obligation verdict map) for the CI stage that
cross-checks the explanation and ddmin core strategies; ``--record``
appends the same record to ``BENCH_prover.json``'s history, growing
the committed perf trajectory.
"""

import pytest

from repro.core.qualifiers.library import NONNULL, POS, UNIQUE, standard_qualifiers
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.obligations import generate_obligations
from repro.prover.prover import Prover, prove_valid
from repro.prover.terms import And, Eq, ForAll, Implies, Int, Lt, Not, TVar, fn

QUALS = standard_qualifiers()
AXIOMS = semantics_axioms()


def _prove_obligation(qdef, rule_fragment):
    (ob,) = [
        o for o in generate_obligations(qdef, QUALS) if rule_fragment in o.rule
    ]

    def run():
        prover = Prover(time_limit=30)
        prover.add_axioms(AXIOMS)
        result = prover.prove(ob.goal)
        assert result.proved
        return result

    return run


@pytest.mark.benchmark(group="prover")
def test_ground_euf_chain(benchmark):
    a = fn("a")
    chain = [Eq(fn(f"c{i}"), fn(f"c{i + 1}")) for i in range(20)]
    goal = Implies(And(*chain), Eq(fn("f", fn("c0")), fn("f", fn("c20"))))
    result = benchmark(lambda: prove_valid(goal))
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_linear_arithmetic_chain(benchmark):
    hyps = [
        Lt(fn(f"x{i}"), fn(f"x{i + 1}")) for i in range(12)
    ]
    goal = Implies(And(*hyps), Lt(fn("x0"), fn("x12")))
    result = benchmark(lambda: prove_valid(goal))
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_sign_lemma_obligation(benchmark):
    a, b = fn("a"), fn("b")
    goal = Implies(
        And(Lt(Int(0), a), Lt(Int(0), b)), Lt(Int(0), fn("*", a, b))
    )
    result = benchmark(lambda: prove_valid(goal))
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_pos_product_obligation(benchmark):
    result = benchmark.pedantic(
        _prove_obligation(POS, "E1 * E2"), iterations=1, rounds=3
    )
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_nonnull_addrof_obligation(benchmark):
    result = benchmark.pedantic(
        _prove_obligation(NONNULL, "&L"), iterations=1, rounds=3
    )
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_unique_preservation_read_obligation(benchmark):
    result = benchmark.pedantic(
        _prove_obligation(UNIQUE, "read of an l-value"), iterations=1, rounds=3
    )
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_quantified_store_reasoning(benchmark):
    s, A, V, D, W = fn("s"), fn("A"), fn("V"), fn("D"), fn("W")
    P = TVar("P")
    select = lambda m, k: fn("select", m, k)  # noqa: E731
    store = lambda m, k, v: fn("store", m, k, v)  # noqa: E731
    axioms = [
        ForAll(("m", "k", "v"), Eq(select(store(TVar("m"), TVar("k"), TVar("v")), TVar("k")), TVar("v"))),
        ForAll(
            ("m", "k", "j", "v"),
            Implies(
                Not(Eq(TVar("k"), TVar("j"))),
                Eq(
                    select(store(TVar("m"), TVar("k"), TVar("v")), TVar("j")),
                    select(TVar("m"), TVar("j")),
                ),
            ),
            triggers=((select(store(TVar("m"), TVar("k"), TVar("v")), TVar("j")),),),
        ),
    ]
    old_inv = ForAll(
        ("P",),
        Implies(Eq(select(s, P), V), Eq(P, A)),
        triggers=((select(s, P),),),
    )
    new_inv = ForAll(("P",), Implies(Eq(select(store(s, D, W), P), V), Eq(P, A)))
    goal = Implies(And(old_inv, Not(Eq(D, A)), Not(Eq(W, V))), new_inv)
    result = benchmark(lambda: prove_valid(goal, axioms))
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_session_sweep_standard_library(benchmark):
    """Full soundness sweep with incremental prover sessions — the
    number the sharded scheduler's workers see per environment group."""
    from repro.core.soundness.checker import check_soundness
    from repro.prover.session import SessionPool

    def run():
        pool = SessionPool()
        for qdef in QUALS:
            check_soundness(qdef, QUALS, time_limit=30, sessions=pool)
        return pool.counters()

    counters = benchmark.pedantic(run, iterations=1, rounds=3)
    assert counters["session_reuse"] > 0


# --------------------------------------------------------- standalone runner


def _soundness_pass(cache) -> tuple:
    """One full soundness sweep of the standard library; returns
    (wall seconds, obligations discharged, cache hits during the pass)."""
    import time

    from repro.core.soundness.checker import check_soundness

    before = cache.snapshot() if cache is not None else {}
    start = time.perf_counter()
    discharged = 0
    for qdef in QUALS:
        report = check_soundness(qdef, QUALS, time_limit=30, cache=cache)
        discharged += len(report.results)
    elapsed = time.perf_counter() - start
    hits = cache.delta(before)["hits"] if cache is not None else 0
    return elapsed, discharged, hits


#: The ``--quick`` workload: a prefix of the standard library that
#: still crosses every theory (EUF chains, arithmetic, quantifiers)
#: but keeps the CI cross-check stage cheap.
QUICK_COUNT = 5


def _sweep_quals(quick: bool):
    quals = list(QUALS)
    return quals[:QUICK_COUNT] if quick else quals


def _sharded_sweep(
    jobs: int, session: bool, shard: bool,
    explain: bool = True, quick: bool = False,
) -> tuple:
    """One cache-less sweep through the obligation pipeline; returns
    (wall seconds, obligation count, stats, verdict map)."""
    import time

    from repro.core.soundness.workitems import generate_work_items
    from repro.harness import shard as shard_mod

    items = []
    for qdef in _sweep_quals(quick):
        items.extend(generate_work_items(qdef, QUALS, AXIOMS, unit=qdef.name))
    verdicts = {}
    start = time.perf_counter()
    if shard:
        outcomes, stats = shard_mod.run_obligations(
            items, AXIOMS, use_sessions=session, jobs=jobs, time_limit=30,
            explain=explain,
        )
        verdicts = {key: out["verdict"] for key, out in outcomes.items()}
    else:
        from repro.core.soundness.checker import check_soundness
        from repro.prover.session import SessionPool

        pool = SessionPool() if session else None
        for qdef in _sweep_quals(quick):
            report = check_soundness(
                qdef, QUALS, time_limit=30, sessions=pool, explain=explain
            )
            for index, res in enumerate(report.results):
                verdicts[f"{qdef.name}|{qdef.name}|{index}"] = res.verdict
        stats = {"sessions": pool.counters()} if pool else {}
    elapsed = time.perf_counter() - start
    return elapsed, len(items), stats, verdicts


def _cold_sweep_record(args) -> dict:
    """Run one cold sweep with the collector on and flatten the result
    into the JSON-ready record ``--json`` prints and ``--record``
    appends to the history."""
    from repro import obs

    owner = not obs.enabled()
    if owner:
        obs.enable()
    marker = obs.mark()
    try:
        elapsed, count, stats, verdicts = _sharded_sweep(
            args.jobs, args.session, args.shard,
            explain=args.explain, quick=args.quick,
        )
        counters = obs.since(marker).get("counters", {})
    finally:
        if owner:
            obs.disable()
            obs.reset()
    return {
        "kind": "cold_sweep",
        "workload": "quick" if args.quick else "full",
        "jobs": args.jobs,
        "sessions": args.session,
        "shard": args.shard,
        "explain": args.explain,
        "obligations": count,
        "elapsed_s": round(elapsed, 3),
        "theory_ms": round(counters.get("prover.theory_ms", 0.0), 3),
        "explain_ms": round(counters.get("prover.explain_ms", 0.0), 3),
        "linarith_ms": round(counters.get("prover.linarith_ms", 0.0), 3),
        "cores": int(counters.get("prover.cores", 0)),
        "cores_nonminimal": int(
            counters.get("prover.cores_nonminimal", 0)
        ),
        "explain_fallbacks": int(
            counters.get("prover.explain_fallbacks", 0)
        ),
        "verdicts": dict(sorted(verdicts.items())),
        "stats": {"sessions": (stats.get("sessions") or {})},
    }


def _append_history(path: str, record: dict) -> None:
    """Append a timestamped cold-sweep entry to the ``history`` list of
    ``BENCH_prover.json`` (creating the file if absent), preserving
    everything else the ``python -m repro bench`` runner wrote."""
    import json
    import time as time_mod

    payload = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        payload = {"name": "prover", "schema_version": 1}
    history = list(payload.get("history") or ())
    entry = {
        "timestamp": time_mod.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time_mod.gmtime()
        ),
        "cold_sweep": {
            k: v for k, v in record.items()
            if k not in ("verdicts", "stats", "kind")
        },
    }
    history.append(entry)
    payload["history"] = history
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    import argparse
    import tempfile

    from repro.cache import ProofCache

    parser = argparse.ArgumentParser(
        description="Time a soundness sweep of the standard qualifier "
        "library, cold and (with --warm) again against a warmed proof cache."
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="after the cold pass, re-run against the now-populated cache "
        "and report the speedup",
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help="time one cache-less sweep through the sharded obligation "
        "scheduler instead of the cache benchmark",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sharded sweep (with --cold)",
    )
    parser.add_argument(
        "--no-session", dest="session", action="store_false", default=True,
        help="disable incremental prover sessions (cold prover per "
        "obligation)",
    )
    parser.add_argument(
        "--no-shard", dest="shard", action="store_false", default=True,
        help="discharge serially via check_soundness instead of the "
        "obligation scheduler",
    )
    parser.add_argument(
        "--no-explain", dest="explain", action="store_false", default=True,
        help="use the search-based ddmin core minimizer instead of "
        "proof-forest conflict explanations (with --cold)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"sweep only the first {QUICK_COUNT} standard qualifiers "
        "(the cheap CI cross-check workload, with --cold)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the cold-sweep record as JSON on stdout (with --cold): "
        "timings plus the per-obligation verdict map",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="append the cold-sweep record to BENCH_prover.json's "
        "history (with --cold)",
    )
    parser.add_argument(
        "--bench-file", default="BENCH_prover.json",
        help="history file for --record (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    if args.cold:
        record = _cold_sweep_record(args)
        if args.record:
            _append_history(args.bench_file, record)
        if args.json:
            import json

            print(json.dumps(record, indent=2, sort_keys=True))
        else:
            sessions = record["stats"].get("sessions") or {}
            print(
                f"cold sweep: {record['obligations']} obligation(s) in "
                f"{record['elapsed_s']:.3f} s "
                f"(workload={record['workload']}, jobs={args.jobs}, "
                f"sessions={'on' if args.session else 'off'}, "
                f"shard={'on' if args.shard else 'off'}, "
                f"explain={'on' if args.explain else 'off'}, "
                f"theory_ms={record['theory_ms']:.1f}, "
                f"explain_ms={record['explain_ms']:.1f}, "
                f"session_reuse={sessions.get('session_reuse', 0)}, "
                f"cores_seeded={sessions.get('cores_seeded', 0)})"
            )
        return 0

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        with ProofCache(cache_dir=tmp) as cache:
            cold, count, _ = _soundness_pass(cache)
            print(
                f"cold: {count} obligation(s) in {cold:.3f} s "
                f"({cache.counters['stores']} cached)"
            )
            if args.warm:
                warm, _, hits = _soundness_pass(cache)
                speedup = cold / warm if warm > 0 else float("inf")
                print(
                    f"warm: {count} obligation(s) in {warm:.3f} s "
                    f"({hits} cache hit(s), {speedup:.1f}x speedup)"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
