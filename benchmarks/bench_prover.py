"""Prover micro-benchmarks: representative obligation shapes.

These isolate the prover's cost drivers so regressions in any layer
(SAT, congruence closure, arithmetic, instantiation) show up
independently of the soundness-checker pipeline."""

import pytest

from repro.core.qualifiers.library import NONNULL, POS, UNIQUE, standard_qualifiers
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.obligations import generate_obligations
from repro.prover.prover import Prover, prove_valid
from repro.prover.terms import And, Eq, ForAll, Implies, Int, Lt, Not, TVar, fn

QUALS = standard_qualifiers()
AXIOMS = semantics_axioms()


def _prove_obligation(qdef, rule_fragment):
    (ob,) = [
        o for o in generate_obligations(qdef, QUALS) if rule_fragment in o.rule
    ]

    def run():
        prover = Prover(time_limit=30)
        prover.add_axioms(AXIOMS)
        result = prover.prove(ob.goal)
        assert result.proved
        return result

    return run


@pytest.mark.benchmark(group="prover")
def test_ground_euf_chain(benchmark):
    a = fn("a")
    chain = [Eq(fn(f"c{i}"), fn(f"c{i + 1}")) for i in range(20)]
    goal = Implies(And(*chain), Eq(fn("f", fn("c0")), fn("f", fn("c20"))))
    result = benchmark(lambda: prove_valid(goal))
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_linear_arithmetic_chain(benchmark):
    hyps = [
        Lt(fn(f"x{i}"), fn(f"x{i + 1}")) for i in range(12)
    ]
    goal = Implies(And(*hyps), Lt(fn("x0"), fn("x12")))
    result = benchmark(lambda: prove_valid(goal))
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_sign_lemma_obligation(benchmark):
    a, b = fn("a"), fn("b")
    goal = Implies(
        And(Lt(Int(0), a), Lt(Int(0), b)), Lt(Int(0), fn("*", a, b))
    )
    result = benchmark(lambda: prove_valid(goal))
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_pos_product_obligation(benchmark):
    result = benchmark.pedantic(
        _prove_obligation(POS, "E1 * E2"), iterations=1, rounds=3
    )
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_nonnull_addrof_obligation(benchmark):
    result = benchmark.pedantic(
        _prove_obligation(NONNULL, "&L"), iterations=1, rounds=3
    )
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_unique_preservation_read_obligation(benchmark):
    result = benchmark.pedantic(
        _prove_obligation(UNIQUE, "read of an l-value"), iterations=1, rounds=3
    )
    assert result.proved


@pytest.mark.benchmark(group="prover")
def test_quantified_store_reasoning(benchmark):
    s, A, V, D, W = fn("s"), fn("A"), fn("V"), fn("D"), fn("W")
    P = TVar("P")
    select = lambda m, k: fn("select", m, k)  # noqa: E731
    store = lambda m, k, v: fn("store", m, k, v)  # noqa: E731
    axioms = [
        ForAll(("m", "k", "v"), Eq(select(store(TVar("m"), TVar("k"), TVar("v")), TVar("k")), TVar("v"))),
        ForAll(
            ("m", "k", "j", "v"),
            Implies(
                Not(Eq(TVar("k"), TVar("j"))),
                Eq(
                    select(store(TVar("m"), TVar("k"), TVar("v")), TVar("j")),
                    select(TVar("m"), TVar("j")),
                ),
            ),
            triggers=((select(store(TVar("m"), TVar("k"), TVar("v")), TVar("j")),),),
        ),
    ]
    old_inv = ForAll(
        ("P",),
        Implies(Eq(select(s, P), V), Eq(P, A)),
        triggers=((select(s, P),),),
    )
    new_inv = ForAll(("P",), Implies(Eq(select(store(s, D, W), P), V), Eq(P, A)))
    goal = Implies(And(old_inv, Not(Eq(D, A)), Not(Eq(W, V))), new_inv)
    result = benchmark(lambda: prove_valid(goal, axioms))
    assert result.proved
