/* The paper's running example (section 2.1): pos-qualified arithmetic.
 * Checks clean; the cast inserts one runtime check. */

int pos gcd(int pos n, int pos m);

int pos lcm(int pos a, int pos b) {
  int pos d = gcd(a, b);
  int pos prod = a * b;
  return (int pos) (prod / d);
}
