"""Define your own qualifier and let the framework prove it sound.

The framework is not limited to the paper's qualifiers: this example
defines ``even`` (statically-tracked even integers) with recursive type
rules, has the soundness checker verify them, shows that a plausible
but wrong rule (``E1 + E2`` where only one operand is even) is refuted,
and then uses the qualifier to check real code.

Run:  python examples/define_custom_qualifier.py
"""

import repro

EVEN_SOURCE = """
value qualifier even(int Expr E)
  case E of
      decl int Const C:
        C, where C % 2 == 0
    | decl int Expr E1, E2:
        E1 + E2, where even(E1) && even(E2)
    | decl int Expr E1, E2:
        E1 - E2, where even(E1) && even(E2)
    | decl int Expr E1, E2:
        E1 * E2, where even(E1) || even(E2)
    | decl int Expr E1:
        -E1, where even(E1)
  invariant value(E) % 2 == 0
"""

even = repro.parse_qualifier(EVEN_SOURCE)
quals = repro.QualifierSet([even])

print("proving the even qualifier sound...")
report = repro.check_soundness(even, quals)
for result in report.results:
    print(f"  {result}")
assert report.sound, report.summary()

print("\ntrying a plausible but wrong rule: E1 + E2 where even(E1) ...")
wrong = repro.parse_qualifier(
    EVEN_SOURCE.replace("E1 + E2, where even(E1) && even(E2)",
                        "E1 + E2, where even(E1)")
)
wrong_report = repro.check_soundness(wrong, repro.QualifierSet([wrong]))
assert not wrong_report.sound
for failure in wrong_report.failures:
    print(f"  REFUTED: {failure.obligation.rule}")

print("\nchecking a program against the proven qualifier...")
PROGRAM = """
int even halve_budget(int even total) {
  int even half_pair = total + total;
  int even scaled = 6 * total;
  return scaled - half_pair;
}

int main() {
  return halve_budget(10);
}
"""
check = repro.check_c_source(PROGRAM, quals=quals, qualifier_names={"even"})
print(f"  typecheck: {'OK' if check.ok else check.summary()}")
assert check.ok

BAD_PROGRAM = PROGRAM.replace("6 * total", "7 + total")
bad_check = repro.check_c_source(BAD_PROGRAM, quals=quals, qualifier_names={"even"})
print("  mutated program (7 + total claimed even):")
for diag in bad_check.diagnostics:
    print(f"    -> {diag}")
assert not bad_check.ok

value, _ = repro.run_c_source(PROGRAM, quals=quals, qualifier_names={"even"})
print(f"\nhalve_budget(10) = {value}")
assert value % 2 == 0
print("custom qualifier example complete.")
