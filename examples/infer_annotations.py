"""Qualifier inference: annotate a module without writing annotations.

The paper lists qualifier inference as future work (section 8); CQUAL
had it.  This example infers `nonnull` annotations over the synthetic
grep dfa module — with and without the flow-sensitive extension — and
compares the result to the manual (cast-assisted) workflow of Table 1.

Run:  python examples/infer_annotations.py
"""

import repro
from repro.analysis.annotate import annotate_nonnull
from repro.analysis.infer import infer_value_qualifier
from repro.core.qualifiers.library import NONNULL, POS
from repro.corpus import generate_dfa_module

program = repro.lower_unit(repro.parse_c(generate_dfa_module()))

print("inference on a toy function first:")
toy = repro.lower_unit(repro.parse_c("""
    int source(void);
    int f(void) {
      int a = 3;
      int b = a * 2;
      int c = a * b;
      int d = source();
      return c + d;
    }
"""))
res = infer_value_qualifier(toy, POS, repro.standard_qualifiers())
print(f"  {res.summary()}")
for entity in sorted(res.inferred):
    print(f"    pos inferred at {entity}")

print("\ninferring nonnull over the dfa module (cast-free greatest fixpoint):")
base = infer_value_qualifier(program, NONNULL, repro.QualifierSet([NONNULL]))
print(f"  {base.summary()}")

flow = infer_value_qualifier(
    program, NONNULL, repro.QualifierSet([NONNULL]), flow_sensitive=True
)
print(f"  with flow-sensitive guards: {flow.summary()}")

def residual_restrict_errors(result):
    report = repro.check_program(result.program, repro.QualifierSet([NONNULL]))
    return sum(1 for d in report.diagnostics if d.kind == "restrict")


manual = annotate_nonnull(program)
print("\ncomparison with the Table 1 workflow:")
print(f"  manual workflow: {manual.annotations} annotations, "
      f"{manual.casts} casts, {manual.errors} errors")
print(f"  inference:       {base.count} annotations inferred "
      f"(assignment-consistent, no casts needed for them); "
      f"{residual_restrict_errors(base)} dereferences of demoted/nullable "
      f"pointers still need casts")

assert flow.count >= base.count
print("\ninference complete.")
