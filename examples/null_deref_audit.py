"""Audit a C module for NULL dereferences (the paper's Table 1).

Runs the section-6.1 workflow on the synthetic grep dfa module:

1. check the unannotated module — every dereference is flagged by
   nonnull's restrict rule;
2. run the iterative annotation workflow (annotate dereferenced
   pointers, insert casts where the flow-insensitive rules cannot
   prove non-nullness);
3. re-check: zero errors, with the annotation/cast burden reported
   next to the paper's numbers;
4. run the uniqueness experiment on the dfa global (section 6.2).

Run:  python examples/null_deref_audit.py
"""

import repro
from repro.analysis.annotate import annotate_nonnull
from repro.analysis.experiments import PAPER_TABLE1, uniqueness_experiment
from repro.analysis.stats import program_stats
from repro.core.qualifiers.library import NONNULL
from repro.corpus import generate_dfa_module

source = generate_dfa_module()
program = repro.lower_unit(repro.parse_c(source))
stats = program_stats(source, program)
print(f"synthetic dfa module: {stats}")

print("\nchecking without annotations...")
raw = repro.check_program(program, repro.QualifierSet([NONNULL]))
print(f"  {raw.error_count} dereference warnings "
      f"(one per unproven dereference site)")
for diag in raw.diagnostics[:3]:
    print(f"    e.g. {diag}")

print("\nrunning the iterative annotation workflow (section 6.1)...")
result = annotate_nonnull(program)
print(f"{'':>16} {'paper':>8} {'measured':>10}")
rows = [
    ("lines", PAPER_TABLE1["lines"], stats.lines),
    ("dereferences", PAPER_TABLE1["dereferences"], stats.dereferences),
    ("annotations", PAPER_TABLE1["annotations"], result.annotations),
    ("casts", PAPER_TABLE1["casts"], result.casts),
    ("errors", PAPER_TABLE1["errors"], result.errors),
]
for name, paper, measured in rows:
    print(f"{name + ':':>16} {paper:>8} {measured:>10}")
assert result.errors == 0

print("\nuniqueness of the dfa global (section 6.2)...")
unique_result = uniqueness_experiment()
print(f"  validated references: {unique_result['validated_references']} "
      f"(paper: {unique_result['paper']['validated_references']})")
print(f"  errors: {unique_result['errors']}")
assert unique_result["errors"] == 0

print("\naudit complete: no NULL dereferences, uniqueness verified.")
