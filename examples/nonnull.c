/* nonnull pointers: a dereference is only legal through a pointer the
 * rules can prove non-null (postfix: `int* nonnull` is a non-null
 * pointer to int, paper section 2.1).  Checks clean. */

int deref(int* nonnull p) {
  return *p;
}

int pick(int* nonnull a) {
  int* nonnull q = a;
  return deref(q);
}
