"""Quickstart: the paper's running example, end to end.

1. Define the ``pos`` qualifier exactly as in figure 1.
2. Let the soundness checker prove its type rules establish the
   invariant ``value(E) > 0`` — and catch the paper's ``E1 - E2``
   mutation.
3. Typecheck the ``lcm`` procedure of figure 2 (the division needs a
   programmer cast).
4. Execute it: the cast's run-time check passes on good inputs and
   signals a fatal error when the invariant is violated.

Run:  python examples/quickstart.py
"""

import repro

# ---------------------------------------------------------------- step 1
POS_SOURCE = """
value qualifier pos(int Expr E)
  case E of
      decl int Const C:
        C, where C > 0
    | decl int Expr E1, E2:
        E1 * E2, where pos(E1) && pos(E2)
    | decl int Expr E1:
        -E1, where neg(E1)
  invariant value(E) > 0
"""

pos = repro.parse_qualifier(POS_SOURCE)
print(f"parsed qualifier {pos.name!r}: {len(pos.cases)} case clauses, "
      f"invariant: {pos.invariant}")

# ---------------------------------------------------------------- step 2
quals = repro.standard_qualifiers()  # pos's rules mention neg
print("\nproving soundness (one obligation per case clause)...")
report = repro.check_soundness(pos, quals)
for result in report.results:
    print(f"  {result}")
assert report.sound

print("\nmutating the product rule to E1 - E2 (section 2.1.3)...")
bad = repro.parse_qualifier(POS_SOURCE.replace("E1 * E2", "E1 - E2"))
bad_report = repro.check_soundness(bad, quals)
assert not bad_report.sound
for failure in bad_report.failures:
    print(f"  REFUTED: {failure.obligation.rule}")

# ---------------------------------------------------------------- step 3
LCM = """
int pos gcd(int pos n0, int pos m0) {
  /* Euclid over plain ints: m legitimately reaches 0, so only the
     final result is claimed positive (checked at run time). */
  int n = n0;
  int m = m0;
  while (m != 0) { int t = m; m = n % m; n = t; }
  return (int pos) n;
}

int pos lcm(int pos a, int pos b) {
  int pos d = (int pos) gcd(a, b);
  int pos prod = a * b;
  return (int pos) (prod / d);
}

int main() { return lcm(4, 6); }
"""

check = repro.check_c_source(LCM)
print(f"\ntypechecking lcm: {'OK' if check.ok else check.summary()}")
print(f"  runtime checks inserted for casts: "
      f"{sorted({c.qualifier for c in check.runtime_checks})}")
assert check.ok

# ---------------------------------------------------------------- step 4
value, _output = repro.run_c_source(LCM)
print(f"\nlcm(4, 6) = {value}")
assert value == 12

BROKEN = LCM.replace("lcm(4, 6)", "lcm(4, 0 - 6)")
print("calling lcm(4, -6): the pos casts now fail at run time...")
try:
    repro.run_c_source(BROKEN)
except repro.QualifierViolation as exc:
    print(f"  fatal error (as section 2.1.3 prescribes): {exc}")
else:
    raise SystemExit("expected a QualifierViolation")

print("\nquickstart complete.")
