/* Taint tracking (paper section 6.3): format strings must be
 * untainted before reaching printf-like sinks.  Checks clean; each
 * cast of a literal to untainted inserts a runtime check. */

int printf(char* untainted fmt, ...);

void greet(char* untainted name) {
  printf(name);
}

void banner() {
  printf((char* untainted)"semantic type qualifiers\n");
}
