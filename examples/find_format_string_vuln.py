"""Find a format-string vulnerability with the untainted qualifier.

Reproduces the paper's section 6.3 on the synthetic bftpd: the
iterative workflow annotates the two wrapper parameters that take
format strings, then the checker flags the one remaining call —
``sendstrf(s, entry->d_name)`` — where a client-controlled file name
flows into printf.  We then *run* the exploit to show the error is
real, and verify the one-line fix.

Run:  python examples/find_format_string_vuln.py
"""

import repro
from repro.analysis.annotate import annotate_untainted
from repro.corpus import generate_bftpd

source = generate_bftpd()
program = repro.lower_unit(repro.parse_c(source))

print("running the untainted annotation workflow on the bftpd stand-in...")
result = annotate_untainted(program)
print(f"  annotations needed: {result.annotations} (paper: 2)")
print(f"  casts needed:       {result.casts} (paper: 0)")
print(f"  errors found:       {result.errors} (paper: 1)")
for diag in result.report.diagnostics:
    print(f"    -> {diag}")
assert result.errors == 1

print("\nthe flagged code (verbatim from the paper's section 6.3):")
for line in source.splitlines():
    if "entry->d_name" in line:
        print(f"    {line.strip()}")

print("\ndemonstrating the exploit at run time...")
try:
    repro.run_c_source(source, quals=repro.QualifierSet([]))
except repro.FormatStringError as exc:
    print(f"  FormatStringError: {exc}")
else:
    raise SystemExit("expected the format-string attack to trigger")

print("\napplying the fix: sendstrf(s, \"%s\", entry->d_name)")
fixed_source = source.replace(
    "sendstrf(sess->sock, entry->d_name);",
    'sendstrf(sess->sock, "%s", entry->d_name);',
)
fixed_program = repro.lower_unit(repro.parse_c(fixed_source))
fixed = annotate_untainted(fixed_program)
print(f"  errors after fix: {fixed.errors}")
assert fixed.errors == 0

value, output = repro.run_c_source(fixed_source, quals=repro.QualifierSet([]))
print(f"  fixed daemon runs cleanly (exit {value}); output:")
for line in output:
    print(f"    | {line.rstrip()}")
