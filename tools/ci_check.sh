#!/bin/sh
# CI smoke gate: tier-1 tests plus batch-mode CLI runs with the exit
# codes docs/robustness.md documents.  Run from the repository root:
#
#   sh tools/ci_check.sh
#
# Exits nonzero on the first failing stage.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"
export PYTHONPATH

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== tier-1 test suite"
python -m pytest -x -q tests/

echo "== worklist engine matches legacy structured-walk verdicts"
python benchmarks/bench_flow_ablation.py --smoke

echo "== batch check over examples/ (expect exit 0, JSON report)"
python -m repro check examples/*.c --keep-going --format json \
    | python -c '
import json, sys
report = json.load(sys.stdin)
units = report["units"]
bad = [u for u in units if u["verdict"] != "OK"]
assert not bad, f"expected every example unit OK, got: {bad}"
assert report["exit_code"] == 0, report["exit_code"]
print(f"   {len(units)} unit(s) OK")
'

echo "== prove the standard qualifier library (expect exit 0)"
python -m repro prove examples/posneg.qual --keep-going --time-limit 30 \
    --cache-dir "$tmpdir/warmup-cache"

echo "== proof cache: cold then warm run (expect hits, identical verdicts)"
python -m repro prove examples/*.qual --keep-going --time-limit 30 \
    --cache-dir "$tmpdir/proof-cache" --format json > "$tmpdir/cold.json"
python -m repro prove examples/*.qual --keep-going --time-limit 30 \
    --cache-dir "$tmpdir/proof-cache" --format json > "$tmpdir/warm.json"
python -c '
import json, sys
cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
assert cold["cache"]["hits"] == 0, cold["cache"]
assert warm["cache"]["hits"] > 0, warm["cache"]
assert warm["cache"]["misses"] == 0, warm["cache"]


def obligations(report):
    return [
        (u["unit"], q["qualifier"], o["rule"], o["verdict"], o["proved"],
         o["reason"])
        for u in report["units"]
        for q in u["detail"]["qualifiers"]
        for o in q["obligations"]
    ]


assert obligations(cold) == obligations(warm), "verdict drift between runs"
unit_verdicts = [u["verdict"] for u in cold["units"]]
assert unit_verdicts == [u["verdict"] for u in warm["units"]], unit_verdicts
replayed = [
    o for u in warm["units"] for q in u["detail"]["qualifiers"]
    for o in q["obligations"] if o["verdict"] == "PROVED"
]
assert replayed and all(o["cached"] for o in replayed), (
    "warm run did not replay every PROVED obligation from the cache"
)
hits = warm["cache"]["hits"]
print(f"   {hits} hit(s), "
      f"{len(replayed)} PROVED obligation(s) replayed, verdicts identical")
' "$tmpdir/cold.json" "$tmpdir/warm.json"

echo "== sharded prove: --jobs 2 verdicts identical to serial, sessions reused"
python -m repro prove examples/*.qual --keep-going --time-limit 30 \
    --no-cache --format json > "$tmpdir/serial.json"
python -m repro prove examples/*.qual --keep-going --time-limit 30 \
    --no-cache --jobs 2 --format json > "$tmpdir/sharded.json"
python -m repro prove examples/*.qual --keep-going --time-limit 30 \
    --no-cache --jobs 2 --no-shard --format json > "$tmpdir/pooled.json"
python -c '
import json, sys
serial = json.load(open(sys.argv[1]))
sharded = json.load(open(sys.argv[2]))
pooled = json.load(open(sys.argv[3]))


def obligations(report):
    return [
        (u["unit"], q["qualifier"], o["rule"], o["verdict"], o["proved"],
         o["reason"])
        for u in report["units"]
        for q in u["detail"]["qualifiers"]
        for o in q["obligations"]
    ]


want = obligations(serial)
assert want, "no obligations proved"
assert obligations(sharded) == want, "sharded verdict drift vs serial"
assert obligations(pooled) == want, "--no-shard verdict drift vs serial"
assert [u["verdict"] for u in sharded["units"]] == [
    u["verdict"] for u in serial["units"]
], "unit verdict drift"
assert sharded["exit_code"] == serial["exit_code"], "exit code drift"
for report, label in ((serial, "serial"), (sharded, "sharded")):
    sessions = report["sessions"]
    assert sessions["enabled"] is True, (label, sessions)
    assert sessions["session_reuse"] > 0, (label, sessions)
scheduler = sharded["scheduler"]
assert scheduler["groups"] > 0 and scheduler["obligations"] > 0, scheduler
assert "scheduler" not in serial and "scheduler" not in pooled
reuse = sharded["sessions"]["session_reuse"]
groups = scheduler["groups"]
print(f"   {len(want)} obligation(s) identical across serial/sharded/pooled, "
      f"session_reuse={reuse}, groups={groups}")
' "$tmpdir/serial.json" "$tmpdir/sharded.json" "$tmpdir/pooled.json"

echo "== conflict cores: explain vs ddmin verdicts identical, no perf regression"
python benchmarks/bench_prover.py --cold --quick --json \
    > "$tmpdir/cores-explain-1.json"
python benchmarks/bench_prover.py --cold --quick --json \
    > "$tmpdir/cores-explain-2.json"
python benchmarks/bench_prover.py --cold --quick --no-explain --json \
    > "$tmpdir/cores-ddmin.json"
python -c '
import json, sys
runs = [json.load(open(p)) for p in sys.argv[1:3]]
ddmin = json.load(open(sys.argv[3]))
explain = min(runs, key=lambda r: r["theory_ms"])  # best-of-2 vs noise
assert explain["verdicts"], "cold sweep discharged no obligations"
assert explain["verdicts"] == ddmin["verdicts"], (
    "conflict-core strategy changed verdicts: "
    + str({k: (explain["verdicts"][k], ddmin["verdicts"][k])
           for k in explain["verdicts"]
           if explain["verdicts"][k] != ddmin["verdicts"][k]})
)
assert explain["explain_fallbacks"] == 0, (
    "explained cores fell back to ddmin: %r" % explain
)
history = json.load(open("BENCH_prover.json"))["history"]
baseline = next(
    (e["cold_sweep"] for e in reversed(history)
     if e.get("cold_sweep", {}).get("workload") == "quick"
     and e["cold_sweep"].get("explain")),
    None,
)
assert baseline is not None, (
    "no quick-workload cold_sweep baseline in BENCH_prover.json history"
)
measured, committed = explain["theory_ms"], baseline["theory_ms"]
limit = committed * 1.2
assert measured <= limit, (
    "prover.theory_ms regressed: %.1f ms vs committed baseline "
    "%.1f ms (+20%% gate %.1f ms)" % (measured, committed, limit)
)
print("   %d verdict(s) identical across strategies, "
      "theory_ms %.1f <= gate %.1f"
      % (len(explain["verdicts"]), measured, limit))
' "$tmpdir/cores-explain-1.json" "$tmpdir/cores-explain-2.json" \
  "$tmpdir/cores-ddmin.json"

echo "== differential testing smoke run (expect exit 0, no disagreements)"
python -m repro difftest --seed 0 --count 50 --budget 60 \
    --out-dir "$tmpdir/difftest-artifacts" --format json \
    > "$tmpdir/difftest.json"
python -c '
import json, sys
report = json.load(open(sys.argv[1]))
meta = report["difftest"]
assert meta["findings"] == 0, f"difftest disagreements: {meta}"
counters = meta["counters"]
assert counters.get("prover_vs_enum.compared", 0) > 0, counters
assert counters.get("preservation.compared_runs", 0) > 0, counters
ran = meta["count"] - meta["cases_skipped_budget"]
assert ran > 0, meta
compared = counters["prover_vs_enum.compared"]
print(f"   {ran} case(s), {compared} verdict(s) cross-checked, "
      "0 disagreements")
' "$tmpdir/difftest.json"

echo "== bench smoke run (expect well-formed BENCH_smoke.json)"
python -m repro bench --smoke --out-dir "$tmpdir"
python -c '
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema_version"] == 1, report["schema_version"]
assert report["name"] == "smoke", report["name"]
suites = report["suites"]
assert suites, "no suites ran"
bad_suites = [s["suite"] for s in suites if s["status"] != "ok"]
assert not bad_suites, f"bench smoke suites errored: {bad_suites}"
failed = [
    c["name"] for s in suites for c in s["cases"] if c["status"] != "ok"
]
assert not failed, f"bench smoke cases failed: {failed}"
cases = sum(len(s["cases"]) for s in suites)
timed = [
    c for s in suites for c in s["cases"]
    if c["status"] == "ok" and c["mean_ms"] > 0
]
assert timed, "no case produced a nonzero timing"
print(f"   {len(suites)} suite(s), {cases} case(s), timings recorded")
' "$tmpdir/BENCH_smoke.json"

echo "== broken input is contained, not fatal (expect exit 2)"
printf 'int f( {' > "$tmpdir/broken.c"
status=0
python -m repro check "$tmpdir/broken.c" examples/lcm.c \
    --keep-going --format json > "$tmpdir/report.json" || status=$?
test "$status" -eq 2 || {
    echo "expected exit 2 for a batch with one broken unit, got $status" >&2
    exit 1
}
python -c '
import json, sys
report = json.load(open(sys.argv[1]))
verdicts = [u["verdict"] for u in report["units"]]
assert verdicts == ["ERROR", "OK"], verdicts
print("   verdicts:", " ".join(verdicts))
' "$tmpdir/report.json"

echo "== chaos smoke: poison units quarantined (expect exit 2, JSONL complete)"
status=0
python -m repro check examples/*.c --keep-going --jobs 2 --format jsonl \
    --inject-faults 'seed=0,kill=1' > "$tmpdir/chaos-poison.jsonl" || status=$?
test "$status" -eq 2 || {
    echo "expected exit 2 for an all-poison chaos run, got $status" >&2
    exit 1
}
python -c '
import glob, json, sys
records = [json.loads(line) for line in open(sys.argv[1])]
summary = records[-1]
units = records[:-1]
assert summary["record"] == "summary", summary
expected = sorted(glob.glob("examples/*.c"))
names = sorted(r["unit"] for r in units)
assert names == expected, f"every unit exactly once: {names}"
for r in units:
    assert r["verdict"] == "GAVE_UP", r
    assert any(d["code"] == "Q007" for d in r["diagnostics"]), r
assert summary["exit_code"] == 2, summary
assert summary["supervisor"]["quarantined"] == len(units), summary
print(f"   {len(units)} unit(s) quarantined with Q007, stream complete")
' "$tmpdir/chaos-poison.jsonl"

echo "== chaos smoke: transient worker crash recovers (expect exit 0)"
seed="$(python -c '
import glob
from repro import faults
units = sorted(glob.glob("examples/*.c"))
for seed in range(500):
    plan = faults.FaultPlan(seed=seed, rates={"kill": 0.4})
    first = [u for u in units if plan.decide("kill", f"{u}#1")]
    if len(first) == 1 and not any(
        plan.decide("kill", f"{u}#{a}") for u in first for a in (2, 3)
    ):
        print(seed)
        break
')"
python -m repro check examples/*.c --keep-going --jobs 2 --format jsonl \
    --inject-faults "seed=$seed,kill=0.4" > "$tmpdir/chaos-retry.jsonl"
python -c '
import json, sys
records = [json.loads(line) for line in open(sys.argv[1])]
summary = records[-1]
assert all(r["verdict"] == "OK" for r in records[:-1]), records
assert summary["exit_code"] == 0, summary
assert summary["supervisor"]["deaths"] >= 1, summary
assert summary["supervisor"]["quarantined"] == 0, summary
deaths = summary["supervisor"]["deaths"]
print(f"   recovered from {deaths} worker death(s), all verdicts OK")
' "$tmpdir/chaos-retry.jsonl"

echo "== difftest under one injected worker crash (expect exit 0)"
dseed="$(python -c '
from repro import faults
units = [f"case-{i:05d}" for i in range(12)]
for seed in range(500):
    plan = faults.FaultPlan(seed=seed, rates={"kill": 0.2})
    first = [u for u in units if plan.decide("kill", f"{u}#1")]
    if len(first) == 1 and not any(
        plan.decide("kill", f"{u}#{a}") for u in first for a in (2, 3)
    ):
        print(seed)
        break
')"
python -m repro difftest --seed 0 --count 12 --jobs 2 --keep-going \
    --out-dir "$tmpdir/chaos-difftest-artifacts" --format json \
    --inject-faults "seed=$dseed,kill=0.2" > "$tmpdir/chaos-difftest.json"
python -c '
import json, sys
report = json.load(open(sys.argv[1]))
meta = report["difftest"]
assert meta["findings"] == 0, f"difftest disagreements under chaos: {meta}"
assert meta["counters"].get("prover_vs_enum.compared", 0) > 0, meta
assert report["exit_code"] == 0, report["exit_code"]
assert report["supervisor"]["deaths"] >= 1, report.get("supervisor")
assert report["supervisor"]["quarantined"] == 0, report["supervisor"]
deaths = report["supervisor"]["deaths"]
print(f"   12 case(s), {deaths} worker death(s) survived, oracles agree")
' "$tmpdir/chaos-difftest.json"

echo "== serve smoke: daemon up, incremental re-check, clean shutdown"
cat > "$tmpdir/serve_unit.c" <<'EOF'
int add1(int x) { return x + 1; }
int dbl(int y) { return y * 2; }
int idf(int z) { return z; }
EOF
python -m repro serve --socket "$tmpdir/serve.sock" \
    > "$tmpdir/serve.log" 2>&1 &
serve_pid=$!
tries=0
until [ -S "$tmpdir/serve.sock" ]; do
    tries=$((tries + 1))
    test "$tries" -le 100 || {
        echo "serve daemon never bound its socket" >&2
        cat "$tmpdir/serve.log" >&2
        exit 1
    }
    sleep 0.1
done
python -m repro check "$tmpdir/serve_unit.c" \
    --server "$tmpdir/serve.sock" --format json > "$tmpdir/serve1.json"
cat > "$tmpdir/serve_unit.c" <<'EOF'
int add1(int x) { return x + 1; }
int dbl(int y) { return y * 2; }
int idf(int z) { return z + 0; }
EOF
python -m repro check "$tmpdir/serve_unit.c" \
    --server "$tmpdir/serve.sock" --format json > "$tmpdir/serve2.json"
python -m repro serve --status --socket "$tmpdir/serve.sock" \
    > "$tmpdir/serve_status.json"
python -c '
import json, sys
first = json.load(open(sys.argv[1]))
second = json.load(open(sys.argv[2]))
status = json.load(open(sys.argv[3]))
for report in (first, second):
    assert report["schema_version"] == 1, report["schema_version"]
    assert report["exit_code"] == 0, report
    assert [u["verdict"] for u in report["units"]] == ["OK"], report["units"]
assert first["incremental"]["rechecked"] == 3, first["incremental"]
# the edit touched one function body: only it re-checked
assert second["incremental"]["rechecked"] == 1, second["incremental"]
assert second["incremental"]["replayed"] == 2, second["incremental"]
counters = status["workspaces"][0]["counters"]
assert counters["functions_replayed"] == 2, counters
assert counters["functions_checked"] == 4, counters
assert status["counters"]["errors"] == 0, status["counters"]
print("   incremental re-check: 1 function re-proved, 2 replayed")
' "$tmpdir/serve1.json" "$tmpdir/serve2.json" "$tmpdir/serve_status.json"
python -m repro serve --stop --socket "$tmpdir/serve.sock" > /dev/null
tries=0
while kill -0 "$serve_pid" 2> /dev/null; do
    tries=$((tries + 1))
    test "$tries" -le 100 || {
        echo "serve daemon did not shut down within 10s" >&2
        kill -9 "$serve_pid" 2> /dev/null || true
        exit 1
    }
    sleep 0.1
done
test ! -e "$tmpdir/serve.sock" || {
    echo "serve daemon left its socket file behind" >&2
    exit 1
}
echo "   daemon shut down cleanly, socket removed"

echo "== serve smoke: process mode over TCP, worker crash recovery"
cat > "$tmpdir/mp_a.c" <<'EOF'
int add1(int x) { return x + 1; }
int dbl(int y) { return y * 2; }
EOF
cat > "$tmpdir/mp_b.c" <<'EOF'
int flip(int v) { return 0 - v; }
int idf(int z) { return z; }
EOF
python -m repro serve --socket "$tmpdir/mp.sock" \
    --listen 127.0.0.1:0 --workers 2 > "$tmpdir/mp_serve.log" 2>&1 &
mp_pid=$!
tries=0
until [ -s "$tmpdir/mp_serve.log" ]; do
    tries=$((tries + 1))
    test "$tries" -le 100 || {
        echo "process-mode daemon never announced" >&2
        cat "$tmpdir/mp_serve.log" >&2
        exit 1
    }
    sleep 0.1
done
mp_addr="$(python -c '
import json, sys
line = open(sys.argv[1]).readline()
print(json.loads(line)["listen"])
' "$tmpdir/mp_serve.log")"
python -m repro check "$tmpdir/mp_a.c" --format json > "$tmpdir/mp_a_local.json"
python -m repro check "$tmpdir/mp_b.c" --trust-constants --format json \
    > "$tmpdir/mp_b_local.json"
# two distinct-config checks in flight over TCP, against distinct workers
python -m repro check "$tmpdir/mp_a.c" --server "$mp_addr" --format json \
    > "$tmpdir/mp_a_served.json" &
mp_req_a=$!
python -m repro check "$tmpdir/mp_b.c" --trust-constants --server "$mp_addr" \
    --format json > "$tmpdir/mp_b_served.json" &
mp_req_b=$!
wait "$mp_req_a" "$mp_req_b"
python -c '
import json, sys


def strip(report):
    report.pop("elapsed", None)
    report.pop("incremental", None)
    for unit in report.get("units", ()):
        unit.pop("elapsed", None)
        detail = unit.get("detail", {})
        detail.pop("incremental", None)
        if "dataflow" in detail:
            detail["dataflow"]["totals"].pop("ms", None)
            for stats in detail["dataflow"]["functions"].values():
                stats.pop("ms", None)
    if isinstance(report.get("dataflow"), dict):
        report["dataflow"].pop("ms", None)
    return report


for served_path, local_path in (sys.argv[1:3], sys.argv[3:5]):
    served = strip(json.load(open(served_path)))
    local = strip(json.load(open(local_path)))
    assert served == local, f"served report drifted: {served_path}"
print("   2 concurrent TCP checks byte-identical to in-process")
' "$tmpdir/mp_a_served.json" "$tmpdir/mp_a_local.json" \
  "$tmpdir/mp_b_served.json" "$tmpdir/mp_b_local.json"
python -m repro serve --status --listen "$mp_addr" > "$tmpdir/mp_status1.json"
worker_pid="$(python -c '
import json, sys
status = json.load(open(sys.argv[1]))
assert status["workers"] == 2, status["workers"]
assert len(status["workspaces"]) == 2, len(status["workspaces"])
workers = [ws["worker"] for ws in status["workspaces"]]
assert all(w["alive"] for w in workers), workers
print(workers[0]["pid"])
' "$tmpdir/mp_status1.json")"
kill -9 "$worker_pid"
# the poisoned workspace respawns transparently; verdicts unchanged
python -m repro check "$tmpdir/mp_a.c" --server "$mp_addr" --format json \
    > "$tmpdir/mp_a_again.json"
python -m repro check "$tmpdir/mp_b.c" --trust-constants --server "$mp_addr" \
    --format json > "$tmpdir/mp_b_again.json"
python -m repro serve --status --listen "$mp_addr" > "$tmpdir/mp_status2.json"
python -c '
import json, sys
for path in sys.argv[1:3]:
    report = json.load(open(path))
    assert report["exit_code"] == 0, (path, report["exit_code"])
status = json.load(open(sys.argv[3]))
counters = status["counters"]
assert counters["workers_crashed"] >= 1, counters
assert counters["workers_spawned"] >= 3, counters
assert int(sys.argv[4]) not in [
    ws["worker"]["pid"] for ws in status["workspaces"] if ws["worker"]["alive"]
], "killed worker still listed alive"
crashed = counters["workers_crashed"]
spawned = counters["workers_spawned"]
print(f"   worker kill recovered: {crashed} crash(es), {spawned} spawn(s)")
' "$tmpdir/mp_a_again.json" "$tmpdir/mp_b_again.json" \
  "$tmpdir/mp_status2.json" "$worker_pid"
python -m repro serve --stop --listen "$mp_addr" > /dev/null
tries=0
while kill -0 "$mp_pid" 2> /dev/null; do
    tries=$((tries + 1))
    test "$tries" -le 100 || {
        echo "process-mode daemon did not shut down within 10s" >&2
        kill -9 "$mp_pid" 2> /dev/null || true
        exit 1
    }
    sleep 0.1
done
test ! -e "$tmpdir/mp.sock" || {
    echo "process-mode daemon left its socket file behind" >&2
    exit 1
}
echo "   process-mode daemon shut down cleanly, socket removed"

echo "ci_check: all stages passed"
