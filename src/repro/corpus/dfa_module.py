"""A synthetic stand-in for grep 2.5's dfa.c/dfa.h (Table 1, §6.1/6.2).

The generated module implements a real (if simplified) DFA construction
and matching engine in the supported C subset, with the idioms the
paper calls out:

* a ``dfa`` global holding the automaton under construction, suitable
  for a ``unique`` annotation (section 6.2), built by ``malloc`` and
  manipulated through dereferences only;
* pointer- and field-heavy helper procedures (the source of the ~1072
  dereference sites of Table 1);
* NULL-guarded access (``if ((t = d->trans[s]) != NULL) ... t[c]``),
  which flow-insensitive checking cannot validate — the paper's main
  source of casts;
* nullable caches and optional buffers, annotated or cast exactly as
  the iterative workflow decides.

``generate_dfa_module`` is deterministic given its parameters; the
default parameters are calibrated so lines/dereferences match the
paper's scale.
"""

from __future__ import annotations

import random
from typing import List


def generate_dfa_module(
    n_transition_helpers: int = 17,
    n_analysis_helpers: int = 15,
    n_guarded_helpers: int = 14,
    n_builders: int = 10,
    n_scalar_helpers: int = 52,
    seed: int = 0,
) -> str:
    rng = random.Random(seed)
    parts: List[str] = [_PRELUDE]

    for i in range(n_builders):
        parts.append(_builder(i, rng))
    for i in range(n_transition_helpers):
        parts.append(_transition_helper(i, rng))
    for i in range(n_analysis_helpers):
        parts.append(_analysis_helper(i, rng))
    for i in range(n_guarded_helpers):
        parts.append(_guarded_helper(i, rng))
    for i in range(n_scalar_helpers):
        parts.append(_scalar_helper(i, rng))
    parts.append(_MATCH_CORE)
    return "\n".join(parts)


_PRELUDE = """\
/* Synthetic dfa.c: core string-matching structures, after grep 2.5. */
/* grep's allocator never returns NULL; its alternate library signature
   (section 3.3) declares the result nonnull. */
void* __attribute__((nonnull)) xmalloc(int size);
void free(void* p);

struct dfa_state {
  int index;
  int accepting;
  int hash;
  int* trans;
  int* fails;
  int* follows;
};

struct position_set {
  int nelem;
  int* elems;
  int* orders;
};

struct dfa_obj {
  int nstates;
  int nleaves;
  int talloc;
  struct dfa_state* states;
  int* charclasses;
  int* newlines;
  struct position_set* follows;
  int* musts;
};

/* The automaton being built (the paper's unique global, section 6.2). */
struct dfa_obj* dfa;

struct dfa_obj* dfa_alloc(int nstates) {
  struct dfa_obj* d = (struct dfa_obj*)xmalloc(sizeof(struct dfa_obj));
  d->nstates = nstates;
  d->nleaves = 0;
  d->talloc = nstates * 2;
  d->states = (struct dfa_state*)xmalloc(sizeof(struct dfa_state) * nstates);
  d->charclasses = (int*)xmalloc(sizeof(int) * 256);
  d->newlines = (int*)xmalloc(sizeof(int) * nstates);
  d->follows = (struct position_set*)xmalloc(sizeof(struct position_set));
  d->musts = (int*)xmalloc(sizeof(int) * nstates);
  return d;
}

void dfa_init_state(struct dfa_obj* d, int i) {
  d->states[i].index = i;
  d->states[i].accepting = 0;
  d->states[i].hash = i * 31;
  d->states[i].trans = (int*)xmalloc(sizeof(int) * 256);
  d->states[i].fails = (int*)xmalloc(sizeof(int) * 256);
  d->states[i].follows = (int*)xmalloc(sizeof(int) * 16);
  int c;
  for (c = 0; c < 256; c++) {
    d->states[i].trans[c] = 0;
    d->states[i].fails[c] = 0;
  }
}
"""


def _builder(i: int, rng: random.Random) -> str:
    """Construction helpers: allocate and link automaton pieces."""
    mult = rng.choice([2, 3, 4])
    return f"""\
void dfa_build_section_{i}(struct dfa_obj* d, int lo, int hi) {{
  int i;
  for (i = lo; i < hi; i++) {{
    dfa_init_state(d, i);
    d->states[i].accepting = (i % {mult + 1} == 0);
    d->newlines[i] = 0;
    d->musts[i] = i * {mult};
  }}
  d->follows->nelem = hi - lo;
  d->follows->elems = (int*)xmalloc(sizeof(int) * (hi - lo + 1));
  d->follows->orders = (int*)xmalloc(sizeof(int) * (hi - lo + 1));
  for (i = 0; i < hi - lo; i++) {{
    d->follows->elems[i] = i + lo;
    d->follows->orders[i] = {mult} * i;
  }}
}}
"""


def _transition_helper(i: int, rng: random.Random) -> str:
    """Pointer-heavy transition table manipulation."""
    stride = rng.choice([1, 2, 4])
    return f"""\
int dfa_trans_update_{i}(struct dfa_obj* d, int s, int c, int target) {{
  struct dfa_state* st = &d->states[s];
  int old = st->trans[c];
  st->trans[c] = target;
  st->fails[c] = old;
  if (st->accepting) {{
    d->newlines[s] = d->newlines[s] + {stride};
    st->hash = st->hash + c * {stride};
  }}
  d->charclasses[c % 256] = d->charclasses[c % 256] + 1;
  return old;
}}

int dfa_trans_probe_{i}(struct dfa_obj* d, int s, int c) {{
  struct dfa_state* st = &d->states[s];
  int t = st->trans[c];
  if (t == 0) {{
    t = st->fails[c];
  }}
  if (t == 0 && d->newlines[s] > {stride}) {{
    t = d->musts[s % d->nstates];
  }}
  return t;
}}
"""


def _analysis_helper(i: int, rng: random.Random) -> str:
    """Follow-set / position-set analysis over the shared structures."""
    k = rng.choice([3, 5, 7])
    return f"""\
int dfa_analyze_{i}(struct dfa_obj* d, struct position_set* ps, int limit) {{
  int total = 0;
  int i;
  for (i = 0; i < ps->nelem && i < limit; i++) {{
    int e = ps->elems[i];
    int o = ps->orders[i];
    if (e % {k} == 0) {{
      total = total + d->states[e % d->nstates].hash;
      d->states[e % d->nstates].follows[o % 16] = e;
    }} else {{
      total = total + d->musts[e % d->nstates] * o;
    }}
  }}
  d->follows->nelem = total % (limit + 1);
  return total;
}}
"""


def _guarded_helper(i: int, rng: random.Random) -> str:
    """The paper's flow-sensitivity problem (section 6.1): a pointer is
    NULL-guarded before use, which the flow-insensitive checker cannot
    see; the workflow inserts casts here."""
    return f"""\
int dfa_guarded_walk_{i}(struct dfa_obj* d, int s, int c) {{
  int* t = NULL;
  int works = s;
  if (s >= 0 && s < d->nstates) {{
    t = d->states[s].trans;
  }}
  if (t != NULL) {{
    works = t[c];
    if (works > 0) {{
      works = t[(c + works) % 256];
    }}
  }}
  return works;
}}
"""


def _scalar_helper(i: int, rng: random.Random) -> str:
    """Scalar bookkeeping (hashing, char-class arithmetic, cost
    accounting): grep's dfa.c has plenty of pointer-free code too; these
    keep the line/dereference ratio realistic."""
    a = rng.randint(2, 9)
    b = rng.randint(11, 31)
    c = rng.randint(3, 7)
    return f"""\
int dfa_hash_round_{i}(int h, int c) {{
  h = h * {b} + c;
  h = h ^ (h / {a + 1});
  if (h < 0) {{
    h = -h;
  }}
  return h % 65536;
}}

int dfa_class_cost_{i}(int kind, int width) {{
  int cost = 0;
  if (kind == 0) {{
    cost = width * {a};
  }} else if (kind == 1) {{
    cost = width + {b};
  }} else {{
    cost = width / {c} + kind * {a};
  }}
  int round = 0;
  while (cost > {b * 4}) {{
    cost = cost / 2;
    round = round + 1;
  }}
  if (round > {c}) {{
    cost = cost + round;
  }}
  return cost;
}}
"""


_MATCH_CORE = """\
void dfa_compile(int nstates) {
  dfa = (struct dfa_obj*)xmalloc(sizeof(struct dfa_obj));
  dfa->nstates = nstates;
  dfa->nleaves = nstates / 2;
  dfa->talloc = nstates * 2;
  dfa->states = (struct dfa_state*)xmalloc(sizeof(struct dfa_state) * nstates);
  dfa->charclasses = (int*)xmalloc(sizeof(int) * 256);
  dfa->newlines = (int*)xmalloc(sizeof(int) * nstates);
  dfa->follows = (struct position_set*)xmalloc(sizeof(struct position_set));
  dfa->musts = (int*)xmalloc(sizeof(int) * nstates);
  int i;
  for (i = 0; i < nstates; i++) {
    dfa->states[i].index = i;
    dfa->states[i].trans = (int*)xmalloc(sizeof(int) * 256);
    dfa->states[i].fails = (int*)xmalloc(sizeof(int) * 256);
    dfa->states[i].follows = (int*)xmalloc(sizeof(int) * 16);
  }
}

int dfa_match(struct dfa_obj* d, char* text, int len) {
  int state = 0;
  int i;
  for (i = 0; i < len; i++) {
    int c = text[i];
    int next = d->states[state].trans[c % 256];
    if (next == 0) {
      next = d->states[state].fails[c % 256];
    }
    state = next % d->nstates;
    if (d->states[state].accepting) {
      return i;
    }
  }
  return -1;
}

int dfa_execute(struct dfa_obj* d, char* begin, char* end) {
  int count = 0;
  char* p = begin;
  while (p != end) {
    int c = *p;
    if (d->charclasses[c % 256] > 0) {
      count = count + 1;
    }
    p = p + 1;
  }
  return count;
}

/* Uses of the dfa global (section 6.2): every one is a dereference or a
   rule-conforming assignment, so the unique annotation validates. */
int dfa_global_reset(void) {
  int i;
  for (i = 0; i < dfa->nstates; i++) {
    dfa->states[i].accepting = 0;
    dfa->states[i].hash = i;
    dfa->newlines[i] = 0;
    dfa->musts[i] = 0;
  }
  dfa->follows->nelem = 0;
  return dfa->nstates;
}

int dfa_global_summary(void) {
  int total = dfa->nstates + dfa->nleaves + dfa->talloc;
  int i;
  for (i = 0; i < 256; i++) {
    total = total + dfa->charclasses[i];
  }
  if (dfa->follows->nelem > 0) {
    total = total + dfa->follows->elems[0];
  }
  return total;
}

int dfa_global_grow(int extra) {
  dfa->talloc = dfa->talloc + extra;
  dfa->nleaves = dfa->nleaves + 1;
  if (dfa->talloc > 4096) {
    dfa->talloc = 4096;
  }
  return dfa->talloc;
}

int dfa_global_checksum(int salt) {
  int sum = salt;
  sum = sum + dfa->nstates * 3;
  sum = sum + dfa->nleaves * 5;
  sum = sum + dfa->talloc * 7;
  sum = sum ^ dfa->charclasses[salt % 256];
  sum = sum ^ dfa->newlines[salt % (dfa->nstates + 1)];
  sum = sum + dfa->musts[0];
  if (dfa->follows->nelem > 1) {
    sum = sum + dfa->follows->orders[1];
  }
  return sum;
}

void dfa_global_free(void) {
  int i;
  for (i = 0; i < dfa->nstates; i++) {
    free(dfa->states[i].trans);
    free(dfa->states[i].fails);
    free(dfa->states[i].follows);
  }
  dfa = NULL;
}
"""
