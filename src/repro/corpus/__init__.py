"""Synthetic experiment corpus.

The paper evaluates on open-source C programs we cannot ship: grep 2.5's
``dfa.c``/``dfa.h`` (Table 1, section 6.2) and the bftpd / mingetty /
identd network daemons (Table 2).  This package generates synthetic
stand-ins calibrated to the paper's reported size metrics (lines,
dereference counts, printf-call counts) and exhibiting the same idioms
the paper discusses: pointer-heavy DFA construction and traversal,
NULL-guarded access that defeats flow-insensitive checking, global
data structures built by ``malloc``, printf wrappers taking format
parameters, and — in the bftpd stand-in — the exact format-string
vulnerability shape (``sendstrf(s, entry->d_name)``) of the paper's
one true positive.
"""

from repro.corpus.dfa_module import generate_dfa_module
from repro.corpus.servers import generate_bftpd, generate_identd, generate_mingetty

__all__ = [
    "generate_dfa_module",
    "generate_bftpd",
    "generate_identd",
    "generate_mingetty",
]
