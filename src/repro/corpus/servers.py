"""Synthetic stand-ins for the paper's Table 2 programs.

Shankar et al.'s format-string study (which the paper reproduces in
section 6.3) checked bftpd 1.0.11, mingetty 0.9.4 and identd 1.0.
These generators produce daemons of matching shape:

* **bftpd** — an FTP server: command dispatch, directory listing, and
  the ``sendstrf(int s, char* format, ...)`` reply wrapper whose
  format parameter must be annotated untainted.  The known exploit is
  planted verbatim: ``sendstrf(s, entry->d_name)`` passes a client-
  controlled file name as a format string.
* **mingetty** — a terminal spawner with one ``error(char* fmt, ...)``
  logging wrapper (one annotation) and direct printf calls otherwise.
* **identd** — an identification daemon that only ever passes string
  literals to printf (zero annotations, zero casts with the constants
  rule).

Each generator's default parameters are calibrated to the paper's
reported line and printf-call counts.
"""

from __future__ import annotations

from typing import List

_LIB = """\
int printf(char* __attribute__((untainted)) fmt, ...);
int fprintf(int stream, char* __attribute__((untainted)) fmt, ...);
int sprintf(char* buf, char* __attribute__((untainted)) fmt, ...);
int syslog(char* __attribute__((untainted)) fmt, ...);
void* malloc(int size);
int strlen(char* s);
char* strcpy(char* dst, char* src);
void exit(int code);
int read_socket(int s, char* buf, int len);
int write_socket(int s, char* buf, int len);
"""


# ------------------------------------------------------------------- bftpd


def generate_bftpd(n_commands: int = 15, n_helpers: int = 11, n_utils: int = 12) -> str:
    """An FTP-server-shaped program (~750 lines, ~134 printf calls)."""
    parts: List[str] = [_LIB, _BFTPD_PRELUDE]
    for i in range(n_commands):
        parts.append(_bftpd_command(i))
    for i in range(n_helpers):
        parts.append(_bftpd_helper(i))
    for i in range(n_utils):
        parts.append(_bftpd_util(i))
    parts.append(_BFTPD_MAIN)
    return "\n".join(parts)


_BFTPD_PRELUDE = """\
struct dirent {
  int inode;
  char* d_name;
};

struct session {
  int sock;
  int logged_in;
  int passive;
  char* user;
  char* cwd;
};

/* Reply wrapper: its format parameter is what the workflow annotates. */
int sendstrf(int s, char* format, ...) {
  char buf[512];
  int n = sprintf(buf, format);
  write_socket(s, buf, n);
  return n;
}

/* Logging wrapper: the second annotation the paper reports for bftpd. */
int log_event(char* format, ...) {
  return syslog(format);
}

struct dirent* read_dir_entry(int handle) {
  struct dirent* e = (struct dirent*)malloc(sizeof(struct dirent));
  e->inode = handle * 7;
  e->d_name = "%n%n%n%n";  /* client-controlled in the real bftpd */
  return e;
}
"""


def _bftpd_command(i: int) -> str:
    verbs = [
        "USER", "PASS", "QUIT", "PORT", "PASV", "TYPE", "RETR", "STOR",
        "DELE", "RNFR", "RNTO", "MKD", "RMD", "PWD", "CWD", "CDUP",
        "LIST", "NLST", "SYST", "NOOP", "SIZE", "MDTM", "ABOR", "STAT",
    ]
    verb = verbs[i % len(verbs)]
    return f"""\
int cmd_{verb.lower()}_{i}(struct session* sess, char* arg) {{
  if (sess->logged_in == 0 && {i} % 5 != 0) {{
    sendstrf(sess->sock, "530 Not logged in.\\r\\n");
    log_event("unauthenticated {verb}");
    return -1;
  }}
  if (strlen(arg) > 255) {{
    sendstrf(sess->sock, "501 Argument too long.\\r\\n");
    return -1;
  }}
  printf("handling {verb} (session %d)\\n", sess->sock);
  sendstrf(sess->sock, "200 {verb} ok.\\r\\n");
  if ({i} % 4 == 0) {{
    log_event("{verb} completed");
  }}
  return 0;
}}
"""


def _bftpd_helper(i: int) -> str:
    if i == 0:
        # The paper's exploitable call, verbatim (section 6.3): a
        # directory entry's name used as a format string.
        return """\
int list_directory(struct session* sess, int handle) {
  struct dirent* entry = read_dir_entry(handle);
  sendstrf(sess->sock, entry->d_name);
  return 0;
}
"""
    return f"""\
int helper_{i}(struct session* sess, int code) {{
  if (code < 0) {{
    sendstrf(sess->sock, "550 Failure (%d).\\r\\n", code);
    log_event("helper_{i} failed");
    return -1;
  }}
  if (code > 100) {{
    printf("helper_{i}: unusual code %d\\n", code);
    sendstrf(sess->sock, "250 Done.\\r\\n");
  }}
  return code % {i + 2};
}}
"""


def _bftpd_util(i: int) -> str:
    """Protocol utilities without any printf-family calls (path and
    permission bookkeeping), keeping the line/call ratio realistic."""
    return f"""\
int util_perm_check_{i}(struct session* sess, int mode) {{
  int allowed = 0;
  if (sess->logged_in) {{
    allowed = mode & {0o644 + i};
  }}
  if (sess->passive && mode > {i + 2}) {{
    allowed = allowed | {1 << (i % 8)};
  }}
  int bits = 0;
  while (allowed > 0) {{
    bits = bits + (allowed & 1);
    allowed = allowed / 2;
  }}
  return bits;
}}

int util_path_depth_{i}(char* path) {{
  int depth = 0;
  int j;
  int n = strlen(path);
  for (j = 0; j < n; j++) {{
    if (path[j] == 47) {{
      depth = depth + 1;
    }}
  }}
  return depth + {i % 3};
}}
"""


_BFTPD_MAIN = """\
int dispatch(struct session* sess, int cmd, char* arg) {
  int rc = 0;
  if (cmd == 0) { rc = cmd_user_0(sess, arg); }
  else if (cmd == 1) { rc = cmd_pass_1(sess, arg); }
  else if (cmd == 16) { rc = list_directory(sess, cmd); }
  else { sendstrf(sess->sock, "502 Command not implemented.\\r\\n"); }
  return rc;
}

int main() {
  struct session sess;
  sess.sock = 4;
  sess.logged_in = 1;
  sess.user = "anonymous";
  printf("bftpd-like daemon starting\\n");
  int rc = dispatch(&sess, 16, "");
  printf("done rc=%d\\n", rc);
  return rc;
}
"""


# ----------------------------------------------------------------- mingetty


def generate_mingetty(n_setup_steps: int = 9, n_utils: int = 3) -> str:
    """A getty-shaped program (~293 lines, ~23 printf calls)."""
    parts: List[str] = [_LIB, _MINGETTY_PRELUDE]
    for i in range(n_setup_steps):
        parts.append(_mingetty_step(i))
    for i in range(n_utils):
        parts.append(_mingetty_util(i))
    parts.append(_MINGETTY_MAIN)
    return "\n".join(parts)


_MINGETTY_PRELUDE = """\
struct termios_like {
  int iflag;
  int oflag;
  int cflag;
  int lflag;
};

char* tty_name;
int keep_baud;

/* The one wrapper mingetty needs annotated: its error reporter. */
int error(char* fmt, ...) {
  int n = syslog(fmt);
  exit(1);
  return n;
}
"""


def _mingetty_step(i: int) -> str:
    return f"""\
int setup_step_{i}(struct termios_like* t, int fd) {{
  if (fd < 0) {{
    error("step {i}: bad fd");
  }}
  t->iflag = t->iflag | {1 << (i % 8)};
  t->oflag = t->oflag & ~{1 << ((i + 3) % 8)};
  if (t->cflag == 0) {{
    t->cflag = {9600 + i};
  }}
  if ({i} % 3 == 0) {{
    printf("configured step {i} on fd %d\\n", fd);
  }}
  t->lflag = t->lflag + {i};
  int rate = t->cflag % 38400;
  if (rate == 0) {{
    rate = 9600;
  }}
  return rate;
}}
"""


def _mingetty_util(i: int) -> str:
    return f"""\
int baud_index_{i}(int rate) {{
  int idx = 0;
  if (rate >= 300) {{ idx = 1; }}
  if (rate >= 1200) {{ idx = 2; }}
  if (rate >= 2400) {{ idx = 3; }}
  if (rate >= 9600) {{ idx = 4; }}
  if (rate >= 19200) {{ idx = 5; }}
  if (rate >= 38400) {{ idx = 6; }}
  return idx + {i % 2};
}}

int parse_issue_char_{i}(int c, int state) {{
  if (state == 0 && c == 92) {{
    return 1;
  }}
  if (state == 1) {{
    if (c == 110 || c == 115 || c == 108) {{
      return 2;
    }}
    return 0;
  }}
  return state;
}}
"""


_MINGETTY_MAIN = """\
int spawn_login(char* user) {
  if (strlen(user) == 0) {
    error("empty login name");
  }
  printf("login: %s\\n", user);
  return 0;
}

int main() {
  struct termios_like t;
  t.iflag = 0; t.oflag = 0; t.cflag = 0; t.lflag = 0;
  tty_name = "tty1";
  printf("mingetty-like starting on %s\\n", tty_name);
  int i;
  int rate = 0;
  for (i = 0; i < 9; i++) {
    rate = setup_step_0(&t, i);
  }
  printf("final rate %d\\n", rate);
  spawn_login("operator");
  return 0;
}
"""


# -------------------------------------------------------------------- identd


def generate_identd(n_handlers: int = 6, n_utils: int = 5) -> str:
    """An identd-shaped program (~228 lines, ~21 printf calls): every
    format string is a literal, so no annotations are needed."""
    parts: List[str] = [_LIB, _IDENTD_PRELUDE]
    for i in range(n_handlers):
        parts.append(_identd_handler(i))
    for i in range(n_utils):
        parts.append(_identd_util(i))
    parts.append(_IDENTD_MAIN)
    return "\n".join(parts)


_IDENTD_PRELUDE = """\
struct query {
  int local_port;
  int remote_port;
  int uid;
};

int parse_ports(char* line, struct query* q) {
  if (strlen(line) < 3) {
    return -1;
  }
  q->local_port = line[0] - 48;
  q->remote_port = line[2] - 48;
  return 0;
}
"""


def _identd_handler(i: int) -> str:
    return f"""\
int handle_query_{i}(int sock, struct query* q) {{
  if (q->local_port <= 0 || q->local_port > 65535) {{
    fprintf(2, "%d , %d : ERROR : INVALID-PORT\\r\\n",
            q->local_port, q->remote_port);
    return -1;
  }}
  if (q->uid < 0) {{
    fprintf(2, "%d , %d : ERROR : NO-USER\\r\\n",
            q->local_port, q->remote_port);
    return -1;
  }}
  printf("%d , %d : USERID : UNIX : user%d\\n",
         q->local_port, q->remote_port, q->uid % {i + 2});
  return 0;
}}
"""


def _identd_util(i: int) -> str:
    return f"""\
int lookup_uid_{i}(int local_port, int remote_port) {{
  int key = local_port * 31 + remote_port;
  int probe = key % {97 + i};
  int tries = 0;
  while (tries < 8) {{
    if (probe % {i + 3} == 0) {{
      return probe;
    }}
    probe = (probe + tries) % {97 + i};
    tries = tries + 1;
  }}
  return -1;
}}

int validate_port_{i}(int port) {{
  if (port <= 0) {{
    return 0;
  }}
  if (port > 65535) {{
    return 0;
  }}
  return 1;
}}
"""


_IDENTD_MAIN = """\
int main() {
  struct query q;
  q.local_port = 113;
  q.remote_port = 1000;
  q.uid = 42;
  printf("identd-like starting\\n");
  int rc = handle_query_0(4, &q);
  if (rc < 0) {
    printf("query failed\\n");
  }
  return 0;
}
"""
