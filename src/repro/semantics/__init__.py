"""Executable semantics.

Two interpreters live here:

* :mod:`repro.semantics.csem` — a concrete interpreter for the CIL-style
  IR with the run-time qualifier-cast checks of section 2.1.3, used by
  the examples and to demonstrate that instrumented programs trap
  invariant violations (including the format-string exploit of the
  paper's section 6.3).
* :mod:`repro.semantics.lambda_ref` — the simply-typed lambda calculus
  with ML-style references and user-defined value qualifiers from the
  paper's formalization (section 5), with a typechecker implementing the
  T-QUALCASE rule template, a big-step evaluator, and the semantic-
  conformance relation of figure 11.  Property-based tests use it to
  check Theorem 5.1 (preservation) empirically.
"""

from repro.semantics.csem import (
    CInterpreter,
    CRuntimeError,
    FormatStringError,
    QualifierViolation,
    run_program,
)
from repro.semantics.lambda_ref import (
    LambdaTypeError,
    check_conformance,
    evaluate,
    typecheck,
)

__all__ = [
    "CInterpreter",
    "CRuntimeError",
    "FormatStringError",
    "QualifierViolation",
    "run_program",
    "LambdaTypeError",
    "typecheck",
    "evaluate",
    "check_conformance",
]
