"""A concrete interpreter for the CIL-style IR.

Memory is a flat, integer-addressed cell array (one cell per scalar /
pointer / char; ``sizeof`` of any scalar is 1 and of a struct is its
field count, so pointer arithmetic matches the logical memory model the
checker assumes).  NULL is address 0; no object is ever allocated
there.

Run-time qualifier checks (paper section 2.1.3): every cast to a
value-qualified type checks the qualifier's declared invariant on the
cast value and raises :class:`QualifierViolation` on failure — the
paper's "fatal error".  Casts involving reference qualifiers are not
checked (section 2.2.3).

``printf``/``sprintf`` are modelled faithfully enough to *exhibit* a
format-string vulnerability: a conversion directive with no matching
argument raises :class:`FormatStringError`, standing in for the stack
over-read the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cfront.ctypes import (
    ArrayType,
    CType,
    IntType,
    PointerType,
    StructType,
    is_pointer_like,
)
from repro.cil import cfg as cfg_mod
from repro.cil import ir
from repro.cil.cfg import build_cfg, has_unstructured_flow
from repro.core.qualifiers import ast as Q
from repro.core.qualifiers.ast import QualifierSet


class CRuntimeError(Exception):
    """Base class for run-time errors in the interpreter."""


class QualifierViolation(CRuntimeError):
    """A run-time qualifier check failed (fatal error, section 2.1.3)."""

    def __init__(self, qualifier: str, value, detail: str = ""):
        msg = f"runtime check failed: value {value!r} is not {qualifier}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.qualifier = qualifier
        self.value = value


class NullDereference(CRuntimeError):
    pass


class FormatStringError(CRuntimeError):
    """printf read a conversion with no matching argument."""


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


@dataclass
class _Frame:
    env: Dict[str, int] = field(default_factory=dict)  # name -> address
    # Arguments beyond the declared formals of a varargs function; a
    # printf-family call inside the body that passes no varargs of its
    # own picks these up (modelling va_list forwarding, which the C
    # subset has no syntax for).
    varargs: List[object] = field(default_factory=list)


class CInterpreter:
    """Executes a :class:`repro.cil.ir.Program`.

    ``quals`` enables run-time checks for casts to value-qualified
    types; without it, casts are silent (the unchecked configuration).
    """

    HEAP_BASE = 1_000_000

    def __init__(
        self,
        program: ir.Program,
        quals: Optional[QualifierSet] = None,
        max_steps: int = 2_000_000,
        native_checks: bool = True,
    ):
        self.program = program
        self.quals = quals
        # With native_checks=False, casts are silent even when ``quals``
        # is set; only explicit ``__check_<qual>`` calls (the materialized
        # instrumentation of repro.core.checker.instrument) enforce
        # invariants.  Differential testing runs this configuration to
        # verify the inserted checks alone provide full coverage.
        self.native_checks = native_checks
        self.memory: Dict[int, object] = {}
        self.next_stack = 1
        self.next_heap = self.HEAP_BASE
        self.globals = _Frame()
        self.frames: List[_Frame] = []
        self.output: List[str] = []
        self.steps = 0
        self.max_steps = max_steps
        self._string_cache: Dict[str, int] = {}
        self._allocate_globals()

    # ------------------------------------------------------------- memory

    def _alloc_stack(self, size: int = 1) -> int:
        addr = self.next_stack
        self.next_stack += size
        for i in range(size):
            self.memory[addr + i] = 0
        return addr

    def _alloc_heap(self, size: int) -> int:
        addr = self.next_heap
        self.next_heap += max(size, 1)
        for i in range(max(size, 1)):
            self.memory[addr + i] = 0
        return addr

    def is_heap_address(self, addr: int) -> bool:
        return addr >= self.HEAP_BASE

    def _allocate_globals(self) -> None:
        for g in self.program.globals:
            self.globals.env[g.name] = self._alloc_stack(self._sizeof(g.ctype))
        try:
            init = self.program.function(ir.Program.GLOBAL_INIT)
        except KeyError:
            return
        self._call_function(init, [])

    def _sizeof(self, ctype: Optional[CType]) -> int:
        if ctype is None:
            return 1
        if isinstance(ctype, ArrayType):
            return (ctype.size or 1) * self._sizeof(ctype.elem)
        if isinstance(ctype, StructType):
            fields = self.program.structs.get(ctype.name, [])
            sizes = [self._sizeof(t) for _, t in fields]
            if ctype.name in self.program.unions:
                return max([1] + sizes)  # union: fields overlay
            return max(1, sum(sizes))
        return 1

    def _field_offset(self, struct_name: str, fieldname: str) -> int:
        fields = self.program.structs.get(struct_name, [])
        if struct_name in self.program.unions:
            if any(f == fieldname for f, _ in fields):
                return 0  # every union member lives at offset 0
            raise CRuntimeError(f"no field {fieldname} in union {struct_name}")
        offset = 0
        for fname, ftype in fields:
            if fname == fieldname:
                return offset
            offset += self._sizeof(ftype)
        raise CRuntimeError(f"no field {fieldname} in struct {struct_name}")

    def _intern_string(self, text: str) -> int:
        if text not in self._string_cache:
            addr = self._alloc_heap(len(text) + 1)
            for i, ch in enumerate(text):
                self.memory[addr + i] = ord(ch)
            self.memory[addr + len(text)] = 0
            self._string_cache[text] = addr
        return self._string_cache[text]

    def read_c_string(self, addr: int) -> str:
        out = []
        for offset in range(100000):
            cell = self.memory.get(addr + offset, 0)
            if cell == 0:
                break
            out.append(chr(cell) if isinstance(cell, int) else "?")
        return "".join(out)

    # ----------------------------------------------------------- execution

    def run(self, entry: str = "main", args: List[int] = ()) -> object:
        func = self.program.function(entry)
        return self._call_function(func, list(args))

    def _call_function(self, func: ir.Function, args: List[object]) -> object:
        frame = _Frame()
        if func.varargs and len(args) > len(func.formals):
            frame.varargs = list(args[len(func.formals):])
        self.frames.append(frame)
        try:
            for (name, ctype), value in zip(func.formals, args):
                addr = self._alloc_stack(self._sizeof(ctype))
                frame.env[name] = addr
                self.memory[addr] = value
            for name, ctype in func.formals[len(args):]:
                frame.env[name] = self._alloc_stack(self._sizeof(ctype))
            for name, ctype in func.locals:
                frame.env[name] = self._alloc_stack(self._sizeof(ctype))
            try:
                if has_unstructured_flow(func):
                    # goto/labels: the structured walk cannot follow
                    # them, so interpret the function's CFG instead.
                    self._exec_cfg(func)
                else:
                    self._exec_stmts(func.body, func)
            except _ReturnSignal as ret:
                return ret.value
            return 0
        finally:
            self.frames.pop()

    def _exec_cfg(self, func: ir.Function) -> None:
        """Execute a function by walking its control-flow graph: run a
        block's instructions, evaluate its branch condition (if any),
        and follow the matching edge until the exit block."""
        graph = build_cfg(func)
        block = graph.entry
        while not block.is_exit:
            self._tick()
            for instr in block.instrs:
                self._exec_instruction(instr, func)
            term = block.terminator
            if term.kind == cfg_mod.RETURN:
                stmt = term.stmt
                value = self._eval(stmt.expr, func) if stmt.expr else 0
                raise _ReturnSignal(value)
            if term.kind == cfg_mod.BRANCH:
                taken = bool(self._truthy(self._eval(term.cond, func)))
                block = next(
                    e.dst for e in block.succs if e.guard == taken
                )
            else:  # jump / goto: the single unguarded successor
                block = next(
                    e.dst for e in block.succs if e.guard is None
                )

    def _exec_stmts(self, stmts: List[ir.Stmt], func: ir.Function) -> None:
        for stmt in stmts:
            self._tick()
            if isinstance(stmt, ir.Instr):
                for instr in stmt.instrs:
                    self._exec_instruction(instr, func)
            elif isinstance(stmt, ir.If):
                if self._truthy(self._eval(stmt.cond, func)):
                    self._exec_stmts(stmt.then, func)
                else:
                    self._exec_stmts(stmt.otherwise, func)
            elif isinstance(stmt, ir.While):
                while True:
                    for instr in stmt.cond_instrs:
                        self._exec_instruction(instr, func)
                    if not self._truthy(self._eval(stmt.cond, func)):
                        break
                    try:
                        self._exec_stmts(stmt.body, func)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        continue
            elif isinstance(stmt, ir.Return):
                value = self._eval(stmt.expr, func) if stmt.expr else 0
                raise _ReturnSignal(value)
            elif isinstance(stmt, ir.Break):
                raise _BreakSignal()
            elif isinstance(stmt, ir.Continue):
                raise _ContinueSignal()

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise CRuntimeError("step budget exhausted (infinite loop?)")

    def _exec_instruction(self, instr: ir.Instruction, func: ir.Function) -> None:
        self._tick()
        if isinstance(instr, ir.Set):
            addr = self._lvalue_address(instr.lvalue, func)
            self.memory[addr] = self._eval(instr.expr, func)
        elif isinstance(instr, ir.Call):
            value = self._eval_call(instr, func)
            if instr.result is not None:
                if instr.result_cast is not None:
                    value = self._apply_cast(instr.result_cast, value)
                addr = self._lvalue_address(instr.result, func)
                self.memory[addr] = value

    # ---------------------------------------------------------- evaluation

    def _env_lookup(self, name: str) -> int:
        if self.frames and name in self.frames[-1].env:
            return self.frames[-1].env[name]
        if name in self.globals.env:
            return self.globals.env[name]
        raise CRuntimeError(f"unbound variable {name!r}")

    def _lvalue_address(self, lv: ir.Lvalue, func: ir.Function) -> int:
        if isinstance(lv.host, ir.VarHost):
            addr = self._env_lookup(lv.host.name)
            base_type = self._var_type(lv.host.name, func)
        else:
            addr = self._eval(lv.host.addr, func)
            if not isinstance(addr, int) or addr == 0:
                raise NullDereference(f"dereference of {addr!r}")
            base_type = None
        offset = lv.offset
        current_type = base_type
        while not isinstance(offset, ir.NoOffset):
            if isinstance(offset, ir.FieldOff):
                struct_name = self._struct_of(current_type, lv, func)
                addr += self._field_offset(struct_name, offset.fieldname)
                if struct_name is not None:
                    for fname, ftype in self.program.structs.get(struct_name, []):
                        if fname == offset.fieldname:
                            current_type = ftype
            elif isinstance(offset, ir.IndexOff):
                index = self._eval(offset.index, func)
                stride = 1
                if isinstance(current_type, ArrayType):
                    stride = self._sizeof(current_type.elem)
                    current_type = current_type.elem
                addr += index * stride
            offset = offset.rest
        return addr

    def _struct_of(self, current_type, lv: ir.Lvalue, func: ir.Function) -> str:
        if isinstance(current_type, StructType):
            return current_type.name
        # Through a MemHost we lost the type; recover it from the
        # pointer expression's static type.
        from repro.cil.typesof import TypeError_, TypingContext, type_of_expr

        ctx = TypingContext.for_function(self.program, func)
        if isinstance(lv.host, ir.MemHost):
            try:
                ptr_type = type_of_expr(ctx, lv.host.addr)
                pointee = getattr(ptr_type, "pointee", None)
                if isinstance(pointee, StructType):
                    return pointee.name
            except TypeError_:
                pass
        raise CRuntimeError(f"cannot resolve struct for {lv}")

    def _is_array_lvalue(self, lv: ir.Lvalue, func: ir.Function) -> bool:
        from repro.cil.typesof import TypeError_, TypingContext, type_of_lvalue

        ctx = TypingContext.for_function(self.program, func)
        try:
            return isinstance(type_of_lvalue(ctx, lv), ArrayType)
        except TypeError_:
            return False

    def _var_type(self, name: str, func: ir.Function) -> Optional[CType]:
        for n, t in func.formals + func.locals:
            if n == name:
                return t
        for g in self.program.globals:
            if g.name == name:
                return g.ctype
        return None

    def _truthy(self, value) -> bool:
        return bool(value)

    def _eval(self, expr: ir.Expr, func: ir.Function):
        self._tick()
        if isinstance(expr, ir.IntConst):
            return expr.value
        if isinstance(expr, ir.NullConst):
            return 0
        if isinstance(expr, ir.StrConst):
            return self._intern_string(expr.value)
        if isinstance(expr, ir.Lval):
            addr = self._lvalue_address(expr.lvalue, func)
            if addr == 0:
                raise NullDereference(str(expr))
            if self._is_array_lvalue(expr.lvalue, func):
                return addr  # array-to-pointer decay
            return self.memory.get(addr, 0)
        if isinstance(expr, ir.AddrOf):
            return self._lvalue_address(expr.lvalue, func)
        if isinstance(expr, ir.UnOp):
            operand = self._eval(expr.operand, func)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return 0 if operand else 1
            if expr.op == "~":
                return ~operand
            raise CRuntimeError(f"unknown unary op {expr.op}")
        if isinstance(expr, ir.BinOp):
            return self._eval_binop(expr, func)
        if isinstance(expr, ir.CastE):
            return self._apply_cast(expr.to_type, self._eval(expr.operand, func))
        if isinstance(expr, ir.CondE):
            if self._truthy(self._eval(expr.cond, func)):
                return self._eval(expr.then, func)
            return self._eval(expr.otherwise, func)
        if isinstance(expr, ir.SizeOfE):
            return self._sizeof(expr.of_type)
        raise CRuntimeError(f"cannot evaluate {expr!r}")

    def _eval_binop(self, expr: ir.BinOp, func: ir.Function):
        op = expr.op
        if op == "&&":
            left = self._eval(expr.left, func)
            if not self._truthy(left):
                return 0
            return 1 if self._truthy(self._eval(expr.right, func)) else 0
        if op == "||":
            left = self._eval(expr.left, func)
            if self._truthy(left):
                return 1
            return 1 if self._truthy(self._eval(expr.right, func)) else 0
        left = self._eval(expr.left, func)
        right = self._eval(expr.right, func)
        if op in ("+", "ptradd"):
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise CRuntimeError("division by zero")
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if op == "%":
            if right == 0:
                raise CRuntimeError("modulo by zero")
            return left - right * (
                abs(left) // abs(right) * (1 if (left >= 0) == (right >= 0) else -1)
            )
        comparisons = {
            "==": left == right,
            "!=": left != right,
            "<": left < right,
            ">": left > right,
            "<=": left <= right,
            ">=": left >= right,
        }
        if op in comparisons:
            return 1 if comparisons[op] else 0
        bitwise = {"&": left & right, "|": left | right, "^": left ^ right,
                   "<<": left << right, ">>": left >> right}
        if op in bitwise:
            return bitwise[op]
        raise CRuntimeError(f"unknown binary op {op}")

    # ------------------------------------------------------ runtime checks

    def _apply_cast(self, to_type: CType, value):
        if self.quals is None or not self.native_checks:
            return value
        for qname in sorted(to_type.quals):
            qdef = self.quals.get(qname)
            if qdef is None or not qdef.is_value or qdef.invariant is None:
                continue  # ref-qualifier casts are unchecked (2.2.3)
            if not self._invariant_holds(qdef.invariant, value):
                raise QualifierViolation(qname, value)
        return value

    def _invariant_holds(self, inv: Q.IFormula, value) -> bool:
        def term(t: Q.ITerm):
            if isinstance(t, Q.IValue):
                return value
            if isinstance(t, Q.INum):
                return t.value
            if isinstance(t, Q.INull):
                return 0
            if isinstance(t, Q.IDeref):
                return self.memory.get(term(t.operand), 0)
            if isinstance(t, Q.IBin):
                return _c_arith(t.op, term(t.left), term(t.right))
            raise CRuntimeError(
                f"invariant term {t} not checkable at run time"
            )

        def formula(g: Q.IFormula) -> bool:
            if isinstance(g, Q.ICmp):
                left, right = term(g.left), term(g.right)
                return {
                    "==": left == right,
                    "!=": left != right,
                    "<": left < right,
                    ">": left > right,
                    "<=": left <= right,
                    ">=": left >= right,
                }[g.op]
            if isinstance(g, Q.IIsHeapLoc):
                return isinstance(term(g.operand), int) and self.is_heap_address(
                    term(g.operand)
                )
            if isinstance(g, Q.IAnd):
                return formula(g.left) and formula(g.right)
            if isinstance(g, Q.IOr):
                return formula(g.left) or formula(g.right)
            if isinstance(g, Q.INot):
                return not formula(g.operand)
            if isinstance(g, Q.IImplies):
                return (not formula(g.left)) or formula(g.right)
            raise CRuntimeError(f"invariant {g} not checkable at run time")

        return formula(inv)

    # --------------------------------------------------------- built-ins

    def _eval_call(self, instr: ir.Call, func: ir.Function):
        args = [self._eval(a, func) for a in instr.args]
        name = instr.func
        if name in ir.ALLOCATORS:
            if name in ("calloc", "xcalloc") and len(args) >= 2:
                return self._alloc_heap(args[0] * args[1])
            return self._alloc_heap(args[0] if args else 1)
        if name == "free":
            return 0
        if name.startswith("__check_"):
            qual = name[len("__check_"):]
            qdef = self.quals.get(qual) if self.quals else None
            if qdef is not None and qdef.invariant is not None:
                if not self._invariant_holds(qdef.invariant, args[0]):
                    raise QualifierViolation(qual, args[0])
            return 0
        if name in ("printf", "fprintf", "sprintf", "snprintf", "syslog"):
            return self._builtin_printf(name, instr, args)
        if name == "strlen":
            return len(self.read_c_string(args[0]))
        if name == "strcpy":
            text = self.read_c_string(args[1])
            for i, ch in enumerate(text):
                self.memory[args[0] + i] = ord(ch)
            self.memory[args[0] + len(text)] = 0
            return args[0]
        if name == "exit":
            raise _ReturnSignal(args[0] if args else 0)
        try:
            target = self.program.function(name)
        except KeyError:
            return 0  # unknown external: harmless stub
        return self._call_function(target, args)

    def _builtin_printf(self, name: str, instr: ir.Call, args: List[object]):
        # fprintf(stream, fmt, ...) / sprintf(buf, fmt, ...) skip arg 0.
        skip = 1 if name in ("fprintf", "sprintf") else 0
        if name == "snprintf":
            skip = 2
        fmt_addr = args[skip]
        varargs = list(args[skip + 1 :])
        if not varargs and self.frames and self.frames[-1].varargs:
            varargs = list(self.frames[-1].varargs)  # va_list forwarding
        fmt = self.read_c_string(fmt_addr)
        rendered = self._render_format(fmt, varargs)
        if name == "sprintf" or name == "snprintf":
            for i, ch in enumerate(rendered):
                self.memory[args[0] + i] = ord(ch)
            self.memory[args[0] + len(rendered)] = 0
        else:
            self.output.append(rendered)
        return len(rendered)

    def _render_format(self, fmt: str, varargs: List[object]) -> str:
        """Render a printf format; a conversion with no argument models
        the stack over-read of a format-string attack."""
        out = []
        i = 0
        arg_index = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch != "%":
                out.append(ch)
                i += 1
                continue
            if i + 1 < len(fmt) and fmt[i + 1] == "%":
                out.append("%")
                i += 2
                continue
            # Scan the conversion specifier.
            j = i + 1
            while j < len(fmt) and fmt[j] in "0123456789.-+# lh":
                j += 1
            conv = fmt[j] if j < len(fmt) else ""
            if arg_index >= len(varargs):
                raise FormatStringError(
                    f"format directive %{conv} reads a nonexistent argument "
                    f"(format string: {fmt!r})"
                )
            value = varargs[arg_index]
            arg_index += 1
            if conv == "s":
                out.append(self.read_c_string(value))
            elif conv in ("d", "i", "u", "x", "c", "p", "ld", "lu"):
                out.append(str(value))
            else:
                out.append(str(value))
            i = j + 1
        return "".join(out)


def _c_arith(op: str, left: int, right: int) -> int:
    """C semantics: division truncates toward zero."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if right == 0:
        raise CRuntimeError(f"{op} by zero in invariant evaluation")
    quotient = abs(left) // abs(right)
    if (left >= 0) != (right >= 0):
        quotient = -quotient
    if op == "/":
        return quotient
    if op == "%":
        return left - right * quotient
    raise CRuntimeError(f"unknown invariant operator {op}")


def run_program(
    program: ir.Program,
    quals: Optional[QualifierSet] = None,
    entry: str = "main",
    args: List[int] = (),
    native_checks: bool = True,
) -> Tuple[object, List[str]]:
    """Run ``program`` and return (exit value, captured printf output)."""
    interp = CInterpreter(program, quals=quals, native_checks=native_checks)
    result = interp.run(entry, list(args))
    return result, interp.output
