"""The paper's formalization (section 5): a simply-typed lambda
calculus with ML-style references and user-defined value qualifiers.

Syntax (figure 8, plus integer operators so the paper's example
qualifier rules — constants, products, negation — are exercisable, and
application, which figure 8 elides):

    Stmts  s ::= e | s1; s2 | let x = s1 in s2 | ref s | s1 := s2 | s1 s2
    Exprs  e ::= c | () | x | λx:τ. s | !e | -e | e1 ⊗ e2

The typechecker implements the standard rules plus:

* the subtyping relation of figure 9 (τ q ≤ τ; qualifier order
  irrelevant; no subtyping under ``ref``; contravariant functions);
* the T-QUALCASE rule template of figure 10, instantiated from the
  same qualifier definitions the C checker uses.

The big-step evaluator and the semantic-conformance relation of
figure 11 let property-based tests check Theorem 5.1 (preservation)
empirically: a well-typed program evaluates to a value satisfying its
qualifiers' invariants, provided every rule passed the soundness
checker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.qualifiers import ast as Q
from repro.core.qualifiers.ast import QualifierSet


class LambdaTypeError(Exception):
    pass


class LambdaRuntimeError(Exception):
    pass


# -------------------------------------------------------------------- types


@dataclass(frozen=True)
class LType:
    quals: frozenset = field(default_factory=frozenset)

    def with_quals(self, names) -> "LType":
        return replace(self, quals=self.quals | frozenset(names))

    def strip_quals(self) -> "LType":
        return replace(self, quals=frozenset())


@dataclass(frozen=True)
class TUnit(LType):
    def __str__(self) -> str:
        return _q("unit", self.quals)


@dataclass(frozen=True)
class TIntL(LType):
    def __str__(self) -> str:
        return _q("int", self.quals)


@dataclass(frozen=True)
class TFun(LType):
    param: LType = field(default_factory=TUnit)
    result: LType = field(default_factory=TUnit)

    def __str__(self) -> str:
        return _q(f"({self.param} -> {self.result})", self.quals)


@dataclass(frozen=True)
class TRef(LType):
    inner: LType = field(default_factory=TIntL)

    def __str__(self) -> str:
        return _q(f"ref {self.inner}", self.quals)


def _q(base: str, quals) -> str:
    return base + "".join(f" {q}" for q in sorted(quals))


def subtype(a: LType, b: LType) -> bool:
    """Figure 9: SubValQual, SubQualReorder, SubRefl, SubTrans, SubFun.

    Algorithmically: same structure; the subtype may carry extra
    qualifiers at the top level; ``ref`` types are invariant (no rule
    for subtyping underneath ref)."""
    if isinstance(a, TRef) and isinstance(b, TRef):
        return a.inner == b.inner and a.quals >= b.quals
    if isinstance(a, TFun) and isinstance(b, TFun):
        return (
            subtype(b.param, a.param)
            and subtype(a.result, b.result)
            and a.quals >= b.quals
        )
    if type(a) is type(b):
        return a.quals >= b.quals
    return False


# ------------------------------------------------------------------- syntax


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class EConst(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class EUnit(Expr):
    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class EVar(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ELam(Expr):
    param: str
    param_type: LType
    body: "Stmt"

    def __str__(self) -> str:
        return f"(λ{self.param}:{self.param_type}. {self.body})"


@dataclass(frozen=True)
class EDeref(Expr):
    operand: Expr

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class ENeg(Expr):
    operand: Expr

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class EBin(Expr):
    op: str  # '+', '-', '*'
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class SExpr(Stmt):
    expr: Expr

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class SSeq(Stmt):
    first: Stmt
    second: Stmt

    def __str__(self) -> str:
        return f"({self.first}; {self.second})"


@dataclass(frozen=True)
class SLet(Stmt):
    name: str
    bound: Stmt
    body: Stmt
    # Optional ascription: the declared (possibly qualified) type of the
    # binding — this is where user qualifiers enter programs.
    ascription: Optional[LType] = None

    def __str__(self) -> str:
        ann = f" : {self.ascription}" if self.ascription else ""
        return f"(let {self.name}{ann} = {self.bound} in {self.body})"


@dataclass(frozen=True)
class SRef(Stmt):
    operand: Stmt

    def __str__(self) -> str:
        return f"(ref {self.operand})"


@dataclass(frozen=True)
class SAssign(Stmt):
    target: Stmt
    value: Stmt

    def __str__(self) -> str:
        return f"({self.target} := {self.value})"


@dataclass(frozen=True)
class SApp(Stmt):
    func: Stmt
    arg: Stmt

    def __str__(self) -> str:
        return f"({self.func} {self.arg})"


# ------------------------------------------------------------- typechecking


class LambdaChecker:
    """Γ ⊢ s : τ with the T-QUALCASE template (figure 10)."""

    def __init__(self, quals: QualifierSet):
        self.quals = quals

    def type_stmt(self, stmt: Stmt, env: Dict[str, LType]) -> LType:
        if isinstance(stmt, SExpr):
            return self.type_expr(stmt.expr, env)
        if isinstance(stmt, SSeq):
            self.type_stmt(stmt.first, env)
            return self.type_stmt(stmt.second, env)
        if isinstance(stmt, SLet):
            bound = self.type_stmt(stmt.bound, env)
            if stmt.ascription is not None:
                if not subtype(bound, stmt.ascription):
                    raise LambdaTypeError(
                        f"let {stmt.name}: {bound} is not a subtype of "
                        f"declared {stmt.ascription}"
                    )
                bound = stmt.ascription
            inner = dict(env)
            inner[stmt.name] = bound
            return self.type_stmt(stmt.body, inner)
        if isinstance(stmt, SRef):
            inner = self.type_stmt(stmt.operand, env)
            return TRef(inner=inner)
        if isinstance(stmt, SAssign):
            target = self.type_stmt(stmt.target, env)
            if not isinstance(target, TRef):
                raise LambdaTypeError(f"assignment to non-ref type {target}")
            value = self.type_stmt(stmt.value, env)
            if not subtype(value, target.inner):
                raise LambdaTypeError(
                    f"cannot store {value} into ref {target.inner}"
                )
            return TUnit()
        if isinstance(stmt, SApp):
            fun = self.type_stmt(stmt.func, env)
            if not isinstance(fun, TFun):
                raise LambdaTypeError(f"application of non-function {fun}")
            arg = self.type_stmt(stmt.arg, env)
            if not subtype(arg, fun.param):
                raise LambdaTypeError(
                    f"argument {arg} is not a subtype of {fun.param}"
                )
            return fun.result
        raise LambdaTypeError(f"unknown statement {stmt!r}")

    def type_expr(self, expr: Expr, env: Dict[str, LType]) -> LType:
        base = self._base_type(expr, env)
        # T-QUALCASE: add every user-defined qualifier derivable for
        # this expression (iterate to a fixpoint for mutual recursion).
        derived = set(base.quals)
        changed = True
        while changed:
            changed = False
            for qdef in self.quals.value_qualifiers():
                if qdef.name in derived:
                    continue
                if self._qual_applies(qdef, expr, env, derived):
                    derived.add(qdef.name)
                    changed = True
        return base.with_quals(derived)

    def _base_type(self, expr: Expr, env: Dict[str, LType]) -> LType:
        if isinstance(expr, EConst):
            return TIntL()
        if isinstance(expr, EUnit):
            return TUnit()
        if isinstance(expr, EVar):
            if expr.name not in env:
                raise LambdaTypeError(f"unbound variable {expr.name}")
            return env[expr.name]
        if isinstance(expr, ELam):
            inner = dict(env)
            inner[expr.param] = expr.param_type
            result = self.type_stmt(expr.body, inner)
            return TFun(param=expr.param_type, result=result)
        if isinstance(expr, EDeref):
            operand = self.type_expr(expr.operand, env)
            if not isinstance(operand, TRef):
                raise LambdaTypeError(f"dereference of non-ref {operand}")
            return operand.inner
        if isinstance(expr, ENeg):
            operand = self.type_expr(expr.operand, env)
            if not isinstance(operand, TIntL):
                raise LambdaTypeError(f"negation of non-int {operand}")
            return TIntL()
        if isinstance(expr, EBin):
            left = self.type_expr(expr.left, env)
            right = self.type_expr(expr.right, env)
            if not isinstance(left, TIntL) or not isinstance(right, TIntL):
                raise LambdaTypeError(f"arithmetic on non-ints {left}, {right}")
            return TIntL()
        raise LambdaTypeError(f"unknown expression {expr!r}")

    def has_qual(self, expr: Expr, qual: str, env: Dict[str, LType]) -> bool:
        return qual in self.type_expr(expr, env).quals

    # -- the T-QUALCASE template --------------------------------------

    def _qual_applies(
        self, qdef: Q.QualifierDef, expr: Expr, env: Dict[str, LType], assumed: set
    ) -> bool:
        for clause in qdef.cases:
            bindings = self._match(qdef, clause, expr)
            if bindings is None:
                continue
            if self._pred_holds(clause.predicate, bindings, env, expr, assumed):
                return True
        return False

    def _match(self, qdef, clause, expr: Expr) -> Optional[Dict[str, Expr]]:
        pattern = clause.pattern
        decls = {d.name: d for d in clause.decls}
        decls.setdefault(qdef.var, Q.VarDecl(qdef.var, qdef.dtype, qdef.classifier))

        def classify_ok(name: str, fragment: Expr) -> bool:
            decl = decls.get(name)
            if decl is None:
                return False
            if decl.classifier is Q.Classifier.CONST:
                return isinstance(fragment, EConst)
            return True  # Expr: any expression (the calculus is pure)

        if isinstance(pattern, Q.PVar):
            if classify_ok(pattern.name, expr):
                return {pattern.name: expr}
            return None
        if isinstance(pattern, Q.PUnop) and pattern.op == "-":
            if isinstance(expr, ENeg) and classify_ok(pattern.name, expr.operand):
                return {pattern.name: expr.operand}
            return None
        if isinstance(pattern, Q.PBinop):
            if (
                isinstance(expr, EBin)
                and expr.op == pattern.op
                and classify_ok(pattern.left, expr.left)
                and classify_ok(pattern.right, expr.right)
            ):
                return {pattern.left: expr.left, pattern.right: expr.right}
            return None
        # Deref/addr/new patterns have no analogue for pure calculus
        # expressions.
        return None

    def _pred_holds(
        self,
        pred: Q.Pred,
        bindings: Dict[str, Expr],
        env: Dict[str, LType],
        subject: Expr,
        assumed: set,
    ) -> bool:
        if isinstance(pred, Q.PredTrue):
            return True
        if isinstance(pred, Q.PredAnd):
            return self._pred_holds(pred.left, bindings, env, subject, assumed) and (
                self._pred_holds(pred.right, bindings, env, subject, assumed)
            )
        if isinstance(pred, Q.PredOr):
            return self._pred_holds(pred.left, bindings, env, subject, assumed) or (
                self._pred_holds(pred.right, bindings, env, subject, assumed)
            )
        if isinstance(pred, Q.PredNot):
            return not self._pred_holds(pred.operand, bindings, env, subject, assumed)
        if isinstance(pred, Q.PredQual):
            fragment = bindings.get(pred.var)
            if fragment is None:
                return False
            if fragment == subject:
                # A clause like `E1, where pos(E1)` tests a qualifier of
                # the subject itself; consult the monotone fixpoint set
                # rather than recursing into the same judgment.
                return pred.qualifier in assumed
            return self.has_qual(fragment, pred.qualifier, env)
        if isinstance(pred, Q.PredCmp):
            left = self._aexpr(pred.left, bindings)
            right = self._aexpr(pred.right, bindings)
            if left is None or right is None:
                return False
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                ">": left > right,
                "<=": left <= right,
                ">=": left >= right,
            }[pred.op]
        raise LambdaTypeError(f"unknown predicate {pred!r}")

    def _aexpr(self, aexpr: Q.AExpr, bindings) -> Optional[int]:
        if isinstance(aexpr, Q.ANum):
            return aexpr.value
        if isinstance(aexpr, Q.ANull):
            return 0
        if isinstance(aexpr, Q.AVar):
            fragment = bindings.get(aexpr.name)
            return fragment.value if isinstance(fragment, EConst) else None
        if isinstance(aexpr, Q.ABin):
            left = self._aexpr(aexpr.left, bindings)
            right = self._aexpr(aexpr.right, bindings)
            if left is None or right is None:
                return None
            if aexpr.op == "/" and right == 0:
                return None
            ops = {
                "+": left + right if right is not None else None,
                "-": left - right,
                "*": left * right,
                "/": left // right if right else None,
                "%": left % right if right else None,
            }
            return ops[aexpr.op]
        return None


def typecheck(
    stmt: Stmt, quals: QualifierSet, env: Optional[Dict[str, LType]] = None
) -> LType:
    return LambdaChecker(quals).type_stmt(stmt, env or {})


# --------------------------------------------------------------- evaluation


@dataclass
class VClos:
    param: str
    body: Stmt
    env: Dict[str, object]


@dataclass(frozen=True)
class VLoc:
    addr: int


VUNIT = ("unit",)


def evaluate(
    stmt: Stmt,
    env: Optional[Dict[str, object]] = None,
    store: Optional[Dict[int, object]] = None,
    fuel: int = 100_000,
) -> Tuple[object, Dict[int, object]]:
    """Big-step evaluation: <σ, s> → <σ', v>."""
    store = {} if store is None else store
    counter = itertools.count(len(store) + 1)
    budget = [fuel]

    def step_stmt(s: Stmt, e: Dict[str, object]) -> object:
        budget[0] -= 1
        if budget[0] < 0:
            raise LambdaRuntimeError("evaluation fuel exhausted")
        if isinstance(s, SExpr):
            return step_expr(s.expr, e)
        if isinstance(s, SSeq):
            step_stmt(s.first, e)
            return step_stmt(s.second, e)
        if isinstance(s, SLet):
            bound = step_stmt(s.bound, e)
            inner = dict(e)
            inner[s.name] = bound
            return step_stmt(s.body, inner)
        if isinstance(s, SRef):
            value = step_stmt(s.operand, e)
            addr = next(counter)
            store[addr] = value
            return VLoc(addr)
        if isinstance(s, SAssign):
            target = step_stmt(s.target, e)
            value = step_stmt(s.value, e)
            if not isinstance(target, VLoc):
                raise LambdaRuntimeError(f"assignment to non-location {target}")
            store[target.addr] = value
            return VUNIT
        if isinstance(s, SApp):
            fun = step_stmt(s.func, e)
            arg = step_stmt(s.arg, e)
            if not isinstance(fun, VClos):
                raise LambdaRuntimeError(f"application of non-closure {fun}")
            inner = dict(fun.env)
            inner[fun.param] = arg
            return step_stmt(fun.body, inner)
        raise LambdaRuntimeError(f"unknown statement {s!r}")

    def step_expr(x: Expr, e: Dict[str, object]) -> object:
        budget[0] -= 1
        if budget[0] < 0:
            raise LambdaRuntimeError("evaluation fuel exhausted")
        if isinstance(x, EConst):
            return x.value
        if isinstance(x, EUnit):
            return VUNIT
        if isinstance(x, EVar):
            if x.name not in e:
                raise LambdaRuntimeError(f"unbound variable {x.name}")
            return e[x.name]
        if isinstance(x, ELam):
            return VClos(x.param, x.body, dict(e))
        if isinstance(x, EDeref):
            loc = step_expr(x.operand, e)
            if not isinstance(loc, VLoc):
                raise LambdaRuntimeError(f"dereference of non-location {loc}")
            return store[loc.addr]
        if isinstance(x, ENeg):
            return -step_expr(x.operand, e)
        if isinstance(x, EBin):
            left = step_expr(x.left, e)
            right = step_expr(x.right, e)
            return {"+": left + right, "-": left - right, "*": left * right}[x.op]
        raise LambdaRuntimeError(f"unknown expression {x!r}")

    value = step_stmt(stmt, env or {})
    return value, store


# -------------------------------------------------------------- conformance


def qualifier_invariant_holds(qdef: Q.QualifierDef, value: object) -> bool:
    """[[q]](v): evaluate a value qualifier's invariant on a value."""
    if qdef.invariant is None:
        return True

    def term(t: Q.ITerm):
        if isinstance(t, Q.IValue):
            return value
        if isinstance(t, Q.INum):
            return t.value
        if isinstance(t, Q.INull):
            return 0
        if isinstance(t, Q.IBin):
            from repro.semantics.csem import _c_arith

            return _c_arith(t.op, term(t.left), term(t.right))
        raise LambdaRuntimeError(f"invariant term {t} not evaluable")

    def formula(g: Q.IFormula) -> bool:
        if isinstance(g, Q.ICmp):
            left, right = term(g.left), term(g.right)
            if not isinstance(left, int) or not isinstance(right, int):
                return False
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                ">": left > right,
                "<=": left <= right,
                ">=": left >= right,
            }[g.op]
        if isinstance(g, Q.IAnd):
            return formula(g.left) and formula(g.right)
        if isinstance(g, Q.IOr):
            return formula(g.left) or formula(g.right)
        if isinstance(g, Q.INot):
            return not formula(g.operand)
        if isinstance(g, Q.IImplies):
            return (not formula(g.left)) or formula(g.right)
        raise LambdaRuntimeError(f"invariant {g} not evaluable")

    return formula(qdef.invariant)


def check_conformance(
    value: object,
    ltype: LType,
    store: Dict[int, object],
    quals: QualifierSet,
    store_types: Optional[Dict[int, LType]] = None,
) -> List[str]:
    """Figure 11: semantic conformance Γ;τ ⊢ <σ, v>.

    Returns a list of violations (empty = conforms).  Q-QUAL checks
    every qualifier's invariant; Q-REF follows the store."""
    problems: List[str] = []

    def go(v: object, t: LType, seen: frozenset) -> None:
        for qname in t.quals:
            qdef = quals.get(qname)
            if qdef is not None and qdef.is_value:
                if not qualifier_invariant_holds(qdef, v):
                    problems.append(
                        f"value {v!r} violates invariant of {qname} (type {t})"
                    )
        base = t.strip_quals()
        if isinstance(base, TIntL):
            if not isinstance(v, int):
                problems.append(f"expected int, got {v!r}")
        elif isinstance(base, TUnit):
            if v != VUNIT:
                problems.append(f"expected unit, got {v!r}")
        elif isinstance(base, TFun):
            if not isinstance(v, VClos):
                problems.append(f"expected closure, got {v!r}")
        elif isinstance(base, TRef):
            if not isinstance(v, VLoc):
                problems.append(f"expected location, got {v!r}")
            elif v.addr in seen:
                return  # cyclic store: already being checked
            elif v.addr not in store:
                problems.append(f"dangling location {v.addr}")
            else:
                go(store[v.addr], base.inner, seen | {v.addr})

    go(value, ltype, frozenset())
    if store_types:
        for addr, cell_type in store_types.items():
            if addr in store:
                go(store[addr], cell_type, frozenset({addr}))
    return problems
