"""Batch engine: many units of work, isolated, streamed, never a lost run.

A *unit* is one translation unit (``check``/``infer``) or one
qualifier-definition file (``prove``).  Each unit runs inside its own
fault boundary — try/except, recursion-limit guard, wall-clock
deadline — so a failure downgrades to a structured verdict instead of
aborting the invocation:

===========  =====================================================
``OK``       unit completed, nothing found
``WARNINGS`` unit completed, qualifier warnings / unsound rules
``ERROR``    bad input (syntax error, malformed .qual, unreadable)
``TIMEOUT``  the unit's wall-clock deadline fired
``UNKNOWN``  a prover gave up within budget (neither proof nor
             countermodel) — the industrial checker's "don't know"
``GAVE_UP``  the supervisor quarantined the unit after it killed
             repeated workers (a *poison* unit; see supervisor.py)
``CRASH``    an internal failure was survived (bug in *us*, not in
             the input); the run continues, exit code says 3
``SKIPPED``  a preceding unit failed and ``--keep-going`` was off,
             or the run was interrupted before the unit started
===========  =====================================================

With ``jobs > 1``, units fan out under :class:`repro.harness.supervisor.
Supervisor`: each child gets its own interpreter and streams messages
back over its result pipe — periodic heartbeats, per-obligation
progress events (:func:`emit_progress`), and finally the picklable
:class:`UnitResult`.  The supervisor detects crashes (sentinel without
a result), hangs (heartbeats stop), and OOM kills; re-queues the unit
with exponential backoff; and quarantines units that keep killing
workers.  Every child is reaped on the way out — including when the
parent is interrupted — so no orphans linger.

Results *stream*: pass ``on_result`` to :func:`run_units` and it is
called once per unit as that unit settles (completion order, not input
order) — the engine behind ``--format jsonl``.  SIGINT/SIGTERM during
a run stop dispatch, cancel in-flight work, and return the partial
report (remaining units ``SKIPPED``, ``meta["interrupted"]`` set) so
the caller can still flush a valid report under the documented
exit-code contract.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import faults as _faults
from repro import obs as _obs
from repro.harness.watchdog import Deadline, DeadlineExceeded, recursion_guard

OK = "OK"
WARNINGS = "WARNINGS"
ERROR = "ERROR"
TIMEOUT = "TIMEOUT"
UNKNOWN = "UNKNOWN"
GAVE_UP = "GAVE_UP"
CRASH = "CRASH"
SKIPPED = "SKIPPED"

#: Verdict -> process exit code contribution.  The run's exit code is
#: the max over units: 0 clean, 1 warnings found, 2 input error (or
#: timeout/unknown/gave-up — the input could not be fully judged),
#: 3 internal crash survived.
_SEVERITY: Dict[str, int] = {
    OK: 0,
    SKIPPED: 0,
    WARNINGS: 1,
    ERROR: 2,
    TIMEOUT: 2,
    UNKNOWN: 2,
    GAVE_UP: 2,
    CRASH: 3,
}

#: Exceptions that mean "the input is bad", not "we are buggy".
_INPUT_ERRORS: tuple = ()


def _input_error_types() -> tuple:
    # Deferred import: cfront/core import the harness's sibling module
    # (watchdog) and the CLI imports us, so resolve lazily once.
    global _INPUT_ERRORS
    if not _INPUT_ERRORS:
        from repro.cfront.lexer import LexError  # type: ignore
        from repro.cfront.parser import ParseError
        from repro.cil.lower import LowerError
        from repro.core.qualifiers.parser import QualParseError

        _INPUT_ERRORS = (
            ParseError,
            LexError,
            LowerError,
            QualParseError,
            OSError,
            UnicodeDecodeError,
            ValueError,
        )
    return _INPUT_ERRORS


@dataclass
class UnitResult:
    """Outcome of one isolated unit of work (picklable: crosses the
    process-pool boundary)."""

    unit: str
    verdict: str
    elapsed: float = 0.0
    # Diagnostic dicts (see Diagnostic.to_dict) — warnings, recovered
    # parse errors, etc.
    diagnostics: List[dict] = field(default_factory=list)
    error: str = ""  # exception text for ERROR/CRASH/TIMEOUT verdicts
    detail: dict = field(default_factory=dict)  # command-specific extras
    # How many worker attempts this unit consumed (supervised runs may
    # retry after a worker death; 1 everywhere else).
    attempts: int = 1
    # Observability snapshot from the (child) collector — merged into
    # the parent collector by the pool, then cleared; never serialized.
    obs: Optional[dict] = None

    @property
    def severity(self) -> int:
        return _SEVERITY.get(self.verdict, 3)

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "verdict": self.verdict,
            "elapsed": round(self.elapsed, 6),
            "diagnostics": self.diagnostics,
            "error": self.error,
            **({"detail": self.detail} if self.detail else {}),
            # Additive: only present when a supervisor retried the unit,
            # so unsupervised payloads (and their goldens) are unchanged.
            **({"attempts": self.attempts} if self.attempts > 1 else {}),
        }


@dataclass
class BatchReport:
    results: List[UnitResult] = field(default_factory=list)
    elapsed: float = 0.0
    # Run-level facts that are not per-unit — e.g. proof-cache counters
    # aggregated over every unit.  Keys land at the top level of the
    # JSON report, next to "units"/"counts".
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        return max((r.severity for r in self.results), default=0)

    @property
    def interrupted(self) -> bool:
        return bool(self.meta.get("interrupted"))

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.results:
            out[r.verdict] = out.get(r.verdict, 0) + 1
        return out

    def sum_detail_counters(self, key: str) -> Dict[str, int]:
        """Aggregate a per-unit ``detail[key]`` counter dict over all
        units (units without it contribute nothing).  Works in pool
        mode too: each child ships its counters home inside the
        picklable :class:`UnitResult`."""
        totals: Dict[str, int] = {}
        for r in self.results:
            counters = r.detail.get(key)
            if not isinstance(counters, dict):
                continue
            for name, value in counters.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    totals[name] = totals.get(name, 0) + int(value)
        return totals

    def to_dict(self) -> dict:
        return {
            "units": [r.to_dict() for r in self.results],
            "counts": self.counts(),
            "elapsed": round(self.elapsed, 6),
            "exit_code": self.exit_code,
            **self.meta,
        }

    def summary(self) -> str:
        parts = [f"{v} {k}" for k, v in sorted(self.counts().items())]
        return (
            f"{len(self.results)} unit(s): "
            + (", ".join(parts) if parts else "nothing to do")
            + f" ({self.elapsed:.2f} s)"
        )


#: A worker maps (unit, deadline) to a UnitResult.  Workers may ignore
#: the deadline; honoring it (as the prover does) turns a preemptive
#: kill into a clean in-process TIMEOUT verdict.
Worker = Callable[[str, Deadline], UnitResult]

#: Callbacks: on_result(UnitResult) fires as each unit settles (stream
#: order); on_event(dict) receives per-obligation progress events.
ResultCallback = Callable[[UnitResult], None]
EventCallback = Callable[[dict], None]


# ------------------------------------------------------- progress stream

#: The thread-local progress emitter.  In a pool worker it forwards
#: events over the result pipe; in a sequential run it forwards to the
#: caller's ``on_event``; when unset, emitting is free and dropped.
#: Thread-local (not process-global) so a serve daemon running several
#: sequential batches on executor threads streams each request's events
#: to its own client instead of whichever installed an emitter last.
_EMITTER_STATE = threading.local()


def set_emitter(emitter: Optional[EventCallback]) -> None:
    """Install (or clear) the calling thread's progress emitter."""
    _EMITTER_STATE.emitter = emitter


def emit_progress(event: dict) -> None:
    """Ship one progress event (e.g. a settled proof obligation) to the
    supervising parent / streaming consumer.  Never raises: a dead pipe
    must not take the unit's real result down with it."""
    emitter = getattr(_EMITTER_STATE, "emitter", None)
    if emitter is None:
        return
    try:
        emitter(event)
    except Exception:
        pass


# --------------------------------------------------------- signal guard


class InterruptFlag:
    """Set by the SIGINT/SIGTERM handler; polled by the run loops."""

    def __init__(self) -> None:
        self.signum: Optional[int] = None

    @property
    def set(self) -> bool:
        return self.signum is not None


@contextmanager
def interrupt_guard():
    """Install SIGINT/SIGTERM handlers that *flag* instead of raise, so
    an interrupted batch flushes a valid partial report rather than
    dying with half a JSON document on stdout.  Restores the previous
    handlers on exit; a no-op off the main thread (where signals cannot
    be installed) and under handlers we cannot replace."""
    flag = InterruptFlag()
    previous = {}

    def handler(signum, frame):
        flag.signum = signum

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # not the main thread
            pass
    try:
        yield flag
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):
                pass


def run_one(
    unit: str,
    worker: Worker,
    unit_timeout: Optional[float] = None,
    recursion_limit: int = 20000,
) -> UnitResult:
    """Run one unit inside the full fault boundary."""
    start = time.perf_counter()
    deadline = Deadline.after(unit_timeout)
    try:
        with recursion_guard(recursion_limit):
            with _obs.span("unit", unit=unit):
                result = worker(unit, deadline)
        result.elapsed = time.perf_counter() - start
        return result
    except DeadlineExceeded as exc:
        return UnitResult(
            unit=unit,
            verdict=TIMEOUT,
            elapsed=time.perf_counter() - start,
            error=str(exc) or "deadline exceeded",
        )
    except _input_error_types() as exc:
        return UnitResult(
            unit=unit,
            verdict=ERROR,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    except RecursionError:
        # The guard already granted generous headroom, so blowing it
        # means the *input* is pathologically nested — an input error
        # (exit 2), not an internal crash.
        return UnitResult(
            unit=unit,
            verdict=ERROR,
            elapsed=time.perf_counter() - start,
            error="input too deeply nested (recursion limit exceeded)",
        )
    except MemoryError:
        return UnitResult(
            unit=unit,
            verdict=CRASH,
            elapsed=time.perf_counter() - start,
            error="MemoryError",
        )
    except Exception as exc:  # internal bug: survive and report
        return UnitResult(
            unit=unit,
            verdict=CRASH,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )


def run_units(
    units: Sequence[str],
    worker: Worker,
    keep_going: bool = True,
    jobs: int = 1,
    unit_timeout: Optional[float] = None,
    recursion_limit: int = 20000,
    on_result: Optional[ResultCallback] = None,
    on_event: Optional[EventCallback] = None,
    supervisor_config=None,
) -> BatchReport:
    """Run every unit through ``worker`` with per-unit isolation.

    ``keep_going=False`` stops dispatching after the first unit whose
    verdict is ERROR or worse; the remaining units are reported as
    ``SKIPPED`` so the report still covers the whole batch.  With
    ``jobs > 1`` units run under the supervised streaming pool (see
    :mod:`repro.harness.supervisor`): preemptive per-child deadlines,
    heartbeat hang detection, crash retry with backoff, poison-unit
    quarantine, and guaranteed reaping.

    ``on_result`` streams each settled :class:`UnitResult` in
    completion order; ``on_event`` receives per-obligation progress
    events from :func:`emit_progress`.  SIGINT/SIGTERM mid-run yields a
    partial report (``meta["interrupted"]``) instead of an exception.
    """
    start = time.perf_counter()
    if jobs > 1 and len(units) > 1:
        from repro.harness.supervisor import Supervisor, SupervisorConfig

        config = supervisor_config or SupervisorConfig.from_env(
            jobs=jobs,
            unit_timeout=unit_timeout,
            recursion_limit=recursion_limit,
            keep_going=keep_going,
        )
        report = Supervisor(config).run(
            list(units), worker, on_result=on_result, on_event=on_event
        )
    else:
        report = _run_sequential(
            units,
            worker,
            keep_going,
            unit_timeout,
            recursion_limit,
            on_result,
            on_event,
        )
    report.elapsed = time.perf_counter() - start
    return report


def _run_sequential(
    units: Sequence[str],
    worker: Worker,
    keep_going: bool,
    unit_timeout: Optional[float],
    recursion_limit: int,
    on_result: Optional[ResultCallback],
    on_event: Optional[EventCallback],
) -> BatchReport:
    report = BatchReport()
    stop = False
    set_emitter(on_event)
    try:
        with interrupt_guard() as interrupt:
            for unit in units:
                if stop or interrupt.set:
                    report.results.append(UnitResult(unit=unit, verdict=SKIPPED))
                    continue
                result = run_one(unit, worker, unit_timeout, recursion_limit)
                report.results.append(result)
                if on_result is not None:
                    on_result(result)
                if not keep_going and result.severity >= _SEVERITY[ERROR]:
                    stop = True
            if interrupt.set:
                report.meta["interrupted"] = True
    finally:
        set_emitter(None)
    return report


# ------------------------------------------------------------- process pool


def _heartbeat_loop(conn, lock, stop: threading.Event, interval: float) -> None:
    """Child-side liveness beacon: a ``("hb", seq)`` message every
    ``interval`` seconds until stopped or the pipe dies."""
    seq = 0
    while not stop.wait(interval):
        seq += 1
        try:
            with lock:
                conn.send(("hb", seq))
        except Exception:
            return


def _child_entry(
    worker,
    unit,
    conn,
    unit_timeout,
    recursion_limit,
    attempt: int = 1,
    heartbeat_interval: float = 0.0,
):
    """Child process body: run the unit, streaming heartbeats and
    progress events, then ship the result and exit.

    Messages on the pipe are ``("hb", seq)`` liveness beacons from a
    daemon thread, ``("ev", dict)`` progress events from
    :func:`emit_progress` call sites inside the worker, and finally one
    ``("result", UnitResult)``.  When profiling is on, the child's
    collector snapshot (spans + counters; the fork-inherited parent
    data is discarded by the collector's pid check) rides home inside
    the UnitResult.

    This is also where injected worker faults land (see
    :mod:`repro.faults`): ``kill`` SIGKILLs the process at unit start,
    ``stall`` silences the heartbeat and sleeps (a hard hang),
    ``drop_pipe`` exits without sending the result.
    """
    _faults.enter_worker()
    fault_key = f"{unit}#{attempt}"
    if _faults.fire("kill", fault_key):
        os.kill(os.getpid(), signal.SIGKILL)
    lock = threading.Lock()
    stop_heartbeat = threading.Event()
    if heartbeat_interval > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(conn, lock, stop_heartbeat, heartbeat_interval),
            daemon=True,
        ).start()
    if _faults.fire("stall", fault_key):
        stop_heartbeat.set()  # a *hard* hang: liveness stops too
        plan = _faults.active()
        time.sleep(plan.stall_s if plan is not None else 3600.0)
        os._exit(3)

    def emit(event: dict) -> None:
        with lock:
            conn.send(("ev", event))

    set_emitter(emit)
    try:
        result = run_one(unit, worker, unit_timeout, recursion_limit)
        result.attempts = attempt
        if _obs.enabled():
            result.obs = _obs.snapshot()
        if _faults.fire("drop_pipe", fault_key):
            stop_heartbeat.set()
            conn.close()
            os._exit(0)
        with lock:
            conn.send(("result", result))
    except Exception as exc:  # pragma: no cover - belt and braces
        try:
            with lock:
                conn.send(
                    ("result", UnitResult(unit=unit, verdict=CRASH, error=repr(exc)))
                )
        except Exception:
            pass
    finally:
        set_emitter(None)
        stop_heartbeat.set()
        conn.close()


def _reap(proc) -> None:
    """Terminate, then kill, then join — never leave an orphan.  Also
    joins an already-exited child so its process-table entry (zombie)
    is collected."""
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=1.0)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=1.0)
    if not proc.is_alive():
        proc.join(timeout=1.0)
