"""Batch engine: many units of work, isolated, never a lost run.

A *unit* is one translation unit (``check``/``infer``) or one
qualifier-definition file (``prove``).  Each unit runs inside its own
fault boundary — try/except, recursion-limit guard, wall-clock
deadline — so a failure downgrades to a structured verdict instead of
aborting the invocation:

===========  =====================================================
``OK``       unit completed, nothing found
``WARNINGS`` unit completed, qualifier warnings / unsound rules
``ERROR``    bad input (syntax error, malformed .qual, unreadable)
``TIMEOUT``  the unit's wall-clock deadline fired
``UNKNOWN``  a prover gave up within budget (neither proof nor
             countermodel) — the industrial checker's "don't know"
``CRASH``    an internal failure was survived (bug in *us*, not in
             the input); the run continues, exit code says 3
``SKIPPED``  a preceding unit failed and ``--keep-going`` was off
===========  =====================================================

With ``jobs > 1``, units fan out over a process pool: each child gets
its own interpreter, its deadline is enforced preemptively
(``terminate`` then ``kill``), and every child is reaped on the way
out — including when the parent is interrupted — so no orphans linger.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs as _obs
from repro.harness.watchdog import Deadline, DeadlineExceeded, recursion_guard

OK = "OK"
WARNINGS = "WARNINGS"
ERROR = "ERROR"
TIMEOUT = "TIMEOUT"
UNKNOWN = "UNKNOWN"
CRASH = "CRASH"
SKIPPED = "SKIPPED"

#: Verdict -> process exit code contribution.  The run's exit code is
#: the max over units: 0 clean, 1 warnings found, 2 input error (or
#: timeout/unknown — the input could not be fully judged), 3 internal
#: crash survived.
_SEVERITY: Dict[str, int] = {
    OK: 0,
    SKIPPED: 0,
    WARNINGS: 1,
    ERROR: 2,
    TIMEOUT: 2,
    UNKNOWN: 2,
    CRASH: 3,
}

#: Exceptions that mean "the input is bad", not "we are buggy".
_INPUT_ERRORS: tuple = ()


def _input_error_types() -> tuple:
    # Deferred import: cfront/core import the harness's sibling module
    # (watchdog) and the CLI imports us, so resolve lazily once.
    global _INPUT_ERRORS
    if not _INPUT_ERRORS:
        from repro.cfront.lexer import LexError  # type: ignore
        from repro.cfront.parser import ParseError
        from repro.cil.lower import LowerError
        from repro.core.qualifiers.parser import QualParseError

        _INPUT_ERRORS = (
            ParseError,
            LexError,
            LowerError,
            QualParseError,
            OSError,
            UnicodeDecodeError,
            ValueError,
        )
    return _INPUT_ERRORS


@dataclass
class UnitResult:
    """Outcome of one isolated unit of work (picklable: crosses the
    process-pool boundary)."""

    unit: str
    verdict: str
    elapsed: float = 0.0
    # Diagnostic dicts (see Diagnostic.to_dict) — warnings, recovered
    # parse errors, etc.
    diagnostics: List[dict] = field(default_factory=list)
    error: str = ""  # exception text for ERROR/CRASH/TIMEOUT verdicts
    detail: dict = field(default_factory=dict)  # command-specific extras
    # Observability snapshot from the (child) collector — merged into
    # the parent collector by the pool, then cleared; never serialized.
    obs: Optional[dict] = None

    @property
    def severity(self) -> int:
        return _SEVERITY.get(self.verdict, 3)

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "verdict": self.verdict,
            "elapsed": round(self.elapsed, 6),
            "diagnostics": self.diagnostics,
            "error": self.error,
            **({"detail": self.detail} if self.detail else {}),
        }


@dataclass
class BatchReport:
    results: List[UnitResult] = field(default_factory=list)
    elapsed: float = 0.0
    # Run-level facts that are not per-unit — e.g. proof-cache counters
    # aggregated over every unit.  Keys land at the top level of the
    # JSON report, next to "units"/"counts".
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        return max((r.severity for r in self.results), default=0)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.results:
            out[r.verdict] = out.get(r.verdict, 0) + 1
        return out

    def sum_detail_counters(self, key: str) -> Dict[str, int]:
        """Aggregate a per-unit ``detail[key]`` counter dict over all
        units (units without it contribute nothing).  Works in pool
        mode too: each child ships its counters home inside the
        picklable :class:`UnitResult`."""
        totals: Dict[str, int] = {}
        for r in self.results:
            counters = r.detail.get(key)
            if not isinstance(counters, dict):
                continue
            for name, value in counters.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    totals[name] = totals.get(name, 0) + int(value)
        return totals

    def to_dict(self) -> dict:
        return {
            "units": [r.to_dict() for r in self.results],
            "counts": self.counts(),
            "elapsed": round(self.elapsed, 6),
            "exit_code": self.exit_code,
            **self.meta,
        }

    def summary(self) -> str:
        parts = [f"{v} {k}" for k, v in sorted(self.counts().items())]
        return (
            f"{len(self.results)} unit(s): "
            + (", ".join(parts) if parts else "nothing to do")
            + f" ({self.elapsed:.2f} s)"
        )


#: A worker maps (unit, deadline) to a UnitResult.  Workers may ignore
#: the deadline; honoring it (as the prover does) turns a preemptive
#: kill into a clean in-process TIMEOUT verdict.
Worker = Callable[[str, Deadline], UnitResult]


def run_one(
    unit: str,
    worker: Worker,
    unit_timeout: Optional[float] = None,
    recursion_limit: int = 20000,
) -> UnitResult:
    """Run one unit inside the full fault boundary."""
    start = time.perf_counter()
    deadline = Deadline.after(unit_timeout)
    try:
        with recursion_guard(recursion_limit):
            with _obs.span("unit", unit=unit):
                result = worker(unit, deadline)
        result.elapsed = time.perf_counter() - start
        return result
    except DeadlineExceeded as exc:
        return UnitResult(
            unit=unit,
            verdict=TIMEOUT,
            elapsed=time.perf_counter() - start,
            error=str(exc) or "deadline exceeded",
        )
    except _input_error_types() as exc:
        return UnitResult(
            unit=unit,
            verdict=ERROR,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    except RecursionError:
        # The guard already granted generous headroom, so blowing it
        # means the *input* is pathologically nested — an input error
        # (exit 2), not an internal crash.
        return UnitResult(
            unit=unit,
            verdict=ERROR,
            elapsed=time.perf_counter() - start,
            error="input too deeply nested (recursion limit exceeded)",
        )
    except MemoryError:
        return UnitResult(
            unit=unit,
            verdict=CRASH,
            elapsed=time.perf_counter() - start,
            error="MemoryError",
        )
    except Exception as exc:  # internal bug: survive and report
        return UnitResult(
            unit=unit,
            verdict=CRASH,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )


def run_units(
    units: Sequence[str],
    worker: Worker,
    keep_going: bool = True,
    jobs: int = 1,
    unit_timeout: Optional[float] = None,
    recursion_limit: int = 20000,
) -> BatchReport:
    """Run every unit through ``worker`` with per-unit isolation.

    ``keep_going=False`` stops dispatching after the first unit whose
    verdict is ERROR or worse; the remaining units are reported as
    ``SKIPPED`` so the report still covers the whole batch.  With
    ``jobs > 1`` units run in a process pool with preemptive per-child
    deadlines and guaranteed reaping.
    """
    start = time.perf_counter()
    if jobs > 1 and len(units) > 1:
        report = _run_pool(
            list(units), worker, jobs, unit_timeout, recursion_limit, keep_going
        )
    else:
        report = BatchReport()
        stop = False
        for unit in units:
            if stop:
                report.results.append(UnitResult(unit=unit, verdict=SKIPPED))
                continue
            result = run_one(unit, worker, unit_timeout, recursion_limit)
            report.results.append(result)
            if not keep_going and result.severity >= _SEVERITY[ERROR]:
                stop = True
    report.elapsed = time.perf_counter() - start
    return report


# ------------------------------------------------------------- process pool


def _child_entry(worker, unit, conn, unit_timeout, recursion_limit):
    """Child process body: run the unit, ship the result, exit.

    When profiling is on, the child's collector snapshot (spans +
    counters; the fork-inherited parent data is discarded by the
    collector's pid check) rides home inside the UnitResult."""
    try:
        result = run_one(unit, worker, unit_timeout, recursion_limit)
        if _obs.enabled():
            result.obs = _obs.snapshot()
        conn.send(result)
    except Exception as exc:  # pragma: no cover - belt and braces
        try:
            conn.send(
                UnitResult(unit=unit, verdict=CRASH, error=repr(exc))
            )
        except Exception:
            pass
    finally:
        conn.close()


def _reap(proc) -> None:
    """Terminate, then kill, then join — never leave an orphan."""
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=1.0)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=1.0)
    if not proc.is_alive():
        proc.join()


def _run_pool(
    units: List[str],
    worker: Worker,
    jobs: int,
    unit_timeout: Optional[float],
    recursion_limit: int,
    keep_going: bool,
) -> BatchReport:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    pending = deque(enumerate(units))
    running: dict = {}  # proc -> (index, unit, recv-end, started-at)
    results: List[Optional[UnitResult]] = [None] * len(units)
    stop = False
    try:
        while pending or running:
            while pending and len(running) < jobs and not stop:
                index, unit = pending.popleft()
                recv, send = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_entry,
                    args=(worker, unit, send, unit_timeout, recursion_limit),
                    daemon=True,
                )
                proc.start()
                send.close()  # parent keeps only the read end
                running[proc] = (index, unit, recv, time.perf_counter())
            if stop and not running:
                break
            if not running:
                continue
            # Block until a result pipe has data, a child exits, or the
            # nearest per-unit deadline expires — no polling loop.
            if unit_timeout is None:
                wait_timeout = None
            else:
                now = time.perf_counter()
                next_expiry = min(
                    started + unit_timeout
                    for _, _, _, started in running.values()
                )
                wait_timeout = max(0.0, next_expiry - now)
            waitables = [info[2] for info in running.values()]
            waitables += [proc.sentinel for proc in running]
            multiprocessing.connection.wait(waitables, timeout=wait_timeout)
            for proc in list(running):
                index, unit, recv, started = running[proc]
                outcome: Optional[UnitResult] = None
                if recv.poll():
                    try:
                        outcome = recv.recv()
                    except (EOFError, OSError):
                        outcome = UnitResult(
                            unit=unit,
                            verdict=CRASH,
                            error="worker result lost",
                        )
                elif unit_timeout is not None and (
                    time.perf_counter() - started > unit_timeout
                ):
                    outcome = UnitResult(
                        unit=unit,
                        verdict=TIMEOUT,
                        elapsed=time.perf_counter() - started,
                        error=f"killed after {unit_timeout:g} s",
                    )
                elif not proc.is_alive():
                    # Died without sending a result: segfault, OOM kill.
                    outcome = UnitResult(
                        unit=unit,
                        verdict=CRASH,
                        elapsed=time.perf_counter() - started,
                        error=f"worker died (exitcode {proc.exitcode})",
                    )
                if outcome is None:
                    continue
                del running[proc]
                _reap(proc)
                recv.close()
                if not outcome.elapsed:
                    outcome.elapsed = time.perf_counter() - started
                if outcome.obs is not None:
                    _obs.merge(outcome.obs)
                    outcome.obs = None
                results[index] = outcome
                if not keep_going and outcome.severity >= _SEVERITY[ERROR]:
                    stop = True
    finally:
        # Reap *and* close the read ends of anything still running —
        # an early stop or an interrupt must not leak pipe fds.
        for proc, (_, _, recv, _) in list(running.items()):
            _reap(proc)
            try:
                recv.close()
            except OSError:
                pass
        running.clear()
    report = BatchReport()
    for index, unit in enumerate(units):
        result = results[index]
        if result is None:
            result = UnitResult(unit=unit, verdict=SKIPPED)
        report.results.append(result)
    return report
