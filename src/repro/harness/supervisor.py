"""Worker-pool supervision: retry, backoff, quarantine, reaping.

The batch pool used to treat a dead worker as a final ``CRASH``
verdict.  That is the wrong call for a long-running pipeline: a worker
OOM-killed by the kernel, a dropped result pipe, or a wedged child
says nothing conclusive about the *unit* — rerunning it usually
succeeds.  The supervisor owns that judgment.  Each unit moves through
a small state machine:

::

    PENDING ──spawn──▶ RUNNING ──result──▶ DONE
       ▲                  │
       │                  ├─ deadline ───▶ DONE (TIMEOUT; final, never
       │                  │                retried — rerunning a unit
       │                  │                that blew its budget would
       │                  │                just blow it again)
       │                  │
       │                  └─ death ──▶ deaths < max? ── yes ─▶ RETRY_WAIT
       │                     (crash /                           (exponential
       │                      hang /                             backoff)
       │                      pipe                 no             │
       │                      drop)                 │             │
       │                                            ▼             │
       │                                       QUARANTINED        │
       │                                       (GAVE_UP, Q007)    │
       └────────────────────────────────────────────────────────┘

*Death* means the child stopped without delivering a result: its
sentinel fired (crash, OOM kill), its heartbeat went stale for longer
than ``hang_timeout`` (hang — the child is killed), or its pipe closed
early (drop).  Deaths are counted **per unit**: a unit that kills
``max_worker_deaths`` workers in a row is a *poison unit* and is
quarantined — reported ``GAVE_UP`` with a ``Q007`` diagnostic naming
every death — instead of sinking the whole run.  Retries wait out an
exponential backoff (``backoff * backoff_factor**(deaths-1)``) so a
transiently sick machine (fork storms, memory pressure) gets breathing
room before the next attempt.

Liveness is heartbeats: children beat every ``heartbeat_interval``
seconds (a ``("hb", seq)`` message from a daemon thread); any message
— beat, progress event, result — refreshes the unit's liveness clock.
Progress events stream to the caller's ``on_event`` as they arrive,
and settled units stream to ``on_result`` in completion order while
the report itself stays in input order.

SIGINT/SIGTERM mid-run (see :func:`repro.harness.batch.
interrupt_guard`) stops dispatch, kills what is running, marks the
rest ``SKIPPED``, and returns the partial report with
``meta["interrupted"]`` set — the caller still flushes valid output
under the normal exit-code contract.  Every child ever spawned is
joined on the way out, including already-exited ones, so no zombies
survive the run.

Counters (in ``repro.obs``): ``supervisor.retries``, ``.deaths``,
``.hangs``, ``.quarantined``.  The same numbers land in
``meta["supervisor"]`` — only when any of them is nonzero, so
undisturbed runs keep their exact pre-supervisor report schema.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro import obs as _obs
from repro.core.checker.diagnostics import code_for
from repro.harness import batch
from repro.harness.batch import (
    _SEVERITY,
    ERROR,
    GAVE_UP,
    SKIPPED,
    TIMEOUT,
    BatchReport,
    UnitResult,
    Worker,
    _child_entry,
    _reap,
)


# Environment variables already warned about (warn once per process,
# not once per Supervisor — from_env runs on every batch).
_WARNED_ENV: set = set()


def env_knob(name: str, default, parse, env=None):
    """Parse one numeric environment override, falling back to
    ``default`` on a malformed value instead of crashing the run.

    A bad knob warns once per process (on stderr, so it survives
    ``--format json``) and every knob is parsed independently — one
    typo must not silently disable the overrides that follow it.
    """
    source = os.environ if env is None else env
    raw = source.get(name)
    if raw is None:
        return default
    try:
        return parse(raw)
    except (TypeError, ValueError):
        if name not in _WARNED_ENV:
            _WARNED_ENV.add(name)
            print(
                f"warning: malformed {name}={raw!r}; using default {default!r}",
                file=sys.stderr,
            )
        return default


def pool_context():
    """The multiprocessing context worker pools are built from: fork
    where the platform has it (cheap, shares the warm parent state),
    spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class SupervisorConfig:
    """Tunables for the supervised pool."""

    jobs: int = 2
    unit_timeout: Optional[float] = None
    recursion_limit: int = 20000
    keep_going: bool = True
    #: Child heartbeat period; 0 disables heartbeats (and with them
    #: hang detection).
    heartbeat_interval: float = 0.25
    #: How stale a child's liveness clock may get before it is declared
    #: hung and killed.  Generous by default: a busy CI box can starve
    #: a healthy child of CPU for a while.
    hang_timeout: float = 10.0
    #: Worker deaths one unit may cause before quarantine.
    max_worker_deaths: int = 3
    #: First retry delay; doubles per subsequent death of the same unit.
    backoff: float = 0.05
    backoff_factor: float = 2.0

    @classmethod
    def from_env(cls, **overrides) -> "SupervisorConfig":
        """Build a config, letting the environment tighten the liveness
        knobs (``REPRO_HANG_TIMEOUT``, ``REPRO_HEARTBEAT_INTERVAL``,
        ``REPRO_MAX_WORKER_DEATHS``) — how tests and CI make hang
        detection fast without threading flags through every layer."""
        config = cls(**overrides)
        config.hang_timeout = env_knob(
            "REPRO_HANG_TIMEOUT", config.hang_timeout, float
        )
        config.heartbeat_interval = env_knob(
            "REPRO_HEARTBEAT_INTERVAL", config.heartbeat_interval, float
        )
        config.max_worker_deaths = env_knob(
            "REPRO_MAX_WORKER_DEATHS", config.max_worker_deaths, int
        )
        return config


@dataclass
class _Slot:
    """One live child working one unit attempt."""

    index: int
    unit: str
    recv: object  # parent's read end of the result pipe
    started: float
    attempt: int
    last_seen: float  # refreshed by every message off the pipe
    done: bool = False  # result landed; pipe may still hold late beats


@dataclass
class _UnitState:
    """Supervisor-side bookkeeping for one unit of the batch."""

    unit: str
    deaths: int = 0
    attempts: int = 0
    eligible_at: float = 0.0  # backoff gate for the next attempt
    causes: List[str] = field(default_factory=list)


class Supervisor:
    def __init__(self, config: SupervisorConfig):
        self.config = config
        self._ctx = pool_context()
        # Every child ever spawned — joined in run()'s finally so not
        # even an already-exited child is left as a zombie.
        self.spawned: List[object] = []
        self.retries = 0
        self.deaths = 0
        self.hangs = 0
        self.quarantined = 0

    # ------------------------------------------------------------- run

    def run(
        self,
        units: List[str],
        worker: Worker,
        on_result=None,
        on_event=None,
    ) -> BatchReport:
        config = self.config
        states = [_UnitState(unit=u) for u in units]
        results: List[Optional[UnitResult]] = [None] * len(units)
        ready: Deque[int] = deque(range(len(units)))
        waiting: List[int] = []  # indices sitting out a backoff
        running: Dict[object, _Slot] = {}  # proc -> slot
        stop = False
        interrupted = False

        def settle(index: int, outcome: UnitResult) -> None:
            nonlocal stop
            outcome.attempts = max(outcome.attempts, states[index].attempts)
            if outcome.obs is not None:
                _obs.merge(outcome.obs)
                outcome.obs = None
            results[index] = outcome
            if on_result is not None:
                on_result(outcome)
            if not config.keep_going and outcome.severity >= _SEVERITY[ERROR]:
                stop = True

        def record_death(index: int, cause: str, hang: bool = False) -> None:
            """A worker died under ``index``'s unit: retry or quarantine."""
            state = states[index]
            state.deaths += 1
            state.causes.append(cause)
            self.deaths += 1
            _obs.incr("supervisor.deaths")
            if hang:
                self.hangs += 1
                _obs.incr("supervisor.hangs")
            if state.deaths >= config.max_worker_deaths:
                self.quarantined += 1
                _obs.incr("supervisor.quarantined")
                settle(index, self._quarantine_result(state))
                return
            self.retries += 1
            _obs.incr("supervisor.retries")
            delay = config.backoff * (
                config.backoff_factor ** (state.deaths - 1)
            )
            state.eligible_at = time.perf_counter() + delay
            waiting.append(index)

        try:
            with batch.interrupt_guard() as interrupt:
                while ready or waiting or running:
                    now = time.perf_counter()
                    if interrupt.set:
                        interrupted = True
                        break
                    # Promote units whose backoff has elapsed.
                    if waiting:
                        due = [i for i in waiting if states[i].eligible_at <= now]
                        for i in due:
                            waiting.remove(i)
                            ready.append(i)
                    while ready and len(running) < config.jobs and not stop:
                        self._spawn(ready.popleft(), states, worker, running)
                    if stop and not running:
                        break
                    if not running and not ready and waiting:
                        # Everything alive is sitting out a backoff.
                        wake = min(states[i].eligible_at for i in waiting)
                        time.sleep(min(0.5, max(0.0, wake - now)))
                        continue
                    if not running:
                        continue
                    self._wait(running, waiting, states)
                    if interrupt.set:
                        interrupted = True
                        break
                    self._service(running, settle, record_death, on_event)
                if interrupted:
                    # Cancel in-flight attempts; their units report
                    # SKIPPED below, like everything never started.
                    for proc, slot in list(running.items()):
                        del running[proc]
                        _reap(proc)
                        self._close(slot.recv)
        finally:
            for proc, slot in list(running.items()):
                _reap(proc)
                self._close(slot.recv)
            running.clear()
            # The zombie sweep: join every child ever spawned, even the
            # ones that exited long ago and were already handled — a
            # handled child is join()ed again harmlessly, an unhandled
            # one stops being a zombie.
            for proc in self.spawned:
                _reap(proc)

        report = BatchReport()
        for index, unit in enumerate(units):
            outcome = results[index]
            if outcome is None:
                outcome = UnitResult(unit=unit, verdict=SKIPPED)
            report.results.append(outcome)
        if interrupted:
            report.meta["interrupted"] = True
        counters = {
            "retries": self.retries,
            "deaths": self.deaths,
            "hangs": self.hangs,
            "quarantined": self.quarantined,
        }
        if any(counters.values()):
            report.meta["supervisor"] = counters
        return report

    # ------------------------------------------------------- internals

    def _spawn(
        self,
        index: int,
        states: List[_UnitState],
        worker: Worker,
        running: Dict[object, _Slot],
    ) -> None:
        state = states[index]
        state.attempts += 1
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_entry,
            args=(
                worker,
                state.unit,
                send,
                self.config.unit_timeout,
                self.config.recursion_limit,
                state.attempts,
                self.config.heartbeat_interval,
            ),
            daemon=True,
        )
        proc.start()
        send.close()  # parent keeps only the read end
        self.spawned.append(proc)
        now = time.perf_counter()
        running[proc] = _Slot(
            index=index,
            unit=state.unit,
            recv=recv,
            started=now,
            attempt=state.attempts,
            last_seen=now,
        )

    def _wait(
        self,
        running: Dict[object, _Slot],
        waiting: List[int],
        states: List[_UnitState],
    ) -> None:
        """Block until a message, a child exit, or the nearest timer —
        per-unit deadline, hang deadline, or backoff wakeup."""
        config = self.config
        now = time.perf_counter()
        timers: List[float] = []
        for slot in running.values():
            if config.unit_timeout is not None:
                timers.append(slot.started + config.unit_timeout)
            if config.heartbeat_interval > 0 and config.hang_timeout > 0:
                timers.append(slot.last_seen + config.hang_timeout)
        timers.extend(states[i].eligible_at for i in waiting)
        timeout = max(0.0, min(timers) - now) if timers else None
        waitables = [slot.recv for slot in running.values()]
        waitables += [proc.sentinel for proc in running]
        multiprocessing.connection.wait(waitables, timeout=timeout)

    def _service(
        self,
        running: Dict[object, _Slot],
        settle,
        record_death,
        on_event,
    ) -> None:
        """Drain every live pipe and judge every child: result, timeout,
        hang, or death."""
        config = self.config
        for proc in list(running):
            slot = running[proc]
            outcome: Optional[UnitResult] = None
            died = False
            # Drain everything queued on the pipe: heartbeats refresh
            # liveness, events stream out, a result settles the unit.
            try:
                while outcome is None and slot.recv.poll():
                    kind, payload = slot.recv.recv()
                    slot.last_seen = time.perf_counter()
                    if kind == "result":
                        outcome = payload
                    elif kind == "ev" and on_event is not None:
                        try:
                            on_event(payload)
                        except Exception:
                            pass
            except (EOFError, OSError):
                # Pipe closed without a result: the child dropped it or
                # died mid-send.
                died = True
            now = time.perf_counter()
            if outcome is not None:
                if not outcome.elapsed:
                    outcome.elapsed = now - slot.started
                del running[proc]
                _reap(proc)
                self._close(slot.recv)
                settle(slot.index, outcome)
                continue
            if died or (not proc.is_alive() and not slot.recv.poll()):
                exitcode = proc.exitcode
                del running[proc]
                _reap(proc)
                self._close(slot.recv)
                cause = (
                    "result pipe closed before a result"
                    if died and exitcode in (0, None)
                    else f"worker died (exitcode {exitcode})"
                )
                record_death(slot.index, cause)
                continue
            if config.unit_timeout is not None and (
                now - slot.started > config.unit_timeout
            ):
                # Final, not a death: the unit spent its budget.
                del running[proc]
                _reap(proc)
                self._close(slot.recv)
                settle(
                    slot.index,
                    UnitResult(
                        unit=slot.unit,
                        verdict=TIMEOUT,
                        elapsed=now - slot.started,
                        error=f"killed after {config.unit_timeout:g} s",
                    ),
                )
                continue
            if (
                config.heartbeat_interval > 0
                and config.hang_timeout > 0
                and now - slot.last_seen > config.hang_timeout
            ):
                del running[proc]
                _reap(proc)
                self._close(slot.recv)
                record_death(
                    slot.index,
                    f"worker hung (no heartbeat for {config.hang_timeout:g} s)",
                    hang=True,
                )

    def _quarantine_result(self, state: _UnitState) -> UnitResult:
        deaths = state.deaths
        causes = "; ".join(
            f"attempt {i + 1}: {cause}" for i, cause in enumerate(state.causes)
        )
        message = (
            f"quarantined after killing {deaths} worker(s): {causes}"
        )
        return UnitResult(
            unit=state.unit,
            verdict=GAVE_UP,
            attempts=state.attempts,
            error=message,
            diagnostics=[
                {
                    "code": code_for("quarantine"),
                    "kind": "quarantine",
                    "qualifier": "-",
                    "message": message,
                    "severity": "error",
                    "text": f"error: {message}",
                }
            ],
        )

    @staticmethod
    def _close(recv) -> None:
        try:
            recv.close()
        except OSError:
            pass
