"""Fault-tolerance layer for the checking pipeline.

:mod:`repro.harness.watchdog` supplies the low-level resource guards
(absolute deadlines, retry policies, recursion-limit scoping); it has
no dependencies on the rest of the package so the prover can import it
freely.  :mod:`repro.harness.batch` builds the batch engine on top:
many translation units / qualifier files per invocation, each run in an
isolated unit-of-work that downgrades failures to structured verdicts
instead of aborting the whole run.
"""

from repro.harness.watchdog import (  # noqa: F401
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    recursion_guard,
)
