"""Obligation-level sharding across the batch worker pool.

The batch pool parallelizes at file granularity; this module shards the
*obligation stream* instead.  The parent generates
:class:`~repro.core.soundness.workitems.ObligationWorkItem`s for every
unit, groups them by axiom-environment digest (all obligations of a
group can share one :class:`~repro.prover.session.ProverSession`), and
runs each group as a synthetic unit of the supervised pool.  Workers
stream one progress event per settled obligation — carrying the full
outcome — so the parent can re-assemble per-unit reports, and so a
worker death loses only the obligations that had not yet settled.

Retry and quarantine are at **obligation granularity**: the supervisor
is configured to quarantine a group on its first worker death
(``max_worker_deaths=1``); the scheduler then settles the group's
streamed outcomes, attributes the death to the first obligation that
had not settled, and re-queues the remainder as a new round.  An
obligation that kills ``max_obligation_deaths`` workers is itself
quarantined (``GAVE_UP``, mirroring the pool's poison-unit contract);
its group mates still get proved.  Group timeouts are final, exactly
like per-unit timeouts: the unsettled remainder reports ``TIMEOUT``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.soundness.workitems import (
    ObligationWorkItem,
    discharge_work_item,
)
from repro.harness import batch
from repro.harness.watchdog import NO_RETRY, RetryPolicy

#: Worker deaths one obligation may cause before it is quarantined.
MAX_OBLIGATION_DEATHS = 2


def run_obligations(
    items: List[ObligationWorkItem],
    axioms,
    use_sessions: bool = True,
    jobs: int = 1,
    unit_timeout: Optional[float] = None,
    time_limit: float = 45.0,
    max_rounds: int = 6,
    retry: RetryPolicy = NO_RETRY,
    cache=None,
    on_event=None,
    max_obligation_deaths: int = MAX_OBLIGATION_DEATHS,
    explain: bool = True,
) -> Tuple[Dict[str, Dict], Dict]:
    """Discharge every work item; returns (outcomes by item key, stats).

    ``stats`` carries scheduler counters (groups/rounds/requeued/
    quarantined), aggregated session counters under ``"sessions"`` when
    sessions are on, and summed proof-cache deltas under ``"cache"``
    when a cache is live.  ``explain`` picks the workers' conflict-core
    strategy (proof forests vs the ddmin ablation); verdicts do not
    depend on it.
    """
    scheduler = _ObligationScheduler(
        items,
        axioms,
        use_sessions=use_sessions,
        jobs=jobs,
        unit_timeout=unit_timeout,
        time_limit=time_limit,
        max_rounds=max_rounds,
        retry=retry,
        cache=cache,
        on_event=on_event,
        max_obligation_deaths=max_obligation_deaths,
        explain=explain,
    )
    return scheduler.run()


class _ObligationScheduler:
    def __init__(
        self,
        items: List[ObligationWorkItem],
        axioms,
        use_sessions: bool,
        jobs: int,
        unit_timeout: Optional[float],
        time_limit: float,
        max_rounds: int,
        retry: RetryPolicy,
        cache,
        on_event,
        max_obligation_deaths: int,
        explain: bool = True,
    ):
        self.items = list(items)
        self.axioms = axioms
        self.use_sessions = use_sessions
        self.jobs = jobs
        self.unit_timeout = unit_timeout
        self.time_limit = time_limit
        self.max_rounds = max_rounds
        self.retry = retry
        self.cache = cache
        self.on_event = on_event
        self.max_obligation_deaths = max_obligation_deaths
        self.explain = explain
        self.outcomes: Dict[str, Dict] = {}
        self.deaths: Dict[str, int] = {}
        self.stats: Dict = {
            "groups": 0,
            "rounds": 0,
            "requeued": 0,
            "quarantined": 0,
            "obligations": len(self.items),
        }
        self.session_totals: Dict[str, int] = {}
        self.cache_totals: Dict[str, int] = {}

    # ----------------------------------------------------------- rounds

    def run(self) -> Tuple[Dict[str, Dict], Dict]:
        pending: List[ObligationWorkItem] = []
        for item in self.items:
            if item.trivial:
                # Trivial obligations need no prover; settle in-parent.
                self._settle(
                    {
                        "key": item.key,
                        "unit": item.unit,
                        "qualifier": item.qualifier,
                        "index": item.index,
                        "rule": item.rule,
                        "trivial": True,
                        "verdict": "PROVED",
                        "proved": True,
                        "error": "",
                        "proof": None,
                    }
                )
            else:
                pending.append(item)

        # Every death consumes one round for one obligation, so this
        # bound cannot be hit by a legal schedule; it is a backstop
        # against scheduler bugs, not a coverage limit.
        round_cap = len(pending) * (self.max_obligation_deaths + 1) + 2
        round_no = 0
        while pending and round_no < round_cap:
            round_no += 1
            self.stats["rounds"] = round_no
            pending = self._run_round(round_no, pending)
        for item in pending:  # pragma: no cover - backstop only
            self._settle(self._gave_up_outcome(item, "scheduler round cap"))
        stats = dict(self.stats)
        if self.use_sessions:
            stats["sessions"] = dict(self.session_totals)
        if self.cache is not None:
            stats["cache"] = dict(self.cache_totals)
        return self.outcomes, stats

    def _run_round(
        self, round_no: int, pending: List[ObligationWorkItem]
    ) -> List[ObligationWorkItem]:
        groups: Dict[str, List[ObligationWorkItem]] = {}
        for item in pending:
            groups.setdefault(item.env_digest, []).append(item)
        registry: Dict[str, List[ObligationWorkItem]] = {}
        for digest, group in groups.items():
            name = f"obl:{group[0].qualifier}@{digest[:10]}#r{round_no}"
            registry[name] = group
        if round_no == 1:
            self.stats["groups"] = len(registry)
            obs.incr("shard.groups", len(registry))
        obs.incr("shard.rounds")

        axioms = self.axioms
        use_sessions = self.use_sessions
        time_limit = self.time_limit
        max_rounds = self.max_rounds
        retry = self.retry
        cache = self.cache
        explain = self.explain

        def worker(unit_name: str, deadline) -> batch.UnitResult:
            group = registry[unit_name]
            session = None
            if use_sessions:
                from repro.prover.session import ProverSession

                session = ProverSession(
                    axioms,
                    context=group[0].context,
                    max_rounds=max_rounds,
                    time_limit=time_limit,
                    explain=explain,
                )
            before = cache.snapshot() if cache is not None else None
            outcomes = []
            for item in group:
                outcome = discharge_work_item(
                    item,
                    axioms,
                    session=session,
                    max_rounds=max_rounds,
                    time_limit=time_limit,
                    retry=retry,
                    deadline=deadline,
                    cache=cache,
                    explain=explain,
                )
                outcomes.append(outcome)
                # The outcome rides along on the progress event so the
                # parent can settle it even if this worker later dies.
                batch.emit_progress(
                    {
                        "event": "obligation",
                        "unit": item.unit,
                        "qualifier": item.qualifier,
                        "rule": item.rule,
                        "verdict": outcome["verdict"],
                        "_outcome": outcome,
                    }
                )
            detail: Dict = {"outcomes": outcomes}
            if session is not None:
                # Same shape as a SessionPool counter delta ("resets"
                # is pool-internal), so serial and sharded session
                # meta blocks aggregate field-identically.
                detail["session"] = {
                    "sessions": 1,
                    **{
                        key: value
                        for key, value in session.counters.items()
                        if key != "resets"
                    },
                }
            if cache is not None:
                delta = cache.delta(before)
                cache.flush_counters(delta)
                detail["cache"] = delta
            return batch.UnitResult(
                unit=unit_name, verdict=batch.OK, detail=detail
            )

        # Never fork more workers than there are groups this round;
        # retry rounds usually carry one small group.
        jobs = min(self.jobs, len(registry))
        report = batch.run_units(
            list(registry),
            worker,
            keep_going=True,
            jobs=jobs,
            unit_timeout=self.unit_timeout,
            on_event=self._wrap_event,
            supervisor_config=self._supervisor_config(jobs),
        )

        requeue: List[ObligationWorkItem] = []
        for result in report.results:
            group = registry.get(result.unit, [])
            recorded = (result.detail or {}).get("outcomes")
            if recorded is not None:
                for outcome in recorded:
                    self._settle(outcome)
                self._fold_counters(result.detail)
                continue
            # The group died, timed out, or was skipped before
            # finishing; streamed outcomes have already settled.
            unsettled = [i for i in group if i.key not in self.outcomes]
            if result.verdict == batch.TIMEOUT:
                for item in unsettled:
                    self._settle(self._timeout_outcome(item))
                continue
            if not unsettled:
                continue
            first, rest = unsettled[0], unsettled[1:]
            self.deaths[first.key] = self.deaths.get(first.key, 0) + 1
            if self.deaths[first.key] >= self.max_obligation_deaths:
                self.stats["quarantined"] += 1
                obs.incr("shard.quarantined")
                self._settle(
                    self._gave_up_outcome(
                        first,
                        f"quarantined after killing "
                        f"{self.deaths[first.key]} worker(s)",
                    )
                )
            else:
                requeue.append(first)
            requeue.extend(rest)
            self.stats["requeued"] += len(rest) + (
                1 if first.key not in self.outcomes else 0
            )
            obs.incr("shard.requeued", len(rest))
        return requeue

    # -------------------------------------------------------- plumbing

    def _supervisor_config(self, jobs: int):
        from repro.harness.supervisor import SupervisorConfig

        config = SupervisorConfig.from_env(
            jobs=jobs,
            unit_timeout=self.unit_timeout,
            keep_going=True,
        )
        # One death quarantines the *group*; the scheduler re-queues its
        # survivors itself, so pool-level retries would only duplicate
        # work at coarser granularity.
        config.max_worker_deaths = 1
        return config

    def _wrap_event(self, event) -> None:
        if isinstance(event, dict) and "_outcome" in event:
            event = dict(event)
            self._settle(event.pop("_outcome"))
        if self.on_event is not None:
            try:
                self.on_event(event)
            except Exception:
                pass

    def _settle(self, outcome: Dict) -> None:
        self.outcomes.setdefault(outcome["key"], outcome)

    def _fold_counters(self, detail: Dict) -> None:
        for bucket, totals in (
            ("session", self.session_totals),
            ("cache", self.cache_totals),
        ):
            for key, value in (detail.get(bucket) or {}).items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value

    def _timeout_outcome(self, item: ObligationWorkItem) -> Dict:
        return self._unproved_outcome(item, "TIMEOUT", "time limit")

    def _gave_up_outcome(self, item: ObligationWorkItem, reason: str) -> Dict:
        return self._unproved_outcome(item, "GAVE_UP", reason)

    @staticmethod
    def _unproved_outcome(
        item: ObligationWorkItem, verdict: str, reason: str
    ) -> Dict:
        return {
            "key": item.key,
            "unit": item.unit,
            "qualifier": item.qualifier,
            "index": item.index,
            "rule": item.rule,
            "trivial": False,
            "verdict": verdict,
            "proved": False,
            "error": "",
            "proof": {
                "proved": False,
                "reason": reason,
                "verdict": verdict,
                "elapsed": 0.0,
                "cached": False,
            },
        }
