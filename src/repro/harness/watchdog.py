"""Resource guards: deadlines, retry policies, recursion scoping.

This module is intentionally dependency-free (standard library only,
nothing from the rest of :mod:`repro`) so the innermost loops — the
prover's E-matching rounds, the Nelson–Oppen core, the soundness
driver — can import it without cycles.

The central object is :class:`Deadline`, an *absolute* wall-clock
budget expressed in ``time.perf_counter()`` coordinates.  Passing a
deadline (rather than a relative timeout) through a call chain means
every layer measures against the same clock: a caller's 45-second
budget is not accidentally re-granted to each callee.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional


class DeadlineExceeded(Exception):
    """Raised by :meth:`Deadline.check` once the budget is spent.

    Long-running loops call ``deadline.check()`` at their head; the
    driver catches this and classifies the unit as ``TIMEOUT`` instead
    of letting it run unboundedly.
    """


@dataclass(frozen=True)
class Deadline:
    """An absolute wall-clock deadline (``time.perf_counter()`` value).

    ``Deadline(None)`` never expires, so callers can thread one
    parameter unconditionally instead of sprinkling ``if deadline``
    tests through every loop.
    """

    at: Optional[float] = None

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """A deadline ``seconds`` from now; ``None`` means unbounded."""
        if seconds is None:
            return cls(None)
        return cls(time.perf_counter() + seconds)

    def expired(self) -> bool:
        return self.at is not None and time.perf_counter() > self.at

    def remaining(self) -> float:
        """Seconds left; ``inf`` when unbounded, clamped at 0.0."""
        if self.at is None:
            return float("inf")
        return max(0.0, self.at - time.perf_counter())

    def check(self, what: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(what or "deadline exceeded")

    def tightened(self, seconds: Optional[float]) -> "Deadline":
        """The earlier of this deadline and ``seconds`` from now."""
        other = Deadline.after(seconds)
        if self.at is None:
            return other
        if other.at is None:
            return self
        return Deadline(min(self.at, other.at))


#: A deadline that never fires — the default for every guarded loop.
NEVER = Deadline(None)


@dataclass(frozen=True)
class RetryPolicy:
    """Escalating-budget retry with exponential backoff.

    Used by the prover driver when a proof attempt returns
    ``GAVE_UP`` ("search budget exhausted"): the attempt is repeated
    with multiplied conflict/round budgets after an exponentially
    growing pause, up to ``max_attempts`` total attempts or until the
    governing deadline expires.  ``TIMEOUT`` results are *not* retried
    — more wall-clock is exactly what a timed-out unit does not have.
    """

    max_attempts: int = 3
    backoff: float = 0.05  # seconds before the 2nd attempt
    backoff_factor: float = 2.0
    budget_factor: float = 2.0  # conflict/round budget multiplier

    def delay_before(self, attempt: int) -> float:
        """Pause before ``attempt`` (1-based; attempt 1 has none)."""
        if attempt <= 1:
            return 0.0
        return self.backoff * (self.backoff_factor ** (attempt - 2))

    def budget_scale(self, attempt: int) -> float:
        """Budget multiplier for ``attempt`` (1-based)."""
        return self.budget_factor ** (attempt - 1)

    def attempts(self, deadline: Deadline = NEVER) -> Iterator[int]:
        """Yield attempt numbers, sleeping the backoff in between and
        stopping early once ``deadline`` cannot fund another pause."""
        for attempt in range(1, self.max_attempts + 1):
            pause = self.delay_before(attempt)
            if pause:
                if deadline.remaining() <= pause:
                    return
                time.sleep(pause)
            yield attempt


#: Retrying disabled: a single attempt, no backoff, no escalation.
NO_RETRY = RetryPolicy(max_attempts=1)


@contextmanager
def recursion_guard(limit: int = 20000):
    """Temporarily raise (never lower) the interpreter recursion limit.

    Deeply nested expressions blow the default 1000-frame limit inside
    the recursive-descent parser and the structural AST walks.  The
    guard gives a unit of work more headroom while keeping a hard
    ceiling, so runaway recursion still surfaces as ``RecursionError``
    — which the batch engine downgrades to a ``CRASH`` verdict —
    rather than a segfault.  The previous limit is restored on exit.
    """
    previous = sys.getrecursionlimit()
    if limit > previous:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)
