"""Experiment tooling: program statistics and the iterative annotation
workflow the paper applies to open-source programs (section 6)."""

from repro.analysis.stats import ProgramStats, count_dereferences, count_lines, program_stats
from repro.analysis.annotate import (
    NonnullAnnotationResult,
    UntaintedAnnotationResult,
    annotate_nonnull,
    annotate_untainted,
)

__all__ = [
    "ProgramStats",
    "count_dereferences",
    "count_lines",
    "program_stats",
    "NonnullAnnotationResult",
    "UntaintedAnnotationResult",
    "annotate_nonnull",
    "annotate_untainted",
]
