"""Program statistics matching the paper's table columns: line counts
(non-blank, non-comment), dereference sites, printf-family calls,
annotation and cast counts."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.cil import ir

PRINTF_FAMILY = ("printf", "fprintf", "sprintf", "snprintf", "vprintf", "syslog")


def count_lines(source: str) -> int:
    """Non-blank, non-comment lines (the paper's metric for Table 1)."""
    # Strip block comments first.
    text = re.sub(r"/\*.*?\*/", "", source, flags=re.DOTALL)
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("//"):
            continue
        count += 1
    return count


def _deref_sites_in_expr(expr: ir.Expr) -> int:
    return sum(
        1
        for node in ir.subexprs(expr)
        if isinstance(node, ir.Lval) and isinstance(node.lvalue.host, ir.MemHost)
    )


def count_dereferences(program: ir.Program) -> int:
    """Syntactic dereference sites (reads and writes through pointers:
    ``*p``, ``p->f``, ``p[i]``), the unit of the paper's Table 1."""
    total = 0
    for func in program.functions:
        for stmt in ir.walk_stmts(func.body):
            if isinstance(stmt, ir.Instr):
                for instr in stmt.instrs:
                    if isinstance(instr, ir.Set):
                        total += _deref_sites_in_expr(ir.Lval(instr.lvalue))
                        total += _deref_sites_in_expr(instr.expr)
                    elif isinstance(instr, ir.Call):
                        for arg in instr.args:
                            total += _deref_sites_in_expr(arg)
                        if instr.result is not None:
                            total += _deref_sites_in_expr(ir.Lval(instr.result))
            elif isinstance(stmt, ir.If):
                total += _deref_sites_in_expr(stmt.cond)
            elif isinstance(stmt, ir.While):
                total += _deref_sites_in_expr(stmt.cond)
                for instr in stmt.cond_instrs:
                    if isinstance(instr, ir.Set):
                        total += _deref_sites_in_expr(ir.Lval(instr.lvalue))
                        total += _deref_sites_in_expr(instr.expr)
            elif isinstance(stmt, ir.Return) and stmt.expr is not None:
                total += _deref_sites_in_expr(stmt.expr)
    return total


def count_printf_calls(program: ir.Program, wrappers: tuple = ()) -> int:
    """Calls to printf-family procedures.  ``wrappers`` names program-
    defined procedures that take format strings (the paper's counts for
    bftpd include its reply/logging wrappers)."""
    names = PRINTF_FAMILY + tuple(wrappers)
    total = 0
    for func in program.functions:
        for instr in ir.walk_instructions(func.body):
            if isinstance(instr, ir.Call) and instr.func in names:
                total += 1
    return total


@dataclass
class ProgramStats:
    lines: int
    dereferences: int
    printf_calls: int

    def __str__(self) -> str:
        return (
            f"lines: {self.lines}, dereferences: {self.dereferences}, "
            f"printf calls: {self.printf_calls}"
        )


def program_stats(
    source: str, program: ir.Program, wrappers: tuple = ()
) -> ProgramStats:
    return ProgramStats(
        lines=count_lines(source),
        dereferences=count_dereferences(program),
        printf_calls=count_printf_calls(program, wrappers),
    )
