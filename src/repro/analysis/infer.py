"""Qualifier inference (the paper's section-8 future work; CQUAL had
it, this framework's paper version did not).

``infer_value_qualifier`` computes, for any *value* qualifier, the
greatest set of declaration sites (globals, locals, formals, struct
fields) that can soundly carry the qualifier with **no casts**:

* start optimistically with every declaration whose base type matches
  the qualifier's declared type;
* repeatedly *demote* any entity with an assignment (direct, via call
  argument/result, or via return) whose right-hand side cannot be
  shown to have the qualifier under the current optimistic assumption;
* stop at the fixpoint.

Demotion is monotone, so the loop terminates and yields the greatest
consistent annotation — the inference analogue of CQUAL's qualifier
inference, specialized to the paper's rule language.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfront.ctypes import CType, FuncType, is_pointer_like
from repro.cil import ir
from repro.cil.typesof import TypeError_, TypingContext, type_of_lvalue
from repro.core.checker.patterns import dtype_matches
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.ast import QualifierDef, QualifierSet
from repro.dataflow.solver import SolverDivergence, kleene_fixpoint
from repro.analysis.annotate import (
    Entity,
    _add_qual_to_entity,
    _entity_of_lvalue,
    _refresh_signatures,
)


@dataclass
class InferenceResult:
    program: ir.Program  # annotated with the inferred qualifiers
    qualifier: str
    inferred: Set[Entity] = field(default_factory=set)
    demoted: Set[Entity] = field(default_factory=set)
    iterations: int = 0
    # Per-function solver work accumulated over every checker run the
    # fixpoint performed (blocks/edges from the last run; iterations
    # and ms summed across runs).
    dataflow: Dict[str, dict] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.inferred)

    def summary(self) -> str:
        return (
            f"inferred {len(self.inferred)} {self.qualifier} annotation(s) "
            f"({len(self.demoted)} demoted) in {self.iterations} iteration(s)"
        )


def _candidate_entities(program: ir.Program, qdef: QualifierDef) -> Set[Entity]:
    """Declaration sites whose base type matches the qualifier's."""
    out: Set[Entity] = set()

    def match(ctype: CType) -> bool:
        return dtype_matches(qdef.dtype, ctype)

    for g in program.globals:
        if match(g.ctype):
            out.add(("global", g.name))
    for func in program.functions:
        for name, ctype in func.formals:
            if match(ctype):
                out.add(("formal", func.name, name))
        for name, ctype in func.locals:
            if match(ctype):
                out.add(("local", func.name, name))
    for sname, fields in program.structs.items():
        for fname, ftype in fields:
            if match(ftype):
                out.add(("field", sname, fname))
    return out


def _apply_annotations(
    base: ir.Program, qual: str, entities: Set[Entity]
) -> ir.Program:
    program = copy.deepcopy(base)
    for entity in entities:
        _add_qual_to_entity_any(program, entity, qual)
    _refresh_signatures(program)
    return program


def _add_qual_to_entity_any(program: ir.Program, entity: Entity, qual: str) -> None:
    """Like annotate._add_qual_to_entity but for any base type (the
    helper there restricts itself to pointers for nonnull)."""
    kind = entity[0]
    if kind == "global":
        for g in program.globals:
            if g.name == entity[1]:
                g.ctype = g.ctype.with_quals([qual])
    elif kind in ("local", "formal"):
        func = program.function(entity[1])
        target = func.formals if kind == "formal" else func.locals
        for i, (name, ctype) in enumerate(target):
            if name == entity[2]:
                target[i] = (name, ctype.with_quals([qual]))
    elif kind == "field":
        fields = program.structs.get(entity[1], [])
        for i, (name, ctype) in enumerate(fields):
            if name == entity[2]:
                fields[i] = (name, ctype.with_quals([qual]))


def _failing_entities(
    program: ir.Program,
    qual: str,
    quals: QualifierSet,
    candidates: Set[Entity],
    flow_sensitive: bool,
) -> Tuple[Set[Entity], Dict[str, dict]]:
    """Candidates with at least one assignment the rules cannot justify,
    plus the checker's per-function solver stats for this run.

    Implemented by running the checker and mapping each value-qualifier
    assignment diagnostic back to the assigned entity."""
    checker = QualifierChecker(program, quals, flow_sensitive=flow_sensitive)
    report = checker.check()
    failing: Set[Entity] = set()
    for diag in report.diagnostics:
        if diag.qualifier != qual or diag.kind not in ("assign", "call", "return"):
            continue
        func = program.function(diag.function)
        entity = _entity_from_diagnostic(program, func, diag.message, candidates)
        if entity is not None:
            failing.add(entity)
    return failing, report.dataflow


def _entity_from_diagnostic(
    program: ir.Program,
    func: ir.Function,
    message: str,
    candidates: Set[Entity],
) -> Optional[Entity]:
    """Resolve a diagnostic's target description back to an entity.

    Messages name the assignment target (``x requires q, but ...`` /
    ``argument 'p' of f requires q ...`` / ``return value requires``).
    """
    if message.startswith("argument "):
        # argument 'name' of callee requires ...
        try:
            name = message.split("'")[1]
            callee = message.split(" of ", 1)[1].split(" ", 1)[0]
        except IndexError:
            return None
        entity = ("formal", callee, name)
        return entity if entity in candidates else None
    if message.startswith("return value"):
        return None  # return types are not inferred (kept declared)
    target = message.split(" requires ", 1)[0]
    # The target is an l-value rendering; match plain variables and
    # field writes.
    for kind in ("local", "formal"):
        entity = (kind, func.name, target)
        if entity in candidates:
            return entity
    entity = ("global", target)
    if entity in candidates:
        return entity
    # Field writes render as *(base).field or base.field: take the last
    # component.
    if "." in target:
        fieldname = target.rsplit(".", 1)[1].rstrip(")")
        fieldname = fieldname.split("[")[0]
        for sname in program.structs:
            entity = ("field", sname, fieldname)
            if entity in candidates:
                return entity
    return None


def infer_value_qualifier(
    program: ir.Program,
    qdef: QualifierDef,
    quals: Optional[QualifierSet] = None,
    flow_sensitive: bool = False,
    max_iterations: int = 60,
) -> InferenceResult:
    """Infer the greatest cast-free annotation for a value qualifier."""
    if not qdef.is_value:
        raise ValueError("inference is defined for value qualifiers")
    if quals is None:
        quals = QualifierSet([qdef])
    elif qdef.name not in quals:
        quals = QualifierSet(list(quals) + [qdef])

    all_candidates = frozenset(_candidate_entities(program, qdef))
    # Shared-engine fixpoint: the state is the optimistic candidate set,
    # one step re-annotates and demotes every entity the checker cannot
    # justify.  Demotion is monotone (the set only shrinks), so the
    # descending iteration over the powerset lattice terminates.
    last: Dict[str, object] = {}
    dataflow: Dict[str, dict] = {}

    def step(candidates: frozenset) -> frozenset:
        working = set(candidates)
        annotated = _apply_annotations(program, qdef.name, working)
        last["program"] = annotated
        failing, run_stats = _failing_entities(
            annotated, qdef.name, quals, working, flow_sensitive
        )
        for name, stats in run_stats.items():
            into = dataflow.setdefault(
                name, {"blocks": 0, "edges": 0, "iterations": 0, "ms": 0.0}
            )
            into["blocks"] = stats["blocks"]
            into["edges"] = stats["edges"]
            into["iterations"] += stats["iterations"]
            into["ms"] = round(into["ms"] + stats["ms"], 3)
        result = frozenset(candidates - failing)
        last["candidates"] = result
        return result

    try:
        inferred, iterations = kleene_fixpoint(
            step, all_candidates, max_iterations=max_iterations
        )
    except SolverDivergence:
        # Out of budget: keep the last (sound) demotion state, exactly
        # as the pre-engine loop did.
        inferred, iterations = last["candidates"], max_iterations

    return InferenceResult(
        program=last["program"],
        qualifier=qdef.name,
        inferred=set(inferred),
        demoted=set(all_candidates - inferred),
        iterations=iterations,
        dataflow=dataflow,
    )
