"""The paper's iterative annotation workflows, automated.

Section 6.1 describes annotating grep with ``nonnull`` "in an iterative
fashion": run the checker, annotate the variables whose dereferences it
flags, chase the new errors that appear on assignments to the annotated
variables, and fall back to casts where the type rules are insufficient
(flow-insensitivity, malloc results, parser-supplied initialisation).

Section 6.3 does the same with ``untainted``: the checker's errors on
printf-family calls identify the procedure parameters that must be
annotated as untainted; what remains afterwards are real format-string
bugs.

This module mechanises both loops over the IR, so the Table 1 / Table 2
columns (annotations, casts, errors) are produced by the same process
the authors performed by hand.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfront.ctypes import CType, FuncType, PointerType, is_pointer_like
from repro.cil import ir
from repro.cil.typesof import TypeError_, TypingContext, type_of_expr
from repro.core.checker.diagnostics import Report
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import (
    NONNULL,
    TAINTED,
    UNTAINTED,
    UNTAINTED_WITH_CONSTS,
)

# An annotatable entity: where a pointer type is declared.
#   ('global', name) | ('local', func, name) | ('formal', func, name)
#   | ('field', struct, fieldname)
Entity = Tuple[str, ...]


@dataclass
class NonnullAnnotationResult:
    program: ir.Program
    annotations: int
    casts: int
    report: Report

    @property
    def errors(self) -> int:
        return self.report.error_count

    def row(self) -> Dict[str, int]:
        return {
            "annotations": self.annotations,
            "casts": self.casts,
            "errors": self.errors,
        }


@dataclass
class UntaintedAnnotationResult:
    program: ir.Program
    annotations: int
    casts: int
    report: Report

    @property
    def errors(self) -> int:
        return self.report.error_count

    def row(self) -> Dict[str, int]:
        return {
            "annotations": self.annotations,
            "casts": self.casts,
            "errors": self.errors,
        }


# =========================================================== nonnull workflow


def annotate_nonnull(
    program: ir.Program,
    quals: Optional[QualifierSet] = None,
    flow_sensitive: bool = False,
) -> NonnullAnnotationResult:
    """Run the section-6.1 workflow: annotate, cast, re-check.

    With ``flow_sensitive`` the checker's guard-refinement extension is
    enabled, so NULL-guarded dereferences need no casts — the paper's
    predicted payoff of its planned flow-sensitivity (section 6.1).
    """
    quals = quals or QualifierSet([NONNULL])
    program = copy.deepcopy(program)

    deref_entities = _collect_deref_entities(program)
    nullable = _collect_nullable_entities(program)
    to_annotate = {
        e
        for e in deref_entities
        if e not in nullable and _entity_is_pointer(program, e)
    }
    for entity in to_annotate:
        _add_qual_to_entity(program, entity, "nonnull")
    _refresh_signatures(program)

    casts = 0
    casts += _insert_rhs_casts(program, quals, "nonnull")
    casts += _insert_deref_casts(program, quals, "nonnull", flow_sensitive)

    report = QualifierChecker(program, quals, flow_sensitive=flow_sensitive).check()
    return NonnullAnnotationResult(
        program=program,
        annotations=len(to_annotate),
        casts=casts,
        report=report,
    )


def _entity_of_lvalue(
    program: ir.Program, func: ir.Function, lv: ir.Lvalue
) -> Optional[Entity]:
    """The declaration site an l-value names, or None.

    Only l-values whose *final* component is a declared entity count:
    ``d->states[i].trans`` names the field ``trans``, but
    ``d->states[i].trans[c]`` names an anonymous cell reached *through*
    it (assigning 0 there says nothing about the field's nullability).
    """
    last = None  # the final offset component
    current = lv.offset
    while not isinstance(current, ir.NoOffset):
        last = current
        current = current.rest
    if isinstance(last, ir.IndexOff):
        return None
    if isinstance(last, ir.FieldOff):
        struct = _owning_struct(program, func, lv, last)
        if struct is not None:
            return ("field", struct, last.fieldname)
        return None
    if isinstance(lv.host, ir.VarHost) and isinstance(lv.offset, ir.NoOffset):
        name = lv.host.name
        for n, _t in func.formals:
            if n == name:
                return ("formal", func.name, name)
        for n, _t in func.locals:
            if n == name:
                return ("local", func.name, name)
        for g in program.globals:
            if g.name == name:
                return ("global", name)
    return None


def _owning_struct(
    program: ir.Program, func: ir.Function, lv: ir.Lvalue, target: ir.FieldOff
) -> Optional[str]:
    """The struct type the final FieldOff applies to, resolved with the
    typing context (several structs may declare same-named fields)."""
    from repro.cfront.ctypes import StructType, pointee_of, is_pointer_like
    from repro.cil.typesof import type_of_expr

    ctx = TypingContext.for_function(program, func)
    try:
        if isinstance(lv.host, ir.VarHost):
            current = ctx.var_type(lv.host.name)
        else:
            addr_type = type_of_expr(ctx, lv.host.addr)
            if not is_pointer_like(addr_type):
                return None
            current = pointee_of(addr_type)
        off = lv.offset
        while not isinstance(off, ir.NoOffset):
            if isinstance(off, ir.FieldOff):
                if not isinstance(current, StructType):
                    return None
                if off is target:
                    return current.name
                current = ctx.field_type(current.name, off.fieldname)
            else:
                if not is_pointer_like(current):
                    return None
                current = pointee_of(current)
            off = off.rest
    except TypeError_:
        return None
    return None


def _peel_addr(expr: ir.Expr) -> ir.Expr:
    """Strip pointer arithmetic and casts from a dereference base."""
    while True:
        if isinstance(expr, ir.BinOp) and expr.op == "ptradd":
            expr = expr.left
        elif isinstance(expr, ir.CastE):
            expr = expr.operand
        else:
            return expr


def _collect_deref_entities(program: ir.Program) -> Set[Entity]:
    out: Set[Entity] = set()
    for func in program.functions:
        for expr in _all_exprs(func):
            for node in ir.subexprs(expr):
                if isinstance(node, ir.Lval) and isinstance(node.lvalue.host, ir.MemHost):
                    base = _peel_addr(node.lvalue.host.addr)
                    if isinstance(base, ir.Lval):
                        entity = _entity_of_lvalue(program, func, base.lvalue)
                        if entity is not None:
                            out.add(entity)
    return out


def _collect_nullable_entities(program: ir.Program) -> Set[Entity]:
    """Entities assigned NULL anywhere: annotating them would be wrong."""
    out: Set[Entity] = set()
    for func in program.functions:
        for instr in ir.walk_instructions(func.body):
            if isinstance(instr, ir.Set) and isinstance(instr.expr, ir.NullConst):
                entity = _entity_of_lvalue(program, func, instr.lvalue)
                if entity is not None:
                    out.add(entity)
            elif (
                isinstance(instr, ir.Set)
                and isinstance(instr.expr, ir.IntConst)
                and instr.expr.value == 0
            ):
                entity = _entity_of_lvalue(program, func, instr.lvalue)
                if entity is not None:
                    out.add(entity)
    return out


def _entity_is_pointer(program: ir.Program, entity: Entity) -> bool:
    kind = entity[0]
    if kind == "global":
        try:
            return is_pointer_like(program.global_type(entity[1]))
        except KeyError:
            return False
    if kind in ("local", "formal"):
        func = program.function(entity[1])
        pool = func.formals if kind == "formal" else func.locals
        return any(n == entity[2] and is_pointer_like(t) for n, t in pool)
    if kind == "field":
        return any(
            n == entity[2] and is_pointer_like(t)
            for n, t in program.structs.get(entity[1], [])
        )
    return False


def _add_qual_to_entity(program: ir.Program, entity: Entity, qual: str) -> None:
    kind = entity[0]
    if kind == "global":
        for g in program.globals:
            if g.name == entity[1] and is_pointer_like(g.ctype):
                g.ctype = g.ctype.with_quals([qual])
    elif kind in ("local", "formal"):
        func = program.function(entity[1])
        target = func.formals if kind == "formal" else func.locals
        for i, (name, ctype) in enumerate(target):
            if name == entity[2] and is_pointer_like(ctype):
                target[i] = (name, ctype.with_quals([qual]))
    elif kind == "field":
        fields = program.structs.get(entity[1], [])
        for i, (name, ctype) in enumerate(fields):
            if name == entity[2] and is_pointer_like(ctype):
                fields[i] = (name, ctype.with_quals([qual]))


def _refresh_signatures(program: ir.Program) -> None:
    """Keep declared signatures in sync with (re-)annotated formals."""
    for func in program.functions:
        program.signatures[func.name] = FuncType(
            ret=func.ret,
            params=tuple(t for _n, t in func.formals),
            varargs=func.varargs,
        )


def _all_exprs(func: ir.Function):
    """Every top-level expression in a function (mirrors the checker's
    traversal)."""
    for stmt in ir.walk_stmts(func.body):
        if isinstance(stmt, ir.Instr):
            for instr in stmt.instrs:
                yield from _instr_exprs(instr)
        elif isinstance(stmt, ir.If):
            yield stmt.cond
        elif isinstance(stmt, ir.While):
            yield stmt.cond
            for instr in stmt.cond_instrs:
                yield from _instr_exprs(instr)
        elif isinstance(stmt, ir.Return) and stmt.expr is not None:
            yield stmt.expr


def _instr_exprs(instr: ir.Instruction):
    if isinstance(instr, ir.Set):
        yield ir.Lval(instr.lvalue)
        yield instr.expr
    elif isinstance(instr, ir.Call):
        yield from instr.args
        if instr.result is not None:
            yield ir.Lval(instr.result)


def _checker_for(program: ir.Program, quals: QualifierSet) -> QualifierChecker:
    return QualifierChecker(program, quals)


def _insert_rhs_casts(program: ir.Program, quals: QualifierSet, qual: str) -> int:
    """Casts for assignments (incl. call args/results and returns) into
    annotated targets whose RHS the type rules cannot derive."""
    casts = 0
    checker = _checker_for(program, quals)
    for func in program.functions:
        checker.func = func
        checker.ctx = TypingContext.for_function(
            program, func, ref_quals=checker.ref_qual_names
        )
        checker._memo = {}
        for instr in ir.walk_instructions(func.body):
            if isinstance(instr, ir.Set):
                try:
                    target_type = _lvalue_type(checker, instr.lvalue)
                except TypeError_:
                    continue
                if qual in target_type.quals and not checker.has_qual(
                    instr.expr, qual
                ):
                    instr.expr = ir.CastE(
                        target_type.strip_quals().with_quals([qual]), instr.expr
                    )
                    casts += 1
            elif isinstance(instr, ir.Call):
                casts += _cast_call(checker, program, instr, qual)
        # Returns.
        if qual in func.ret.quals:
            for stmt in ir.walk_stmts(func.body):
                if isinstance(stmt, ir.Return) and stmt.expr is not None:
                    if not checker.has_qual(stmt.expr, qual):
                        stmt.expr = ir.CastE(func.ret, stmt.expr)
                        casts += 1
    return casts


def _cast_call(
    checker: QualifierChecker, program: ir.Program, instr: ir.Call, qual: str
) -> int:
    casts = 0
    sig = program.signatures.get(instr.func)
    if sig is not None:
        for i, (arg, ptype) in enumerate(zip(instr.args, sig.params)):
            if qual in ptype.quals and not checker.has_qual(arg, qual):
                instr.args[i] = ir.CastE(
                    ptype.strip_quals().with_quals([qual]), arg
                )
                casts += 1
    if instr.result is not None:
        try:
            result_type = _lvalue_type(checker, instr.result)
        except TypeError_:
            return casts
        if qual in result_type.quals:
            provided = None
            if instr.result_cast is not None:
                # Like the checker (and CIL's pattern matching), the
                # surface cast does not erase the declared return
                # type's qualifiers.
                provided = instr.result_cast
                if sig is not None:
                    provided = provided.with_quals(sig.ret.quals)
            elif sig is not None:
                provided = sig.ret
            if provided is None or qual not in provided.quals:
                base = provided or result_type.strip_quals()
                instr.result_cast = base.strip_quals().with_quals([qual])
                casts += 1
    return casts


def _lvalue_type(checker: QualifierChecker, lv: ir.Lvalue) -> CType:
    from repro.cil.typesof import type_of_lvalue

    return type_of_lvalue(checker.ctx, lv)


def _insert_deref_casts(
    program: ir.Program,
    quals: QualifierSet,
    qual: str,
    flow_sensitive: bool = False,
) -> int:
    """Casts at dereference sites whose base cannot be shown nonnull.

    With ``flow_sensitive`` the traversal carries guard facts exactly as
    the flow-sensitive checker does, so guarded dereferences are left
    uncast."""
    from repro.core.checker.flow import GuardAnalysis

    count = [0]
    guards = GuardAnalysis(quals) if flow_sensitive else None

    def fix_addr(checker: QualifierChecker, addr: ir.Expr) -> ir.Expr:
        if checker.has_qual(addr, qual):
            return addr
        try:
            addr_type = type_of_expr(checker.ctx, addr)
        except TypeError_:
            addr_type = PointerType()
        count[0] += 1
        return ir.CastE(addr_type.strip_quals().with_quals([qual]), addr)

    checker = QualifierChecker(program, quals, flow_sensitive=flow_sensitive)
    for func in program.functions:
        checker.func = func
        checker.ctx = TypingContext.for_function(
            program, func, ref_quals=checker.ref_qual_names
        )
        checker._memo = {}
        checker._facts = set()
        if flow_sensitive:
            checker._addr_taken = GuardAnalysis.address_taken(func)
            _rewrite_deref_bases_flow(
                func, checker, guards, lambda a: fix_addr(checker, a)
            )
        else:
            _rewrite_deref_bases(func, lambda a: fix_addr(checker, a))
    return count[0]


def _rewrite_deref_bases_flow(
    func: ir.Function, checker: QualifierChecker, guards, fix
) -> None:
    """Rewrite dereference bases under the same guard facts the
    flow-sensitive checker computes: the CFG is solved once, then every
    instruction is rewritten under the facts holding at its program
    point, so guarded dereferences stay uncast.

    CFG blocks reference the *same* mutable instruction and statement
    objects as the function body, so in-place rewrites here are visible
    through the statement tree the printer renders."""
    from repro.cil.cfg import BRANCH, RETURN, build_cfg
    from repro.core.checker.flow import solve_guard_facts

    fix_expr, fix_lvalue = _make_expr_fixers(fix)
    graph = build_cfg(func)
    solution = solve_guard_facts(graph, guards, checker._addr_taken)
    for block in graph.blocks:
        for instr in block.instrs:
            checker._facts = set(solution.point[id(instr)])
            _fix_instr(instr, fix_expr, fix_lvalue)
        term = block.terminator
        if term.stmt is not None:
            checker._facts = set(
                solution.point.get(id(term.stmt), frozenset())
            )
        if term.kind == BRANCH:
            term.stmt.cond = fix_expr(term.stmt.cond)
        elif term.kind == RETURN and term.stmt.expr is not None:
            term.stmt.expr = fix_expr(term.stmt.expr)
    checker._facts = set()


def _make_expr_fixers(fix):
    """Build (fix_expr, fix_lvalue) that rewrite every dereference base
    with ``fix`` (bottom-up, rebuilding the frozen expression trees)."""

    def fix_expr(expr: ir.Expr) -> ir.Expr:
        if isinstance(expr, ir.Lval):
            return ir.Lval(fix_lvalue(expr.lvalue))
        if isinstance(expr, ir.AddrOf):
            return ir.AddrOf(fix_lvalue(expr.lvalue))
        if isinstance(expr, ir.UnOp):
            return ir.UnOp(expr.op, fix_expr(expr.operand))
        if isinstance(expr, ir.BinOp):
            return ir.BinOp(expr.op, fix_expr(expr.left), fix_expr(expr.right))
        if isinstance(expr, ir.CastE):
            return ir.CastE(expr.to_type, fix_expr(expr.operand))
        if isinstance(expr, ir.CondE):
            return ir.CondE(
                fix_expr(expr.cond), fix_expr(expr.then), fix_expr(expr.otherwise)
            )
        return expr

    def fix_lvalue(lv: ir.Lvalue) -> ir.Lvalue:
        host = lv.host
        if isinstance(host, ir.MemHost):
            host = ir.MemHost(fix(fix_expr(host.addr)))
        offset = fix_offset(lv.offset)
        return ir.Lvalue(host, offset)

    def fix_offset(off: ir.Offset) -> ir.Offset:
        if isinstance(off, ir.FieldOff):
            return ir.FieldOff(off.fieldname, fix_offset(off.rest))
        if isinstance(off, ir.IndexOff):
            return ir.IndexOff(fix_expr(off.index), fix_offset(off.rest))
        return off

    return fix_expr, fix_lvalue


def _rewrite_deref_bases(func: ir.Function, fix) -> None:
    fix_expr, fix_lvalue = _make_expr_fixers(fix)
    for stmt in ir.walk_stmts(func.body):
        if isinstance(stmt, ir.Instr):
            for instr in stmt.instrs:
                _fix_instr(instr, fix_expr, fix_lvalue)
        elif isinstance(stmt, ir.If):
            stmt.cond = fix_expr(stmt.cond)
        elif isinstance(stmt, ir.While):
            stmt.cond = fix_expr(stmt.cond)
            for instr in stmt.cond_instrs:
                _fix_instr(instr, fix_expr, fix_lvalue)
        elif isinstance(stmt, ir.Return) and stmt.expr is not None:
            stmt.expr = fix_expr(stmt.expr)


def _fix_instr(instr: ir.Instruction, fix_expr, fix_lvalue) -> None:
    if isinstance(instr, ir.Set):
        instr.lvalue = fix_lvalue(instr.lvalue)
        instr.expr = fix_expr(instr.expr)
    elif isinstance(instr, ir.Call):
        instr.args = [fix_expr(a) for a in instr.args]
        if instr.result is not None:
            instr.result = fix_lvalue(instr.result)


# ========================================================= untainted workflow


def annotate_untainted(
    program: ir.Program,
    trust_constants: bool = True,
    max_iterations: int = 20,
) -> UntaintedAnnotationResult:
    """Run the section-6.3 workflow: iteratively annotate procedure
    parameters used as format strings; remaining errors are real
    format-string vulnerabilities."""
    untainted = UNTAINTED_WITH_CONSTS if trust_constants else UNTAINTED
    quals = QualifierSet([untainted, TAINTED])
    program = copy.deepcopy(program)

    annotations = 0
    casts = 0
    for _ in range(max_iterations):
        report = QualifierChecker(program, quals).check()
        progressed = False
        for diag in report.errors_for("untainted"):
            func = program.function(diag.function)
            formal = _failing_formal(diag.message, func)
            if formal is not None:
                _add_untainted_to_formal(program, func, formal)
                annotations += 1
                progressed = True
        if not progressed:
            break
        _refresh_signatures_partial(program)

    report = QualifierChecker(program, quals).check()
    if not trust_constants:
        # Without the constants rule, string literals need casts.
        casts += _cast_string_literals(program, quals)
        report = QualifierChecker(program, quals).check()
    return UntaintedAnnotationResult(
        program=program,
        annotations=annotations,
        casts=casts,
        report=report,
    )


def _failing_formal(message: str, func: ir.Function) -> Optional[str]:
    """If a diagnostic says an untainted argument was fed from a plain
    formal parameter of the enclosing function, that formal is the
    next annotation (the paper's bftpd needed two of these)."""
    for name, ctype in func.formals:
        if f"but {name} " in message and is_pointer_like(ctype):
            return name
    return None


def _add_untainted_to_formal(
    program: ir.Program, func: ir.Function, formal: str
) -> None:
    for i, (name, ctype) in enumerate(func.formals):
        if name == formal:
            func.formals[i] = (name, ctype.with_quals(["untainted"]))


def _refresh_signatures_partial(program: ir.Program) -> None:
    for func in program.functions:
        program.signatures[func.name] = FuncType(
            ret=func.ret,
            params=tuple(t for _n, t in func.formals),
            varargs=func.varargs,
        )


def _cast_string_literals(program: ir.Program, quals: QualifierSet) -> int:
    """Wrap string-literal arguments to untainted parameters in casts."""
    casts = 0
    for func in program.functions:
        for instr in ir.walk_instructions(func.body):
            if not isinstance(instr, ir.Call):
                continue
            sig = program.signatures.get(instr.func)
            if sig is None:
                continue
            for i, (arg, ptype) in enumerate(zip(instr.args, sig.params)):
                if "untainted" in ptype.quals and isinstance(arg, ir.StrConst):
                    instr.args[i] = ir.CastE(
                        ptype.strip_quals().with_quals(["untainted"]), arg
                    )
                    casts += 1
    return casts
