"""The paper's evaluation (section 6), packaged as callable experiments.

Each function reproduces one table or claim and returns a row-oriented
dict mirroring the paper's layout, alongside the paper's published
numbers for comparison.  The benchmark harness and EXPERIMENTS.md are
generated from these.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.cfront.parser import parse_c
from repro.cil import ir
from repro.cil.lower import lower_unit
from repro.core.checker.typecheck import QualifierChecker, check_program
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import (
    NEG,
    NONNULL,
    NONZERO,
    POS,
    UNALIASED,
    UNIQUE,
    standard_qualifiers,
)
from repro.core.soundness.checker import check_soundness
from repro.analysis.annotate import annotate_nonnull, annotate_untainted
from repro.analysis.stats import count_lines, count_printf_calls, program_stats
from repro.corpus import (
    generate_bftpd,
    generate_dfa_module,
    generate_identd,
    generate_mingetty,
)

#: The paper's published numbers, for side-by-side reporting.
PAPER_TABLE1 = {
    "program": "grep",
    "files": "dfa.c, dfa.h",
    "lines": 2287,
    "dereferences": 1072,
    "annotations": 114,
    "casts": 59,
    "errors": 0,
}

PAPER_TABLE2 = {
    "bftpd": {"lines": 750, "printf_calls": 134, "annotations": 2, "casts": 0, "errors": 1},
    "mingetty": {"lines": 293, "printf_calls": 23, "annotations": 1, "casts": 0, "errors": 0},
    "identd": {"lines": 228, "printf_calls": 21, "annotations": 0, "casts": 0, "errors": 0},
}

PAPER_UNIQUENESS = {"validated_references": 49, "errors": 0}

#: Section 4's timing claims (seconds, on 2005 hardware with Simplify).
PAPER_SOUNDNESS_BOUNDS = {"value": 1.0, "ref": 30.0}
PAPER_TYPECHECK_BOUND = 1.0  # section 6: "under one second"


def compile_corpus(source: str) -> ir.Program:
    return lower_unit(parse_c(source))


# --------------------------------------------------------------- Table 1


def table1_nonnull() -> Dict[str, object]:
    """Table 1: the nonnull experiment on the dfa module."""
    source = generate_dfa_module()
    program = compile_corpus(source)
    stats = program_stats(source, program)
    result = annotate_nonnull(program)
    return {
        "program": "grep (synthetic dfa module)",
        "files": "dfa.c (generated)",
        "lines": stats.lines,
        "dereferences": stats.dereferences,
        "annotations": result.annotations,
        "casts": result.casts,
        "errors": result.errors,
        "paper": PAPER_TABLE1,
    }


# --------------------------------------------------------------- Table 2


_SERVERS = {
    "bftpd": (generate_bftpd, ("sendstrf", "log_event")),
    "mingetty": (generate_mingetty, ("error",)),
    "identd": (generate_identd, ()),
}


def table2_untainted() -> Dict[str, Dict[str, object]]:
    """Table 2: the untainted format-string experiment on the three
    synthetic daemons."""
    rows: Dict[str, Dict[str, object]] = {}
    for name, (gen, wrappers) in _SERVERS.items():
        source = gen()
        program = compile_corpus(source)
        result = annotate_untainted(program)
        rows[name] = {
            "lines": count_lines(source),
            "printf_calls": count_printf_calls(result.program, wrappers),
            "annotations": result.annotations,
            "casts": result.casts,
            "errors": result.errors,
            "error_messages": [str(d) for d in result.report.diagnostics],
            "paper": PAPER_TABLE2[name],
        }
    return rows


# ------------------------------------------------------- Section 6.2 (unique)


def uniqueness_experiment() -> Dict[str, object]:
    """Section 6.2: annotate the dfa global with unique; the checker
    validates every subsequent reference."""
    source = generate_dfa_module()
    program = compile_corpus(source)
    program = copy.deepcopy(program)
    for g in program.globals:
        if g.name == "dfa":
            g.ctype = g.ctype.with_quals(["unique"])
    report = check_program(program, QualifierSet([UNIQUE]))
    references = _count_global_references(program, "dfa")
    return {
        "global": "dfa",
        "validated_references": references,
        "errors": report.error_count,
        "error_messages": [str(d) for d in report.diagnostics],
        "paper": PAPER_UNIQUENESS,
    }


def _count_global_references(program: ir.Program, name: str) -> int:
    """Occurrences of the global: dereferences through it plus
    assignments to it (each validated by the checker)."""
    count = 0
    for func in program.functions:
        for instr in ir.walk_instructions(func.body):
            exprs: List[ir.Expr] = []
            if isinstance(instr, ir.Set):
                exprs = [ir.Lval(instr.lvalue), instr.expr]
                if instr.lvalue.var_name == name:
                    count += 1  # a checked assignment to the global
            elif isinstance(instr, ir.Call):
                exprs = list(instr.args)
                if instr.result is not None:
                    exprs.append(ir.Lval(instr.result))
                    if instr.result.var_name == name:
                        count += 1
            for e in exprs:
                for node in ir.subexprs(e):
                    if (
                        isinstance(node, ir.Lval)
                        and isinstance(node.lvalue.host, ir.MemHost)
                    ):
                        base = node.lvalue.host.addr
                        while isinstance(base, (ir.BinOp, ir.CastE)):
                            base = (
                                base.left
                                if isinstance(base, ir.BinOp)
                                else base.operand
                            )
                        if (
                            isinstance(base, ir.Lval)
                            and base.lvalue.var_name == name
                        ):
                            count += 1
    # Conditions also reference the global.
    for func in program.functions:
        for stmt in ir.walk_stmts(func.body):
            conds = []
            if isinstance(stmt, ir.If):
                conds = [stmt.cond]
            elif isinstance(stmt, ir.While):
                conds = [stmt.cond]
            for cond in conds:
                for node in ir.subexprs(cond):
                    if isinstance(node, ir.Lval) and isinstance(
                        node.lvalue.host, ir.MemHost
                    ):
                        base = node.lvalue.host.addr
                        while isinstance(base, (ir.BinOp, ir.CastE)):
                            base = (
                                base.left
                                if isinstance(base, ir.BinOp)
                                else base.operand
                            )
                        if (
                            isinstance(base, ir.Lval)
                            and base.lvalue.var_name == name
                        ):
                            count += 1
    return count


# ------------------------------------------------------- Section 4 timings


def soundness_timings(time_limit: float = 45.0) -> Dict[str, Dict[str, object]]:
    """Section 4's claims: each value qualifier proves in under a
    second (Simplify, 2005); each ref qualifier in under 30 seconds."""
    quals = standard_qualifiers()
    rows: Dict[str, Dict[str, object]] = {}
    for qdef, kind in (
        (POS, "value"),
        (NEG, "value"),
        (NONZERO, "value"),
        (NONNULL, "value"),
        (UNIQUE, "ref"),
        (UNALIASED, "ref"),
    ):
        report = check_soundness(qdef, quals, time_limit=time_limit)
        rows[qdef.name] = {
            "kind": kind,
            "sound": report.sound,
            "seconds": report.elapsed,
            "obligations": len(report.results),
            "paper_bound_seconds": PAPER_SOUNDNESS_BOUNDS[kind],
        }
    return rows


def typecheck_timings() -> Dict[str, Dict[str, object]]:
    """Section 6: 'the extra compile time for performing qualifier
    checking in CIL is under one second' — for every experiment
    program."""
    quals = standard_qualifiers(trust_constants=True)
    rows: Dict[str, Dict[str, object]] = {}
    sources = {
        "dfa (synthetic grep)": generate_dfa_module(),
        "bftpd (synthetic)": generate_bftpd(),
        "mingetty (synthetic)": generate_mingetty(),
        "identd (synthetic)": generate_identd(),
    }
    for name, source in sources.items():
        program = compile_corpus(source)
        start = time.perf_counter()
        QualifierChecker(program, quals).check()
        elapsed = time.perf_counter() - start
        rows[name] = {
            "lines": count_lines(source),
            "seconds": elapsed,
            "paper_bound_seconds": PAPER_TYPECHECK_BOUND,
        }
    return rows
