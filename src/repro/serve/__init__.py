"""Checker-as-a-service: the ``repro serve`` daemon and its client.

A long-lived process (:mod:`repro.serve.server`) keeps
:class:`repro.api.Workspace` state — parsed units, per-function
fingerprints, the warm proof cache — resident and serves
``check``/``prove``/``infer``/``status``/``invalidate``/``shutdown``
requests over a unix socket and/or a TCP ``--listen host:port``
endpoint, so an edit loop pays only for the functions that actually
changed.  With ``--workers N`` each configuration's workspace lives in
a persistent worker *process* (:mod:`repro.serve.workers`), so
concurrent requests use multiple cores; a parent-side dedup table
(:mod:`repro.serve.dedup`) single-flights identical in-flight
obligations across requests.  The wire format is newline-delimited
JSON (:mod:`repro.serve.protocol`); responses embed the same schema-v1
``Report.to_dict()`` payloads the CLI prints, and unit results stream
back as they settle.

Use :func:`repro.serve.client.connect` (re-exported here) to talk to a
running daemon, or pass ``--server <address>`` to ``repro check`` /
``prove`` / ``infer``.  See docs/serve.md for the protocol spec.
"""

from repro.serve.client import ServeClient, ServeError, connect
from repro.serve.protocol import (
    DEFAULT_SOCKET,
    PROTOCOL_VERSION,
    parse_address,
)
from repro.serve.server import ServeServer, serve_main

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeServer",
    "connect",
    "parse_address",
    "serve_main",
    "DEFAULT_SOCKET",
    "PROTOCOL_VERSION",
]
