"""The ``repro serve`` wire protocol: newline-delimited JSON, v1.

One request per line::

    {"id": <string|number>, "op": "check", "params": {...}}

The server answers with zero or more *stream* lines followed by exactly
one *done* line, all carrying the request's ``id`` (requests on one
connection may interleave; consumers demultiplex on ``id``)::

    {"id": ..., "stream": "unit",  "unit":  {<UnitResult.to_dict()>}}
    {"id": ..., "stream": "event", "event": {<progress event>}}
    {"id": ..., "done": true, "report": {<Report.to_dict()>}}   # batch ops
    {"id": ..., "done": true, "result": {...}}                  # status &c.
    {"id": ..., "done": true, "error": {"code": ..., "message": ...}}

``report`` payloads are exactly the schema-v1 dictionaries the CLI's
``--format json`` prints (:data:`repro.api.SCHEMA_VERSION`); ``unit``
stream lines are the same per-unit records ``--format jsonl`` emits,
shipped the moment each unit settles.  An unparseable request line is
answered with ``id: null`` and code ``bad-json``.

This module is the *shared* half of the protocol: operation names,
error codes, line encoding, and the validated translation from request
``params`` to :mod:`repro.api` request dataclasses.  Both the server
and any client (including tests) should build on it rather than
hand-rolling message shapes.  Additive evolution only: new params and
new response keys may appear under the same protocol version; removing
or renaming either bumps :data:`PROTOCOL_VERSION`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

from repro import api
from repro.cache.store import DEFAULT_CACHE_DIR

#: Version of the message shapes above (reported by ``status``).
PROTOCOL_VERSION = 1

#: Default unix-socket path, overridable with ``REPRO_SERVE_SOCKET``.
DEFAULT_SOCKET = ".repro-serve.sock"

#: Environment variable naming the default server *address* for
#: clients (``--server``): either a unix-socket path or a TCP
#: ``host:port`` / ``tcp://host:port`` form.  Takes precedence over
#: ``REPRO_SERVE_SOCKET`` when both are set.
ADDR_ENV = "REPRO_SERVE_ADDR"

#: The operations a daemon understands.
OPS = ("check", "prove", "infer", "status", "invalidate", "shutdown")

# Error codes (the ``code`` field of an error response).
E_BAD_JSON = "bad-json"  # request line is not a JSON object
E_BAD_REQUEST = "bad-request"  # bad/missing params for a known op
E_UNKNOWN_OP = "unknown-op"
E_INPUT = "input-error"  # unreadable/unparseable input files (CLI exit 2)
E_SHUTTING_DOWN = "shutting-down"  # daemon is draining; no new work
E_INTERNAL = "internal"  # daemon-side bug, survived (CLI exit 3)
E_WORKER_CRASH = "worker-crashed"  # workspace worker died (CLI exit 3)

#: Client-side code (never sent by a daemon): the connection died
#: before the ``done`` line.  Shares the error-code namespace so the
#: CLI's exit-code mapping treats all codes uniformly.
E_CONNECTION_LOST = "connection-lost"


class ProtocolError(ValueError):
    """A request the daemon must refuse, with its wire error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def encode(obj: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline, UTF-8."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError`
    (``bad-json``) unless it is a JSON object."""
    try:
        msg = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(E_BAD_JSON, f"unparseable request line: {exc}")
    if not isinstance(msg, dict):
        raise ProtocolError(
            E_BAD_JSON, f"request must be a JSON object, got {type(msg).__name__}"
        )
    return msg


# ----------------------------------------------- params -> api requests
#
# A batch request's ``params`` is one flat object: the workspace
# configuration keys (which daemon workspace serves it) plus the
# request keys (what that workspace should do).  Unknown keys are
# rejected — a typo silently ignored would return wrong verdicts.

_CONFIG_KEYS = frozenset(("quals", "no_std", "trust_constants"))
_BATCH_KEYS = frozenset(("files", "keep_going", "jobs", "unit_timeout"))
_OP_KEYS = {
    "check": _BATCH_KEYS | {"flow_sensitive"},
    "prove": _BATCH_KEYS
    | {
        "qualifier", "time_limit", "retries", "cache", "cache_dir",
        "session", "shard", "explain",
    },
    "infer": _BATCH_KEYS | {"qualifier", "flow_sensitive"},
    "invalidate": frozenset(("path",)),
    "status": frozenset(),
    "shutdown": frozenset(),
}


def _require_params_dict(params: Any) -> Dict[str, Any]:
    if params is None:
        return {}
    if not isinstance(params, dict):
        raise ProtocolError(
            E_BAD_REQUEST,
            f"params must be an object, got {type(params).__name__}",
        )
    return params


def _check_keys(op: str, params: Dict[str, Any]) -> None:
    allowed = _OP_KEYS[op] | _CONFIG_KEYS
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ProtocolError(
            E_BAD_REQUEST, f"unknown param(s) for {op!r}: {', '.join(unknown)}"
        )


def _files(params: Dict[str, Any]) -> Tuple[str, ...]:
    files = params.get("files")
    if (
        not isinstance(files, (list, tuple))
        or not files
        or not all(isinstance(f, str) for f in files)
    ):
        raise ProtocolError(
            E_BAD_REQUEST, "params.files must be a non-empty list of paths"
        )
    return tuple(files)


def config_from_params(params: Any) -> api.SessionConfig:
    """The workspace configuration a request runs under (requests with
    equal configurations share one daemon workspace)."""
    params = _require_params_dict(params)
    quals = params.get("quals") or ()
    if not isinstance(quals, (list, tuple)) or not all(
        isinstance(q, str) for q in quals
    ):
        raise ProtocolError(
            E_BAD_REQUEST, "params.quals must be a list of file paths"
        )
    return api.SessionConfig(
        quals=tuple(quals),
        no_std=bool(params.get("no_std", False)),
        trust_constants=bool(params.get("trust_constants", False)),
    )


def batch_request(op: str, params: Any):
    """Validate ``params`` and build the :mod:`repro.api` request
    dataclass for one batch op (``check``/``prove``/``infer``)."""
    params = _require_params_dict(params)
    _check_keys(op, params)
    common = dict(
        files=_files(params),
        keep_going=bool(params.get("keep_going", False)),
        jobs=int(params.get("jobs", 1)),
        unit_timeout=params.get("unit_timeout"),
    )
    try:
        if op == "check":
            return api.CheckRequest(
                flow_sensitive=bool(params.get("flow_sensitive", False)),
                **common,
            )
        if op == "prove":
            return api.ProveRequest(
                qualifier=params.get("qualifier"),
                time_limit=float(params.get("time_limit", 45.0)),
                retries=int(params.get("retries", 0)),
                cache=bool(params.get("cache", True)),
                cache_dir=str(params.get("cache_dir", DEFAULT_CACHE_DIR)),
                session=bool(params.get("session", True)),
                shard=bool(params.get("shard", True)),
                explain=bool(params.get("explain", True)),
                **common,
            )
        if op == "infer":
            qualifier = params.get("qualifier")
            if not isinstance(qualifier, str) or not qualifier:
                raise ProtocolError(
                    E_BAD_REQUEST, "infer requires params.qualifier"
                )
            return api.InferRequest(
                qualifier=qualifier,
                flow_sensitive=bool(params.get("flow_sensitive", False)),
                **common,
            )
    except (TypeError, ValueError) as exc:
        if isinstance(exc, ProtocolError):
            raise
        raise ProtocolError(E_BAD_REQUEST, f"bad params for {op!r}: {exc}")
    raise ProtocolError(E_UNKNOWN_OP, f"not a batch op: {op!r}")


# ------------------------------------------------------------- addresses
#
# A daemon address is either a unix-socket path or a TCP endpoint; the
# client, the CLI and the ``serve`` subcommand all accept both forms:
#
#   .repro-serve.sock      unix-socket path (anything with a path
#                          separator, or no usable host:port shape)
#   host:1234              TCP — host plus an all-digits port
#   tcp://host:1234        TCP, explicit scheme
#   [::1]:1234             TCP, bracketed IPv6 host
#
# The one ambiguity — a *relative* file name that happens to look like
# ``name:123`` — is resolved in favor of TCP; spell such a socket path
# ``./name:123``.


def _host_port(text: str) -> Tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"not a host:port address: {text!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]  # bracketed IPv6 literal
    return (host or "127.0.0.1", int(port))


def parse_address(address: str):
    """Classify one daemon address: ``("unix", path)`` or
    ``("tcp", host, port)``."""
    if address.startswith("tcp://"):
        host, port = _host_port(address[len("tcp://"):])
        return ("tcp", host, port)
    if "/" not in address and not address.startswith("."):
        try:
            host, port = _host_port(address)
        except ValueError:
            return ("unix", address)
        return ("tcp", host, port)
    return ("unix", address)


def parse_listen(listen: str) -> Tuple[str, int]:
    """Parse a ``--listen`` value into ``(host, port)`` (port 0 asks
    the kernel for an ephemeral port)."""
    if listen.startswith("tcp://"):
        listen = listen[len("tcp://"):]
    return _host_port(listen)


def format_address(address: Tuple[str, int]) -> str:
    """Render ``(host, port)`` back into the ``host:port`` form
    clients accept (IPv6 hosts get their brackets back)."""
    host, port = address
    if ":" in host:
        host = f"[{host}]"
    return f"{host}:{port}"


def default_server_address():
    """The client-side default daemon address:
    ``$REPRO_SERVE_ADDR``, else ``$REPRO_SERVE_SOCKET``, else None."""
    import os

    return os.environ.get(ADDR_ENV) or os.environ.get("REPRO_SERVE_SOCKET") or None
