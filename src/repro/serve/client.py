"""Synchronous client for the ``repro serve`` daemon.

:func:`connect` opens the unix socket and returns a
:class:`ServeClient`; :meth:`ServeClient.request` sends one operation
and blocks until its ``done`` line, invoking ``on_unit``/``on_event``
callbacks for stream lines as they arrive — the same shape as the
``on_result``/``on_event`` callbacks of the in-process
:mod:`repro.api`, which is what lets the CLI's ``--server`` flag
produce identical output either way::

    from repro.serve import connect

    with connect(".repro-serve.sock") as client:
        final = client.request("check", {"files": ["a.c"]})
        report = repro.api.report_from_dict(final["report"])
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable, Dict, Optional

from repro.serve import protocol


class ServeError(Exception):
    """An error response from the daemon (or a broken conversation)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code

    def __str__(self) -> str:
        return f"{self.code}: {super().__str__()}"


class ServeClient:
    """One connection to a daemon; requests run one at a time."""

    def __init__(self, sock: socket.socket, socket_path: str):
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self.socket_path = socket_path
        self._next_id = 0

    def request(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        on_unit: Optional[Callable[[dict], None]] = None,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> Dict[str, Any]:
        """Send one request; stream lines hit the callbacks as they
        arrive; returns the final ``done`` message.  Raises
        :class:`ServeError` on an error response."""
        self._next_id += 1
        rid = f"c{self._next_id}"
        message: Dict[str, Any] = {"id": rid, "op": op}
        if params is not None:
            message["params"] = params
        self._sock.sendall(protocol.encode(message))
        while True:
            line = self._reader.readline()
            if not line:
                raise ServeError(
                    "connection-closed",
                    "daemon closed the connection mid-request",
                )
            response = json.loads(line)
            if response.get("id") != rid:
                continue  # a line for some other request on this socket
            stream = response.get("stream")
            if stream == "unit":
                if on_unit is not None:
                    on_unit(response.get("unit") or {})
                continue
            if stream == "event":
                if on_event is not None:
                    on_event(response.get("event") or {})
                continue
            if response.get("done"):
                error = response.get("error")
                if error:
                    raise ServeError(
                        error.get("code", protocol.E_INTERNAL),
                        error.get("message", ""),
                    )
                return response

    def status(self) -> Dict[str, Any]:
        """The daemon's ``status`` payload (see docs/serve.md)."""
        return self.request("status")["result"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain in-flight work and stop."""
        return self.request("shutdown")["result"]

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(socket_path: str, timeout: float = 10.0) -> ServeClient:
    """Open a connection to the daemon at ``socket_path``.

    ``timeout`` bounds the *connect* only; established requests block
    until their ``done`` line (a long prove is supposed to take long).
    Raises :class:`OSError` when nothing is listening — callers that
    want in-process fallback catch that.
    """
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(socket_path)
    except OSError:
        sock.close()
        raise
    sock.settimeout(None)
    return ServeClient(sock, socket_path)
