"""Synchronous client for the ``repro serve`` daemon.

:func:`connect` opens the daemon's socket — a unix-socket path or a
TCP ``host:port`` / ``tcp://host:port`` address, see
:func:`repro.serve.protocol.parse_address` — and returns a
:class:`ServeClient`; :meth:`ServeClient.request` sends one operation
and blocks until its ``done`` line, invoking ``on_unit``/``on_event``
callbacks for stream lines as they arrive — the same shape as the
``on_result``/``on_event`` callbacks of the in-process
:mod:`repro.api`, which is what lets the CLI's ``--server`` flag
produce identical output either way::

    from repro.serve import connect

    with connect(".repro-serve.sock") as client:
        final = client.request("check", {"files": ["a.c"]})
        report = repro.api.report_from_dict(final["report"])

A connection that dies before the ``done`` line raises
``ServeError("connection-lost", ...)`` with :attr:`ServeError.
mid_stream` telling whether any stream line had already reached a
callback — the CLI uses that to decide between a clean in-process
fallback (nothing printed yet) and a hard exit (output already
streamed; re-running would duplicate it).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable, Dict, Optional

from repro.serve import protocol


class ServeError(Exception):
    """An error response from the daemon (or a broken conversation)."""

    def __init__(self, code: str, message: str, mid_stream: bool = False):
        super().__init__(message)
        self.code = code
        #: True when at least one stream line of the failed request had
        #: already been delivered to an ``on_unit``/``on_event``
        #: callback — output may already be on the caller's terminal.
        self.mid_stream = mid_stream

    def __str__(self) -> str:
        return f"{self.code}: {super().__str__()}"


class ServeClient:
    """One connection to a daemon; requests run one at a time."""

    def __init__(self, sock: socket.socket, address: str):
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self.address = address
        self._next_id = 0

    # Kept for callers that predate TCP support.
    @property
    def socket_path(self) -> str:
        return self.address

    def request(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        on_unit: Optional[Callable[[dict], None]] = None,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> Dict[str, Any]:
        """Send one request; stream lines hit the callbacks as they
        arrive; returns the final ``done`` message.  Raises
        :class:`ServeError` on an error response, or with code
        ``connection-lost`` when the daemon goes away mid-request."""
        self._next_id += 1
        rid = f"c{self._next_id}"
        message: Dict[str, Any] = {"id": rid, "op": op}
        if params is not None:
            message["params"] = params
        delivered = False

        def lost(reason: str) -> ServeError:
            return ServeError(
                protocol.E_CONNECTION_LOST, reason, mid_stream=delivered
            )

        try:
            self._sock.sendall(protocol.encode(message))
        except OSError as exc:
            raise lost(f"failed to send request: {exc}")
        while True:
            try:
                line = self._reader.readline()
            except OSError as exc:
                raise lost(f"connection broke mid-request: {exc}")
            if not line:
                raise lost("daemon closed the connection mid-request")
            if not line.endswith("\n"):
                # A partial final line: the daemon died mid-write.
                raise lost("daemon connection dropped mid-line")
            try:
                response = json.loads(line)
            except ValueError:
                raise lost("daemon sent an unparseable line and went away")
            if response.get("id") != rid:
                continue  # a line for some other request on this socket
            stream = response.get("stream")
            if stream == "unit":
                if on_unit is not None:
                    on_unit(response.get("unit") or {})
                    delivered = True
                continue
            if stream == "event":
                if on_event is not None:
                    on_event(response.get("event") or {})
                    delivered = True
                continue
            if response.get("done"):
                error = response.get("error")
                if error:
                    raise ServeError(
                        error.get("code", protocol.E_INTERNAL),
                        error.get("message", ""),
                        mid_stream=delivered,
                    )
                return response

    def status(self) -> Dict[str, Any]:
        """The daemon's ``status`` payload (see docs/serve.md)."""
        return self.request("status")["result"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain in-flight work and stop."""
        return self.request("shutdown")["result"]

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(address: str, timeout: float = 10.0) -> ServeClient:
    """Open a connection to the daemon at ``address`` (unix-socket
    path, ``host:port``, or ``tcp://host:port``).

    ``timeout`` bounds the *connect* only; established requests block
    until their ``done`` line (a long prove is supposed to take long).
    Raises :class:`OSError` when nothing is listening — callers that
    want in-process fallback catch that.
    """
    parsed = protocol.parse_address(address)
    if parsed[0] == "tcp":
        sock = socket.create_connection(parsed[1:], timeout=timeout)
        sock.settimeout(None)
        return ServeClient(sock, address)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(parsed[1])
    except OSError:
        sock.close()
        raise
    sock.settimeout(None)
    return ServeClient(sock, address)
