"""Process-pool workspace sharding for the ``repro serve`` daemon.

The daemon's CPU-bound work used to run on executor *threads* against
resident :class:`repro.api.Workspace` objects, so the GIL serialized
concurrent requests even when they hit distinct configurations.  This
module moves each workspace behind a **host**: either

- :class:`ThreadHost` — the original shape, the workspace lives in the
  daemon process and runs on the executor thread (the default, and
  what in-process observability and tests rely on); or
- :class:`ProcessHost` — the workspace lives in a persistent child
  process (one per resident configuration, spawned on demand), and the
  executor thread degenerates to a message pump over a duplex pipe.
  Distinct configurations then check on distinct cores, and a crashing
  worker poisons only its own workspace: the parent answers the
  in-flight request with a ``worker-crashed`` error, drops the host,
  and the next request for that configuration spawns a fresh one.

Both hosts expose the same four calls (``run``/``invalidate``/
``stats``/``close``) so the server's router does not care which mode
it is in.  The child protocol is a tuple-per-message pipe dialogue::

    parent -> child : ("run", op, params) | ("invalidate", path)
                      | ("stats",) | ("close",)
    child -> parent : ("unit", dict) | ("event", dict)       # streamed
                      | ("done", report_dict, stats_dict)
                      | ("error", code, message, stats_dict)
                      | ("invalidated", count, stats_dict)
                      | ("stats", stats_dict)
                      | ("dedup_acquire", key)                # upcalls
                      | ("dedup_publish", key, payload)

The ``dedup_*`` upcalls are how cross-request obligation dedup keeps
working across process boundaries: the table lives in the parent
(:mod:`repro.serve.dedup`), the child talks to it through
:class:`_DedupProxy`, and the parent services the upcalls inline in
its per-request message pump — each request has a dedicated executor
thread, so blocking that thread on a follower's wait is exactly the
single-flight semantics the in-process table has.

Worker lifecycle reuses the batch-pool supervision machinery
(:func:`repro.harness.supervisor.pool_context` for fork-vs-spawn,
:func:`repro.harness.batch._reap` so no worker ever outlives the
daemon as a zombie).
"""

from __future__ import annotations

import signal
from typing import Any, Callable, Dict, Optional, Tuple

from repro import api
from repro.cfront.lexer import LexError
from repro.cfront.parser import ParseError
from repro.cil.lower import LowerError
from repro.core.qualifiers.parser import QualParseError
from repro.harness.batch import _reap
from repro.harness.supervisor import pool_context
from repro.serve import protocol

#: Exceptions that mean "your input was bad", not "the daemon broke" —
#: the same set the CLI maps to exit code 2 for in-process runs.
INPUT_ERRORS = (
    ParseError,
    LexError,
    LowerError,
    QualParseError,
    UnicodeDecodeError,
    OSError,
    RecursionError,
    api.UnknownQualifierError,
)

#: How long a spawn-time handshake or graceful close may take before
#: the parent gives up on the child.
_SPAWN_TIMEOUT = 30.0
_CLOSE_TIMEOUT = 5.0

Emit = Callable[[str, Any], None]


class WorkerCrashed(Exception):
    """A worker process died mid-conversation (crash, OOM kill)."""

    def __init__(self, pid: Optional[int], exitcode: Optional[int]):
        self.pid = pid
        self.exitcode = exitcode
        super().__init__(
            f"workspace worker pid={pid} died (exitcode={exitcode}); "
            "its workspace will be respawned on the next request"
        )


class RemoteError(Exception):
    """A typed error answer from a worker (maps to a wire error)."""

    def __init__(self, code: str, message: str):
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}")


class ThreadHost:
    """The in-process shape: workspace state lives in the daemon."""

    def __init__(self, config: api.SessionConfig, dedup=None):
        self.workspace = api.Workspace(config, incremental=True)
        self.workspace.dedup = dedup

    @property
    def alive(self) -> bool:
        return True

    @property
    def pid(self) -> None:
        return None

    def run(self, op: str, params: Dict[str, Any], emit: Emit) -> dict:
        request = protocol.batch_request(op, params)
        try:
            command = getattr(self.workspace, op)
            report = command(
                request,
                on_result=lambda r: emit("unit", r.to_dict()),
                on_event=lambda e: emit("event", e),
            )
        except INPUT_ERRORS as exc:
            raise RemoteError(protocol.E_INPUT, str(exc))
        return report.to_dict()

    def invalidate(self, path: Optional[str]) -> int:
        return self.workspace.invalidate(path)

    def stats(self) -> dict:
        return self.workspace.stats()

    def close(self) -> None:
        self.workspace.close()


class _DedupProxy:
    """Child-side handle on the parent's dedup table (pipe upcalls).

    Matches the :class:`repro.serve.dedup.ObligationDedup` contract.
    The parent answers ``acquire`` for a follower only after its own
    ``wait`` completes, so the proxy's ``wait`` is just the ticket —
    the payload already crossed the pipe.
    """

    def __init__(self, conn):
        self._conn = conn

    def acquire(self, key: Tuple[str, str]):
        self._conn.send(("dedup_acquire", key))
        reply = self._conn.recv()  # ("dedup", "lead") | ("dedup", "outcome", p)
        if reply[1] == "lead":
            return "leader", None
        return "follower", reply[2]

    def wait(self, ticket, timeout: Optional[float] = None):
        return ticket

    def publish(self, key: Tuple[str, str], payload: Optional[dict]) -> None:
        self._conn.send(("dedup_publish", key, payload))


def worker_main(conn, config: api.SessionConfig) -> None:
    """Child entry: host one workspace, serve requests off the pipe.

    Runs until a ``close`` message or pipe EOF (parent gone).  All
    faults that are *about the request* answer as typed errors; only
    genuine process death (never raised here) reaches the parent as a
    crash.
    """
    # The parent owns this process's lifecycle; a terminal Ctrl-C must
    # land on the daemon (which drains and closes workers), not kill
    # workers out from under in-flight requests.
    with_signal = getattr(signal, "SIGINT", None)
    if with_signal is not None:
        try:
            signal.signal(with_signal, signal.SIG_IGN)
        except (ValueError, OSError):
            pass
    workspace = api.Workspace(config, incremental=True)
    workspace.dedup = _DedupProxy(conn)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "run":
                _, op, params = message
                try:
                    request = protocol.batch_request(op, params)
                    command = getattr(workspace, op)
                    report = command(
                        request,
                        on_result=lambda r: conn.send(("unit", r.to_dict())),
                        on_event=lambda e: conn.send(("event", e)),
                    )
                    conn.send(("done", report.to_dict(), workspace.stats()))
                except protocol.ProtocolError as exc:
                    conn.send(
                        ("error", exc.code, str(exc), workspace.stats())
                    )
                except INPUT_ERRORS as exc:
                    conn.send(
                        ("error", protocol.E_INPUT, str(exc),
                         workspace.stats())
                    )
                except Exception as exc:  # survived worker-side bug
                    conn.send(
                        ("error", protocol.E_INTERNAL,
                         f"{type(exc).__name__}: {exc}", workspace.stats())
                    )
            elif kind == "invalidate":
                dropped = workspace.invalidate(message[1])
                conn.send(("invalidated", dropped, workspace.stats()))
            elif kind == "stats":
                conn.send(("stats", workspace.stats()))
            elif kind == "close":
                break
    finally:
        workspace.close()
        try:
            conn.close()
        except OSError:
            pass


class ProcessHost:
    """Parent-side handle on one persistent workspace worker process."""

    def __init__(self, config: api.SessionConfig, dedup):
        self.config = config
        self._dedup = dedup
        self._dead = False
        ctx = pool_context()
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn, config),
            daemon=True,
            name=f"repro-serve-worker-{config.key()}",
        )
        self.process.start()
        child_conn.close()
        # Handshake: a stats roundtrip proves the worker came up and
        # seeds the parent-side stats cache, so ``status`` has a block
        # for this workspace even while the worker is busy.
        self._stats_cache = self._roundtrip(
            ("stats",), "stats", _SPAWN_TIMEOUT
        )[1]

    # ------------------------------------------------------------- plumbing

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()

    def _crashed(self) -> WorkerCrashed:
        self._dead = True
        self.process.join(timeout=1.0)
        return WorkerCrashed(self.process.pid, self.process.exitcode)

    def _roundtrip(self, message: tuple, expect: str, timeout: float):
        """One command, one reply of kind ``expect`` (no streaming in
        between — callers hold the workspace lock, so nothing else is
        on the pipe)."""
        try:
            self._conn.send(message)
            if not self._conn.poll(timeout):
                raise self._crashed()
            reply = self._conn.recv()
        except (EOFError, OSError):
            raise self._crashed()
        if reply[0] != expect:
            raise RemoteError(
                protocol.E_INTERNAL,
                f"worker answered {reply[0]!r} to {message[0]!r}",
            )
        return reply

    # ------------------------------------------------------------ interface

    def run(self, op: str, params: Dict[str, Any], emit: Emit) -> dict:
        """Dispatch one batch op to the worker and pump its messages.

        Blocks the calling executor thread until the worker's ``done``
        or ``error``; ``dedup_*`` upcalls are serviced inline against
        the parent's table.  Raises :class:`WorkerCrashed` when the
        pipe dies — the caller owns respawn policy.
        """
        # A follower's wait is bounded by the leader's own prover time
        # budget (plus slack); an overdue leader means the follower
        # proves for itself rather than hanging the request.
        try:
            wait_timeout = float(params.get("time_limit") or 45.0) + 30.0
        except (TypeError, ValueError):
            wait_timeout = 75.0
        led = set()
        try:
            try:
                self._conn.send(("run", op, params))
                while True:
                    message = self._conn.recv()
                    kind = message[0]
                    if kind in ("unit", "event"):
                        emit(kind, message[1])
                    elif kind == "done":
                        self._stats_cache = message[2]
                        return message[1]
                    elif kind == "error":
                        self._stats_cache = message[3]
                        raise RemoteError(message[1], message[2])
                    elif kind == "dedup_acquire":
                        key = tuple(message[1])
                        role, ticket = self._dedup.acquire(key)
                        if role == "leader":
                            led.add(key)
                            self._conn.send(("dedup", "lead"))
                        else:
                            payload = self._dedup.wait(
                                ticket, timeout=wait_timeout
                            )
                            self._conn.send(("dedup", "outcome", payload))
                    elif kind == "dedup_publish":
                        key = tuple(message[1])
                        led.discard(key)
                        self._dedup.publish(key, message[2])
            except (EOFError, OSError):
                raise self._crashed()
        finally:
            # Never strand followers on keys a crashed (or buggy)
            # worker led but never published.
            for key in led:
                self._dedup.publish(key, None)

    def invalidate(self, path: Optional[str]) -> int:
        reply = self._roundtrip(
            ("invalidate", path), "invalidated", _SPAWN_TIMEOUT
        )
        self._stats_cache = reply[2]
        return reply[1]

    def stats(self) -> dict:
        """The cached stats block (refreshed by every reply)."""
        return self._stats_cache

    def stats_live(self, timeout: float = 1.0) -> dict:
        """A fresh stats block straight from the worker.  Only valid
        while no request is in flight (caller holds the workspace
        lock); falls back to the cache on a sluggish worker."""
        if not self.alive:
            return self._stats_cache
        try:
            self._stats_cache = self._roundtrip(("stats",), "stats", timeout)[1]
        except (WorkerCrashed, RemoteError):
            pass
        return self._stats_cache

    def close(self) -> None:
        """Graceful stop: ask, wait briefly, then make sure (kill +
        reap) — an evicted or shut-down worker never lingers."""
        if not self._dead:
            try:
                self._conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        self._dead = True
        try:
            self._conn.close()
        except OSError:
            pass
        self.process.join(timeout=_CLOSE_TIMEOUT)
        _reap(self.process)
