"""The ``repro serve`` daemon: a warm checker behind a socket.

An asyncio event loop accepts connections (a unix socket, a TCP
``--listen host:port`` endpoint, or both — same NDJSON protocol) and
demultiplexes request lines; the parent process is a pure
protocol/router layer.  Where the CPU-bound pipeline work runs depends
on the mode:

- **thread mode** (``workers=0``, the default): executor threads run
  against resident :class:`repro.api.Workspace` objects in-process —
  one per distinct :class:`repro.api.SessionConfig`, created on first
  use and kept warm (parsed-state fingerprints, incremental verdict
  store, open proof caches) for the daemon's lifetime.
- **process mode** (``--workers N``): each configuration's workspace
  lives in a persistent worker *process* (:mod:`repro.serve.workers`),
  so concurrent requests against distinct configurations use distinct
  cores instead of fighting over the GIL, and a crashing worker
  poisons only its own workspace — the in-flight request answers with
  a ``worker-crashed`` error and the next request respawns it
  (``workers_spawned``/``workers_crashed`` in ``status``).

Either way, requests against *different* configurations run
concurrently; requests against the same workspace serialize on its
lock (the workspace is not thread-safe, and an edit loop wants the
second re-check to see the first one's warm state anyway).  A
cross-request obligation dedup table (:mod:`repro.serve.dedup`) lives
in the parent, so two in-flight prove requests discharging the same
obligation share one prover run even across worker processes.

Streaming: unit results and progress events are enqueued from the
worker thread via ``loop.call_soon_threadsafe`` and written back on
the event loop, so a slow client never blocks the checker and two
concurrent requests never interleave *within* a line.

Shutdown is graceful by default: ``shutdown`` requests, SIGINT and
SIGTERM all stop accepting new work (new requests get a
``shutting-down`` error), wait for in-flight requests to finish,
close the hosts (flushing proof caches, reaping worker processes),
and remove the socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import json
import os
import signal
import socket as socket_module
import threading
import time
from typing import Any, Dict, Optional, Set, Tuple

from collections import OrderedDict

from repro import api, obs
from repro.harness.supervisor import env_knob
from repro.serve import protocol
from repro.serve.dedup import ObligationDedup
from repro.serve.workers import (
    INPUT_ERRORS as _INPUT_ERRORS,
    ProcessHost,
    RemoteError,
    ThreadHost,
    WorkerCrashed,
)

#: Default cap on resident workspaces (one per distinct configuration);
#: override with ``REPRO_SERVE_MAX_WORKSPACES``.  Warm state beyond the
#: cap is evicted least-recently-used, so a client cycling through many
#: configurations bounds the daemon's memory instead of growing it.
MAX_WORKSPACES = 8


def _max_workspaces() -> int:
    return env_knob(
        "REPRO_SERVE_MAX_WORKSPACES",
        MAX_WORKSPACES,
        lambda raw: max(1, int(raw)),
    )


class ServeServer:
    """One daemon instance bound to one socket path and/or TCP port."""

    def __init__(
        self,
        socket_path: Optional[str],
        listen: Optional[Tuple[str, int]] = None,
        workers: int = 0,
        announce: bool = False,
    ):
        self.socket_path = socket_path
        self.listen = listen
        self.workers = max(0, int(workers))
        self.announce = announce
        self.started = time.monotonic()
        #: Always-on request counters (independent of the obs
        #: collector, which is off unless the daemon is profiled).
        self.counters: Dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "errors": 0,
            "evictions": 0,
            "workers_spawned": 0,
            "workers_crashed": 0,
        }
        self.max_workspaces = _max_workspaces()
        if self.workers:
            # Worker processes are much heavier than warm dicts; the
            # worker count is also the resident-workspace cap, and the
            # existing LRU eviction machinery enforces it.
            self.max_workspaces = min(self.max_workspaces, self.workers)
        #: Cross-request obligation dedup (single-flight; parent-owned
        #: so it spans workspaces and worker processes alike).
        self.dedup = ObligationDedup()
        self._hosts: "OrderedDict[Tuple, object]" = OrderedDict()
        self._locks: Dict[Tuple, threading.Lock] = {}
        self._ws_guard = threading.Lock()
        self._inflight: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._shutting_down = False
        self._stopped: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        #: The bound TCP address (host, port) — resolved, so a
        #: ``--listen host:0`` caller learns the ephemeral port.
        self.tcp_address: Optional[Tuple[str, int]] = None
        #: Set once every requested transport is bound *and listening*.
        #: Embedders running the daemon on a side thread must wait on
        #: this, not on the socket file: the file appears at bind time,
        #: a beat before ``listen()``, and a connect in that window is
        #: refused.
        self.ready = threading.Event()

    # ------------------------------------------------------------ lifecycle

    def _prepare_socket_path(self) -> None:
        """Remove a stale socket file (no listener behind it); refuse
        to displace a live daemon.

        The distinction matters: a connect that is *refused* (or whose
        path vanished) proves nobody is listening — safe to unlink.  A
        connect that *times out* proves the opposite: something is
        listening but slow to accept (a daemon mid-startup, a busy
        executor) — unlinking would silently orphan a live daemon, so
        that is an address-in-use error, exactly like an immediate
        accept.  Any other probe failure (permissions, ...) also
        refuses: never delete what we cannot prove stale.
        """
        if not os.path.exists(self.socket_path):
            return
        probe = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        try:
            probe.settimeout(1.0)
            probe.connect(self.socket_path)
        except socket_module.timeout:
            raise OSError(
                errno.EADDRINUSE,
                f"a daemon is already serving {self.socket_path} "
                "(listening, but slow to accept)",
            )
        except OSError as exc:
            if exc.errno in (errno.ECONNREFUSED, errno.ENOENT):
                with contextlib.suppress(OSError):
                    os.unlink(self.socket_path)  # stale: nobody listening
            else:
                raise
        else:
            raise OSError(
                errno.EADDRINUSE,
                f"a daemon is already serving {self.socket_path}",
            )
        finally:
            probe.close()

    async def run(self) -> None:
        """Bind, serve until shut down, then clean up."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        if self.socket_path:
            self._prepare_socket_path()
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=self.socket_path
            )
        if self.listen is not None:
            host, port = self.listen
            self._tcp_server = await asyncio.start_server(
                self._serve_connection, host=host, port=port
            )
            bound = self._tcp_server.sockets[0].getsockname()
            self.tcp_address = (bound[0], bound[1])
        if self._server is None and self._tcp_server is None:
            raise OSError(errno.EINVAL, "nothing to bind: no socket, no listen")
        self.ready.set()
        if self.announce:
            print(json.dumps(self._announce_payload()), flush=True)
        for sig in (signal.SIGINT, signal.SIGTERM):
            # RuntimeError/ValueError: not on the main thread (tests
            # run the daemon on a side thread) — shutdown then comes
            # from the protocol, not from signals.
            with contextlib.suppress(
                NotImplementedError, RuntimeError, ValueError
            ):
                loop.add_signal_handler(sig, self.request_shutdown)
        try:
            await self._stopped.wait()
        finally:
            for server in (self._server, self._tcp_server):
                if server is not None:
                    server.close()
                    await server.wait_closed()
            for writer in list(self._writers):
                writer.close()
            for host in self._hosts.values():
                host.close()
            if self.socket_path:
                with contextlib.suppress(OSError):
                    os.unlink(self.socket_path)

    def _announce_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "serving": self.socket_path,
            "pid": os.getpid(),
            "protocol": protocol.PROTOCOL_VERSION,
            "workers": self.workers,
        }
        if self.tcp_address is not None:
            payload["listen"] = protocol.format_address(self.tcp_address)
        return payload

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (idempotent): drain in-flight
        requests, then stop the loop in :meth:`run`."""
        if self._shutting_down:
            return
        self._shutting_down = True
        asyncio.ensure_future(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        pending = [
            task for task in self._inflight if task is not asyncio.current_task()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._stopped is not None:
            self._stopped.set()

    # ---------------------------------------------------------- connections

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                for registry in (tasks, self._inflight):
                    registry.add(task)
                    task.add_done_callback(registry.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels connection handlers mid-readline;
            # ending cleanly here keeps shutdown quiet.
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        async def send(obj: Dict[str, Any]) -> None:
            # One protocol line at a time per connection, whole lines
            # only — concurrent requests interleave lines, never bytes.
            async with write_lock:
                if writer.is_closing():
                    return
                writer.write(protocol.encode(obj))
                with contextlib.suppress(ConnectionError):
                    await writer.drain()

        def error(rid, code: str, message: str) -> Dict[str, Any]:
            self.counters["errors"] += 1
            return {
                "id": rid,
                "done": True,
                "error": {"code": code, "message": message},
            }

        try:
            msg = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            await send(error(None, exc.code, str(exc)))
            return
        rid = msg.get("id")
        op = msg.get("op")
        params = msg.get("params")
        self.counters["requests"] += 1
        obs.incr("serve.requests")
        if self._shutting_down and op != "status":
            await send(
                error(rid, protocol.E_SHUTTING_DOWN, "daemon is shutting down")
            )
            return
        try:
            with obs.span("serve.request", op=str(op)):
                await self._dispatch(rid, op, params, send)
        except protocol.ProtocolError as exc:
            await send(error(rid, exc.code, str(exc)))
        except Exception as exc:  # survived daemon-side bug
            await send(
                error(rid, protocol.E_INTERNAL, f"{type(exc).__name__}: {exc}")
            )

    # ------------------------------------------------------------- dispatch

    async def _dispatch(self, rid, op, params, send) -> None:
        if op == "status":
            await send({"id": rid, "done": True, "result": self.status()})
        elif op == "shutdown":
            protocol._check_keys("shutdown", protocol._require_params_dict(params))
            await send(
                {
                    "id": rid,
                    "done": True,
                    "result": {
                        "stopping": True,
                        "inflight": max(0, len(self._inflight) - 1),
                    },
                }
            )
            self.request_shutdown()
        elif op == "invalidate":
            checked = protocol._require_params_dict(params)
            protocol._check_keys("invalidate", checked)
            config = protocol.config_from_params(checked)
            lock = self._lock_for(config)
            path = checked.get("path")
            loop = asyncio.get_running_loop()

            def drop() -> int:
                with lock:
                    return self._live_host(config).invalidate(path)

            dropped = await loop.run_in_executor(None, drop)
            await send(
                {"id": rid, "done": True, "result": {"dropped": dropped}}
            )
        elif op in ("check", "prove", "infer"):
            await self._run_batch(rid, op, params, send)
        else:
            raise protocol.ProtocolError(
                protocol.E_UNKNOWN_OP, f"unknown op {op!r}"
            )

    def _lock_for(self, config: api.SessionConfig) -> threading.Lock:
        """The per-configuration request lock (created on first use;
        it outlives host evictions and respawns, so waiters carried
        across a crash serialize correctly)."""
        with self._ws_guard:
            key = config.key()
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def _live_host(self, config: api.SessionConfig):
        """The resident host for ``config`` — spawning one on first
        use, and replacing one whose worker process died while idle
        (counted as a crash; the respawn is invisible to the request).
        Caller holds the configuration's request lock."""
        with self._ws_guard:
            key = config.key()
            host = self._hosts.get(key)
            if host is not None and not host.alive:
                self._hosts.pop(key, None)
                self._note_worker_crash(host)
                host.close()
                host = None
            if host is None:
                host = self._spawn_host(config)
                self._hosts[key] = host
                self._evict_workspaces(keep=key)
            self._hosts.move_to_end(key)
            return host

    def _spawn_host(self, config: api.SessionConfig):
        if self.workers:
            host = ProcessHost(config, self.dedup)
            self.counters["workers_spawned"] += 1
            obs.incr("serve.workers_spawned")
            return host
        return ThreadHost(config, self.dedup)

    def _note_worker_crash(self, host) -> None:
        self.counters["workers_crashed"] += 1
        obs.incr("serve.workers_crashed")

    def _drop_crashed_host(self, config: api.SessionConfig, host) -> None:
        """Forget a host whose worker died mid-request (the caller
        already owns the crash error answer)."""
        with self._ws_guard:
            key = config.key()
            if self._hosts.get(key) is host:
                self._hosts.pop(key)
            self._note_worker_crash(host)
        host.close()

    def _evict_workspaces(self, keep: Tuple) -> None:
        """LRU-evict resident hosts past the cap.  Busy hosts (request
        in flight holding the lock) are skipped — their warm state is
        in use — so the store can transiently exceed the cap rather
        than ever closing a workspace under a running request.  Caller
        holds ``_ws_guard``."""
        excess = len(self._hosts) - self.max_workspaces
        if excess <= 0:
            return
        for key in list(self._hosts):
            if excess <= 0:
                break
            if key == keep:
                continue
            lock = self._locks[key]
            if not lock.acquire(blocking=False):
                continue
            try:
                host = self._hosts.pop(key)
            finally:
                lock.release()
            host.close()
            self.counters["evictions"] += 1
            obs.incr("serve.workspace_evictions")
            excess -= 1

    async def _run_batch(self, rid, op, params, send) -> None:
        config = protocol.config_from_params(params)
        # Validate up front (bad-request beats spawning a worker); the
        # host revalidates on its own side of the process boundary.
        protocol.batch_request(op, params)
        lock = self._lock_for(config)
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def enqueue(kind: str, payload) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, (kind, payload))

        def work() -> None:
            try:
                with lock:
                    host = self._live_host(config)
                    try:
                        payload = host.run(op, params, enqueue)
                    except WorkerCrashed as exc:
                        self._drop_crashed_host(config, host)
                        enqueue(
                            "error", (protocol.E_WORKER_CRASH, str(exc))
                        )
                        return
                # Enforce the workspace cap *before* answering: the
                # creation-time sweep skips busy workspaces, and once
                # the client has the response it may immediately ask
                # ``status`` and expect the cap to hold.
                with self._ws_guard:
                    self._evict_workspaces(keep=config.key())
                enqueue("done", payload)
            except RemoteError as exc:
                enqueue("error", (exc.code, exc.message))
            except _INPUT_ERRORS as exc:
                enqueue("error", (protocol.E_INPUT, str(exc)))
            except Exception as exc:
                enqueue(
                    "error",
                    (
                        protocol.E_INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    ),
                )

        worker = loop.run_in_executor(None, work)
        try:
            while True:
                kind, payload = await queue.get()
                if kind == "unit":
                    await send({"id": rid, "stream": "unit", "unit": payload})
                elif kind == "event":
                    await send({"id": rid, "stream": "event", "event": payload})
                elif kind == "done":
                    await send({"id": rid, "done": True, "report": payload})
                    return
                else:
                    code, message = payload
                    self.counters["errors"] += 1
                    await send(
                        {
                            "id": rid,
                            "done": True,
                            "error": {"code": code, "message": message},
                        }
                    )
                    return
        finally:
            await worker

    # --------------------------------------------------------------- status

    def status(self) -> Dict[str, Any]:
        """The ``status`` result payload: daemon facts plus one
        :meth:`repro.api.Workspace.stats` block per live workspace.
        Workspace counters are always on, so incremental behaviour is
        observable without enabling the profiling collector.  Process
        mode additionally reports a ``worker`` block (pid, liveness)
        per workspace — refreshed live when the worker is idle, from
        the parent-side cache when it is busy."""
        from repro import __version__

        with self._ws_guard:
            snapshot = list(self._hosts.items())
        blocks = []
        for key, host in snapshot:
            lock = self._locks.get(key)
            if (
                self.workers
                and lock is not None
                and lock.acquire(blocking=False)
            ):
                try:
                    stats = host.stats_live()
                finally:
                    lock.release()
            else:
                stats = host.stats()
            if self.workers:
                stats = dict(stats)
                stats["worker"] = {"pid": host.pid, "alive": host.alive}
            blocks.append(stats)
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "schema_version": api.SCHEMA_VERSION,
            "version": __version__,
            "pid": os.getpid(),
            "socket": self.socket_path,
            "listen": (
                protocol.format_address(self.tcp_address)
                if self.tcp_address is not None
                else None
            ),
            "workers": self.workers,
            "uptime_s": round(time.monotonic() - self.started, 3),
            "shutting_down": self._shutting_down,
            "inflight": len(self._inflight),
            "counters": dict(self.counters),
            "dedup": dict(self.dedup.counters),
            "workspaces": blocks,
        }


def serve_main(
    socket_path: Optional[str],
    listen: Optional[str] = None,
    workers: int = 0,
) -> int:
    """Blocking entry point for ``python -m repro serve``.

    ``listen`` is a ``host:port`` string (port 0 picks an ephemeral
    port); the daemon announces its bound addresses as one JSON line on
    stdout once it is actually accepting, so callers can wait on it.
    """
    try:
        listen_addr = (
            protocol.parse_listen(listen) if listen is not None else None
        )
    except ValueError as exc:
        print(f"error: {exc}", flush=True)
        return 2
    server = ServeServer(
        socket_path, listen=listen_addr, workers=workers, announce=True
    )
    try:
        asyncio.run(server.run())
    except OSError as exc:
        print(f"error: {exc}", flush=True)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - loop handles SIGINT
        pass
    return 0
