"""The ``repro serve`` daemon: a warm checker on a unix socket.

An asyncio event loop accepts connections and demultiplexes request
lines; the actual pipeline work (blocking, CPU-bound) runs on executor
threads against resident :class:`repro.api.Workspace` objects — one
per distinct :class:`repro.api.SessionConfig`, created on first use
and kept warm (parsed-state fingerprints, incremental verdict store,
open proof caches) for the daemon's lifetime.  Requests against
*different* configurations run concurrently; requests against the same
workspace serialize on its lock (the workspace is not thread-safe, and
an edit loop wants the second re-check to see the first one's warm
state anyway).

Streaming: unit results and progress events are enqueued from the
worker thread via ``loop.call_soon_threadsafe`` and written back on
the event loop, so a slow client never blocks the checker and two
concurrent requests never interleave *within* a line.

Shutdown is graceful by default: ``shutdown`` requests, SIGINT and
SIGTERM all stop accepting new work (new requests get a
``shutting-down`` error), wait for in-flight requests to finish,
close the workspaces (flushing proof caches), and remove the socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import errno
import json
import os
import signal
import socket as socket_module
import threading
import time
from typing import Any, Dict, Optional, Set, Tuple

from collections import OrderedDict

from repro import api, obs
from repro.cfront.lexer import LexError
from repro.cfront.parser import ParseError
from repro.cil.lower import LowerError
from repro.core.qualifiers.parser import QualParseError
from repro.serve import protocol

#: Default cap on resident workspaces (one per distinct configuration);
#: override with ``REPRO_SERVE_MAX_WORKSPACES``.  Warm state beyond the
#: cap is evicted least-recently-used, so a client cycling through many
#: configurations bounds the daemon's memory instead of growing it.
MAX_WORKSPACES = 8


def _max_workspaces() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_SERVE_MAX_WORKSPACES", "")))
    except ValueError:
        return MAX_WORKSPACES

#: Exceptions that mean "your input was bad", not "the daemon broke" —
#: the same set the CLI maps to exit code 2 for in-process runs.
_INPUT_ERRORS = (
    ParseError,
    LexError,
    LowerError,
    QualParseError,
    UnicodeDecodeError,
    OSError,
    RecursionError,
    api.UnknownQualifierError,
)


class ServeServer:
    """One daemon instance bound to one unix-socket path."""

    def __init__(self, socket_path: str):
        self.socket_path = socket_path
        self.started = time.monotonic()
        #: Always-on request counters (independent of the obs
        #: collector, which is off unless the daemon is profiled).
        self.counters: Dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "errors": 0,
            "evictions": 0,
        }
        self.max_workspaces = _max_workspaces()
        self._workspaces: "OrderedDict[Tuple, api.Workspace]" = OrderedDict()
        self._locks: Dict[Tuple, threading.Lock] = {}
        self._ws_guard = threading.Lock()
        self._inflight: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._shutting_down = False
        self._stopped: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------ lifecycle

    def _prepare_socket_path(self) -> None:
        """Remove a stale socket file (no listener behind it); refuse
        to displace a live daemon."""
        if not os.path.exists(self.socket_path):
            return
        probe = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        try:
            probe.settimeout(1.0)
            probe.connect(self.socket_path)
        except OSError:
            os.unlink(self.socket_path)  # stale: nobody listening
        else:
            raise OSError(
                errno.EADDRINUSE,
                f"a daemon is already serving {self.socket_path}",
            )
        finally:
            probe.close()

    async def run(self) -> None:
        """Bind, serve until shut down, then clean up."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._prepare_socket_path()
        self._server = await asyncio.start_unix_server(
            self._serve_connection, path=self.socket_path
        )
        for sig in (signal.SIGINT, signal.SIGTERM):
            # RuntimeError/ValueError: not on the main thread (tests
            # run the daemon on a side thread) — shutdown then comes
            # from the protocol, not from signals.
            with contextlib.suppress(
                NotImplementedError, RuntimeError, ValueError
            ):
                loop.add_signal_handler(sig, self.request_shutdown)
        try:
            await self._stopped.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for writer in list(self._writers):
                writer.close()
            for workspace in self._workspaces.values():
                workspace.close()
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (idempotent): drain in-flight
        requests, then stop the loop in :meth:`run`."""
        if self._shutting_down:
            return
        self._shutting_down = True
        asyncio.ensure_future(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        pending = [
            task for task in self._inflight if task is not asyncio.current_task()
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._stopped is not None:
            self._stopped.set()

    # ---------------------------------------------------------- connections

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                for registry in (tasks, self._inflight):
                    registry.add(task)
                    task.add_done_callback(registry.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels connection handlers mid-readline;
            # ending cleanly here keeps shutdown quiet.
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        async def send(obj: Dict[str, Any]) -> None:
            # One protocol line at a time per connection, whole lines
            # only — concurrent requests interleave lines, never bytes.
            async with write_lock:
                if writer.is_closing():
                    return
                writer.write(protocol.encode(obj))
                with contextlib.suppress(ConnectionError):
                    await writer.drain()

        def error(rid, code: str, message: str) -> Dict[str, Any]:
            self.counters["errors"] += 1
            return {
                "id": rid,
                "done": True,
                "error": {"code": code, "message": message},
            }

        try:
            msg = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            await send(error(None, exc.code, str(exc)))
            return
        rid = msg.get("id")
        op = msg.get("op")
        params = msg.get("params")
        self.counters["requests"] += 1
        obs.incr("serve.requests")
        if self._shutting_down and op != "status":
            await send(
                error(rid, protocol.E_SHUTTING_DOWN, "daemon is shutting down")
            )
            return
        try:
            with obs.span("serve.request", op=str(op)):
                await self._dispatch(rid, op, params, send)
        except protocol.ProtocolError as exc:
            await send(error(rid, exc.code, str(exc)))
        except Exception as exc:  # survived daemon-side bug
            await send(
                error(rid, protocol.E_INTERNAL, f"{type(exc).__name__}: {exc}")
            )

    # ------------------------------------------------------------- dispatch

    async def _dispatch(self, rid, op, params, send) -> None:
        if op == "status":
            await send({"id": rid, "done": True, "result": self.status()})
        elif op == "shutdown":
            protocol._check_keys("shutdown", protocol._require_params_dict(params))
            await send(
                {
                    "id": rid,
                    "done": True,
                    "result": {
                        "stopping": True,
                        "inflight": max(0, len(self._inflight) - 1),
                    },
                }
            )
            self.request_shutdown()
        elif op == "invalidate":
            checked = protocol._require_params_dict(params)
            protocol._check_keys("invalidate", checked)
            workspace, lock = self._workspace(
                protocol.config_from_params(checked)
            )
            path = checked.get("path")
            loop = asyncio.get_running_loop()

            def drop() -> int:
                with lock:
                    return workspace.invalidate(path)

            dropped = await loop.run_in_executor(None, drop)
            await send(
                {"id": rid, "done": True, "result": {"dropped": dropped}}
            )
        elif op in ("check", "prove", "infer"):
            await self._run_batch(rid, op, params, send)
        else:
            raise protocol.ProtocolError(
                protocol.E_UNKNOWN_OP, f"unknown op {op!r}"
            )

    def _workspace(
        self, config: api.SessionConfig
    ) -> Tuple[api.Workspace, threading.Lock]:
        with self._ws_guard:
            key = config.key()
            workspace = self._workspaces.get(key)
            if workspace is None:
                workspace = api.Workspace(config, incremental=True)
                self._workspaces[key] = workspace
                self._locks[key] = threading.Lock()
                self._evict_workspaces(keep=key)
            self._workspaces.move_to_end(key)
            return workspace, self._locks[key]

    def _evict_workspaces(self, keep: Tuple) -> None:
        """LRU-evict resident workspaces past the cap.  Busy workspaces
        (request in flight holding the lock) are skipped — their warm
        state is in use — so the store can transiently exceed the cap
        rather than ever closing a workspace under a running request.
        Caller holds ``_ws_guard``."""
        excess = len(self._workspaces) - self.max_workspaces
        if excess <= 0:
            return
        for key in list(self._workspaces):
            if excess <= 0:
                break
            if key == keep:
                continue
            lock = self._locks[key]
            if not lock.acquire(blocking=False):
                continue
            try:
                workspace = self._workspaces.pop(key)
                del self._locks[key]
            finally:
                lock.release()
            workspace.close()
            self.counters["evictions"] += 1
            obs.incr("serve.workspace_evictions")
            excess -= 1

    async def _run_batch(self, rid, op, params, send) -> None:
        config = protocol.config_from_params(params)
        request = protocol.batch_request(op, params)
        workspace, lock = self._workspace(config)
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def enqueue(kind: str, payload) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, (kind, payload))

        def work() -> None:
            try:
                with lock:
                    command = getattr(workspace, op)
                    report = command(
                        request,
                        on_result=lambda r: enqueue("unit", r.to_dict()),
                        on_event=lambda e: enqueue("event", e),
                    )
                    payload = report.to_dict()
                # Enforce the workspace cap *before* answering: the
                # creation-time sweep skips busy workspaces, and once
                # the client has the response it may immediately ask
                # ``status`` and expect the cap to hold.
                with self._ws_guard:
                    self._evict_workspaces(keep=config.key())
                enqueue("done", payload)
            except _INPUT_ERRORS as exc:
                enqueue("error", (protocol.E_INPUT, str(exc)))
            except Exception as exc:
                enqueue(
                    "error",
                    (
                        protocol.E_INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    ),
                )

        worker = loop.run_in_executor(None, work)
        try:
            while True:
                kind, payload = await queue.get()
                if kind == "unit":
                    await send({"id": rid, "stream": "unit", "unit": payload})
                elif kind == "event":
                    await send({"id": rid, "stream": "event", "event": payload})
                elif kind == "done":
                    await send({"id": rid, "done": True, "report": payload})
                    return
                else:
                    code, message = payload
                    self.counters["errors"] += 1
                    await send(
                        {
                            "id": rid,
                            "done": True,
                            "error": {"code": code, "message": message},
                        }
                    )
                    return
        finally:
            await worker

    # --------------------------------------------------------------- status

    def status(self) -> Dict[str, Any]:
        """The ``status`` result payload: daemon facts plus one
        :meth:`repro.api.Workspace.stats` block per live workspace.
        Workspace counters are always on, so incremental behaviour is
        observable without enabling the profiling collector."""
        from repro import __version__

        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "schema_version": api.SCHEMA_VERSION,
            "version": __version__,
            "pid": os.getpid(),
            "socket": self.socket_path,
            "uptime_s": round(time.monotonic() - self.started, 3),
            "shutting_down": self._shutting_down,
            "inflight": len(self._inflight),
            "counters": dict(self.counters),
            "workspaces": [
                workspace.stats() for workspace in self._workspaces.values()
            ],
        }


def serve_main(socket_path: str) -> int:
    """Blocking entry point for ``python -m repro serve``."""
    server = ServeServer(socket_path)
    print(
        json.dumps(
            {
                "serving": socket_path,
                "pid": os.getpid(),
                "protocol": protocol.PROTOCOL_VERSION,
            }
        ),
        flush=True,
    )
    try:
        asyncio.run(server.run())
    except OSError as exc:
        print(f"error: {exc}", flush=True)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - loop handles SIGINT
        pass
    return 0
