"""Cross-request obligation dedup: single-flight for in-flight proofs.

The proof cache already collapses *repeated* work — a request proving
an obligation the cache has settled replays the verdict.  What it
cannot collapse is *concurrent* work: two requests proving the same
qualifier at the same time each miss the cache and each run the
prover.  :class:`ObligationDedup` closes that window with the classic
single-flight shape: the first request to reach a key becomes the
**leader** and proves it; every request that arrives while the leader
is in flight becomes a **follower** and blocks until the leader
publishes, then reuses the payload instead of re-proving.

Keys are ``(environment key, obligation fingerprint)`` — exactly the
pair the proof cache addresses by (axioms + qualifier definition text,
plus the canonical goal rendering), so two requests share a key iff
the cache would have given one the other's verdict.  Payloads are the
pickle/JSON-safe proof dicts of :func:`repro.core.soundness.workitems.
proof_result_to_dict`; only settled ``PROVED``/``REFUTED`` results are
published (an unsettled ``GAVE_UP``/``TIMEOUT`` leader, or one that
crashed, publishes ``None`` and each follower falls back to proving
for itself — sharing can never change a verdict).

Entries are single-flight only: publishing removes the key, so a later
request for the same obligation goes to the proof cache like before.
The serve daemon owns one table per process; in process-worker mode
the workers reach it through a pipe-backed proxy serviced by the
parent (:mod:`repro.serve.workers`), so dedup still spans workspaces.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro import obs


class _Entry:
    """One in-flight obligation: the leader's promise to publish."""

    __slots__ = ("done", "payload")

    def __init__(self) -> None:
        self.done = False
        self.payload: Optional[dict] = None


class ObligationDedup:
    """Thread-safe single-flight table keyed by (env key, fingerprint).

    The contract (also implemented by the worker-side proxy):

    - ``acquire(key)`` returns ``("leader", None)`` or
      ``("follower", ticket)``;
    - a leader MUST eventually ``publish(key, payload_or_None)``
      (``None`` means "nothing shareable — prove it yourself");
    - a follower calls ``wait(ticket, timeout)`` and gets the payload,
      or ``None`` on an empty-handed (or overdue) leader.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._inflight: Dict[Tuple[str, str], _Entry] = {}
        #: Always-on counters (surfaced by the daemon's ``status``).
        self.counters: Dict[str, int] = {
            "leaders": 0,
            "waits": 0,
            "shared": 0,
            "misses": 0,
        }

    def acquire(self, key: Tuple[str, str]):
        with self._cond:
            entry = self._inflight.get(key)
            if entry is None:
                self._inflight[key] = _Entry()
                self.counters["leaders"] += 1
                obs.incr("serve.dedup_leaders")
                return "leader", None
            self.counters["waits"] += 1
            obs.incr("serve.dedup_waits")
            return "follower", entry

    def publish(self, key: Tuple[str, str], payload: Optional[dict]) -> None:
        with self._cond:
            entry = self._inflight.pop(key, None)
            if entry is None or entry.done:
                return
            entry.done = True
            entry.payload = payload
            self._cond.notify_all()

    def wait(
        self, ticket: _Entry, timeout: Optional[float] = None
    ) -> Optional[dict]:
        with self._cond:
            self._cond.wait_for(lambda: ticket.done, timeout=timeout)
            # An overdue leader counts as a miss: the follower gives up
            # waiting and proves for itself (the leader's eventual
            # publish completes the entry late, harmlessly).
            payload = ticket.payload if ticket.done else None
            if payload is not None:
                self.counters["shared"] += 1
                obs.incr("serve.dedup_shared")
            else:
                self.counters["misses"] += 1
                obs.incr("serve.dedup_misses")
            return payload
