"""Generic dataflow engine: CFGs + lattices + a worklist solver.

See docs/architecture.md for the pass pipeline and a guide to writing
a new dataflow client.
"""

from repro.cil.cfg import CFG, BasicBlock, Edge, Terminator, build_cfg
from repro.dataflow.lattice import (
    UNIVERSE,
    FlatLattice,
    Lattice,
    MapLattice,
    MaySetLattice,
    MustSetLattice,
)
from repro.dataflow.solver import (
    ForwardSolver,
    SolverDivergence,
    SolverResult,
    SolverStats,
    kleene_fixpoint,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "Edge",
    "Terminator",
    "build_cfg",
    "Lattice",
    "MustSetLattice",
    "MaySetLattice",
    "MapLattice",
    "FlatLattice",
    "UNIVERSE",
    "ForwardSolver",
    "SolverResult",
    "SolverStats",
    "SolverDivergence",
    "kleene_fixpoint",
]
