"""Lattices for the worklist solver.

A lattice packages the value domain of one dataflow analysis: the
solver only ever calls ``bottom``/``join``/``leq`` (plus the
``widen`` hook for infinite-height domains), so a new client defines
its domain here and reuses the engine unchanged.

Provided instances:

* :class:`MustSetLattice` — sets under *intersection* (must-facts:
  guard refinement).  Bottom is the :data:`UNIVERSE` sentinel — the
  identity of intersection — so unvisited blocks never weaken a join.
* :class:`MaySetLattice` — sets under *union* (may-facts).
* :class:`MapLattice` — pointwise lift of a value lattice over dict
  keys (environments: variable → qualifier value).
* :class:`FlatLattice` — bottom < {constants} < top (flat qualifier
  domain for constant-style analyses).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional


class _Universe:
    """Sentinel: the set of *all* facts (bottom of a must-set lattice).

    Kept as a singleton object rather than an enormous frozenset; every
    lattice operation special-cases it as the identity of intersection.
    """

    def __repr__(self) -> str:
        return "UNIVERSE"


UNIVERSE = _Universe()


class Lattice:
    """Base protocol.  ``widen`` defaults to ``join`` — correct for any
    finite-height lattice; infinite-height domains override it."""

    def bottom(self):
        raise NotImplementedError

    def top(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def leq(self, a, b) -> bool:
        raise NotImplementedError

    def widen(self, old, new):
        return self.join(old, new)

    def eq(self, a, b) -> bool:
        return self.leq(a, b) and self.leq(b, a)


class MustSetLattice(Lattice):
    """Sets of facts that *must* hold; join is intersection.

    The order is reverse inclusion — more facts is *lower* — so bottom
    is :data:`UNIVERSE` (everything holds; the value of unvisited
    blocks) and top is the empty set (nothing known)."""

    def bottom(self):
        return UNIVERSE

    def top(self) -> FrozenSet:
        return frozenset()

    def join(self, a, b):
        if a is UNIVERSE:
            return b
        if b is UNIVERSE:
            return a
        return frozenset(a) & frozenset(b)

    def leq(self, a, b) -> bool:
        if a is UNIVERSE:
            return True
        if b is UNIVERSE:
            return False
        return frozenset(b) <= frozenset(a)


class MaySetLattice(Lattice):
    """Sets of facts that *may* hold; join is union; bottom is empty."""

    def __init__(self, universe: Optional[FrozenSet] = None):
        self.universe = universe

    def bottom(self) -> FrozenSet:
        return frozenset()

    def top(self) -> FrozenSet:
        if self.universe is None:
            raise ValueError("MaySetLattice without a universe has no top")
        return self.universe

    def join(self, a, b):
        return frozenset(a) | frozenset(b)

    def leq(self, a, b) -> bool:
        return frozenset(a) <= frozenset(b)


class FlatLattice(Lattice):
    """``BOTTOM < any constant < TOP`` — the flat qualifier domain."""

    class _Extreme:
        def __init__(self, name: str):
            self.name = name

        def __repr__(self) -> str:
            return self.name

    BOTTOM = _Extreme("FLAT_BOTTOM")
    TOP = _Extreme("FLAT_TOP")

    def bottom(self):
        return self.BOTTOM

    def top(self):
        return self.TOP

    def join(self, a, b):
        if a is self.BOTTOM:
            return b
        if b is self.BOTTOM:
            return a
        if a == b:
            return a
        return self.TOP

    def leq(self, a, b) -> bool:
        return a is self.BOTTOM or b is self.TOP or a == b


class MapLattice(Lattice):
    """Pointwise lift of ``value`` over dicts; a missing key stands for
    the value lattice's bottom, so maps stay sparse."""

    def __init__(self, value: Lattice):
        self.value = value

    def bottom(self) -> Dict:
        return {}

    def top(self):
        raise ValueError("MapLattice over unbounded keys has no top")

    def join(self, a: Dict, b: Dict) -> Dict:
        out = dict(a)
        for key, vb in b.items():
            va = out.get(key)
            out[key] = vb if va is None else self.value.join(va, vb)
        # Drop entries that joined to value-bottom to keep maps sparse.
        vbot = self.value.bottom()
        return {k: v for k, v in out.items() if not self.value.eq(v, vbot)}

    def leq(self, a: Dict, b: Dict) -> bool:
        vbot = self.value.bottom()
        return all(self.value.leq(v, b.get(k, vbot)) for k, v in a.items())

    def widen(self, old: Dict, new: Dict) -> Dict:
        out = dict(old)
        for key, vn in new.items():
            vo = out.get(key)
            out[key] = vn if vo is None else self.value.widen(vo, vn)
        return out
