"""The priority-worklist forward solver.

One engine for every dataflow client in the repo: the checker's guard
refinement, annotation inference, and run-time check placement all
instantiate this with a lattice and a transfer function instead of
hand-rolling a structured-tree fixpoint.  Blocks are prioritized by
reverse postorder, which visits loop bodies before re-visiting loop
headers and converges in near-minimal passes on reducible graphs —
and still terminates on the irreducible graphs ``goto`` can produce.

Per-function work counters (blocks, edges, iterations, wall time) are
collected on every run and surfaced through ``api.Report`` meta so
``--format json`` consumers can see where analysis time goes.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro import obs
from repro.cil.cfg import CFG, BasicBlock, Edge
from repro.dataflow.lattice import Lattice


class SolverDivergence(RuntimeError):
    """The fixpoint failed to converge within the iteration budget —
    an internal bug (non-monotone transfer or a lattice of unbounded
    height without widening), never a property of the input."""


@dataclass
class SolverStats:
    """Work counters for one solve, JSON-ready via :meth:`to_dict`."""

    function: str = ""
    blocks: int = 0
    edges: int = 0
    iterations: int = 0  # transfer-function applications (block visits)
    ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "blocks": self.blocks,
            "edges": self.edges,
            "iterations": self.iterations,
            "ms": round(self.ms, 3),
        }


@dataclass
class SolverResult:
    """Fixpoint values keyed by block index."""

    block_in: Dict[int, object] = field(default_factory=dict)
    block_out: Dict[int, object] = field(default_factory=dict)
    stats: SolverStats = field(default_factory=SolverStats)


#: transfer(block, in_value) -> out_value
Transfer = Callable[[BasicBlock, object], object]
#: edge_transfer(edge, out_value_of_src) -> value flowing along the edge
EdgeTransfer = Callable[[Edge, object], object]


class ForwardSolver:
    """Forward dataflow over a :class:`~repro.cil.cfg.CFG`.

    ``transfer`` maps a block's entry value to its exit value;
    ``edge_transfer`` (optional) refines the exit value along one
    outgoing edge — this is where branch-guard facts enter.  After
    ``widen_after`` visits of the same block the lattice's ``widen``
    replaces ``join`` on its inputs, so infinite-ascending domains
    still converge.
    """

    def __init__(
        self,
        cfg: CFG,
        lattice: Lattice,
        transfer: Transfer,
        edge_transfer: Optional[EdgeTransfer] = None,
        entry_value: object = None,
        widen_after: int = 16,
        max_visits_per_block: int = 1000,
    ):
        self.cfg = cfg
        self.lattice = lattice
        self.transfer = transfer
        self.edge_transfer = edge_transfer
        self.entry_value = (
            lattice.top() if entry_value is None else entry_value
        )
        self.widen_after = widen_after
        self.max_visits_per_block = max_visits_per_block

    def solve(self) -> SolverResult:
        cfg, lat = self.cfg, self.lattice
        started = time.perf_counter()
        stats = SolverStats(
            function=cfg.function.name,
            blocks=len(cfg.blocks),
            edges=cfg.n_edges,
        )
        block_in: Dict[int, object] = {
            b.index: lat.bottom() for b in cfg.blocks
        }
        block_out: Dict[int, object] = {}
        block_in[cfg.entry.index] = self.entry_value

        visits: Dict[int, int] = {}
        # Priority queue keyed by RPO: earlier blocks first, so a loop
        # body is fully propagated before its header is re-examined.
        heap = [(cfg.entry.rpo, cfg.entry.index)]
        queued = {cfg.entry.index}
        by_index = {b.index: b for b in cfg.blocks}
        budget = self.max_visits_per_block * max(1, len(cfg.blocks))

        while heap:
            _, index = heapq.heappop(heap)
            queued.discard(index)
            block = by_index[index]
            stats.iterations += 1
            if stats.iterations > budget:
                raise SolverDivergence(
                    f"no fixpoint in {budget} visits for "
                    f"{cfg.function.name!r}"
                )
            visits[index] = visits.get(index, 0) + 1
            out = self.transfer(block, block_in[index])
            block_out[index] = out
            for edge in block.succs:
                value = (
                    self.edge_transfer(edge, out)
                    if self.edge_transfer is not None
                    else out
                )
                dst = edge.dst.index
                old = block_in[dst]
                if visits.get(dst, 0) >= self.widen_after:
                    new = lat.widen(old, value)
                else:
                    new = lat.join(old, value)
                if not lat.eq(new, old):
                    block_in[dst] = new
                    if dst not in queued:
                        queued.add(dst)
                        heapq.heappush(heap, (edge.dst.rpo, dst))

        stats.ms = (time.perf_counter() - started) * 1000.0
        if obs.enabled():
            obs.incr("dataflow.solves")
            obs.incr("dataflow.iterations", stats.iterations)
            obs.add_time("dataflow.ms", stats.ms)
        return SolverResult(
            block_in=block_in, block_out=block_out, stats=stats
        )


def kleene_fixpoint(
    step: Callable[[object], object],
    init: object,
    max_iterations: int = 1000,
    eq: Callable[[object, object], bool] = lambda a, b: a == b,
):
    """Iterate ``step`` from ``init`` until it stabilizes; returns
    ``(fixpoint, iterations)``.  The whole-program analogue of the
    per-function solver, used by inference's descending iteration."""
    value = init
    for iteration in range(1, max_iterations + 1):
        nxt = step(value)
        if eq(nxt, value):
            return nxt, iteration
        value = nxt
    raise SolverDivergence(
        f"no fixpoint after {max_iterations} iterations"
    )
