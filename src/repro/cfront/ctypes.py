"""C types annotated with user-defined qualifiers.

Every type node carries a frozenset of qualifier names (``quals``).  The
paper's postfix notation ``int pos *`` parses to ``PointerType(IntType
({'pos'}))``: a qualifier qualifies the entire type written to its left.

Types are immutable; helpers return fresh nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class CType:
    """Base class for C types.  ``quals`` holds user-defined qualifiers."""

    quals: frozenset = field(default_factory=frozenset)

    def with_quals(self, names) -> "CType":
        """Return this type with ``names`` added to its qualifier set."""
        return replace(self, quals=self.quals | frozenset(names))

    def without_quals(self, names=None) -> "CType":
        """Return this type with ``names`` (default: all) removed."""
        if names is None:
            return replace(self, quals=frozenset())
        return replace(self, quals=self.quals - frozenset(names))

    def strip_quals(self) -> "CType":
        """The unqualified version of this type (top level only)."""
        return self.without_quals()

    def same_shape(self, other: "CType") -> bool:
        """Structural equality ignoring qualifiers at every level."""
        return _erase(self) == _erase(other)

    def __str__(self) -> str:  # pragma: no cover - exercised via subclasses
        return type_to_str(self)


@dataclass(frozen=True)
class VoidType(CType):
    def _show(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    """Integer types; ``kind`` distinguishes char/short/int/long/unsigned."""

    kind: str = "int"

    def _show(self) -> str:
        return self.kind


@dataclass(frozen=True)
class FloatType(CType):
    kind: str = "double"

    def _show(self) -> str:
        return self.kind


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType = field(default_factory=VoidType)

    def _show(self) -> str:
        return f"{type_to_str(self.pointee)}*"


@dataclass(frozen=True)
class ArrayType(CType):
    elem: CType = field(default_factory=IntType)
    size: Optional[int] = None

    def _show(self) -> str:
        size = "" if self.size is None else str(self.size)
        return f"{type_to_str(self.elem)}[{size}]"


@dataclass(frozen=True)
class StructType(CType):
    """A reference to a named struct; field layout lives in the program's
    struct table, keeping type nodes small and hashable."""

    name: str = ""

    def _show(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class FuncType(CType):
    ret: CType = field(default_factory=VoidType)
    params: Tuple[CType, ...] = ()
    varargs: bool = False

    def _show(self) -> str:
        parts = [type_to_str(p) for p in self.params]
        if self.varargs:
            parts.append("...")
        return f"{type_to_str(self.ret)}({', '.join(parts)})"


def type_to_str(t: CType) -> str:
    """Render a type in the paper's postfix-qualifier notation."""
    base = t._show()
    if t.quals:
        return base + " " + " ".join(sorted(t.quals))
    return base


def _erase(t: CType):
    """A hashable, qualifier-free structural key for a type."""
    if isinstance(t, VoidType):
        return ("void",)
    if isinstance(t, IntType):
        return ("int", t.kind)
    if isinstance(t, FloatType):
        return ("float", t.kind)
    if isinstance(t, PointerType):
        return ("ptr", _erase(t.pointee))
    if isinstance(t, ArrayType):
        return ("arr", _erase(t.elem))
    if isinstance(t, StructType):
        return ("struct", t.name)
    if isinstance(t, FuncType):
        return (
            "func",
            _erase(t.ret),
            tuple(_erase(p) for p in t.params),
            t.varargs,
        )
    raise TypeError(f"unknown type node {t!r}")


def deep_quals_equal(a: CType, b: CType) -> bool:
    """True when the *nested* qualifier structure of ``a`` and ``b`` agree.

    Used for assignments involving pointers: the paper forbids subtyping
    under ``ref``/pointer types, so pointee types must match exactly,
    qualifiers included (section 2.1.2).  Top-level qualifiers are *not*
    compared here; the caller applies the subtype rule at the top level.
    """
    if isinstance(a, PointerType) and isinstance(b, PointerType):
        return _quals_equal_all_levels(a.pointee, b.pointee)
    if isinstance(a, ArrayType) and isinstance(b, ArrayType):
        return _quals_equal_all_levels(a.elem, b.elem)
    return True


def _quals_equal_all_levels(a: CType, b: CType) -> bool:
    if a.quals != b.quals:
        return False
    if isinstance(a, PointerType) and isinstance(b, PointerType):
        return _quals_equal_all_levels(a.pointee, b.pointee)
    if isinstance(a, ArrayType) and isinstance(b, ArrayType):
        return _quals_equal_all_levels(a.elem, b.elem)
    return True


def is_pointer_like(t: CType) -> bool:
    return isinstance(t, (PointerType, ArrayType))


def pointee_of(t: CType) -> CType:
    """The type obtained by dereferencing ``t``."""
    if isinstance(t, PointerType):
        return t.pointee
    if isinstance(t, ArrayType):
        return t.elem
    raise TypeError(f"cannot dereference non-pointer type {type_to_str(t)}")


INT = IntType()
CHAR = IntType(kind="char")
VOID = VoidType()
CHAR_PTR = PointerType(pointee=CHAR)
VOID_PTR = PointerType(pointee=VOID)
