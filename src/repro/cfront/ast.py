"""Abstract syntax for the C subset (pre-lowering).

This is the surface AST produced by :mod:`repro.cfront.parser`.  It still
contains side-effecting expressions (assignments, calls, ``++``); the
lowering pass in :mod:`repro.cil.lower` converts it to the CIL-style IR
that the qualifier checker consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cfront.ctypes import CType


@dataclass(frozen=True)
class Loc:
    """Source location, for diagnostics.

    ``file`` is the original source path (empty when parsing from a
    string); with it set, the location renders ``file:line:col`` so
    diagnostics and CFG nodes point at real source lines.
    """

    line: int = 0
    col: int = 0
    file: str = ""

    def __str__(self) -> str:
        if self.file:
            return f"{self.file}:{self.line}:{self.col}"
        return f"line {self.line}"


# ---------------------------------------------------------------- expressions


@dataclass
class Expr:
    loc: Loc = field(default_factory=Loc, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Unary(Expr):
    """Prefix unary: ``-``, ``!``, ``~``, ``*`` (deref), ``&`` (addr-of)."""

    op: str = "-"
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = "+"
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    """Assignment in expression position; ``op`` is '=' or compound."""

    op: str = "="
    target: Expr = None
    value: Expr = None


@dataclass
class IncDec(Expr):
    """``++``/``--``; ``prefix`` distinguishes ``++x`` from ``x++``."""

    op: str = "++"
    target: Expr = None
    prefix: bool = False


@dataclass
class Call(Expr):
    func: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Expr = None
    fieldname: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    to_type: CType = None
    operand: Expr = None


@dataclass
class SizeofType(Expr):
    of_type: CType = None


@dataclass
class Conditional(Expr):
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


# ----------------------------------------------------------------- statements


@dataclass
class Stmt:
    loc: Loc = field(default_factory=Loc, kw_only=True)


@dataclass
class Decl(Stmt):
    """A (possibly initialized) variable declaration."""

    name: str = ""
    ctype: CType = None
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: "Block" = None
    otherwise: Optional["Block"] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: "Block" = None


@dataclass
class DoWhile(Stmt):
    cond: Expr = None
    body: "Block" = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: "Block" = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Goto(Stmt):
    """``goto label;`` — unstructured control flow."""

    label: str = ""


@dataclass
class Label(Stmt):
    """``name:`` — a goto target (labels have function scope)."""

    name: str = ""


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class SwitchCase:
    """One ``case C:`` (value=None for ``default:``) and its statements
    up to the next label."""

    value: Optional[int]
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    scrutinee: Expr = None
    cases: List[SwitchCase] = field(default_factory=list)


# ------------------------------------------------------------------ top level


@dataclass
class StructDef:
    name: str
    fields: List[Tuple[str, CType]]
    is_union: bool = False
    loc: Loc = field(default_factory=Loc)


@dataclass
class Param:
    name: str
    ctype: CType


@dataclass
class FuncDef:
    name: str
    ret: CType
    params: List[Param]
    varargs: bool
    body: Optional[Block]  # None for prototypes
    loc: Loc = field(default_factory=Loc)

    @property
    def is_prototype(self) -> bool:
        return self.body is None


@dataclass
class GlobalDecl:
    name: str
    ctype: CType
    init: Optional[Expr] = None
    loc: Loc = field(default_factory=Loc)


@dataclass
class TranslationUnit:
    structs: List[StructDef] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
    # Syntax errors recovered from in panic mode (parse_c(recover=True));
    # empty when parsing succeeded outright or recovery was off.
    errors: List[Exception] = field(default_factory=list)

    def struct(self, name: str) -> StructDef:
        for s in self.structs:
            if s.name == name:
                return s
        raise KeyError(f"unknown struct {name!r}")

    def function(self, name: str) -> FuncDef:
        defs = [f for f in self.functions if f.name == name]
        # Prefer a definition over a prototype when both are present.
        for f in defs:
            if not f.is_prototype:
                return f
        if defs:
            return defs[0]
        raise KeyError(f"unknown function {name!r}")
