"""A hand-written lexer for the C subset and for the qualifier DSL.

Both languages share token shapes (identifiers, integer/char/string
constants, multi-character punctuation), so one lexer serves both; the
parsers decide which identifiers are keywords.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class LexError(Exception):
    """Raised on malformed input, with line/column context."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    kind: str  # 'id', 'int', 'char', 'string', 'punct', 'eof'
    text: str
    line: int
    col: int

    @property
    def int_value(self) -> int:
        if self.kind != "int":
            raise ValueError(f"token {self.text!r} is not an integer")
        text = self.text
        if text.lower().startswith("0x"):
            return int(text, 16)
        if text.startswith("0") and len(text) > 1 and text.isdigit():
            return int(text, 8)
        return int(text)

    @property
    def string_value(self) -> str:
        if self.kind not in ("string", "char"):
            raise ValueError(f"token {self.text!r} is not a string/char")
        return _unescape(self.text[1:-1])

    @property
    def char_value(self) -> int:
        if self.kind != "char":
            raise ValueError(f"token {self.text!r} is not a char constant")
        body = _unescape(self.text[1:-1])
        if len(body) != 1:
            raise ValueError(f"bad char constant {self.text!r}")
        return ord(body)


# Longest-match-first punctuation table.
_PUNCTS = [
    "<<=", ">>=", "...",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":", "#",
]

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


def _unescape(body: str) -> str:
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            nxt = body[i + 1]
            out.append(_ESCAPES.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Lexer:
    """Tokenize ``source`` into a list of :class:`Token`.

    Comments (``//`` and ``/* */``) are skipped.  Preprocessor lines are
    *not* handled here; run :func:`repro.cfront.preprocess.preprocess`
    first (a stray ``#`` becomes a punct token and will be rejected by
    the parser).
    """

    def __init__(self, source: str, tolerant: bool = False):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        # Tolerant mode (used by panic-mode parsing): a malformed token
        # — stray byte, unterminated literal — is emitted as a punct
        # token instead of raising, so the parser can flag it as a
        # syntax error, synchronize, and keep going.
        self.tolerant = tolerant

    def tokens(self) -> List[Token]:
        toks = []
        while True:
            try:
                tok = self._next()
            except LexError:
                if not self.tolerant:
                    raise
                line, col = self.line, self.col
                ch = self._peek() or ";"
                self._advance()
                tok = Token("punct", ch, line, col)
            toks.append(tok)
            if tok.kind == "eof":
                return toks

    # -- internals ---------------------------------------------------

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _next(self) -> Token:
        self._skip_trivia()
        line, col = self.line, self.col
        if self.pos >= len(self.source):
            return Token("eof", "", line, col)
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            return Token("id", self.source[start : self.pos], line, col)

        if ch.isdigit():
            start = self.pos
            if ch == "0" and self._peek(1) in ("x", "X"):
                self._advance(2)
                while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                    self._advance()
            else:
                while self._peek().isdigit():
                    self._advance()
            # Swallow integer suffixes (u/l combinations).  The explicit
            # truthiness check matters: '"" in "uUlL"' is True in Python.
            while self._peek() and self._peek() in "uUlL":
                self._advance()
            text = self.source[start : self.pos]
            text = text.rstrip("uUlL")
            return Token("int", text, line, col)

        if ch == '"':
            start = self.pos
            self._advance()
            while self._peek() and self._peek() != '"':
                if self._peek() == "\\":
                    self._advance()
                self._advance()
            if not self._peek():
                raise self._error("unterminated string literal")
            self._advance()
            return Token("string", self.source[start : self.pos], line, col)

        if ch == "'":
            start = self.pos
            self._advance()
            while self._peek() and self._peek() != "'":
                if self._peek() == "\\":
                    self._advance()
                self._advance()
            if not self._peek():
                raise self._error("unterminated character constant")
            self._advance()
            return Token("char", self.source[start : self.pos], line, col)

        for punct in _PUNCTS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token("punct", punct, line, col)

        raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str, tolerant: bool = False) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` in one call."""
    return Lexer(source, tolerant=tolerant).tokens()
