"""A light preprocessor for the C subset.

Handles exactly what the paper's experiments need:

* ``#define NAME replacement`` — object-like macros, used for qualifier
  annotations (``#define nonnull __attribute__((nonnull))``).
* ``#include <...>`` / ``#include "..."`` — recorded and skipped; library
  signatures are supplied separately (section 3.3 of the paper uses
  alternate header signatures the same way).
* ``#ifdef/#ifndef/#endif`` — evaluated against defined macro names only.

Macro replacement is token-ish (word-boundary) rather than a full
re-lex; qualifier macros are single identifiers so this is sufficient.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PreprocessResult:
    text: str
    defines: Dict[str, str] = field(default_factory=dict)
    includes: List[str] = field(default_factory=list)


_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)(?:\s+(.*))?$")
_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+[<"]([^>"]+)[>"]')
_IFDEF_RE = re.compile(r"^\s*#\s*(ifdef|ifndef)\s+(\w+)")
_ENDIF_RE = re.compile(r"^\s*#\s*endif")
_ELSE_RE = re.compile(r"^\s*#\s*else")


def preprocess(source: str, predefined: Dict[str, str] | None = None) -> PreprocessResult:
    """Expand macros and strip preprocessor lines from ``source``."""
    defines: Dict[str, str] = dict(predefined or {})
    includes: List[str] = []
    out_lines: List[str] = []
    # Stack of booleans: is the current conditional region active?
    active_stack: List[bool] = []

    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#"):
            m = _IFDEF_RE.match(line)
            if m:
                want_defined = m.group(1) == "ifdef"
                is_def = m.group(2) in defines
                active_stack.append(is_def if want_defined else not is_def)
                out_lines.append("")
                continue
            if _ELSE_RE.match(line):
                if active_stack:
                    active_stack[-1] = not active_stack[-1]
                out_lines.append("")
                continue
            if _ENDIF_RE.match(line):
                if active_stack:
                    active_stack.pop()
                out_lines.append("")
                continue
            if active_stack and not all(active_stack):
                out_lines.append("")
                continue
            m = _DEFINE_RE.match(line)
            if m:
                defines[m.group(1)] = (m.group(2) or "").strip()
                out_lines.append("")
                continue
            m = _INCLUDE_RE.match(line)
            if m:
                includes.append(m.group(1))
                out_lines.append("")
                continue
            # Unknown directive: drop it (matches gcc -fsyntax-only laxity
            # for the subset we care about).
            out_lines.append("")
            continue

        if active_stack and not all(active_stack):
            out_lines.append("")
            continue
        out_lines.append(_expand(line, defines))

    return PreprocessResult("\n".join(out_lines), defines, includes)


def _expand(line: str, defines: Dict[str, str], active: frozenset = frozenset()) -> str:
    """Expand object-like macros on one line.

    As in C, a macro is not re-expanded inside its own replacement text
    (``active`` tracks the macros currently being expanded), so
    ``#define pos __attribute__((pos))`` works.
    """

    def repl(match: "re.Match[str]") -> str:
        name = match.group(0)
        if name in defines and name not in active:
            return _expand(defines[name], defines, active | {name})
        return name

    return re.sub(r"\b\w+\b", repl, line)
