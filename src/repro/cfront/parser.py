"""Recursive-descent parser for the C subset.

Produces the surface AST of :mod:`repro.cfront.ast`.  Qualifier
annotations are accepted in two forms:

* gcc attribute syntax: ``int __attribute__((pos)) x;`` — this is what
  the paper's macros expand to;
* bare registered names: if the parser is constructed with
  ``qualifier_names={'pos'}``, then ``int pos x;`` parses directly,
  which keeps examples readable without a preprocessing step.

Postfix qualifier convention (paper section 2.1): a qualifier qualifies
the entire type written to its left, so ``int pos *`` is a pointer to
positive int, and ``int * unique`` is a unique pointer to int.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro import obs
from repro.cfront import ast as A
from repro.cfront.ctypes import (
    ArrayType,
    CType,
    FloatType,
    FuncType,
    IntType,
    PointerType,
    StructType,
    VoidType,
)
from repro.cfront.lexer import Token, tokenize
from repro.cfront.preprocess import preprocess

_TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "struct", "const",
}

_STORAGE_KEYWORDS = {"static", "extern", "register", "volatile", "inline"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} at line {token.line}, column {token.col} (near {token.text!r})")
        self.token = token


class Parser:
    """``recover=True`` enables panic-mode error recovery: a syntax
    error inside a function body (or at top level) is recorded in
    ``self.errors`` and the parser synchronizes to the next ``;`` or
    ``}`` at the right nesting depth, so one run reports *every* syntax
    error in a unit instead of dying on the first.  With
    ``recover=False`` (the default) the first error raises, as before.
    """

    def __init__(
        self,
        source: str,
        qualifier_names: Iterable[str] = (),
        recover: bool = False,
        filename: str = "",
    ):
        self.tokens = tokenize(source, tolerant=recover)
        self.pos = 0
        self.qualifier_names: Set[str] = set(qualifier_names)
        self.typedefs: dict = {}
        self.recover = recover
        self.filename = filename
        self.errors: List[ParseError] = []

    # ------------------------------------------------------------ utilities

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, text: str, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.text == text and tok.kind in ("punct", "id")

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _expect(self, text: str) -> Token:
        tok = self._peek()
        if tok.text != text:
            raise ParseError(f"expected {text!r}", tok)
        return self._advance()

    def _expect_id(self) -> Token:
        tok = self._peek()
        if tok.kind != "id":
            raise ParseError("expected identifier", tok)
        return self._advance()

    def _loc(self, offset: int = 0) -> A.Loc:
        tok = self._peek(offset)
        return A.Loc(tok.line, tok.col, self.filename)

    # ---------------------------------------------------------- entry point

    def parse_translation_unit(self) -> A.TranslationUnit:
        unit = A.TranslationUnit()
        while self._peek().kind != "eof":
            try:
                self._parse_top_level(unit)
            except ParseError as err:
                if not self.recover:
                    raise
                self.errors.append(err)
                obs.incr("parse.recoveries")
                self._synchronize_top_level()
        unit.errors = list(self.errors)
        if obs.enabled():
            obs.incr("parse.units")
            obs.incr("parse.tokens", len(self.tokens))
            obs.incr("parse.functions", len(unit.functions))
        return unit

    def _parse_top_level(self, unit: A.TranslationUnit) -> None:
        if self._at(";"):
            self._advance()
            return
        self._skip_storage()
        if self._at("typedef"):
            self._parse_typedef()
            return
        if self._at("struct") and self._peek(2).text == "{":
            unit.structs.append(self._parse_struct_def())
            return
        if self._at("union") and self._peek(2).text == "{":
            unit.structs.append(self._parse_struct_def(is_union=True))
            return
        loc = self._loc()
        ctype = self._parse_type()
        name = self._expect_id().text
        if self._at("("):
            unit.functions.append(self._parse_function(ctype, name, loc))
        else:
            unit.globals.extend(self._parse_global_tail(ctype, name, loc))

    def _skip_storage(self) -> None:
        while self._peek().kind == "id" and self._peek().text in _STORAGE_KEYWORDS:
            self._advance()

    # ------------------------------------------------------ panic-mode sync

    def _synchronize_statement(self) -> None:
        """After a syntax error inside a function body: skip to just
        past the next ``;`` at the current brace depth, or stop *at*
        the ``}`` that closes the enclosing block (the block loop
        consumes it).  Braces opened while skipping are matched so a
        mangled nested block does not desynchronize the parser."""
        depth = 0
        while True:
            tok = self._peek()
            if tok.kind == "eof":
                return
            if tok.text == "}" and depth == 0:
                return
            self._advance()
            if tok.text == "{":
                depth += 1
            elif tok.text == "}":
                depth -= 1
            elif tok.text == ";" and depth == 0:
                return

    def _synchronize_top_level(self) -> None:
        """After a syntax error at top level: skip past the next
        ``;`` outside braces or past the ``}`` closing the outermost
        open brace, whichever comes first — i.e. drop the rest of the
        broken declaration or function and resume at the next one."""
        depth = 0
        while True:
            tok = self._peek()
            if tok.kind == "eof":
                return
            self._advance()
            if tok.text == "{":
                depth += 1
            elif tok.text == "}":
                if depth > 0:
                    depth -= 1
                if depth == 0:
                    return
            elif tok.text == ";" and depth == 0:
                return

    # --------------------------------------------------------------- types

    def _starts_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.kind == "id" and (
            tok.text in _TYPE_KEYWORDS
            or tok.text in _STORAGE_KEYWORDS
            or tok.text == "union"
            or tok.text in self.typedefs
        )

    def _parse_typedef(self) -> None:
        """``typedef <type> NAME;`` — the alias becomes usable as a
        base type for the rest of the translation unit."""
        self._expect("typedef")
        base = self._parse_type()
        name = self._expect_id().text
        base = self._parse_declarator_suffix(base)
        self._expect(";")
        self.typedefs[name] = base

    def _parse_type(self) -> CType:
        """Parse a type: base, then any mix of ``*``, attributes and
        registered qualifier names (postfix-qualifying)."""
        self._skip_storage()
        base = self._parse_base_type()
        return self._parse_type_suffix(base)

    def _parse_base_type(self) -> CType:
        tok = self._peek()
        if tok.kind != "id":
            raise ParseError("expected type", tok)
        if tok.text == "const":
            self._advance()
            return self._parse_base_type()
        if tok.text in ("struct", "union"):
            self._advance()
            name = self._expect_id().text
            return StructType(name=name)
        if tok.text in self.typedefs:
            self._advance()
            return self.typedefs[tok.text]
        if tok.text == "void":
            self._advance()
            return VoidType()
        if tok.text in ("float", "double"):
            self._advance()
            return FloatType(kind=tok.text)
        # Integer kinds, possibly multi-word (unsigned long, etc.).
        words = []
        while self._peek().kind == "id" and self._peek().text in (
            "unsigned", "signed", "short", "long", "int", "char",
        ):
            words.append(self._advance().text)
        if not words:
            raise ParseError("expected type", tok)
        kind = " ".join(w for w in words if w != "signed") or "int"
        return IntType(kind=kind)

    def _parse_type_suffix(self, current: CType) -> CType:
        while True:
            if self._at("*"):
                self._advance()
                current = PointerType(pointee=current)
            elif self._at("const"):
                self._advance()
            elif self._peek().text == "__attribute__":
                for q in self._parse_attribute():
                    current = current.with_quals([q])
            elif (
                self._peek().kind == "id"
                and self._peek().text in self.qualifier_names
            ):
                current = current.with_quals([self._advance().text])
            else:
                return current

    def _parse_attribute(self) -> List[str]:
        self._expect("__attribute__")
        self._expect("(")
        self._expect("(")
        names = [self._expect_id().text]
        while self._at(","):
            self._advance()
            names.append(self._expect_id().text)
        self._expect(")")
        self._expect(")")
        return names

    # -------------------------------------------------------------- structs

    def _parse_struct_def(self, is_union: bool = False) -> A.StructDef:
        loc = self._loc()
        self._expect("union" if is_union else "struct")
        name = self._expect_id().text
        self._expect("{")
        fields: List[Tuple[str, CType]] = []
        while not self._at("}"):
            ftype = self._parse_type()
            fname = self._expect_id().text
            ftype = self._parse_declarator_suffix(ftype)
            fields.append((fname, ftype))
            while self._at(","):
                self._advance()
                extra_name = self._expect_id().text
                fields.append((extra_name, ftype))
            self._expect(";")
        self._expect("}")
        self._expect(";")
        return A.StructDef(name=name, fields=fields, is_union=is_union, loc=loc)

    def _parse_declarator_suffix(self, ctype: CType) -> CType:
        """Array suffixes after a declared name: ``x[10]`` or ``x[]``."""
        while self._at("["):
            self._advance()
            size = None
            if not self._at("]"):
                size_tok = self._peek()
                if size_tok.kind != "int":
                    raise ParseError("expected constant array size", size_tok)
                self._advance()
                size = size_tok.int_value
            self._expect("]")
            ctype = ArrayType(elem=ctype, size=size)
        return ctype

    # ------------------------------------------------------------ functions

    def _parse_function(self, ret: CType, name: str, loc: A.Loc) -> A.FuncDef:
        self._expect("(")
        params: List[A.Param] = []
        varargs = False
        if not self._at(")"):
            while True:
                if self._at("..."):
                    self._advance()
                    varargs = True
                    break
                if self._at("void") and self._peek(1).text == ")":
                    self._advance()
                    break
                ptype = self._parse_type()
                pname = ""
                if self._peek().kind == "id":
                    pname = self._advance().text
                ptype = self._parse_declarator_suffix(ptype)
                params.append(A.Param(name=pname, ctype=ptype))
                if self._at(","):
                    self._advance()
                    continue
                break
        self._expect(")")
        body: Optional[A.Block] = None
        if self._at("{"):
            body = self._parse_block()
        else:
            self._expect(";")
        return A.FuncDef(
            name=name, ret=ret, params=params, varargs=varargs, body=body, loc=loc
        )

    def _parse_global_tail(
        self, ctype: CType, name: str, loc: A.Loc
    ) -> List[A.GlobalDecl]:
        decls = []
        ctype = self._parse_declarator_suffix(ctype)
        init = None
        if self._at("="):
            self._advance()
            init = self._parse_assignment_expr()
        decls.append(A.GlobalDecl(name=name, ctype=ctype, init=init, loc=loc))
        while self._at(","):
            self._advance()
            extra = self._expect_id().text
            extra_type = self._parse_declarator_suffix(ctype.strip_quals().with_quals(ctype.quals))
            extra_init = None
            if self._at("="):
                self._advance()
                extra_init = self._parse_assignment_expr()
            decls.append(A.GlobalDecl(name=extra, ctype=extra_type, init=extra_init, loc=loc))
        self._expect(";")
        return decls

    # ------------------------------------------------------------ statements

    def _parse_block(self) -> A.Block:
        loc = self._loc()
        self._expect("{")
        stmts: List[A.Stmt] = []
        while not self._at("}"):
            if self._peek().kind == "eof":
                err = ParseError("unexpected end of file in block", self._peek())
                if not self.recover:
                    raise err
                self.errors.append(err)
                return A.Block(stmts=stmts, loc=loc)
            if not self.recover:
                stmts.append(self._parse_statement())
                continue
            try:
                stmts.append(self._parse_statement())
            except ParseError as err:
                self.errors.append(err)
                self._synchronize_statement()
        self._expect("}")
        return A.Block(stmts=stmts, loc=loc)

    def _parse_statement(self) -> A.Stmt:
        loc = self._loc()
        tok = self._peek()
        if tok.text == ";":  # the empty statement
            self._advance()
            return A.Block(stmts=[], loc=loc)
        if tok.text == "{":
            return self._parse_block()
        if tok.text == "if":
            return self._parse_if()
        if tok.text == "while":
            self._advance()
            self._expect("(")
            cond = self._parse_expr()
            self._expect(")")
            body = self._parse_stmt_as_block()
            return A.While(cond=cond, body=body, loc=loc)
        if tok.text == "do":
            self._advance()
            body = self._parse_stmt_as_block()
            self._expect("while")
            self._expect("(")
            cond = self._parse_expr()
            self._expect(")")
            self._expect(";")
            return A.DoWhile(cond=cond, body=body, loc=loc)
        if tok.text == "for":
            return self._parse_for()
        if tok.text == "switch":
            return self._parse_switch()
        if tok.text == "return":
            self._advance()
            value = None
            if not self._at(";"):
                value = self._parse_expr()
            self._expect(";")
            return A.Return(value=value, loc=loc)
        if tok.text == "break":
            self._advance()
            self._expect(";")
            return A.Break(loc=loc)
        if tok.text == "continue":
            self._advance()
            self._expect(";")
            return A.Continue(loc=loc)
        if tok.text == "goto":
            self._advance()
            label = self._expect_id().text
            self._expect(";")
            return A.Goto(label=label, loc=loc)
        if (
            tok.kind == "id"
            and self._peek(1).text == ":"
            and self._peek(1).kind == "punct"
            and not self._starts_type()
        ):
            name = self._advance().text
            self._advance()  # ':'
            return A.Label(name=name, loc=loc)
        if self._starts_type():
            return self._parse_decl_statement()
        expr = self._parse_expr()
        self._expect(";")
        return A.ExprStmt(expr=expr, loc=loc)

    def _parse_stmt_as_block(self) -> A.Block:
        stmt = self._parse_statement()
        if isinstance(stmt, A.Block):
            return stmt
        return A.Block(stmts=[stmt], loc=stmt.loc)

    def _parse_if(self) -> A.If:
        loc = self._loc()
        self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then = self._parse_stmt_as_block()
        otherwise = None
        if self._at("else"):
            self._advance()
            otherwise = self._parse_stmt_as_block()
        return A.If(cond=cond, then=then, otherwise=otherwise, loc=loc)

    def _parse_for(self) -> A.For:
        loc = self._loc()
        self._expect("for")
        self._expect("(")
        init: Optional[A.Stmt] = None
        if not self._at(";"):
            if self._starts_type():
                init = self._parse_decl_statement()
            else:
                init = A.ExprStmt(expr=self._parse_expr(), loc=loc)
                self._expect(";")
        else:
            self._advance()
        cond = None
        if not self._at(";"):
            cond = self._parse_expr()
        self._expect(";")
        step = None
        if not self._at(")"):
            step = self._parse_expr()
        self._expect(")")
        body = self._parse_stmt_as_block()
        return A.For(init=init, cond=cond, step=step, body=body, loc=loc)

    def _parse_switch(self) -> A.Switch:
        loc = self._loc()
        self._expect("switch")
        self._expect("(")
        scrutinee = self._parse_expr()
        self._expect(")")
        self._expect("{")
        cases: list = []
        while not self._at("}"):
            if self._at("case"):
                self._advance()
                sign = 1
                if self._at("-"):
                    self._advance()
                    sign = -1
                value_tok = self._peek()
                if value_tok.kind == "int":
                    value = sign * self._advance().int_value
                elif value_tok.kind == "char":
                    value = sign * self._advance().char_value
                else:
                    raise ParseError("expected constant case label", value_tok)
                self._expect(":")
            elif self._at("default"):
                self._advance()
                self._expect(":")
                value = None
            else:
                raise ParseError("expected case or default label", self._peek())
            stmts: list = []
            while not (self._at("case") or self._at("default") or self._at("}")):
                stmts.append(self._parse_statement())
            cases.append(A.SwitchCase(value=value, stmts=stmts))
        self._expect("}")
        return A.Switch(scrutinee=scrutinee, cases=cases, loc=loc)

    def _parse_decl_statement(self) -> A.Stmt:
        loc = self._loc()
        ctype = self._parse_type()
        name = self._expect_id().text
        ctype = self._parse_declarator_suffix(ctype)
        init = None
        if self._at("="):
            self._advance()
            init = self._parse_assignment_expr()
        decls = [A.Decl(name=name, ctype=ctype, init=init, loc=loc)]
        while self._at(","):
            self._advance()
            extra = self._expect_id().text
            extra_type = self._parse_declarator_suffix(ctype)
            extra_init = None
            if self._at("="):
                self._advance()
                extra_init = self._parse_assignment_expr()
            decls.append(A.Decl(name=extra, ctype=extra_type, init=extra_init, loc=loc))
        self._expect(";")
        if len(decls) == 1:
            return decls[0]
        return A.Block(stmts=decls, loc=loc)

    # ----------------------------------------------------------- expressions

    def _parse_expr(self) -> A.Expr:
        expr = self._parse_assignment_expr()
        while self._at(","):
            self._advance()
            expr = self._parse_assignment_expr()
        return expr

    def _parse_assignment_expr(self) -> A.Expr:
        left = self._parse_conditional()
        tok = self._peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            loc = A.Loc(tok.line, tok.col, self.filename)
            self._advance()
            right = self._parse_assignment_expr()
            return A.Assign(op=tok.text, target=left, value=right, loc=loc)
        return left

    def _parse_conditional(self) -> A.Expr:
        cond = self._parse_binary(0)
        if self._at("?"):
            loc = self._loc()
            self._advance()
            then = self._parse_expr()
            self._expect(":")
            otherwise = self._parse_assignment_expr()
            return A.Conditional(cond=cond, then=then, otherwise=otherwise, loc=loc)
        return cond

    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> A.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._peek().kind == "punct" and self._peek().text in ops:
            tok = self._advance()
            right = self._parse_binary(level + 1)
            left = A.Binary(
                op=tok.text, left=left, right=right, loc=A.Loc(tok.line, tok.col, self.filename)
            )
        return left

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        loc = A.Loc(tok.line, tok.col, self.filename)
        if tok.kind == "punct" and tok.text in ("-", "!", "~", "*", "&", "+"):
            self._advance()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return A.Unary(op=tok.text, operand=operand, loc=loc)
        if tok.kind == "punct" and tok.text in ("++", "--"):
            self._advance()
            target = self._parse_unary()
            return A.IncDec(op=tok.text, target=target, prefix=True, loc=loc)
        if tok.kind == "id" and tok.text == "sizeof":
            self._advance()
            self._expect("(")
            if self._starts_type():
                of_type = self._parse_type()
                self._expect(")")
                return A.SizeofType(of_type=of_type, loc=loc)
            inner = self._parse_expr()
            self._expect(")")
            # sizeof(expr): treat as an opaque integer; the value is
            # irrelevant to qualifier checking.
            del inner
            return A.SizeofType(of_type=None, loc=loc)
        if tok.text == "(" and self._starts_type(1):
            self._advance()
            to_type = self._parse_type()
            self._expect(")")
            operand = self._parse_unary()
            return A.Cast(to_type=to_type, operand=operand, loc=loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            loc = A.Loc(tok.line, tok.col, self.filename)
            if self._at("["):
                self._advance()
                index = self._parse_expr()
                self._expect("]")
                expr = A.Index(base=expr, index=index, loc=loc)
            elif self._at("(") and isinstance(expr, A.Name):
                self._advance()
                args: List[A.Expr] = []
                if not self._at(")"):
                    args.append(self._parse_assignment_expr())
                    while self._at(","):
                        self._advance()
                        args.append(self._parse_assignment_expr())
                self._expect(")")
                expr = A.Call(func=expr.ident, args=args, loc=expr.loc)
            elif self._at("."):
                self._advance()
                fieldname = self._expect_id().text
                expr = A.Member(base=expr, fieldname=fieldname, arrow=False, loc=loc)
            elif self._at("->"):
                self._advance()
                fieldname = self._expect_id().text
                expr = A.Member(base=expr, fieldname=fieldname, arrow=True, loc=loc)
            elif self._at("++") or self._at("--"):
                op = self._advance().text
                expr = A.IncDec(op=op, target=expr, prefix=False, loc=loc)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self._peek()
        loc = A.Loc(tok.line, tok.col, self.filename)
        if tok.kind == "int":
            self._advance()
            return A.IntLit(value=tok.int_value, loc=loc)
        if tok.kind == "char":
            self._advance()
            return A.CharLit(value=tok.char_value, loc=loc)
        if tok.kind == "string":
            self._advance()
            # Adjacent string literals concatenate, as in C.
            value = tok.string_value
            while self._peek().kind == "string":
                value += self._advance().string_value
            return A.StrLit(value=value, loc=loc)
        if tok.kind == "id":
            self._advance()
            return A.Name(ident=tok.text, loc=loc)
        if tok.text == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise ParseError("expected expression", tok)


def parse_c(
    source: str,
    qualifier_names: Iterable[str] = (),
    run_preprocessor: bool = True,
    recover: bool = False,
    filename: str = "",
) -> A.TranslationUnit:
    """Parse C source into a :class:`TranslationUnit`.

    When ``run_preprocessor`` is true, object-like macros are expanded
    first, so qualifier macros (``#define pos __attribute__((pos))``)
    work exactly as in the paper's setup.

    With ``recover=True``, syntax errors do not raise: the parser
    panic-mode-synchronizes past each one and the returned unit carries
    every diagnostic in ``unit.errors`` — so a single ``check`` run can
    report all syntax errors in a file, not just the first.
    """
    if run_preprocessor:
        source = preprocess(source).text
    parser = Parser(
        source, qualifier_names=qualifier_names, recover=recover, filename=filename
    )
    return parser.parse_translation_unit()
