"""C-subset front end.

This package stands in for CIL's C parser in the original system.  It
provides a lexer, a light preprocessor (object-like ``#define`` macros and
``#include`` skipping), a recursive-descent parser for a C subset that is
rich enough for the paper's experiments, and a representation of C types
carrying user-defined qualifier annotations.

The supported C subset includes: struct definitions, global and local
declarations with initializers, function prototypes and definitions
(including varargs prototypes such as ``printf``), pointers, arrays,
casts, ``sizeof``, the usual unary/binary/relational/logical operators,
assignment (also in expression position), compound assignment, ``++``/
``--``, conditional expressions, ``if``/``while``/``for``/``return``/
``break``/``continue``, and gcc ``__attribute__((qual))`` qualifier
annotations (usually written through macros such as ``nonnull``).
"""

from repro.cfront.ctypes import (
    CType,
    IntType,
    VoidType,
    PointerType,
    ArrayType,
    StructType,
    FuncType,
)
from repro.cfront.lexer import Lexer, Token, LexError
from repro.cfront.parser import Parser, ParseError, parse_c
from repro.cfront.preprocess import preprocess

__all__ = [
    "CType",
    "IntType",
    "VoidType",
    "PointerType",
    "ArrayType",
    "StructType",
    "FuncType",
    "Lexer",
    "Token",
    "LexError",
    "Parser",
    "ParseError",
    "parse_c",
    "preprocess",
]
