"""Dynamic preservation audit: Theorem 5.1, executed.

The paper's preservation theorem says that in a checker-accepted
program, every expression of qualified type satisfies the qualifier's
invariant at run time.  :class:`AuditInterpreter` makes that claim
observable: after every store into a variable *declared* with a
value-qualified type, it re-evaluates the declared invariants on the
value just stored.  In a program the checker accepted without
diagnostics, a failed audit is a pipeline bug — the static layer
admitted a write the dynamic semantics refutes.

The audit is strictly read-only with respect to program semantics: it
never changes evaluation order, memory, or output, so an audited run
and a plain run behave identically up to the audit's own exception.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cil import ir
from repro.core.qualifiers.ast import QualifierDef, QualifierSet
from repro.semantics.csem import CInterpreter, CRuntimeError


class PreservationViolation(CRuntimeError):
    """A declared qualifier's invariant failed after a store the static
    checker accepted — the differential harness's smoking gun."""

    def __init__(self, qualifier: str, variable: str, value):
        super().__init__(
            f"preservation violated: {variable} declared "
            f"{qualifier} but holds {value!r}"
        )
        self.qualifier = qualifier
        self.variable = variable
        self.value = value


class AuditInterpreter(CInterpreter):
    """A :class:`CInterpreter` that audits declared value-qualifier
    invariants after every store to a directly-named variable."""

    def __init__(self, program: ir.Program, quals: QualifierSet, **kwargs):
        # The tables must exist before super().__init__, which already
        # executes the synthetic global-initializer function (and hence
        # re-enters our _exec_instruction override).
        # variable name -> [(qualifier name, definition)] per scope;
        # globals and per-function locals/formals are precomputed.
        self._audited_globals = self._audited_of(
            [(g.name, g.ctype) for g in program.globals], quals
        )
        self._audited_locals: Dict[str, Dict[str, List[Tuple[str, QualifierDef]]]] = {
            func.name: self._audited_of(func.formals + func.locals, quals)
            for func in program.functions
        }
        # A local (audited or not) shadows any same-named global: the
        # global's audit entries must not apply inside that function.
        self._local_names = {
            func.name: {n for n, _ in func.formals + func.locals}
            for func in program.functions
        }
        super().__init__(program, quals=quals, **kwargs)

    @staticmethod
    def _audited_of(decls, quals) -> Dict[str, List[Tuple[str, QualifierDef]]]:
        out: Dict[str, List[Tuple[str, QualifierDef]]] = {}
        for name, ctype in decls:
            if ctype is None:
                continue
            entries = []
            for qual in sorted(getattr(ctype, "quals", ())):
                qdef = quals.get(qual) if quals else None
                if (
                    qdef is not None
                    and qdef.is_value
                    and qdef.invariant is not None
                ):
                    entries.append((qual, qdef))
            if entries:
                out[name] = entries
        return out

    def _exec_instruction(self, instr: ir.Instruction, func: ir.Function) -> None:
        super()._exec_instruction(instr, func)
        target = None
        if isinstance(instr, ir.Set):
            target = instr.lvalue
        elif isinstance(instr, ir.Call) and instr.result is not None:
            target = instr.result
        if (
            target is None
            or not isinstance(target.host, ir.VarHost)
            or not isinstance(target.offset, ir.NoOffset)
        ):
            return
        name = target.host.name
        audited = self._audited_locals.get(func.name, {}).get(name)
        if audited is None and name not in self._local_names.get(
            func.name, ()
        ):
            audited = self._audited_globals.get(name)
        if not audited:
            return
        addr = self._lvalue_address(target, func)
        value = self.memory.get(addr, 0)
        for qual, qdef in audited:
            if not self._invariant_holds(qdef.invariant, value):
                raise PreservationViolation(qual, name, value)
