"""Shadow semantics for value-qualifier rules: brute-force ground truth.

A value qualifier's case clause ``decl int Expr E1, E2: E1 * E2, where
q1(E1) && q2(E2)`` is sound iff for all integers v1, v2::

    inv_q1(v1) and inv_q2(v2)  implies  inv_self(v1 * v2)

This module evaluates that statement directly — no reified syntax, no
axioms, no prover — by enumerating leaf values over a bounded integer
box.  It is a deliberately *independent* implementation of what the
rules mean, so a bug in the obligation generator, the axioms, or the
prover shows up as a disagreement rather than being faithfully
reproduced on both sides.

Scope: clauses whose pattern is built from Const/Expr leaves with
integer arithmetic (``C``, ``E1``, ``-E1``, ``E1 op E2``, ``NULL``)
and whose invariants (including those of every qualifier referenced in
the ``where`` predicate) are arithmetic over ``value(E)``.  Clauses
about locations, dereferences, or allocation are reported as
:data:`NOT_REPRESENTABLE` and skipped by the oracle.

The box bound is chosen so that a counterexample, when one exists over
the integers, exists inside the box for every rule the generator in
:mod:`repro.difftest.generator` can emit: patterns are at most one
binary operation over leaves, invariant/predicate thresholds are
bounded by ``GenConfig.const_bound``, so boundary witnesses lie within
a few units of the thresholds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.qualifiers import ast as Q

#: Sentinel: the clause (or a referenced invariant) falls outside the
#: arithmetic fragment this module can evaluate.
NOT_REPRESENTABLE = "not-representable"

#: Default half-width of the enumeration box.
DEFAULT_BOUND = 9


# ------------------------------------------------------- C-style arithmetic


def _arith(op: str, left: int, right: int) -> int:
    """Integer arithmetic with C's truncation-toward-zero semantics
    (kept local: the whole point is independence from csem)."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op in ("/", "%"):
        if right == 0:
            raise ZeroDivisionError
        quotient = abs(left) // abs(right)
        if (left < 0) != (right < 0):
            quotient = -quotient
        if op == "/":
            return quotient
        return left - right * quotient
    raise ValueError(f"shadow semantics: unknown operator {op!r}")


_CMP: Dict[str, Callable[[int, int], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


# ----------------------------------------------------- invariant predicates


def invariant_predicate(
    qdef: Q.QualifierDef,
) -> Optional[Callable[[int], bool]]:
    """Compile a value qualifier's invariant to a predicate on one
    integer, or None when it falls outside the arithmetic fragment.

    A qualifier *without* an invariant (e.g. ``tainted``) compiles to
    the constantly-true predicate: it constrains nothing."""
    if qdef.invariant is None:
        return lambda value: True
    if not qdef.is_value:
        return None

    def term(t: Q.ITerm, value: int) -> int:
        if isinstance(t, Q.IValue):
            return value
        if isinstance(t, Q.INum):
            return t.value
        if isinstance(t, Q.INull):
            return 0
        if isinstance(t, Q.IBin):
            return _arith(t.op, term(t.left, value), term(t.right, value))
        raise _Unrepresentable

    def formula(g: Q.IFormula, value: int) -> bool:
        if isinstance(g, Q.ICmp):
            return _CMP[g.op](term(g.left, value), term(g.right, value))
        if isinstance(g, Q.IAnd):
            return formula(g.left, value) and formula(g.right, value)
        if isinstance(g, Q.IOr):
            return formula(g.left, value) or formula(g.right, value)
        if isinstance(g, Q.INot):
            return not formula(g.operand, value)
        if isinstance(g, Q.IImplies):
            return (not formula(g.left, value)) or formula(g.right, value)
        raise _Unrepresentable

    inv = qdef.invariant

    def predicate(value: int) -> bool:
        return formula(inv, value)

    try:  # probe once so unrepresentable invariants fail fast
        predicate(0)
    except (_Unrepresentable, ZeroDivisionError, KeyError):
        return None
    return predicate


class _Unrepresentable(Exception):
    pass


# ------------------------------------------------------ clause compilation


@dataclass
class ShadowClause:
    """A case clause compiled to executable form: leaf names, a premise
    over leaf values, and the subject value the pattern constructs."""

    leaves: Tuple[str, ...]
    premise: Callable[[Dict[str, int]], bool]
    subject: Callable[[Dict[str, int]], int]


def compile_clause(
    qdef: Q.QualifierDef,
    clause: Q.CaseClause,
    quals: Q.QualifierSet,
) -> Optional[ShadowClause]:
    """Compile one case clause, or None if not representable."""
    pattern = clause.pattern

    if isinstance(pattern, Q.PNull):
        leaves: Tuple[str, ...] = ()

        def subject(env: Dict[str, int]) -> int:
            return 0

    elif isinstance(pattern, Q.PVar):
        leaves = (pattern.name,)

        def subject(env: Dict[str, int]) -> int:
            return env[pattern.name]

    elif isinstance(pattern, Q.PUnop) and pattern.op == "-":
        leaves = (pattern.name,)

        def subject(env: Dict[str, int]) -> int:
            return -env[pattern.name]

    elif isinstance(pattern, Q.PBinop) and pattern.op in "+-*":
        leaves = (pattern.left, pattern.right)

        def subject(env: Dict[str, int]) -> int:
            return _arith(pattern.op, env[pattern.left], env[pattern.right])

    else:  # PDeref/PAddrOf/PNew, or division patterns: out of fragment
        return None

    # Leaves must be declared Const or Expr over int.
    for name in leaves:
        try:
            decl = clause.decl_of(name)
        except KeyError:
            return None
        if decl.classifier not in (Q.Classifier.CONST, Q.Classifier.EXPR):
            return None

    def aexpr(a, env: Dict[str, int]) -> int:
        if isinstance(a, Q.AVar):
            if a.name not in env:
                raise _Unrepresentable
            return env[a.name]
        if isinstance(a, Q.ANum):
            return a.value
        if isinstance(a, Q.ANull):
            return 0
        if isinstance(a, Q.ABin):
            return _arith(a.op, aexpr(a.left, env), aexpr(a.right, env))
        raise _Unrepresentable

    # Resolve referenced qualifier invariants up front; a reference to
    # an unrepresentable qualifier makes the whole clause unshadowable.
    ref_preds: Dict[str, Callable[[int], bool]] = {}

    def resolve(pred: Q.Pred) -> bool:
        if isinstance(pred, Q.PredQual):
            target = quals.get(pred.qualifier)
            if target is None:
                return False
            compiled = invariant_predicate(target)
            if compiled is None:
                return False
            ref_preds[pred.qualifier] = compiled
            return True
        if isinstance(pred, (Q.PredAnd, Q.PredOr)):
            return resolve(pred.left) and resolve(pred.right)
        if isinstance(pred, Q.PredNot):
            return resolve(pred.operand)
        return True  # PredTrue / PredCmp

    if not resolve(clause.predicate):
        return None

    def premise(env: Dict[str, int]) -> bool:
        def pred(p: Q.Pred) -> bool:
            if isinstance(p, Q.PredTrue):
                return True
            if isinstance(p, Q.PredQual):
                if p.var not in env:
                    raise _Unrepresentable
                return ref_preds[p.qualifier](env[p.var])
            if isinstance(p, Q.PredCmp):
                return _CMP[p.op](aexpr(p.left, env), aexpr(p.right, env))
            if isinstance(p, Q.PredAnd):
                return pred(p.left) and pred(p.right)
            if isinstance(p, Q.PredOr):
                return pred(p.left) or pred(p.right)
            if isinstance(p, Q.PredNot):
                return not pred(p.operand)
            raise _Unrepresentable

        return pred(clause.predicate)

    return ShadowClause(leaves=leaves, premise=premise, subject=subject)


# ----------------------------------------------------------- enumeration


def counterexample(
    qdef: Q.QualifierDef,
    clause: Q.CaseClause,
    quals: Q.QualifierSet,
    bound: int = DEFAULT_BOUND,
):
    """Search the box ``[-bound, bound]^k`` for leaf values where the
    clause's premise holds but the qualifier's invariant fails on the
    constructed value.

    Returns a ``{leaf: value}`` dict for the first counterexample,
    ``None`` when the box is clean, or :data:`NOT_REPRESENTABLE`."""
    conclusion = invariant_predicate(qdef)
    if conclusion is None:
        return NOT_REPRESENTABLE
    compiled = compile_clause(qdef, clause, quals)
    if compiled is None:
        return NOT_REPRESENTABLE
    if len(compiled.leaves) > 3:
        return NOT_REPRESENTABLE  # keep enumeration tractable

    values = range(-bound, bound + 1)
    for combo in itertools.product(values, repeat=len(compiled.leaves)):
        env = dict(zip(compiled.leaves, combo))
        try:
            if compiled.premise(env) and not conclusion(
                compiled.subject(env)
            ):
                return env
        except (_Unrepresentable, ZeroDivisionError):
            return NOT_REPRESENTABLE
    return None


def clause_verdicts(
    qdef: Q.QualifierDef,
    quals: Q.QualifierSet,
    bound: int = DEFAULT_BOUND,
) -> List[Tuple[Q.CaseClause, object]]:
    """(clause, counterexample-or-None-or-NOT_REPRESENTABLE) for every
    case clause of a value qualifier, in definition order (the same
    order ``generate_obligations`` emits)."""
    if not qdef.is_value:
        return []
    return [
        (clause, counterexample(qdef, clause, quals, bound))
        for clause in qdef.cases
    ]
