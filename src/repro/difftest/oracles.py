"""The four differential oracles.

Each oracle takes a generated case plus the composed qualifier set and
returns ``(findings, counters)``: findings are concrete disagreements
between two independent implementations of the same semantics, and the
counters record how much comparison actually happened (so a silently
vacuous run is visible in reports).

1. *Prover vs. small-scope enumeration* — every settled verdict of the
   soundness prover on a generated rule is re-derived by brute force
   over a bounded integer box (:mod:`repro.difftest.shadow`).  A PROVED
   rule with a box counterexample is an unsoundness; a REFUTED rule
   with a clean box (or with an empty countermodel) is a bogus
   refutation.

2. *Static vs. dynamic preservation* — a checker-accepted program runs
   twice: natively (interpreter-enforced casts, plus the Thm.-5.1
   audit of :mod:`repro.difftest.audit`) and instrumented (inserted
   ``__check_*`` calls only, native checks off).  The two executions
   must agree on outcome, output, and — when a violation occurs —
   which qualifier was violated; an audit failure in an accepted
   program is a harness failure outright.

3. *Metamorphic prover invariance* — alpha-renaming the goal,
   permuting the axioms, reordering hypothesis conjuncts, and
   cache-cold vs. cache-warm replay must never flip a settled
   PROVED/REFUTED verdict.

4. *Forest vs. ddmin cores* — discharging the same qualifier with
   proof-forest conflict explanations (the default) and with the
   search-based ddmin core minimizer (``--no-explain``) must yield the
   same verdict on every obligation.  Conflict cores only prune the
   SAT search; the strategy that produced them must never decide it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cfront.parser import parse_c
from repro.cil.lower import lower_unit
from repro.core.checker.instrument import instrument_program
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.ast import QualifierSet
from repro.core.soundness.axioms import semantics_axioms
from repro.core.soundness.checker import check_soundness
from repro.core.soundness.obligations import generate_obligations
from repro.difftest import shadow
from repro.difftest.audit import AuditInterpreter, PreservationViolation
from repro.difftest.generator import GeneratedCase
from repro.prover.prover import Prover
from repro.prover.terms import (
    And,
    ForAll,
    Implies,
    TVar,
    formula_subst,
    term_subst,
)
from repro.semantics.csem import (
    CInterpreter,
    CRuntimeError,
    NullDereference,
    QualifierViolation,
)

PROVED = "PROVED"
REFUTED = "REFUTED"
SETTLED = (PROVED, REFUTED)


@dataclass
class Finding:
    """One concrete disagreement between two implementations."""

    oracle: str  # "prover-vs-enum" | "preservation" | "metamorphic"
                 # | "explain-vs-ddmin"
    kind: str    # short machine-readable failure class
    case: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "kind": self.kind,
            "case": self.case,
            "detail": self.detail,
        }


# --------------------------------------- oracle 1: prover vs enumeration


def prover_vs_enum(
    case: GeneratedCase,
    quals: QualifierSet,
    gen_names: List[str],
    time_limit: float = 10.0,
    bound: int = shadow.DEFAULT_BOUND,
) -> Tuple[List[Finding], Dict[str, int]]:
    findings: List[Finding] = []
    counters = {
        "obligations": 0,
        "compared": 0,
        "unsettled": 0,
        "not_representable": 0,
    }
    for name in gen_names:
        qdef = quals.get(name)
        if qdef is None or not qdef.is_value:
            continue
        report = check_soundness(qdef, quals, time_limit=time_limit)
        truths = dict(
            (id(clause), verdict)
            for clause, verdict in shadow.clause_verdicts(
                qdef, quals, bound
            )
        )
        # Obligations for case clauses carry rule "case i: <clause>"
        # with 1-based i; match them back to the clause by that index.
        for res in report.results:
            counters["obligations"] += 1
            rule = res.obligation.rule
            if not rule.startswith("case "):
                continue
            try:
                index = int(rule.split(":", 1)[0][len("case "):]) - 1
                clause = qdef.cases[index]
            except (ValueError, IndexError):
                continue
            if not rule.endswith(str(clause)):
                continue  # rule numbering drifted; never mismatch
            truth = truths.get(id(clause))
            base = {
                "qualifier": name,
                "rule": rule,
                "clause": str(clause),
                "verdict": res.verdict,
                "qual_source": case.qual_source,
            }
            if res.verdict == "CRASH":
                findings.append(
                    Finding(
                        "prover-vs-enum", "prover-crash", case.name,
                        {**base, "error": res.error},
                    )
                )
                continue
            if res.verdict not in SETTLED or res.obligation.trivial:
                counters["unsettled"] += 1
                continue
            if truth == shadow.NOT_REPRESENTABLE:
                counters["not_representable"] += 1
                continue
            counters["compared"] += 1
            if res.verdict == PROVED and isinstance(truth, dict):
                findings.append(
                    Finding(
                        "prover-vs-enum", "proved-but-counterexample",
                        case.name,
                        {**base, "box_counterexample": truth},
                    )
                )
            elif res.verdict == REFUTED:
                # NB: ProofResult.__bool__ is `proved` — test against
                # None, or every refutation looks countermodel-less.
                countermodel = (
                    res.result.countermodel
                    if res.result is not None
                    else []
                )
                if not isinstance(truth, dict):
                    findings.append(
                        Finding(
                            "prover-vs-enum", "refuted-but-valid",
                            case.name,
                            {**base, "countermodel": countermodel,
                             "box_bound": bound},
                        )
                    )
                elif not countermodel:
                    findings.append(
                        Finding(
                            "prover-vs-enum", "refuted-without-countermodel",
                            case.name,
                            {**base, "box_counterexample": truth},
                        )
                    )
    return findings, counters


# ------------------------------------------ oracle 2: preservation A/B


def _execute(interp: CInterpreter) -> dict:
    """Run to completion and summarize the observable outcome."""
    try:
        value = interp.run("main", [])
        return {
            "kind": "exit",
            "value": value,
            "output": "".join(interp.output),
        }
    except PreservationViolation:
        raise
    except QualifierViolation as exc:
        return {
            "kind": "qualifier-violation",
            "qualifier": exc.qualifier,
            "output": "".join(interp.output),
        }
    except NullDereference as exc:
        return {
            "kind": "null-dereference",
            "error": str(exc),
            "output": "".join(interp.output),
        }
    except CRuntimeError as exc:
        return {
            "kind": "runtime-error",
            "error": str(exc),
            "output": "".join(interp.output),
        }


def preservation(
    case: GeneratedCase, quals: QualifierSet
) -> Tuple[List[Finding], Dict[str, int]]:
    findings: List[Finding] = []
    counters = {
        "programs": 1,
        "accepted": 0,
        "static_warnings": 0,
        "compared_runs": 0,
    }
    unit = parse_c(
        case.c_source,
        qualifier_names=quals.names,
        recover=True,
        filename=f"{case.name}.c",
    )
    if unit.errors:
        findings.append(
            Finding(
                "preservation", "generator-invalid-program", case.name,
                {
                    "errors": [str(e) for e in unit.errors],
                    "c_source": case.c_source,
                },
            )
        )
        return findings, counters
    program = lower_unit(unit)
    check_report = QualifierChecker(
        program, quals, flow_sensitive=True
    ).check()
    accepted = not check_report.diagnostics
    if accepted:
        counters["accepted"] += 1
    else:
        counters["static_warnings"] += 1

    base = {
        "c_source": case.c_source,
        "qual_source": case.qual_source,
        "diagnostics": [str(d) for d in check_report.diagnostics],
    }

    # Run A: native semantics; in accepted programs, additionally audit
    # every store against the declared invariants (Thm. 5.1).
    interp_a: CInterpreter
    if accepted:
        interp_a = AuditInterpreter(program, quals=quals)
    else:
        interp_a = CInterpreter(program, quals=quals)
    try:
        outcome_a = _execute(interp_a)
    except PreservationViolation as exc:
        findings.append(
            Finding(
                "preservation", "audit-violation", case.name,
                {
                    **base,
                    "qualifier": exc.qualifier,
                    "variable": exc.variable,
                    "value": exc.value,
                    "output": "".join(interp_a.output),
                },
            )
        )
        return findings, counters

    # Run B: the materialized instrumentation is the only enforcement.
    instrumented = instrument_program(program, quals, flow_sensitive=True)
    interp_b = CInterpreter(
        instrumented, quals=quals, native_checks=False
    )
    outcome_b = _execute(interp_b)
    counters["compared_runs"] += 1
    if outcome_a != outcome_b:
        findings.append(
            Finding(
                "preservation", "native-vs-instrumented-divergence",
                case.name,
                {**base, "native": outcome_a, "instrumented": outcome_b},
            )
        )
    return findings, counters


# ------------------------------------- oracle 3: metamorphic invariance


def _alpha_rename(goal):
    if not isinstance(goal, ForAll) or not goal.vars:
        return None
    mapping = {v: TVar(f"{v}_renamed") for v in goal.vars}
    return ForAll(
        tuple(f"{v}_renamed" for v in goal.vars),
        formula_subst(goal.body, mapping),
        tuple(
            tuple(term_subst(p, mapping) for p in trig)
            for trig in goal.triggers
        ),
    )


def _reorder_conjuncts(goal):
    body = goal.body if isinstance(goal, ForAll) else goal
    if not (
        isinstance(body, Implies) and isinstance(body.left, And)
    ) or len(body.left.conjuncts) < 2:
        return None
    flipped = Implies(
        And(*reversed(body.left.conjuncts)), body.right
    )
    if isinstance(goal, ForAll):
        return ForAll(goal.vars, flipped, goal.triggers)
    return flipped


def _prove(goal, axioms, time_limit: float, cache=None) -> str:
    prover = Prover(time_limit=time_limit)
    prover.add_axioms(list(axioms))
    return prover.prove(goal, cache=cache).verdict


def metamorphic(
    case: GeneratedCase,
    quals: QualifierSet,
    gen_names: List[str],
    time_limit: float = 10.0,
    max_obligations: int = 2,
    cache_dir: Optional[str] = None,
) -> Tuple[List[Finding], Dict[str, int]]:
    findings: List[Finding] = []
    counters = {"obligations": 0, "variants": 0}
    rng = random.Random(f"metamorphic:{case.seed}:{case.index}")
    axioms = semantics_axioms()

    obligations = []
    for name in gen_names:
        qdef = quals.get(name)
        if qdef is None:
            continue
        obligations.extend(
            o for o in generate_obligations(qdef, quals) if not o.trivial
        )
    rng.shuffle(obligations)

    settled_obligations: List[Tuple] = []
    for obligation in obligations[:max_obligations]:
        base = _prove(obligation.goal, axioms, time_limit)
        if base not in SETTLED:
            continue
        counters["obligations"] += 1
        settled_obligations.append((obligation, base))
        variants = []
        renamed = _alpha_rename(obligation.goal)
        if renamed is not None:
            variants.append(("alpha-renaming", renamed, axioms))
        permuted = list(axioms)
        rng.shuffle(permuted)
        variants.append(("axiom-permutation", obligation.goal, permuted))
        reordered = _reorder_conjuncts(obligation.goal)
        if reordered is not None:
            variants.append(("conjunct-reordering", reordered, axioms))
        for label, goal, variant_axioms in variants:
            counters["variants"] += 1
            verdict = _prove(goal, variant_axioms, time_limit)
            if verdict in SETTLED and verdict != base:
                findings.append(
                    Finding(
                        "metamorphic", f"{label}-flips-verdict", case.name,
                        {
                            "qualifier": obligation.qualifier,
                            "rule": obligation.rule,
                            "base": base,
                            "variant": verdict,
                            "qual_source": case.qual_source,
                        },
                    )
                )
        if cache_dir is not None:
            from repro.cache.store import ProofCache

            with ProofCache(cache_dir=cache_dir) as cache:
                cold = _prove(
                    obligation.goal, axioms, time_limit, cache=cache
                )
                warm = _prove(
                    obligation.goal, axioms, time_limit, cache=cache
                )
            counters["variants"] += 2
            if {cold, warm} <= set(SETTLED) and (
                cold != base or warm != cold
            ):
                findings.append(
                    Finding(
                        "metamorphic", "cache-replay-flips-verdict",
                        case.name,
                        {
                            "qualifier": obligation.qualifier,
                            "rule": obligation.rule,
                            "base": base,
                            "cold": cold,
                            "warm": warm,
                            "qual_source": case.qual_source,
                        },
                    )
                )

    # Session invariance: discharging the same obligations through one
    # warm ProverSession — in generation order and in a permuted order —
    # must reproduce every cold verdict (learned-core seeding and goal
    # skolem canonicalization are verdict-preserving by design).
    if settled_obligations:
        from repro.prover.session import ProverSession

        def session_verdicts(pairs):
            session = ProverSession(
                axioms, context="difftest-metamorphic", time_limit=time_limit
            )
            return {
                id(o): session.prove(o.goal).verdict for o, _ in pairs
            }

        permuted_pairs = list(settled_obligations)
        rng.shuffle(permuted_pairs)
        for label, verdicts in (
            ("session-reuse", session_verdicts(settled_obligations)),
            ("session-order-permutation", session_verdicts(permuted_pairs)),
        ):
            for obligation, base in settled_obligations:
                counters["variants"] += 1
                verdict = verdicts[id(obligation)]
                if verdict in SETTLED and verdict != base:
                    findings.append(
                        Finding(
                            "metamorphic", f"{label}-flips-verdict",
                            case.name,
                            {
                                "qualifier": obligation.qualifier,
                                "rule": obligation.rule,
                                "base": base,
                                "variant": verdict,
                                "qual_source": case.qual_source,
                            },
                        )
                    )
    return findings, counters


# ------------------------------------- oracle 4: forest vs ddmin cores


def explain_vs_ddmin(
    case: GeneratedCase,
    quals: QualifierSet,
    gen_names: List[str],
    time_limit: float = 10.0,
) -> Tuple[List[Finding], Dict[str, int]]:
    """Core-strategy invariance: every obligation verdict must agree
    between the explanation path and the ddmin path.

    Both sweeps run cold (no session, no cache) so the only variable is
    the conflict-core strategy inside the theory solver.
    """
    findings: List[Finding] = []
    counters = {"obligations": 0, "compared": 0}
    for name in gen_names:
        qdef = quals.get(name)
        if qdef is None or not qdef.is_value:
            continue
        forest = check_soundness(
            qdef, quals, time_limit=time_limit, explain=True
        )
        ddmin = check_soundness(
            qdef, quals, time_limit=time_limit, explain=False
        )
        for res_f, res_d in zip(forest.results, ddmin.results):
            counters["obligations"] += 1
            if res_f.obligation.trivial:
                continue
            counters["compared"] += 1
            if (res_f.verdict, res_f.proved) != (res_d.verdict, res_d.proved):
                findings.append(
                    Finding(
                        "explain-vs-ddmin", "core-strategy-flips-verdict",
                        case.name,
                        {
                            "qualifier": name,
                            "rule": res_f.obligation.rule,
                            "explain": res_f.verdict,
                            "ddmin": res_d.verdict,
                            "qual_source": case.qual_source,
                        },
                    )
                )
    return findings, counters
