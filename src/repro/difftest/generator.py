"""Deterministic, seed-driven generation of C-subset programs and
qualifier definitions.

Every case is a pure function of ``(seed, index, GenConfig)``: the same
triple always yields byte-identical sources, so a failure artifact that
records them is replayable forever.

Two generators live here:

* :class:`QualGenerator` emits ``.qual`` definition files in the
  paper's rule language.  Rules are drawn from the fragment the
  soundness prover *decides* (validated empirically: linear clauses
  with arbitrary thresholds; multiplication clauses restricted to
  sign-form invariants, where the prover's product sign lemmas are
  complete) — so for every generated obligation, PROVED/REFUTED can be
  cross-checked against brute-force enumeration
  (:mod:`repro.difftest.shadow`).  Generated rules are *deliberately*
  a mix of sound and unsound: unsound rules must be REFUTED with a
  countermodel, and the refutation must be witnessed in the box.

* :class:`ProgramGenerator` emits well-formed, terminating C programs
  exercising the checker/instrumenter/interpreter: qualified
  declarations through casts, guard-refined declarations (the
  flow-sensitive acceptance path), casts after control-flow merges
  (the join-correctness path), side-effecting call arguments (the
  evaluation-order path), bounded loops, and — gated by knobs —
  goto, switch, pointers, and malloc.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

# --------------------------------------------------------------- config


@dataclass(frozen=True)
class GenConfig:
    """Feature knobs for one generated case."""

    size: int = 10           # statement templates per program
    n_qualifiers: int = 2    # generated qualifier definitions per case
    const_bound: int = 2     # |thresholds| in generated rules
    allow_goto: bool = True
    allow_switch: bool = True
    allow_pointers: bool = True
    allow_malloc: bool = True
    allow_ref_quals: bool = True  # unique/unaliased decls in programs

    def to_dict(self) -> dict:
        return {
            "size": self.size,
            "n_qualifiers": self.n_qualifiers,
            "const_bound": self.const_bound,
            "allow_goto": self.allow_goto,
            "allow_switch": self.allow_switch,
            "allow_pointers": self.allow_pointers,
            "allow_malloc": self.allow_malloc,
            "allow_ref_quals": self.allow_ref_quals,
        }

    @staticmethod
    def from_dict(data: dict) -> "GenConfig":
        return GenConfig(**{
            key: data[key]
            for key in GenConfig().to_dict()
            if key in data
        })


@dataclass(frozen=True)
class GeneratedCase:
    name: str
    seed: int
    index: int
    config: GenConfig
    c_source: str
    qual_source: str


# ----------------------------------------------------- .qual generation

#: Comparison operators the invariant/threshold language uses.
_CMP_OPS = (">", "<", ">=", "<=", "==", "!=")

#: Standard-library value qualifiers with arithmetic invariants, as
#: (name, op, threshold) — usable as premises in generated rules.
_STD_SHAPES: Tuple[Tuple[str, str, int], ...] = (
    ("pos", ">", 0),
    ("neg", "<", 0),
    ("nonneg", ">=", 0),
    ("nonzero", "!=", 0),
)


@dataclass
class _QualShape:
    name: str
    op: str
    threshold: int

    @property
    def sign_form(self) -> bool:
        return self.threshold == 0


class QualGenerator:
    """Emits one ``.qual`` file with ``n_qualifiers`` definitions named
    ``g0``, ``g1``, ...; later definitions may reference earlier ones
    (and the standard library) in their premises."""

    def __init__(self, rng: random.Random, config: GenConfig):
        self.rng = rng
        self.config = config
        self.shapes: List[_QualShape] = [
            _QualShape(*s) for s in _STD_SHAPES
        ]

    def generate(self) -> Tuple[str, List[str]]:
        """(source text, names of the generated qualifiers)."""
        blocks: List[str] = []
        names: List[str] = []
        for i in range(self.config.n_qualifiers):
            shape = _QualShape(
                name=f"g{i}",
                op=self.rng.choice(_CMP_OPS),
                threshold=self.rng.randint(
                    -self.config.const_bound, self.config.const_bound
                ),
            )
            blocks.append(self._definition(shape))
            self.shapes.append(shape)
            names.append(shape.name)
        return "\n".join(blocks), names

    # ------------------------------------------------------------ rules

    def _definition(self, shape: _QualShape) -> str:
        n_clauses = self.rng.randint(1, 3)
        clauses = [self._clause(shape) for _ in range(n_clauses)]
        body = "\n    | ".join(clauses)
        return (
            f"value qualifier {shape.name}(int Expr E)\n"
            f"  case E of\n"
            f"      {body}\n"
            f"  invariant value(E) {shape.op} {shape.threshold}\n"
        )

    def _clause(self, shape: _QualShape) -> str:
        kinds = ["const", "const", "pvar", "uminus", "addsub"]
        if shape.sign_form and any(
            s.sign_form for s in self.shapes
        ):
            kinds.append("mult")
        kind = self.rng.choice(kinds)
        if kind == "const":
            conds = [self._const_cond()]
            if self.rng.random() < 0.3:
                conds.append(self._const_cond())
            return (
                "decl int Const C:\n"
                f"        C, where {' && '.join(conds)}"
            )
        if kind == "pvar":
            q = self.rng.choice(self.shapes).name
            return f"decl int Expr E1:\n        E1, where {q}(E1)"
        if kind == "uminus":
            q = self.rng.choice(self.shapes).name
            return f"decl int Expr E1:\n        -E1, where {q}(E1)"
        if kind == "addsub":
            op = self.rng.choice("+-")
            qa = self.rng.choice(self.shapes).name
            qb = self.rng.choice(self.shapes).name
            return (
                "decl int Expr E1, E2:\n"
                f"        E1 {op} E2, where {qa}(E1) && {qb}(E2)"
            )
        # mult: sign-form premises only (the fragment the prover's
        # product sign lemmas decide — see the 216-combo sweep in
        # tests/test_difftest_oracles.py).
        sign_pool = [s.name for s in self.shapes if s.sign_form]
        qa = self.rng.choice(sign_pool)
        qb = self.rng.choice(sign_pool)
        return (
            "decl int Expr E1, E2:\n"
            f"        E1 * E2, where {qa}(E1) && {qb}(E2)"
        )

    def _const_cond(self) -> str:
        op = self.rng.choice(_CMP_OPS)
        k = self.rng.randint(
            -self.config.const_bound, self.config.const_bound
        )
        return f"C {op} {k}"


# -------------------------------------------------------- C generation


@dataclass
class _ProgCtx:
    """Mutable program-generation state."""

    lines: List[str] = field(default_factory=list)
    # Every declared plain-int variable, with its statically-known value
    # (None once control flow makes it unknown).
    ints: Dict[str, Optional[int]] = field(default_factory=dict)
    counter: int = 0
    used_tick: bool = False

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def emit(self, line: str, depth: int = 1) -> None:
        self.lines.append("  " * depth + line)


class ProgramGenerator:
    """Emits one C translation unit as text."""

    def __init__(
        self,
        rng: random.Random,
        config: GenConfig,
        qual_shapes: List[_QualShape],
    ):
        self.rng = rng
        self.config = config
        # Casts and qualified declarations draw from both the generated
        # qualifiers and the standard arithmetic ones.
        self.shapes = [_QualShape(*s) for s in _STD_SHAPES] + list(
            qual_shapes
        )

    # ----------------------------------------------------------- helpers

    def _inv_holds(self, shape: _QualShape, value: int) -> bool:
        return {
            ">": value > shape.threshold,
            "<": value < shape.threshold,
            ">=": value >= shape.threshold,
            "<=": value <= shape.threshold,
            "==": value == shape.threshold,
            "!=": value != shape.threshold,
        }[shape.op]

    def _satisfier(self, shape: _QualShape) -> int:
        candidates = [
            v for v in range(-6, 7) if self._inv_holds(shape, v)
        ]
        return self.rng.choice(candidates) if candidates else 0

    def _violator(self, shape: _QualShape) -> int:
        candidates = [
            v for v in range(-6, 7) if not self._inv_holds(shape, v)
        ]
        return self.rng.choice(candidates) if candidates else 0

    def _known_var(self, ctx: _ProgCtx) -> Optional[Tuple[str, int]]:
        known = [
            (name, value)
            for name, value in ctx.ints.items()
            if value is not None
        ]
        return self.rng.choice(known) if known else None

    def _any_var(self, ctx: _ProgCtx) -> str:
        return self.rng.choice(list(ctx.ints))

    def _expr_with_value(self, ctx: _ProgCtx, target: int) -> str:
        """A side-effect-free int expression evaluating to ``target``."""
        forms = ["const"]
        if self._known_var(ctx) is not None:
            forms += ["var_plus", "var_plus"]
        form = self.rng.choice(forms)
        if form == "const":
            return str(target)
        name, value = self._known_var(ctx)
        delta = target - value
        if delta >= 0:
            return f"{name} + {delta}"
        return f"{name} - {-delta}"

    def _rand_expr(self, ctx: _ProgCtx) -> Tuple[str, Optional[int]]:
        """A small arithmetic expression and its value if computable."""
        kind = self.rng.choice(["const", "var", "binop", "binop"])
        if kind == "const":
            k = self.rng.randint(-5, 5)
            return str(k), k
        if kind == "var":
            name = self._any_var(ctx)
            return name, ctx.ints[name]
        op = self.rng.choice("+-*")
        left, lval = self._rand_expr_leaf(ctx)
        right, rval = self._rand_expr_leaf(ctx)
        value = None
        if lval is not None and rval is not None:
            value = {
                "+": lval + rval, "-": lval - rval, "*": lval * rval
            }[op]
        return f"{left} {op} {right}", value

    def _rand_expr_leaf(self, ctx: _ProgCtx) -> Tuple[str, Optional[int]]:
        if self.rng.random() < 0.5:
            k = self.rng.randint(-4, 4)
            return str(k), k
        name = self._any_var(ctx)
        return name, ctx.ints[name]

    # --------------------------------------------------------- templates

    def generate(self) -> str:
        ctx = _ProgCtx()
        # Seed variables with known constants.
        for _ in range(self.rng.randint(2, 3)):
            name = ctx.fresh("v")
            value = self.rng.randint(-5, 5)
            ctx.emit(f"int {name} = {value};")
            ctx.ints[name] = value

        templates = [
            (self._stmt_decl_plain, 2.0),
            (self._stmt_assign, 2.0),
            (self._stmt_qual_cast, 2.0),
            (self._stmt_guarded_decl, 1.5),
            (self._stmt_merge_cast, 1.5),
            (self._stmt_tick_call, 1.0),
            (self._stmt_loop, 1.0),
            (self._stmt_print, 1.0),
            (self._stmt_nested_cast, 0.7),
        ]
        if self.config.allow_switch:
            templates.append((self._stmt_switch, 0.8))
        if self.config.allow_goto:
            templates.append((self._stmt_goto, 0.8))
        if self.config.allow_pointers:
            templates.append((self._stmt_pointer, 1.0))
        if self.config.allow_malloc and self.config.allow_pointers:
            templates.append((self._stmt_malloc, 0.8))
        if self.config.allow_ref_quals and self.config.allow_pointers:
            templates.append((self._stmt_ref_qual, 0.5))

        funcs, weights = zip(*templates)
        for _ in range(self.config.size):
            self.rng.choices(funcs, weights=weights)[0](ctx)

        # Observe final state: the tick trace and every plain int.
        if ctx.used_tick:
            ctx.emit('printf("%d\\n", t);')
        for name in ctx.ints:
            ctx.emit(f'printf("%d\\n", {name});')
        ctx.emit("return 0;")

        header = [
            "int t = 0;",
            "",
            "int tick(int k) {",
            "  t = t * 10 + k;",
            "  return k;",
            "}",
            "",
            "int use2(int a, int b) {",
            "  return a - 2 * b;",
            "}",
            "",
            "int main() {",
        ]
        return "\n".join(header + ctx.lines + ["}", ""])

    def _stmt_decl_plain(self, ctx: _ProgCtx) -> None:
        name = ctx.fresh("v")
        expr, value = self._rand_expr(ctx)
        ctx.emit(f"int {name} = {expr};")
        ctx.ints[name] = value

    def _stmt_assign(self, ctx: _ProgCtx) -> None:
        name = self._any_var(ctx)
        expr, value = self._rand_expr(ctx)
        ctx.emit(f"{name} = {expr};")
        ctx.ints[name] = value

    def _stmt_qual_cast(self, ctx: _ProgCtx) -> None:
        """``int q qN = (int q)(expr);`` — always accepted statically,
        enforced at run time.  Biased toward satisfying values so runs
        usually survive; violating casts are legitimate test fodder
        (both executions must report the same violation)."""
        shape = self.rng.choice(self.shapes)
        name = ctx.fresh("q")
        if self.rng.random() < 0.75:
            target = self._satisfier(shape)
        else:
            target = self._violator(shape)
        expr = self._expr_with_value(ctx, target)
        ctx.emit(f"int {shape.name} {name} = (int {shape.name})({expr});")

    def _stmt_nested_cast(self, ctx: _ProgCtx) -> None:
        """Nested casts in one expression: exercises check *ordering*
        (inner cast is evaluated — and must be checked — first)."""
        outer = self.rng.choice(self.shapes)
        inner = self.rng.choice(self.shapes)
        target = (
            self._satisfier(inner)
            if self.rng.random() < 0.6
            else self._violator(inner)
        )
        expr = self._expr_with_value(ctx, target)
        offset = self.rng.randint(0, 3)
        name = ctx.fresh("v")
        ctx.emit(
            f"int {name} = (int {outer.name})"
            f"((int {inner.name})({expr}) + {offset});"
        )
        ctx.ints[name] = None

    def _stmt_guarded_decl(self, ctx: _ProgCtx) -> None:
        """Flow-sensitive acceptance: inside ``if (x op k)`` the checker
        accepts ``int q g = x;`` with *no* run-time check."""
        shape = self.rng.choice(self.shapes)
        x = self._any_var(ctx)
        g = ctx.fresh("g")
        ctx.emit(f"if ({x} {shape.op} {shape.threshold}) {{")
        ctx.emit(f"  int {shape.name} {g} = {x};")
        ctx.emit(f'  printf("%d\\n", {g});')
        ctx.emit("}")

    def _stmt_merge_cast(self, ctx: _ProgCtx) -> None:
        """A guard fact must die at the join: the cast after the
        if/else still needs its run-time check.  (A broken must-join —
        e.g. union instead of intersection — elides it, and the
        differential run catches the missed violation.)"""
        shape = self.rng.choice(self.shapes)
        x = ctx.fresh("m")
        if self.rng.random() < 0.6:
            value = self._satisfier(shape)
        else:
            value = self._violator(shape)
        w = self._any_var(ctx)
        y = ctx.fresh("v")
        ctx.emit(f"int {x} = {value};")
        ctx.emit(f"if ({x} {shape.op} {shape.threshold}) {{")
        ctx.emit(f"  {w} = {w} + 1;")
        ctx.emit("} else {")
        ctx.emit(f"  {w} = {w} - 1;")
        ctx.emit("}")
        ctx.emit(f"int {y} = (int {shape.name}){x};")
        ctx.ints[w] = None
        ctx.ints[x] = value
        ctx.ints[y] = None

    def _stmt_tick_call(self, ctx: _ProgCtx) -> None:
        """Side-effecting call arguments: the global trace ``t`` records
        the order the arguments were evaluated in."""
        ctx.used_tick = True
        k1 = self.rng.randint(1, 4)
        k2 = self.rng.randint(5, 9)
        name = ctx.fresh("v")
        ctx.emit(f"int {name} = use2(tick({k1}), tick({k2}));")
        ctx.ints[name] = k1 - 2 * k2

    def _stmt_loop(self, ctx: _ProgCtx) -> None:
        i = ctx.fresh("i")
        n = self.rng.randint(2, 6)
        target = self._any_var(ctx)
        step = self.rng.randint(-3, 3)
        ctx.emit(f"int {i} = 0;")
        ctx.emit(f"while ({i} < {n}) {{")
        ctx.emit(f"  {i} = {i} + 1;")
        ctx.emit(f"  {target} = {target} + {step};")
        ctx.emit("}")
        ctx.ints[i] = n
        base = ctx.ints[target]
        ctx.ints[target] = base + n * step if base is not None else None

    def _stmt_print(self, ctx: _ProgCtx) -> None:
        ctx.emit(f'printf("%d\\n", {self._any_var(ctx)});')

    def _stmt_switch(self, ctx: _ProgCtx) -> None:
        x = self._any_var(ctx)
        v = self._any_var(ctx)
        fallthrough = self.rng.random() < 0.4
        ctx.emit(f"switch ({x}) {{")
        ctx.emit(f"  case 0: {v} = {v} + 1; break;")
        if fallthrough:
            ctx.emit(f"  case 1: {v} = {v} + 2;")
        else:
            ctx.emit(f"  case 1: {v} = {v} + 2; break;")
        ctx.emit(f"  default: {v} = {v} - 1; break;")
        ctx.emit("}")
        ctx.ints[v] = None

    def _stmt_goto(self, ctx: _ProgCtx) -> None:
        """A forward goto skipping one assignment."""
        label = ctx.fresh("L")
        v = self._any_var(ctx)
        ctx.emit(f"goto {label};")
        ctx.emit(f"{v} = {v} * 7;")
        ctx.emit(f"{label}: {v} = {v} + 0;")

    def _stmt_pointer(self, ctx: _ProgCtx) -> None:
        v = self._any_var(ctx)
        p = ctx.fresh("p")
        expr, value = self._rand_expr(ctx)
        ctx.emit(f"int* {p} = &{v};")
        ctx.emit(f"*{p} = {expr};")
        ctx.ints[v] = value

    def _stmt_malloc(self, ctx: _ProgCtx) -> None:
        m = ctx.fresh("h")
        w = ctx.fresh("v")
        expr, value = self._rand_expr(ctx)
        ctx.emit(f"int* {m} = malloc(1);")
        ctx.emit(f"*{m} = {expr};")
        ctx.emit(f"int {w} = *{m};")
        ctx.ints[w] = value

    def _stmt_ref_qual(self, ctx: _ProgCtx) -> None:
        """A unique pointer: NULL or fresh heap memory only (ref
        qualifiers are checked statically, never at run time)."""
        u = ctx.fresh("u")
        if self.rng.random() < 0.5:
            ctx.emit(f"int* unique {u} = NULL;")
        else:
            ctx.emit(f"int* unique {u} = malloc(1);")


# ------------------------------------------------------------ entry point


def generate_case(
    seed: int, index: int, config: Optional[GenConfig] = None
) -> GeneratedCase:
    """The ``index``-th case of the run seeded with ``seed``."""
    config = config or GenConfig()
    rng = random.Random(f"difftest:{seed}:{index}")
    # Vary feature knobs deterministically across the corpus so every
    # combination gets exercised.
    config = replace(
        config,
        allow_goto=config.allow_goto and rng.random() < 0.7,
        allow_switch=config.allow_switch and rng.random() < 0.7,
        allow_pointers=config.allow_pointers and rng.random() < 0.8,
        allow_malloc=config.allow_malloc and rng.random() < 0.7,
        allow_ref_quals=config.allow_ref_quals and rng.random() < 0.5,
    )
    qual_gen = QualGenerator(rng, config)
    qual_source, names = qual_gen.generate()
    generated_shapes = [
        s for s in qual_gen.shapes if s.name in names
    ]
    prog_gen = ProgramGenerator(rng, config, generated_shapes)
    c_source = prog_gen.generate()
    return GeneratedCase(
        name=f"case-{index:05d}",
        seed=seed,
        index=index,
        config=config,
        c_source=c_source,
        qual_source=qual_source,
    )
