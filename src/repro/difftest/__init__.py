"""Differential and metamorphic testing of the qualifier pipeline.

The pipeline carries three independent implementations of "what a
qualifier means": the soundness *prover* (logic + axioms), the static
*checker/instrumenter* (dataflow over CIL), and the *interpreter*
(``csem``'s native invariant evaluation).  The paper's preservation
theorem (5.1) says they must agree on every program; this package makes
that claim executable over generated corpora.

Modules:

* :mod:`generator` — deterministic, seed-driven generation of
  well-formed C-subset programs and ``.qual`` definition files.
* :mod:`shadow`    — an independent "shadow" semantics for generated
  value-qualifier rules: brute-force evaluation over a bounded integer
  box, used as ground truth against prover verdicts.
* :mod:`audit`     — an interpreter subclass that re-checks declared
  qualifier invariants after every store (dynamic Thm. 5.1).
* :mod:`oracles`   — the four differential oracles (prover vs.
  enumeration, static vs. dynamic preservation, metamorphic prover
  invariance, forest vs. ddmin conflict cores).
* :mod:`minimize`  — ddmin-style shrinking of failing cases.
* :mod:`runner`    — per-case orchestration, artifact files, and the
  batch worker the CLI rides.
"""

from repro.difftest.generator import GenConfig, GeneratedCase, generate_case
from repro.difftest.oracles import Finding
from repro.difftest.runner import ARTIFACT_DIR, run_case

__all__ = [
    "ARTIFACT_DIR",
    "Finding",
    "GenConfig",
    "GeneratedCase",
    "generate_case",
    "run_case",
]
