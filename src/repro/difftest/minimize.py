"""ddmin-style shrinking of failing difftest cases.

A failure artifact is only useful if a human can read it; a generated
program is ~40 lines of noise around a 3-line bug.  :func:`ddmin`
implements the classic delta-debugging loop over an item list with a
bounded probe budget; wrappers shrink C sources line-wise and qualifier
files clause-wise while preserving "the same failure still happens"
(the predicate — not mere crashing — so minimization can never morph
one bug into a different one).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set

from repro.core.qualifiers.ast import QualifierDef


def ddmin(
    items: Sequence,
    still_fails: Callable[[List], bool],
    max_probes: int = 150,
) -> List:
    """Zeller's ddmin: a 1-minimal sublist of ``items`` on which
    ``still_fails`` holds.  Assumes ``still_fails(items)`` is True;
    stops early (returning the best-so-far) once ``max_probes``
    predicate evaluations are spent."""
    current = list(items)
    granularity = 2
    probes = 0
    while len(current) >= 2 and probes < max_probes:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current) and probes < max_probes:
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                start += chunk
                continue
            probes += 1
            if still_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # restart scan at same position (list shrank under us)
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def minimize_lines(
    source: str,
    still_fails: Callable[[str], bool],
    max_probes: int = 150,
) -> str:
    """Line-wise ddmin over a source file."""
    lines = source.splitlines()
    kept = ddmin(
        lines,
        lambda candidate: still_fails("\n".join(candidate) + "\n"),
        max_probes=max_probes,
    )
    return "\n".join(kept) + "\n"


def render_value_qualifier(
    qdef: QualifierDef, case_indices: Sequence[int]
) -> str:
    """Re-render a value-qualifier definition keeping only the given
    case clauses (the AST's ``str`` forms round-trip the grammar)."""
    clauses = [str(qdef.cases[i]) for i in case_indices]
    lines = [f"value qualifier {qdef.name}(int Expr E)"]
    if clauses:
        lines.append("  case E of")
        lines.append("      " + "\n    | ".join(clauses))
    if qdef.invariant is not None:
        lines.append(f"  invariant {qdef.invariant}")
    return "\n".join(lines) + "\n"


def minimal_qual_source(
    defs: List[QualifierDef],
    target: str,
    clause_index: int,
) -> str:
    """The smallest ``.qual`` source exhibiting one clause of one
    generated qualifier: the target definition reduced to that single
    clause, plus (whole) definitions of every generated qualifier it
    transitively references in premises."""
    by_name = {d.name: d for d in defs}
    qdef = by_name[target]
    needed: Set[str] = set()
    frontier = [qdef.cases[clause_index]] if qdef.cases else []
    while frontier:
        clause = frontier.pop()
        probe = QualifierDef(
            name="_probe", kind="value", dtype=qdef.dtype,
            classifier=qdef.classifier, var=qdef.var, cases=[clause],
        )
        for ref in probe.referenced_qualifiers():
            if ref in by_name and ref not in needed and ref != target:
                needed.add(ref)
                frontier.extend(by_name[ref].cases)
    blocks = [
        render_value_qualifier(by_name[name], range(len(by_name[name].cases)))
        for name in sorted(needed)
    ]
    blocks.append(render_value_qualifier(qdef, [clause_index]))
    return "\n".join(blocks)
