"""Per-case orchestration, failure artifacts, and replay.

:func:`run_case` takes one generated case through all four oracles and
returns the findings plus namespaced counters.  When a finding
survives, :func:`minimize_finding` shrinks the triggering source with
:mod:`repro.difftest.minimize` and :func:`write_artifact` records a
self-contained JSON file under :data:`ARTIFACT_DIR` — seed, config,
exact sources, the finding, the minimized reproducer, and the command
that replays it.  :func:`replay_artifact` reruns an artifact from its
*stored* sources (not by regenerating), so artifacts stay valid even
if the generator's output drifts between versions.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import standard_qualifiers
from repro.core.qualifiers.parser import parse_qualifiers
from repro.difftest import minimize, oracles, shadow
from repro.difftest.generator import GenConfig, GeneratedCase, generate_case
from repro.difftest.oracles import Finding

#: Where failure artifacts land, relative to the working directory.
ARTIFACT_DIR = ".repro-difftest"

ORACLES = (
    "prover-vs-enum", "preservation", "metamorphic", "explain-vs-ddmin"
)


@dataclass
class CaseOutcome:
    case: GeneratedCase
    findings: List[Finding] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)


def build_qualifier_set(
    case: GeneratedCase,
) -> Tuple[QualifierSet, List[str]]:
    """Compose the standard library with the case's generated
    qualifiers; returns the set plus the generated names."""
    gen_defs = parse_qualifiers(case.qual_source)
    composed = QualifierSet(list(standard_qualifiers()) + list(gen_defs))
    return composed, [d.name for d in gen_defs]


def run_case(
    case: GeneratedCase,
    time_limit: float = 8.0,
    bound: int = shadow.DEFAULT_BOUND,
    which: Tuple[str, ...] = ORACLES,
    max_obligations: int = 1,
) -> CaseOutcome:
    """Run the selected oracles over one case."""
    quals, gen_names = build_qualifier_set(case)
    outcome = CaseOutcome(case=case)

    def merge(tag: str, findings: List[Finding], counters: Dict[str, int]):
        outcome.findings.extend(findings)
        for key, value in counters.items():
            outcome.counters[f"{tag}.{key}"] = (
                outcome.counters.get(f"{tag}.{key}", 0) + value
            )

    if "prover-vs-enum" in which:
        merge(
            "prover_vs_enum",
            *oracles.prover_vs_enum(
                case, quals, gen_names, time_limit=time_limit, bound=bound
            ),
        )
    if "preservation" in which:
        merge("preservation", *oracles.preservation(case, quals))
    if "metamorphic" in which:
        with tempfile.TemporaryDirectory(prefix="difftest-cache-") as tmp:
            merge(
                "metamorphic",
                *oracles.metamorphic(
                    case,
                    quals,
                    gen_names,
                    time_limit=time_limit,
                    max_obligations=max_obligations,
                    cache_dir=tmp,
                ),
            )
    if "explain-vs-ddmin" in which:
        merge(
            "explain_vs_ddmin",
            *oracles.explain_vs_ddmin(
                case, quals, gen_names, time_limit=time_limit
            ),
        )
    return outcome


# ------------------------------------------------------------ minimization


def _same_failure(findings: List[Finding], reference: Finding) -> bool:
    want_qual = reference.detail.get("qualifier")
    for f in findings:
        if f.oracle != reference.oracle or f.kind != reference.kind:
            continue
        if want_qual is not None and f.detail.get("qualifier") != want_qual:
            continue
        return True
    return False


def minimize_finding(
    case: GeneratedCase,
    finding: Finding,
    time_limit: float = 8.0,
    max_probes: int = 80,
) -> Optional[dict]:
    """Shrink the sources that triggered ``finding``.

    ``None`` when the reduced reproducer does not reproduce (the
    original artifact still carries the full sources).  A crash *of the
    minimizer itself* instead returns ``{"minimize_error": ...}`` so
    the artifact records why no reduction is present — a silent None
    here cost real debugging time once."""
    try:
        if finding.oracle == "preservation":
            quals, _ = build_qualifier_set(case)

            def still_fails(candidate: str) -> bool:
                trial = dataclasses.replace(case, c_source=candidate)
                try:
                    found, _ = oracles.preservation(trial, quals)
                except Exception:
                    # the candidate broke the harness itself (e.g. ddmin
                    # deleted main) — that is not the same failure
                    return False
                return _same_failure(found, finding)

            if not still_fails(case.c_source):
                return None
            reduced = minimize.minimize_lines(
                case.c_source, still_fails, max_probes=max_probes
            )
            return {"c_source": reduced, "qual_source": case.qual_source}

        # Prover-side findings: cut the qualifier file down to the one
        # clause named by the obligation's "case i: ..." rule.
        rule = finding.detail.get("rule", "")
        target = finding.detail.get("qualifier")
        if target is None or not rule.startswith("case "):
            return None
        index = int(rule.split(":", 1)[0][len("case "):]) - 1  # 1-based
        gen_defs = parse_qualifiers(case.qual_source)
        reduced_qual = minimize.minimal_qual_source(
            list(gen_defs), target, index
        )
        trial = dataclasses.replace(case, qual_source=reduced_qual)
        quals, gen_names = build_qualifier_set(trial)
        if finding.oracle == "prover-vs-enum":
            found, _ = oracles.prover_vs_enum(
                trial, quals, [target], time_limit=time_limit
            )
        elif finding.oracle == "explain-vs-ddmin":
            found, _ = oracles.explain_vs_ddmin(
                trial, quals, [target], time_limit=time_limit
            )
        else:
            found, _ = oracles.metamorphic(
                trial, quals, [target],
                time_limit=time_limit, max_obligations=4,
            )
        if not _same_failure(found, finding):
            return None
        return {"qual_source": reduced_qual}
    except Exception as exc:
        # Minimization is best-effort and must never mask the finding —
        # but the *reason* it failed belongs in the artifact.
        return {"minimize_error": repr(exc)}


# -------------------------------------------------------------- artifacts


def write_artifact(
    out_dir: str,
    case: GeneratedCase,
    finding: Finding,
    minimized: Optional[dict] = None,
) -> str:
    """Persist a self-contained, replayable failure record; returns the
    artifact path."""
    os.makedirs(out_dir, exist_ok=True)
    stem = f"{case.name}-{finding.kind}"
    path = os.path.join(out_dir, f"{stem}.json")
    ordinal = 1
    while os.path.exists(path):
        ordinal += 1
        path = os.path.join(out_dir, f"{stem}-{ordinal}.json")
    payload = {
        "schema_version": 1,
        "case": {
            "name": case.name,
            "seed": case.seed,
            "index": case.index,
            "config": case.config.to_dict(),
        },
        "c_source": case.c_source,
        "qual_source": case.qual_source,
        "finding": finding.to_dict(),
        "minimized": minimized,
        "repro": f"python -m repro difftest --replay {path}",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def replay_artifact(
    path: str, time_limit: float = 8.0
) -> CaseOutcome:
    """Re-run the oracles on an artifact's stored sources.

    The case is rebuilt from the recorded sources rather than by
    re-generating from the seed, so the replay exercises exactly the
    inputs that failed."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    meta = data["case"]
    case = GeneratedCase(
        name=meta["name"],
        seed=meta["seed"],
        index=meta["index"],
        config=GenConfig.from_dict(meta["config"]),
        c_source=data["c_source"],
        qual_source=data["qual_source"],
    )
    return run_case(case, time_limit=time_limit)


def regenerate(path: str) -> GeneratedCase:
    """Regenerate an artifact's case from its seed/config (useful for
    checking generator determinism against the stored sources)."""
    with open(path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)["case"]
    return generate_case(
        meta["seed"], meta["index"], GenConfig.from_dict(meta["config"])
    )
