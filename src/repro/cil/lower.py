"""Lowering from the surface C AST to the CIL-style IR.

The pass performs the expression/instruction split: assignments,
``++``/``--``, calls and conditional expressions in expression position
are flattened into instructions (introducing typed temporaries), so that
every :class:`repro.cil.ir.Expr` is side-effect free — the property the
paper's pattern language depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cfront import ast as A
from repro.cfront.ctypes import (
    ArrayType,
    CType,
    FuncType,
    IntType,
    PointerType,
    VoidType,
    is_pointer_like,
)
from repro.cil import ir
from repro.cil.typesof import TypeError_, TypingContext, type_of_expr, type_of_lvalue


class LowerError(Exception):
    def __init__(self, message: str, loc: A.Loc = A.Loc()):
        super().__init__(f"{message} ({loc})")
        self.loc = loc


@dataclass
class _FuncState:
    """Mutable per-function lowering state."""

    locals: List[Tuple[str, CType]] = field(default_factory=list)
    scopes: List[Dict[str, str]] = field(default_factory=lambda: [{}])
    used_names: set = field(default_factory=set)
    temp_count: int = 0
    # Step instructions of the innermost enclosing `for` (run on continue).
    for_step: Optional[List[ir.Instruction]] = None


class _Lowerer:
    def __init__(self, unit: A.TranslationUnit):
        self.unit = unit
        self.program = ir.Program()
        self.state = _FuncState()
        self._collect_signatures()

    # ------------------------------------------------------------- top level

    def _collect_signatures(self) -> None:
        for s in self.unit.structs:
            self.program.structs[s.name] = list(s.fields)
            if s.is_union:
                self.program.unions.add(s.name)
        for g in self.unit.globals:
            self.program.globals.append(ir.GlobalVar(g.name, g.ctype, g.loc))
        for f in self.unit.functions:
            sig = FuncType(
                ret=f.ret,
                params=tuple(p.ctype for p in f.params),
                varargs=f.varargs,
            )
            # A definition's signature wins over a prototype's only when
            # the prototype came first without annotations; in the paper's
            # workflow the annotated prototype is authoritative, so keep
            # the first signature that carries any qualifier.
            existing = self.program.signatures.get(f.name)
            if existing is None or (not _has_quals(existing) and _has_quals(sig)):
                self.program.signatures[f.name] = sig
            if not f.is_prototype or f.name not in self.program.formal_names:
                # Prototypes supply parameter names for diagnostics too;
                # a later definition's names win.
                if any(p.name for p in f.params):
                    self.program.formal_names[f.name] = [p.name for p in f.params]

    def lower(self) -> ir.Program:
        init_instrs: List[ir.Instruction] = []
        for g in self.unit.globals:
            if g.init is not None:
                self.state = _FuncState()
                ctx = self._context()
                value = self._lower_expr(g.init, init_instrs, ctx)
                lv = ir.Lvalue(ir.VarHost(g.name))
                init_instrs.append(ir.Set(lv, value, g.loc))
        if init_instrs:
            self.program.functions.append(
                ir.Function(
                    name=ir.Program.GLOBAL_INIT,
                    ret=VoidType(),
                    formals=[],
                    locals=self.state.locals,
                    body=[ir.Instr(init_instrs)],
                )
            )
            self.program.signatures[ir.Program.GLOBAL_INIT] = FuncType(ret=VoidType())

        for f in self.unit.functions:
            if f.is_prototype:
                continue
            self.program.functions.append(self._lower_function(f))
        return self.program

    def _lower_function(self, f: A.FuncDef) -> ir.Function:
        self.state = _FuncState()
        formals = []
        for p in f.params:
            name = p.name or f"__anon{len(formals)}"
            self.state.scopes[0][name] = name
            self.state.used_names.add(name)
            formals.append((name, p.ctype))
        self._formals = formals
        body = self._lower_block(f.body)
        return ir.Function(
            name=f.name,
            ret=f.ret,
            formals=formals,
            locals=self.state.locals,
            body=body,
            varargs=f.varargs,
            loc=f.loc,
        )

    # ----------------------------------------------------------- environment

    def _context(self) -> TypingContext:
        var_types = {g.name: g.ctype for g in self.program.globals}
        if hasattr(self, "_formals"):
            var_types.update(dict(self._formals))
        var_types.update(dict(self.state.locals))
        return TypingContext(var_types=var_types, structs=self.program.structs)

    def _declare_local(self, surface_name: str, ctype: CType) -> str:
        name = surface_name
        counter = 2
        while name in self.state.used_names:
            name = f"{surface_name}__{counter}"
            counter += 1
        self.state.used_names.add(name)
        self.state.scopes[-1][surface_name] = name
        self.state.locals.append((name, ctype))
        return name

    def _resolve(self, surface_name: str) -> str:
        for scope in reversed(self.state.scopes):
            if surface_name in scope:
                return scope[surface_name]
        return surface_name  # a global or unknown name

    def _fresh_temp(self, ctype: CType) -> ir.Lvalue:
        name = f"__t{self.state.temp_count}"
        self.state.temp_count += 1
        self.state.used_names.add(name)
        self.state.locals.append((name, ctype))
        return ir.Lvalue(ir.VarHost(name))

    def _return_type_of(self, func: str) -> CType:
        sig = self.program.signatures.get(func)
        if sig is not None:
            return sig.ret
        if func in ir.ALLOCATORS:
            return PointerType(pointee=VoidType())
        return IntType()

    # ------------------------------------------------------------ statements

    def _lower_block(self, block: A.Block) -> List[ir.Stmt]:
        self.state.scopes.append({})
        out: List[ir.Stmt] = []
        for stmt in block.stmts:
            out.extend(self._lower_stmt(stmt))
        self.state.scopes.pop()
        return out

    def _lower_stmt(self, stmt: A.Stmt) -> List[ir.Stmt]:
        if isinstance(stmt, A.Block):
            return self._lower_block(stmt)
        if isinstance(stmt, A.Decl):
            return self._lower_decl(stmt)
        if isinstance(stmt, A.ExprStmt):
            instrs: List[ir.Instruction] = []
            self._lower_expr(stmt.expr, instrs, self._context(), as_statement=True)
            return [ir.Instr(instrs, stmt.loc)] if instrs else []
        if isinstance(stmt, A.If):
            instrs = []
            cond = self._lower_expr(stmt.cond, instrs, self._context())
            then = self._lower_block(stmt.then)
            otherwise = self._lower_block(stmt.otherwise) if stmt.otherwise else []
            out: List[ir.Stmt] = []
            if instrs:
                out.append(ir.Instr(instrs, stmt.loc))
            out.append(ir.If(cond, then, otherwise, stmt.loc))
            return out
        if isinstance(stmt, A.While):
            return [self._lower_while(stmt.cond, stmt.body, stmt.loc)]
        if isinstance(stmt, A.DoWhile):
            first = self._lower_block(stmt.body)
            loop = self._lower_while(stmt.cond, stmt.body, stmt.loc)
            return first + [loop]
        if isinstance(stmt, A.For):
            return self._lower_for(stmt)
        if isinstance(stmt, A.Switch):
            return self._lower_switch(stmt)
        if isinstance(stmt, A.Return):
            instrs = []
            value = None
            if stmt.value is not None:
                value = self._lower_expr(stmt.value, instrs, self._context())
            out = []
            if instrs:
                out.append(ir.Instr(instrs, stmt.loc))
            out.append(ir.Return(value, stmt.loc))
            return out
        if isinstance(stmt, A.Break):
            return [ir.Break(stmt.loc)]
        if isinstance(stmt, A.Continue):
            if self.state.for_step is not None:
                return [ir.Instr(list(self.state.for_step), stmt.loc), ir.Continue(stmt.loc)]
            return [ir.Continue(stmt.loc)]
        if isinstance(stmt, A.Goto):
            return [ir.Goto(stmt.label, stmt.loc)]
        if isinstance(stmt, A.Label):
            return [ir.Label(stmt.name, stmt.loc)]
        raise LowerError(f"cannot lower statement {stmt!r}", stmt.loc)

    def _lower_switch(self, stmt: A.Switch) -> List[ir.Stmt]:
        """Desugar ``switch`` into an if/else chain.

        C fallthrough is honoured by splicing each case's statements
        with the following cases' statements up to the first top-level
        ``break`` (which terminates the switch, not an enclosing loop).
        """
        instrs: List[ir.Instruction] = []
        scrutinee = self._lower_expr(stmt.scrutinee, instrs, self._context())
        temp = self._fresh_temp(IntType())
        instrs.append(ir.Set(temp, scrutinee, stmt.loc))

        def body_from(index: int) -> List[A.Stmt]:
            """The statements executed when case ``index`` is entered:
            its own statements plus fallthrough, stopping at a
            top-level break (dropped)."""
            out: List[A.Stmt] = []
            for case in stmt.cases[index:]:
                for s in case.stmts:
                    if isinstance(s, A.Break):
                        return out
                    out.append(s)
            return out

        default_body: List[A.Stmt] = []
        for i, case in enumerate(stmt.cases):
            if case.value is None:
                default_body = body_from(i)

        # Build the chain inside-out.
        saved = self.state.for_step
        self.state.for_step = None
        chain: List[ir.Stmt] = self._lower_stmt_list(default_body)
        for i in reversed(
            [k for k, c in enumerate(stmt.cases) if c.value is not None]
        ):
            case = stmt.cases[i]
            cond = ir.BinOp("==", ir.Lval(temp), ir.IntConst(case.value))
            chain = [
                ir.If(cond, self._lower_stmt_list(body_from(i)), chain, stmt.loc)
            ]
        self.state.for_step = saved
        return [ir.Instr(instrs, stmt.loc)] + chain

    def _lower_stmt_list(self, stmts: List[A.Stmt]) -> List[ir.Stmt]:
        self.state.scopes.append({})
        out: List[ir.Stmt] = []
        for s in stmts:
            out.extend(self._lower_stmt(s))
        self.state.scopes.pop()
        return out

    def _lower_decl(self, stmt: A.Decl) -> List[ir.Stmt]:
        name = self._declare_local(stmt.name, stmt.ctype)
        if stmt.init is None:
            return []
        instrs: List[ir.Instruction] = []
        lv = ir.Lvalue(ir.VarHost(name))
        self._lower_assignment(lv, stmt.init, instrs, stmt.loc)
        return [ir.Instr(instrs, stmt.loc)]

    def _lower_while(self, cond: A.Expr, body: A.Block, loc: A.Loc) -> ir.While:
        cond_instrs: List[ir.Instruction] = []
        cond_expr = self._lower_expr(cond, cond_instrs, self._context())
        saved = self.state.for_step
        self.state.for_step = None
        body_stmts = self._lower_block(body)
        self.state.for_step = saved
        return ir.While(cond_instrs, cond_expr, body_stmts, loc)

    def _lower_for(self, stmt: A.For) -> List[ir.Stmt]:
        out: List[ir.Stmt] = []
        self.state.scopes.append({})
        if stmt.init is not None:
            out.extend(self._lower_stmt(stmt.init))
        cond_instrs: List[ir.Instruction] = []
        if stmt.cond is not None:
            cond_expr = self._lower_expr(stmt.cond, cond_instrs, self._context())
        else:
            cond_expr = ir.IntConst(1)
        step_instrs: List[ir.Instruction] = []
        if stmt.step is not None:
            self._lower_expr(stmt.step, step_instrs, self._context(), as_statement=True)
        saved = self.state.for_step
        self.state.for_step = step_instrs
        body_stmts = self._lower_block(stmt.body)
        self.state.for_step = saved
        body_stmts.append(ir.Instr(list(step_instrs), stmt.loc))
        out.append(ir.While(cond_instrs, cond_expr, body_stmts, stmt.loc))
        self.state.scopes.pop()
        return out

    # ----------------------------------------------------------- expressions

    def _lower_assignment(
        self,
        target: ir.Lvalue,
        value: A.Expr,
        instrs: List[ir.Instruction],
        loc: A.Loc,
    ) -> None:
        """Assign ``value`` to ``target``, keeping calls as Call
        instructions with their surface result cast recorded."""
        cast_type = None
        call = value
        if isinstance(value, A.Cast) and isinstance(value.operand, A.Call):
            cast_type = value.to_type
            call = value.operand
        if isinstance(call, A.Call):
            args = [self._lower_expr(a, instrs, self._context()) for a in call.args]
            instrs.append(ir.Call(target, call.func, args, loc, result_cast=cast_type))
            return
        expr = self._lower_expr(value, instrs, self._context())
        instrs.append(ir.Set(target, expr, loc))

    def _lower_expr(
        self,
        expr: A.Expr,
        instrs: List[ir.Instruction],
        ctx: TypingContext,
        as_statement: bool = False,
    ) -> ir.Expr:
        loc = expr.loc
        if isinstance(expr, A.IntLit):
            return ir.IntConst(expr.value)
        if isinstance(expr, A.CharLit):
            return ir.IntConst(expr.value)
        if isinstance(expr, A.StrLit):
            return ir.StrConst(expr.value)
        if isinstance(expr, A.Name):
            if expr.ident == "NULL":
                return ir.NullConst()
            return ir.Lval(ir.Lvalue(ir.VarHost(self._resolve(expr.ident))))
        if isinstance(expr, A.Unary):
            if expr.op == "*":
                operand = self._lower_expr(expr.operand, instrs, ctx)
                return ir.Lval(ir.Lvalue(ir.MemHost(operand)))
            if expr.op == "&":
                lv = self._lower_lvalue(expr.operand, instrs, ctx)
                if isinstance(lv.host, ir.MemHost) and isinstance(lv.offset, ir.NoOffset):
                    return lv.host.addr  # &*e simplifies to e, as in CIL
                return ir.AddrOf(lv)
            operand = self._lower_expr(expr.operand, instrs, ctx)
            return ir.UnOp(expr.op, operand)
        if isinstance(expr, A.Binary):
            left = self._lower_expr(expr.left, instrs, ctx)
            right = self._lower_expr(expr.right, instrs, ctx)
            return ir.BinOp(expr.op, left, right)
        if isinstance(expr, A.Assign):
            return self._lower_assign_expr(expr, instrs, ctx, as_statement)
        if isinstance(expr, A.IncDec):
            return self._lower_incdec(expr, instrs, ctx, as_statement)
        if isinstance(expr, A.Call):
            args = [self._lower_expr(a, instrs, ctx) for a in expr.args]
            ret = self._return_type_of(expr.func)
            if as_statement or isinstance(ret, VoidType):
                instrs.append(ir.Call(None, expr.func, args, loc))
                return ir.IntConst(0)
            temp = self._fresh_temp(ret)
            instrs.append(ir.Call(temp, expr.func, args, loc))
            return ir.Lval(temp)
        if isinstance(expr, A.Index) or isinstance(expr, A.Member):
            return ir.Lval(self._lower_lvalue(expr, instrs, ctx))
        if isinstance(expr, A.Cast):
            if isinstance(expr.operand, A.Call):
                # (T)f(...) in expression position: type the temp with the
                # cast target so downstream typing sees the cast.
                args = [self._lower_expr(a, instrs, ctx) for a in expr.operand.args]
                temp = self._fresh_temp(self._return_type_of(expr.operand.func))
                instrs.append(
                    ir.Call(temp, expr.operand.func, args, loc, result_cast=expr.to_type)
                )
                return ir.CastE(expr.to_type, ir.Lval(temp))
            operand = self._lower_expr(expr.operand, instrs, ctx)
            return ir.CastE(expr.to_type, operand)
        if isinstance(expr, A.SizeofType):
            return ir.SizeOfE(expr.of_type)
        if isinstance(expr, A.Conditional):
            cond = self._lower_expr(expr.cond, instrs, ctx)
            then_instrs: List[ir.Instruction] = []
            then_val = self._lower_expr(expr.then, then_instrs, self._context())
            else_instrs: List[ir.Instruction] = []
            else_val = self._lower_expr(expr.otherwise, else_instrs, self._context())
            if then_instrs or else_instrs:
                raise LowerError(
                    "conditional expression with side-effecting branches "
                    "is outside the supported C subset",
                    loc,
                )
            return ir.CondE(cond, then_val, else_val)
        raise LowerError(f"cannot lower expression {expr!r}", loc)

    def _lower_assign_expr(
        self,
        expr: A.Assign,
        instrs: List[ir.Instruction],
        ctx: TypingContext,
        as_statement: bool,
    ) -> ir.Expr:
        target = self._lower_lvalue(expr.target, instrs, ctx)
        if expr.op == "=":
            self._lower_assignment(target, expr.value, instrs, expr.loc)
        else:
            value = self._lower_expr(expr.value, instrs, ctx)
            binop = expr.op[:-1]  # '+=' -> '+'
            current = ir.Lval(target)
            try:
                target_type = type_of_lvalue(self._context(), target)
            except TypeError_:
                target_type = IntType()
            if is_pointer_like(target_type) and binop in ("+", "-"):
                new_value = ir.BinOp("ptradd", current, value)
            else:
                new_value = ir.BinOp(binop, current, value)
            instrs.append(ir.Set(target, new_value, expr.loc))
        return ir.Lval(target)

    def _lower_incdec(
        self,
        expr: A.IncDec,
        instrs: List[ir.Instruction],
        ctx: TypingContext,
        as_statement: bool,
    ) -> ir.Expr:
        target = self._lower_lvalue(expr.target, instrs, ctx)
        op = "+" if expr.op == "++" else "-"
        try:
            target_type = type_of_lvalue(self._context(), target)
        except TypeError_:
            target_type = IntType()
        if is_pointer_like(target_type):
            update = ir.BinOp("ptradd", ir.Lval(target), ir.IntConst(1 if op == "+" else -1))
        else:
            update = ir.BinOp(op, ir.Lval(target), ir.IntConst(1))
        if expr.prefix or as_statement:
            instrs.append(ir.Set(target, update, expr.loc))
            return ir.Lval(target)
        temp = self._fresh_temp(target_type)
        instrs.append(ir.Set(temp, ir.Lval(target), expr.loc))
        instrs.append(ir.Set(target, update, expr.loc))
        return ir.Lval(temp)

    def _lower_lvalue(
        self, expr: A.Expr, instrs: List[ir.Instruction], ctx: TypingContext
    ) -> ir.Lvalue:
        if isinstance(expr, A.Name):
            return ir.Lvalue(ir.VarHost(self._resolve(expr.ident)))
        if isinstance(expr, A.Unary) and expr.op == "*":
            addr = self._lower_expr(expr.operand, instrs, ctx)
            return ir.Lvalue(ir.MemHost(addr))
        if isinstance(expr, A.Index):
            base_lv_expr = self._lower_expr(expr.base, instrs, ctx)
            index = self._lower_expr(expr.index, instrs, ctx)
            try:
                base_type = type_of_expr(self._context(), base_lv_expr)
            except TypeError_:
                base_type = PointerType(pointee=IntType())
            if isinstance(base_type, ArrayType) and isinstance(base_lv_expr, ir.Lval):
                return base_lv_expr.lvalue.with_offset(ir.IndexOff(index))
            # Pointer indexing: p[i] is *(p + i); the logical memory model
            # types p + i like p.
            return ir.Lvalue(ir.MemHost(ir.BinOp("ptradd", base_lv_expr, index)))
        if isinstance(expr, A.Member):
            if expr.arrow:
                base = self._lower_expr(expr.base, instrs, ctx)
                return ir.Lvalue(ir.MemHost(base), ir.FieldOff(expr.fieldname))
            base_lv = self._lower_lvalue(expr.base, instrs, ctx)
            return base_lv.with_offset(ir.FieldOff(expr.fieldname))
        if isinstance(expr, A.Assign):
            # ((t = e)) used as an l-value target is not supported; but
            # an assignment used where an l-value is syntactically fine
            # in our subset only appears as a plain expression.
            lowered = self._lower_expr(expr, instrs, ctx)
            if isinstance(lowered, ir.Lval):
                return lowered.lvalue
        raise LowerError(f"expression is not an l-value: {expr!r}", expr.loc)


def lower_unit(unit: A.TranslationUnit) -> ir.Program:
    """Lower a parsed translation unit into a CIL-style :class:`Program`."""
    return _Lowerer(unit).lower()


def _has_quals(sig: FuncType) -> bool:
    def any_quals(t: CType) -> bool:
        if t.quals:
            return True
        inner = getattr(t, "pointee", None) or getattr(t, "elem", None)
        return any_quals(inner) if inner is not None else False

    return any_quals(sig.ret) or any(any_quals(p) for p in sig.params)
