"""Control-flow graphs over CIL functions.

The structured statement tree of :mod:`repro.cil.ir` is flattened into
basic blocks connected by guarded edges, so every dataflow client
(guard refinement, inference, instrumentation) can share one worklist
solver instead of re-implementing a structured walk — and so
unstructured control flow (``goto``, desugared ``switch`` fallthrough,
panic-recovery stubs) is analyzed soundly instead of being wished away.

Design points:

* Blocks are numbered in **creation order**, which the builder keeps
  equal to syntactic order; clients that iterate ``cfg.blocks`` emit
  diagnostics in the same order the legacy structured walks did.
* Blocks hold **references** to the same mutable instruction objects
  as the statement tree, so a client that rewrites instructions in
  place (``analysis.annotate``) sees its rewrites through either view.
* A branch terminator keeps the live ``If``/``While`` statement;
  guarded edges record only a polarity and read the condition through
  the terminator, so condition rewrites propagate to edges too.
* ``goto`` to an undefined label (a panic-recovery stub) falls off to
  the exit block rather than crashing the builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cil import ir
from repro.cil.ir import Loc

#: Terminator kinds.
JUMP = "jump"  # fall through to the single unguarded successor
BRANCH = "branch"  # two-way branch on ``stmt.cond`` (If or While)
RETURN = "return"  # function return (``stmt`` is the ir.Return)
GOTO = "goto"  # unconditional jump to a label (``stmt`` is the ir.Goto)
EXIT = "exit"  # the unique synthetic exit block


@dataclass
class Terminator:
    """How a basic block ends.  For ``BRANCH`` the originating
    ``If``/``While`` statement is kept live so ``cond`` reflects any
    in-place rewrite a client performs."""

    kind: str = JUMP
    stmt: Optional[object] = None  # ir.If | ir.While | ir.Return | ir.Goto

    @property
    def cond(self) -> Optional[ir.Expr]:
        if self.kind == BRANCH and self.stmt is not None:
            return self.stmt.cond
        return None


@dataclass
class Edge:
    """A CFG edge; ``guard`` is the polarity of the source block's
    branch condition (True/False edge) or ``None`` when unconditional."""

    src: "BasicBlock"
    dst: "BasicBlock"
    guard: Optional[bool] = None

    @property
    def cond(self) -> Optional[ir.Expr]:
        """The branch condition guarding this edge (live view)."""
        if self.guard is None:
            return None
        return self.src.terminator.cond

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "" if self.guard is None else f" [{self.guard}]"
        return f"B{self.src.index}->B{self.dst.index}{tag}"


@dataclass
class BasicBlock:
    index: int
    instrs: List[ir.Instruction] = field(default_factory=list)
    terminator: Terminator = field(default_factory=Terminator)
    succs: List[Edge] = field(default_factory=list)
    preds: List[Edge] = field(default_factory=list)
    rpo: int = -1
    loc: Loc = field(default_factory=Loc)

    @property
    def is_exit(self) -> bool:
        return self.terminator.kind == EXIT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<B{self.index} rpo={self.rpo} {self.terminator.kind}>"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other) -> bool:
        return self is other


@dataclass
class CFG:
    function: ir.Function
    blocks: List[BasicBlock]
    entry: BasicBlock
    exit: BasicBlock
    labels: Dict[str, BasicBlock] = field(default_factory=dict)

    @property
    def n_edges(self) -> int:
        return sum(len(b.succs) for b in self.blocks)

    def reachable(self) -> List[BasicBlock]:
        """Blocks reachable from entry, in RPO."""
        return sorted(
            (b for b in self.blocks if b.rpo >= 0 and b.rpo < self._n_reachable),
            key=lambda b: b.rpo,
        )

    # set by the builder after RPO numbering
    _n_reachable: int = 0

    def pretty(self) -> str:
        """A stable text rendering (for tests and debugging)."""
        lines: List[str] = []
        for b in self.blocks:
            succs = ", ".join(
                f"B{e.dst.index}"
                + ("" if e.guard is None else f"({'T' if e.guard else 'F'})")
                for e in b.succs
            )
            lines.append(
                f"B{b.index} rpo={b.rpo} {b.terminator.kind}"
                + (f" -> {succs}" if succs else "")
            )
            for instr in b.instrs:
                lines.append(f"  {instr}")
        return "\n".join(lines)


class _Builder:
    def __init__(self, func: ir.Function):
        self.func = func
        self.blocks: List[BasicBlock] = []
        self.labels: Dict[str, BasicBlock] = {}
        # (source block, label) pairs backpatched once every label is seen.
        self.pending_gotos: List[Tuple[BasicBlock, str]] = []
        # Blocks ending in ``return`` — all edge to the exit block.
        self.returning: List[BasicBlock] = []

    def new_block(self, loc: Optional[Loc] = None) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks), loc=loc or Loc())
        self.blocks.append(block)
        return block

    def edge(
        self, src: BasicBlock, dst: BasicBlock, guard: Optional[bool] = None
    ) -> None:
        e = Edge(src, dst, guard)
        src.succs.append(e)
        dst.preds.append(e)

    def walk(
        self,
        stmts: List[ir.Stmt],
        cur: Optional[BasicBlock],
        breaks: Optional[List[BasicBlock]],
        continue_target: Optional[BasicBlock],
    ) -> Optional[BasicBlock]:
        """Flatten ``stmts`` starting in ``cur``; returns the block
        control falls out of, or ``None`` when every path terminated.
        Statements after a terminator land in a fresh block with no
        predecessors — the unreachable blocks the satellite tests pin."""
        for stmt in stmts:
            if cur is None:
                cur = self.new_block(getattr(stmt, "loc", None))
            if isinstance(stmt, ir.Instr):
                cur.instrs.extend(stmt.instrs)
            elif isinstance(stmt, ir.If):
                cur.terminator = Terminator(BRANCH, stmt)
                then_b = self.new_block(stmt.loc)
                self.edge(cur, then_b, True)
                then_end = self.walk(stmt.then, then_b, breaks, continue_target)
                if stmt.otherwise:
                    else_b = self.new_block(stmt.loc)
                    self.edge(cur, else_b, False)
                    else_end = self.walk(
                        stmt.otherwise, else_b, breaks, continue_target
                    )
                    join = self.new_block(stmt.loc)
                    if then_end is not None:
                        self.edge(then_end, join)
                    if else_end is not None:
                        self.edge(else_end, join)
                else:
                    join = self.new_block(stmt.loc)
                    self.edge(cur, join, False)
                    if then_end is not None:
                        self.edge(then_end, join)
                cur = join
            elif isinstance(stmt, ir.While):
                header = self.new_block(stmt.loc)
                header.instrs.extend(stmt.cond_instrs)
                header.terminator = Terminator(BRANCH, stmt)
                self.edge(cur, header)
                body_b = self.new_block(stmt.loc)
                self.edge(header, body_b, True)
                loop_breaks: List[BasicBlock] = []
                body_end = self.walk(stmt.body, body_b, loop_breaks, header)
                if body_end is not None:
                    self.edge(body_end, header)
                after = self.new_block(stmt.loc)
                self.edge(header, after, False)
                for b in loop_breaks:
                    self.edge(b, after)
                cur = after
            elif isinstance(stmt, ir.Return):
                cur.terminator = Terminator(RETURN, stmt)
                self.returning.append(cur)
                cur = None
            elif isinstance(stmt, ir.Break):
                if breaks is not None:
                    breaks.append(cur)
                else:
                    # break outside a loop (panic-recovery stub):
                    # treat as falling off the function.
                    self.returning.append(cur)
                cur = None
            elif isinstance(stmt, ir.Continue):
                if continue_target is not None:
                    self.edge(cur, continue_target)
                else:
                    self.returning.append(cur)
                cur = None
            elif isinstance(stmt, ir.Goto):
                cur.terminator = Terminator(GOTO, stmt)
                self.pending_gotos.append((cur, stmt.label))
                cur = None
            elif isinstance(stmt, ir.Label):
                target = self.labels.get(stmt.name)
                if target is None:
                    target = self.new_block(stmt.loc)
                    self.labels[stmt.name] = target
                if cur is not None:
                    self.edge(cur, target)
                cur = target
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown statement {stmt!r}")
        return cur

    def build(self) -> CFG:
        entry = self.new_block(self.func.loc)
        last = self.walk(self.func.body, entry, None, None)
        exit_b = self.new_block(self.func.loc)
        exit_b.terminator = Terminator(EXIT)
        if last is not None:
            self.edge(last, exit_b)
        for block in self.returning:
            self.edge(block, exit_b)
        for block, label in self.pending_gotos:
            # Unknown label: the function body was mangled and recovered
            # in panic mode; falling off to exit keeps analysis sound
            # for everything that *was* parsed.
            self.edge(block, self.labels.get(label, exit_b))
        cfg = CFG(
            function=self.func,
            blocks=self.blocks,
            entry=entry,
            exit=exit_b,
            labels=self.labels,
        )
        _number_rpo(cfg)
        return cfg


def _number_rpo(cfg: CFG) -> None:
    """Assign reverse-postorder numbers from entry; blocks unreachable
    from entry are numbered afterwards in index order so every block
    has a unique priority for the worklist."""
    seen = set()
    postorder: List[BasicBlock] = []
    # Iterative DFS (parser recovery can produce deep chains).
    stack: List[Tuple[BasicBlock, int]] = [(cfg.entry, 0)]
    seen.add(cfg.entry)
    while stack:
        block, i = stack.pop()
        if i < len(block.succs):
            stack.append((block, i + 1))
            nxt = block.succs[i].dst
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, 0))
        else:
            postorder.append(block)
    order = list(reversed(postorder))
    for rpo, block in enumerate(order):
        block.rpo = rpo
    cfg._n_reachable = len(order)
    nxt_rpo = len(order)
    for block in cfg.blocks:
        if block not in seen:
            block.rpo = nxt_rpo
            nxt_rpo += 1


def build_cfg(func: ir.Function) -> CFG:
    """Build the control-flow graph of one CIL function."""
    return _Builder(func).build()


def has_unstructured_flow(func: ir.Function) -> bool:
    """Does the function use ``goto``/labels (i.e. control flow the
    structured statement walkers cannot follow)?"""
    return any(
        isinstance(s, (ir.Goto, ir.Label)) for s in ir.walk_stmts(func.body)
    )
