"""CIL-style intermediate representation.

Mirrors the essential property of CIL that the paper relies on (section
2.1): *expressions* are side-effect-free, while side effects — including
all procedure calls, hence ``malloc`` — live in *instructions*.  L-values
are represented as a host (variable or memory dereference) plus an
offset chain (fields / array indices), exactly as in CIL.
"""

from repro.cil.ir import (
    AddrOf,
    BinOp,
    Break,
    Call,
    CastE,
    Continue,
    FieldOff,
    Function,
    GlobalVar,
    If,
    IndexOff,
    Instr,
    IntConst,
    Lval,
    Lvalue,
    MemHost,
    NoOffset,
    NullConst,
    Program,
    Return,
    Set,
    SizeOfE,
    StrConst,
    UnOp,
    VarHost,
    While,
)
from repro.cil.lower import LowerError, lower_unit
from repro.cil.printer import program_to_c
from repro.cil.typesof import TypeError_ as CilTypeError
from repro.cil.typesof import TypingContext, type_of_expr, type_of_lvalue

__all__ = [
    "AddrOf", "BinOp", "Break", "Call", "CastE", "Continue", "FieldOff",
    "Function", "GlobalVar", "If", "IndexOff", "Instr", "IntConst", "Lval",
    "Lvalue", "MemHost", "NoOffset", "NullConst", "Program", "Return",
    "Set", "SizeOfE", "StrConst", "UnOp", "VarHost", "While",
    "LowerError", "lower_unit", "program_to_c",
    "CilTypeError", "TypingContext", "type_of_expr", "type_of_lvalue",
]
