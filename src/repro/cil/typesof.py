"""Base C typing of IR expressions and l-values.

The qualifier checker and the lowering pass both need to know the
declared C type (including qualifier annotations) of every expression.
Typing follows the paper's *logical model of memory* (section 3.3): the
type of ``p + i`` is the type of ``p``, so array indexing through a
pointer does not disturb qualifiers.

Reference qualifiers are stripped from the type of an l-value *read*
(its r-type, section 2.2.1) when the context is constructed with the
set of reference-qualifier names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.cfront.ctypes import (
    ArrayType,
    CType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    is_pointer_like,
    pointee_of,
)
from repro.cil import ir


class TypeError_(Exception):
    """Base-type error in the IR (distinct from builtin TypeError)."""


@dataclass
class TypingContext:
    """Everything needed to type expressions inside one function."""

    var_types: Dict[str, CType] = field(default_factory=dict)
    structs: Dict[str, list] = field(default_factory=dict)
    ref_quals: FrozenSet[str] = frozenset()

    def var_type(self, name: str) -> CType:
        try:
            return self.var_types[name]
        except KeyError:
            raise TypeError_(f"unbound variable {name!r}") from None

    def field_type(self, struct_name: str, fieldname: str) -> CType:
        for fname, ftype in self.structs.get(struct_name, []):
            if fname == fieldname:
                return ftype
        raise TypeError_(f"no field {fieldname!r} in struct {struct_name!r}")

    @classmethod
    def for_function(
        cls,
        program: "ir.Program",
        func: Optional["ir.Function"],
        ref_quals: FrozenSet[str] = frozenset(),
    ) -> "TypingContext":
        var_types = {g.name: g.ctype for g in program.globals}
        if func is not None:
            for name, ctype in func.formals + func.locals:
                var_types[name] = ctype
        return cls(var_types=var_types, structs=program.structs, ref_quals=ref_quals)


def type_of_lvalue(ctx: TypingContext, lv: ir.Lvalue) -> CType:
    """The declared type of an l-value, qualifiers included."""
    if isinstance(lv.host, ir.VarHost):
        current = ctx.var_type(lv.host.name)
    else:
        addr_type = type_of_expr(ctx, lv.host.addr)
        if not is_pointer_like(addr_type):
            raise TypeError_(
                f"dereference of non-pointer expression {lv.host.addr} "
                f"of type {addr_type}"
            )
        current = pointee_of(addr_type)
    return _apply_offset(ctx, current, lv.offset)


def _apply_offset(ctx: TypingContext, current: CType, off: "ir.Offset") -> CType:
    while not isinstance(off, ir.NoOffset):
        if isinstance(off, ir.FieldOff):
            if not isinstance(current, StructType):
                raise TypeError_(
                    f"field access .{off.fieldname} on non-struct type {current}"
                )
            current = ctx.field_type(current.name, off.fieldname)
        elif isinstance(off, ir.IndexOff):
            if not is_pointer_like(current):
                raise TypeError_(f"indexing non-array type {current}")
            current = pointee_of(current)
        off = off.rest
    return current


def rtype_of_lvalue(ctx: TypingContext, lv: ir.Lvalue) -> CType:
    """The r-type: top-level reference qualifiers are stripped when the
    l-value is read (paper section 2.2.1)."""
    full = type_of_lvalue(ctx, lv)
    return full.without_quals(full.quals & ctx.ref_quals)


def type_of_expr(ctx: TypingContext, expr: ir.Expr) -> CType:
    if isinstance(expr, ir.IntConst):
        return IntType()
    if isinstance(expr, ir.StrConst):
        return PointerType(pointee=IntType(kind="char"))
    if isinstance(expr, ir.NullConst):
        return PointerType(pointee=VoidType())
    if isinstance(expr, ir.Lval):
        return rtype_of_lvalue(ctx, expr.lvalue)
    if isinstance(expr, ir.AddrOf):
        return PointerType(pointee=type_of_lvalue(ctx, expr.lvalue))
    if isinstance(expr, ir.UnOp):
        operand = type_of_expr(ctx, expr.operand)
        if expr.op == "!":
            return IntType()
        # '-' and '~': numeric result, qualifiers do not propagate except
        # through user-defined case rules.
        return operand.strip_quals() if isinstance(operand, (IntType, FloatType)) else IntType()
    if isinstance(expr, ir.BinOp):
        return _type_of_binop(ctx, expr)
    if isinstance(expr, ir.CastE):
        return expr.to_type
    if isinstance(expr, ir.CondE):
        # The conditional's static type drops top-level qualifiers: the
        # checker's built-in rule for conditionals requires *both*
        # branches to qualify instead.
        then_type = type_of_expr(ctx, expr.then)
        if isinstance(then_type, PointerType) and isinstance(expr.then, ir.NullConst):
            return type_of_expr(ctx, expr.otherwise).strip_quals()
        return then_type.strip_quals()
    if isinstance(expr, ir.SizeOfE):
        return IntType()
    raise TypeError_(f"cannot type expression {expr!r}")


_COMPARISONS = {"==", "!=", "<", ">", "<=", ">=", "&&", "||"}


def _type_of_binop(ctx: TypingContext, expr: ir.BinOp) -> CType:
    left = type_of_expr(ctx, expr.left)
    if expr.op == "ptradd":
        # Logical memory model: p + i has the type of p.
        return left
    if expr.op in _COMPARISONS:
        return IntType()
    right = type_of_expr(ctx, expr.right)
    # Pointer arithmetic keeps the pointer's type (logical memory model).
    if is_pointer_like(left) and not is_pointer_like(right):
        return left
    if is_pointer_like(right) and not is_pointer_like(left):
        return right
    if is_pointer_like(left) and is_pointer_like(right):
        return IntType()  # pointer difference
    # Plain arithmetic: result is the unqualified numeric type.
    if isinstance(left, FloatType) or isinstance(right, FloatType):
        return FloatType().strip_quals()
    return IntType()
