"""IR node definitions.

Expression nodes are immutable and hashable so the qualifier checker can
memoize judgments about them.  Statements and instructions are plain
mutable dataclasses (instrumentation rewrites them in place).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cfront.ast import Loc
from repro.cfront.ctypes import CType, FuncType


# ------------------------------------------------------------------ l-values


@dataclass(frozen=True)
class VarHost:
    """The l-value host naming a variable directly."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MemHost:
    """The l-value host dereferencing a pointer expression."""

    addr: "Expr"

    def __str__(self) -> str:
        return f"*({self.addr})"


@dataclass(frozen=True)
class NoOffset:
    def __str__(self) -> str:
        return ""


@dataclass(frozen=True)
class FieldOff:
    fieldname: str
    rest: "Offset" = field(default_factory=NoOffset)

    def __str__(self) -> str:
        return f".{self.fieldname}{self.rest}"


@dataclass(frozen=True)
class IndexOff:
    index: "Expr"
    rest: "Offset" = field(default_factory=NoOffset)

    def __str__(self) -> str:
        return f"[{self.index}]{self.rest}"


Offset = NoOffset | FieldOff | IndexOff
Host = VarHost | MemHost


@dataclass(frozen=True)
class Lvalue:
    host: Host
    offset: Offset = field(default_factory=NoOffset)

    def __str__(self) -> str:
        return f"{self.host}{self.offset}"

    @property
    def is_plain_var(self) -> bool:
        return isinstance(self.host, VarHost) and isinstance(self.offset, NoOffset)

    @property
    def var_name(self) -> Optional[str]:
        return self.host.name if self.is_plain_var else None

    def with_offset(self, extra: Offset) -> "Lvalue":
        return Lvalue(self.host, _append_offset(self.offset, extra))


def _append_offset(base: Offset, extra: Offset) -> Offset:
    if isinstance(base, NoOffset):
        return extra
    if isinstance(base, FieldOff):
        return FieldOff(base.fieldname, _append_offset(base.rest, extra))
    if isinstance(base, IndexOff):
        return IndexOff(base.index, _append_offset(base.rest, extra))
    raise TypeError(f"bad offset {base!r}")


# --------------------------------------------------------------- expressions


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class IntConst(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class StrConst(Expr):
    value: str

    def __str__(self) -> str:
        return '"' + self.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n") + '"'


@dataclass(frozen=True)
class NullConst(Expr):
    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class Lval(Expr):
    """Reading an l-value (the l-value used in expression position)."""

    lvalue: Lvalue

    def __str__(self) -> str:
        return str(self.lvalue)


@dataclass(frozen=True)
class AddrOf(Expr):
    lvalue: Lvalue

    def __str__(self) -> str:
        return f"&{self.lvalue}"


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # '-', '!', '~'
    operand: Expr

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # arithmetic/relational/logical; 'ptradd' for pointer indexing
    left: Expr
    right: Expr

    def __str__(self) -> str:
        if self.op == "ptradd":
            return f"({self.left} + {self.right})"
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class CastE(Expr):
    to_type: CType
    operand: Expr

    def __str__(self) -> str:
        return f"({self.to_type})({self.operand})"


@dataclass(frozen=True)
class CondE(Expr):
    """A side-effect-free conditional expression ``c ? a : b``.

    Only produced when both branches lower without emitting
    instructions, so expressions remain pure.
    """

    cond: Expr
    then: Expr
    otherwise: Expr

    def __str__(self) -> str:
        return f"({self.cond} ? {self.then} : {self.otherwise})"


@dataclass(frozen=True)
class SizeOfE(Expr):
    of_type: Optional[CType] = None

    def __str__(self) -> str:
        return f"sizeof({self.of_type if self.of_type else '...'})"


# -------------------------------------------------------------- instructions


@dataclass
class Set:
    """Assignment instruction ``lvalue := expr``."""

    lvalue: Lvalue
    expr: Expr
    loc: Loc = field(default_factory=Loc)

    def __str__(self) -> str:
        return f"{self.lvalue} = {self.expr};"


@dataclass
class Call:
    """Procedure call; ``result`` receives the return value if not None."""

    result: Optional[Lvalue]
    func: str
    args: List[Expr]
    loc: Loc = field(default_factory=Loc)
    # A cast the surface program applied to the call result, e.g.
    # ``p = (int*)malloc(...)``; recorded so pattern matching can ignore
    # it (footnote 1 and figure 6 of the paper).
    result_cast: Optional[CType] = None

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.result} = " if self.result is not None else ""
        return f"{prefix}{self.func}({args});"


ALLOCATORS = ("malloc", "calloc", "realloc", "xmalloc", "xcalloc", "xrealloc")


def is_allocation(instr: "Instruction") -> bool:
    """Does this instruction match the pattern ``new``?"""
    return isinstance(instr, Call) and instr.func in ALLOCATORS


Instruction = Set | Call


# ---------------------------------------------------------------- statements


@dataclass
class Instr:
    instrs: List[Instruction] = field(default_factory=list)
    loc: Loc = field(default_factory=Loc)


@dataclass
class If:
    cond: Expr
    then: List["Stmt"] = field(default_factory=list)
    otherwise: List["Stmt"] = field(default_factory=list)
    loc: Loc = field(default_factory=Loc)


@dataclass
class While:
    """``while`` loop; ``cond_instrs`` re-evaluate side-effecting parts of
    the condition on every iteration (lowered from e.g.
    ``while ((t = next()) != NULL)``)."""

    cond_instrs: List[Instruction]
    cond: Expr
    body: List["Stmt"] = field(default_factory=list)
    loc: Loc = field(default_factory=Loc)


@dataclass
class Return:
    expr: Optional[Expr] = None
    loc: Loc = field(default_factory=Loc)


@dataclass
class Break:
    loc: Loc = field(default_factory=Loc)


@dataclass
class Continue:
    loc: Loc = field(default_factory=Loc)


@dataclass
class Goto:
    """``goto label;`` — unstructured jump, resolved against the
    function's :class:`Label` statements by the CFG builder."""

    label: str = ""
    loc: Loc = field(default_factory=Loc)


@dataclass
class Label:
    """``name:`` — a goto target; labels have function scope."""

    name: str = ""
    loc: Loc = field(default_factory=Loc)


Stmt = Instr | If | While | Return | Break | Continue | Goto | Label


# ----------------------------------------------------------------- top level


@dataclass
class Function:
    name: str
    ret: CType
    formals: List[Tuple[str, CType]]
    locals: List[Tuple[str, CType]]
    body: List[Stmt]
    varargs: bool = False
    loc: Loc = field(default_factory=Loc)

    def local_type(self, name: str) -> CType:
        for n, t in self.formals + self.locals:
            if n == name:
                return t
        raise KeyError(name)


@dataclass
class GlobalVar:
    name: str
    ctype: CType
    loc: Loc = field(default_factory=Loc)


@dataclass
class Program:
    structs: Dict[str, List[Tuple[str, CType]]] = field(default_factory=dict)
    # Names in `structs` that are C unions: their fields overlay at
    # offset 0 and qualifier checking of them is unsound (paper §3.3).
    unions: set = field(default_factory=set)
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)
    # Declared signatures for every known function (definitions and
    # prototypes, e.g. the annotated printf signature).
    signatures: Dict[str, FuncType] = field(default_factory=dict)
    # Formal parameter names for defined functions (for diagnostics).
    formal_names: Dict[str, List[str]] = field(default_factory=dict)

    GLOBAL_INIT = "__global_init__"

    def function(self, name: str) -> Function:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"unknown function {name!r}")

    def global_type(self, name: str) -> CType:
        for g in self.globals:
            if g.name == name:
                return g.ctype
        raise KeyError(f"unknown global {name!r}")

    def struct_field_type(self, struct_name: str, fieldname: str) -> CType:
        for fname, ftype in self.structs.get(struct_name, []):
            if fname == fieldname:
                return ftype
        raise KeyError(f"no field {fieldname!r} in struct {struct_name!r}")


def walk_stmts(stmts: List[Stmt]):
    """Yield every statement, recursing into control structure."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.otherwise)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)


def walk_instructions(stmts: List[Stmt]):
    """Yield every instruction in a statement list, in syntactic order."""
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, Instr):
            yield from stmt.instrs
        elif isinstance(stmt, While):
            yield from stmt.cond_instrs


def subexprs(expr: Expr):
    """Yield ``expr`` and all of its sub-expressions (pre-order),
    including expressions hidden inside l-value hosts and offsets."""
    yield expr
    if isinstance(expr, (Lval, AddrOf)):
        yield from _lvalue_exprs(expr.lvalue)
    elif isinstance(expr, UnOp):
        yield from subexprs(expr.operand)
    elif isinstance(expr, BinOp):
        yield from subexprs(expr.left)
        yield from subexprs(expr.right)
    elif isinstance(expr, CastE):
        yield from subexprs(expr.operand)
    elif isinstance(expr, CondE):
        yield from subexprs(expr.cond)
        yield from subexprs(expr.then)
        yield from subexprs(expr.otherwise)


def subexprs_postorder(expr: Expr):
    """Yield ``expr`` and all of its sub-expressions in *evaluation*
    order — children before parents, left operand before right — which
    is the order :mod:`repro.semantics.csem` evaluates them.  Check
    instrumentation walks this order so inserted ``__check_*`` calls
    fire in the same sequence the interpreter's native checks would."""
    if isinstance(expr, (Lval, AddrOf)):
        for sub in _lvalue_exprs(expr.lvalue):
            yield from subexprs_postorder(sub)
    elif isinstance(expr, UnOp):
        yield from subexprs_postorder(expr.operand)
    elif isinstance(expr, BinOp):
        yield from subexprs_postorder(expr.left)
        yield from subexprs_postorder(expr.right)
    elif isinstance(expr, CastE):
        yield from subexprs_postorder(expr.operand)
    elif isinstance(expr, CondE):
        yield from subexprs_postorder(expr.cond)
        yield from subexprs_postorder(expr.then)
        yield from subexprs_postorder(expr.otherwise)
    yield expr


def _lvalue_exprs(lv: Lvalue):
    if isinstance(lv.host, MemHost):
        yield from subexprs(lv.host.addr)
    off = lv.offset
    while not isinstance(off, NoOffset):
        if isinstance(off, IndexOff):
            yield from subexprs(off.index)
        off = off.rest
