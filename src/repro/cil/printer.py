"""Pretty-printer: render a CIL-style program back to C-like source.

Used to inspect lowering results and to emit instrumented programs (the
paper's pipeline writes the AST back out as C for gcc; we render the IR
the same way, with run-time checks shown as ``__check_<qual>`` calls).
"""

from __future__ import annotations

from typing import List

from repro.cfront.ctypes import CType, type_to_str
from repro.cil import ir


def program_to_c(program: ir.Program) -> str:
    out: List[str] = []
    for name, fields in program.structs.items():
        out.append(f"struct {name} {{")
        for fname, ftype in fields:
            out.append(f"  {_decl(ftype, fname)};")
        out.append("};")
        out.append("")
    for g in program.globals:
        out.append(f"{_decl(g.ctype, g.name)};")
    if program.globals:
        out.append("")
    for f in program.functions:
        out.extend(_function(f))
        out.append("")
    return "\n".join(out)


def function_to_c(f: ir.Function) -> str:
    """One function rendered as C — the canonical per-function text the
    incremental checker fingerprints (whitespace/comment edits in the
    original source do not change it)."""
    return "\n".join(_function(f))


def _decl(ctype: CType, name: str) -> str:
    return f"{type_to_str(ctype)} {name}"


def _function(f: ir.Function) -> List[str]:
    params = ", ".join(_decl(t, n) for n, t in f.formals)
    if f.varargs:
        params = f"{params}, ..." if params else "..."
    out = [f"{type_to_str(f.ret)} {f.name}({params}) {{"]
    for name, ctype in f.locals:
        out.append(f"  {_decl(ctype, name)};")
    out.extend(_stmts(f.body, indent=1))
    out.append("}")
    return out


def _stmts(stmts: List[ir.Stmt], indent: int) -> List[str]:
    pad = "  " * indent
    out: List[str] = []
    for stmt in stmts:
        if isinstance(stmt, ir.Instr):
            out.extend(pad + str(i) for i in stmt.instrs)
        elif isinstance(stmt, ir.If):
            out.append(f"{pad}if ({stmt.cond}) {{")
            out.extend(_stmts(stmt.then, indent + 1))
            if stmt.otherwise:
                out.append(f"{pad}}} else {{")
                out.extend(_stmts(stmt.otherwise, indent + 1))
            out.append(f"{pad}}}")
        elif isinstance(stmt, ir.While):
            for instr in stmt.cond_instrs:
                out.append(pad + str(instr))
            out.append(f"{pad}while ({stmt.cond}) {{")
            out.extend(_stmts(stmt.body, indent + 1))
            for instr in stmt.cond_instrs:
                out.append("  " * (indent + 1) + str(instr))
            out.append(f"{pad}}}")
        elif isinstance(stmt, ir.Return):
            if stmt.expr is None:
                out.append(f"{pad}return;")
            else:
                out.append(f"{pad}return {stmt.expr};")
        elif isinstance(stmt, ir.Break):
            out.append(f"{pad}break;")
        elif isinstance(stmt, ir.Continue):
            out.append(f"{pad}continue;")
        elif isinstance(stmt, ir.Goto):
            out.append(f"{pad}goto {stmt.label};")
        elif isinstance(stmt, ir.Label):
            out.append(f"{pad}{stmt.name}:")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {stmt!r}")
    return out
