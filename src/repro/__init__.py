"""repro — a reproduction of "Semantic Type Qualifiers" (PLDI 2005).

A framework for user-defined type qualifiers over C programs:

* write qualifier definitions in the paper's rule language
  (:func:`parse_qualifier`, :data:`standard_qualifiers`);
* check C programs against them with the extensible typechecker
  (:func:`check_c_source`);
* prove each qualifier's type rules establish its declared run-time
  invariant, automatically (:func:`check_soundness`);
* execute checked programs with run-time qualifier checks
  (:func:`run_c_source`).

Quick start::

    import repro

    report = repro.check_c_source('''
        int pos gcd(int pos n, int pos m);
        int pos lcm(int pos a, int pos b) {
          int pos d = gcd(a, b);
          int pos prod = a * b;
          return (int pos) (prod / d);
        }
    ''')
    assert report.ok

    soundness = repro.check_soundness(repro.POS, repro.standard_qualifiers())
    assert soundness.sound
"""

from repro import api
from repro.api import (
    SCHEMA_VERSION,
    CheckRequest,
    InferRequest,
    ProveRequest,
    Session,
    SessionConfig,
    UnknownQualifierError,
    Workspace,
)
from repro.cache import ProofCache
from repro.cfront.parser import ParseError, parse_c
from repro.cil.lower import LowerError, lower_unit
from repro.cil.printer import program_to_c
from repro.core.checker.diagnostics import Diagnostic, Report
from repro.core.checker.instrument import instrument_program
from repro.core.checker.typecheck import QualifierChecker, check_program
from repro.core.qualifiers.ast import QualifierDef, QualifierSet
from repro.core.qualifiers.library import (
    NEG,
    NONNULL,
    NONZERO,
    POS,
    TAINTED,
    UNALIASED,
    UNIQUE,
    UNTAINTED,
    UNTAINTED_WITH_CONSTS,
    standard_qualifiers,
)
from repro.core.qualifiers.parser import QualParseError, parse_qualifier, parse_qualifiers
from repro.core.qualifiers.validate import validate_definition, validate_set
from repro.core.soundness.checker import SoundnessReport, check_all_soundness, check_soundness
from repro.semantics.csem import (
    CInterpreter,
    CRuntimeError,
    FormatStringError,
    QualifierViolation,
    run_program,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # stable facade (the supported programmatic surface; repro.api.Report
    # is reached through the module to avoid shadowing the checker Report)
    "api", "Session", "SessionConfig", "Workspace",
    "CheckRequest", "ProveRequest", "InferRequest",
    "UnknownQualifierError", "SCHEMA_VERSION", "ProofCache",
    # front end
    "parse_c", "ParseError", "lower_unit", "LowerError", "program_to_c",
    # qualifier language
    "parse_qualifier", "parse_qualifiers", "QualParseError",
    "validate_definition", "validate_set",
    "QualifierDef", "QualifierSet", "standard_qualifiers",
    "POS", "NEG", "NONZERO", "NONNULL", "TAINTED", "UNTAINTED",
    "UNTAINTED_WITH_CONSTS", "UNIQUE", "UNALIASED",
    # checking
    "check_program", "QualifierChecker", "Report", "Diagnostic",
    "instrument_program", "check_c_source",
    # soundness
    "check_soundness", "check_all_soundness", "SoundnessReport",
    # execution
    "run_program", "run_c_source", "CInterpreter",
    "CRuntimeError", "QualifierViolation", "FormatStringError",
]

_DEFAULT_QUAL_NAMES = frozenset(
    {"pos", "neg", "nonneg", "nonzero", "nonnull", "tainted", "untainted",
     "unique", "unaliased", "user", "kernel"}
)


def check_c_source(source, quals=None, qualifier_names=None):
    """Parse, lower and qualifier-check C source in one call.

    ``quals`` defaults to the paper's standard qualifier library;
    ``qualifier_names`` are identifiers accepted as bare qualifier
    annotations (defaults to the standard names plus any in ``quals``).
    """
    if quals is None:
        quals = standard_qualifiers()
    names = set(_DEFAULT_QUAL_NAMES) | quals.names
    if qualifier_names:
        names |= set(qualifier_names)
    program = lower_unit(parse_c(source, qualifier_names=names))
    return check_program(program, quals)


def run_c_source(source, quals=None, entry="main", args=(), qualifier_names=None):
    """Parse, lower and execute C source with run-time qualifier checks.

    Returns ``(exit_value, printf_output)``.
    """
    if quals is None:
        quals = standard_qualifiers()
    names = set(_DEFAULT_QUAL_NAMES) | quals.names
    if qualifier_names:
        names |= set(qualifier_names)
    program = lower_unit(parse_c(source, qualifier_names=names))
    return run_program(program, quals=quals, entry=entry, args=list(args))
