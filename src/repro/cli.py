"""Command-line interface.

    python -m repro check FILE.c [MORE.c ...] [--quals DEFS.qual] [--flow-sensitive]
    python -m repro prove DEFS.qual [MORE.qual ...] [--qualifier NAME]
    python -m repro run FILE.c [--entry MAIN]
    python -m repro show-ir FILE.c
    python -m repro infer FILE.c [MORE.c ...] --qualifier NAME [--quals DEFS.qual]

``check``, ``prove`` and ``infer`` are batch commands: they accept any
number of input files, and every file (and every proof obligation) runs
in an isolated unit-of-work so one bad input degrades to a structured
verdict instead of aborting the run.  Shared batch flags:

* ``--keep-going`` — continue past failing units (the default stops
  dispatching new units after the first ERROR-or-worse verdict);
* ``--jobs N`` — fan units out over a process pool with preemptive
  per-child deadlines;
* ``--unit-timeout S`` — wall-clock budget per unit;
* ``--format json`` — machine-readable per-unit report.

Exit codes (documented contract, see docs/robustness.md): 0 clean,
1 qualifier warnings / unsound rules found, 2 input error or timeout,
3 an internal crash was survived.  Qualifier definition files use the
paper's rule language; without ``--quals`` the standard library
(pos/neg/nonzero/nonnull/tainted/untainted/unique/unaliased) is loaded.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cfront.lexer import LexError
from repro.cfront.parser import ParseError, parse_c
from repro.cil.lower import LowerError, lower_unit
from repro.cil.printer import program_to_c
from repro.core.checker.diagnostics import code_for
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import standard_qualifiers
from repro.core.qualifiers.parser import QualParseError, parse_qualifiers
from repro.core.soundness.checker import check_soundness
from repro.harness import batch
from repro.harness.watchdog import Deadline, RetryPolicy
from repro.semantics.csem import CRuntimeError, run_program

#: Worst-first ordering used to combine per-obligation verdicts into a
#: unit verdict (distinct from exit-code severity, which ties some).
_VERDICT_RANK = {
    batch.OK: 0,
    batch.WARNINGS: 1,
    batch.UNKNOWN: 2,
    batch.TIMEOUT: 3,
    batch.ERROR: 4,
    batch.CRASH: 5,
}


def _worst(verdicts) -> str:
    return max(verdicts, key=lambda v: _VERDICT_RANK.get(v, 5), default=batch.OK)


def _load_qualifiers(args) -> QualifierSet:
    defs = []
    if not getattr(args, "no_std", False):
        defs.extend(standard_qualifiers(trust_constants=args.trust_constants))
    if args.quals:
        with open(args.quals) as handle:
            for qdef in parse_qualifiers(handle.read()):
                defs = [d for d in defs if d.name != qdef.name]
                defs.append(qdef)
    return QualifierSet(defs)


def _read_source(path: str) -> str:
    # Binary read + explicit decode so a non-UTF-8 file produces a
    # clean UnicodeDecodeError (input error) instead of a traceback.
    with open(path, "rb") as handle:
        return handle.read().decode("utf-8")


def _load_program(path: str, quals: QualifierSet):
    unit = parse_c(_read_source(path), qualifier_names=quals.names)
    return lower_unit(unit)


def _parse_error_dict(err: Exception) -> dict:
    return {
        "code": code_for("parse"),
        "kind": "parse",
        "qualifier": "-",
        "message": str(err),
        "severity": "error",
        "text": f"error: {err}",
    }


# ------------------------------------------------------------------ workers


def _check_worker(args, quals: QualifierSet):
    """Unit worker for ``check``: parse (with panic-mode recovery),
    lower, typecheck one file."""

    def worker(path: str, deadline: Deadline) -> batch.UnitResult:
        source = _read_source(path)
        unit = parse_c(source, qualifier_names=quals.names, recover=True)
        diagnostics = [_parse_error_dict(e) for e in unit.errors]
        deadline.check("after parse")
        program = lower_unit(unit)
        checker = QualifierChecker(
            program, quals, flow_sensitive=args.flow_sensitive
        )
        report = checker.check()
        diagnostics.extend(
            {**d.to_dict(), "text": str(d)} for d in report.diagnostics
        )
        if unit.errors:
            verdict = batch.ERROR
        elif report.diagnostics:
            verdict = batch.WARNINGS
        else:
            verdict = batch.OK
        return batch.UnitResult(
            unit=path,
            verdict=verdict,
            diagnostics=diagnostics,
            error=str(unit.errors[0]) if unit.errors else "",
            detail={
                "warnings": report.warning_count,
                "runtime_checks": len(report.runtime_checks),
            },
        )

    return worker


def _prove_worker(args):
    """Unit worker for ``prove``: soundness-check every qualifier
    defined in one ``.qual`` file, one obligation at a time."""
    retry = RetryPolicy(max_attempts=args.retries + 1)

    def worker(path: str, deadline: Deadline) -> batch.UnitResult:
        defs = parse_qualifiers(_read_source(path))
        quals = QualifierSet(
            list(standard_qualifiers())
            + [d for d in defs if d.name not in standard_qualifiers().names]
        )
        verdicts = [batch.OK]
        summaries: List[dict] = []
        for qdef in defs:
            if args.qualifier and qdef.name != args.qualifier:
                continue
            report = check_soundness(
                qdef,
                quals,
                time_limit=args.time_limit,
                retry=retry,
                deadline=deadline,
            )
            entry = report.to_dict()
            entry["summary"] = report.summary()
            summaries.append(entry)
            for res in report.results:
                if res.verdict == "CRASH":
                    verdicts.append(batch.CRASH)
                elif res.verdict == "TIMEOUT":
                    verdicts.append(batch.TIMEOUT)
                elif res.verdict == "GAVE_UP":
                    verdicts.append(batch.UNKNOWN)
                elif not res.proved:
                    verdicts.append(batch.WARNINGS)
        return batch.UnitResult(
            unit=path,
            verdict=_worst(verdicts),
            detail={"qualifiers": summaries},
        )

    return worker


def _infer_worker(args, quals: QualifierSet, qdef):
    def worker(path: str, deadline: Deadline) -> batch.UnitResult:
        from repro.analysis.infer import infer_value_qualifier

        program = _load_program(path, quals)
        result = infer_value_qualifier(
            program, qdef, quals, flow_sensitive=args.flow_sensitive
        )
        return batch.UnitResult(
            unit=path,
            verdict=batch.OK,
            detail={
                "summary": result.summary(),
                "entities": sorted(str(e) for e in result.inferred),
            },
        )

    return worker


# ----------------------------------------------------------------- commands


def _run_batch(args, worker) -> batch.BatchReport:
    return batch.run_units(
        args.files,
        worker,
        keep_going=args.keep_going,
        jobs=args.jobs,
        unit_timeout=args.unit_timeout,
    )


def _print_unit_header(path: str, many: bool) -> None:
    if many:
        print(f"== {path}")


def cmd_check(args) -> int:
    quals = _load_qualifiers(args)
    report = _run_batch(args, _check_worker(args, quals))
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    many = len(args.files) > 1
    for result in report.results:
        _print_unit_header(result.unit, many)
        if result.verdict == batch.SKIPPED:
            print("skipped (earlier unit failed; use --keep-going)")
            continue
        warnings = 0
        for diag in result.diagnostics:
            if diag.get("severity") == "error":
                print(diag["text"], file=sys.stderr)
            else:
                print(diag["text"])
                warnings += 1
        if result.verdict in (batch.CRASH, batch.TIMEOUT) or (
            result.verdict == batch.ERROR and not result.diagnostics
        ):
            print(f"error: {result.error}", file=sys.stderr)
        checks = result.detail.get("runtime_checks", 0)
        if checks:
            print(f"{checks} runtime check(s) inserted for casts")
        print(f"{warnings} qualifier warning(s)")
    if many:
        print(report.summary())
    return report.exit_code


def cmd_prove(args) -> int:
    report = _run_batch(args, _prove_worker(args))
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    many = len(args.files) > 1
    for result in report.results:
        _print_unit_header(result.unit, many)
        if result.verdict == batch.SKIPPED:
            print("skipped (earlier unit failed; use --keep-going)")
            continue
        if result.error:
            print(f"error: {result.error}", file=sys.stderr)
        for entry in result.detail.get("qualifiers", ()):
            print(entry["summary"])
    if many:
        print(report.summary())
    return report.exit_code


def cmd_run(args) -> int:
    quals = _load_qualifiers(args)
    program = _load_program(args.file, quals)
    try:
        value, output = run_program(
            program, quals=quals, entry=args.entry, args=list(args.args)
        )
    except CRuntimeError as exc:
        print(f"runtime error: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write("".join(output))
    print(f"[exit value: {value}]")
    return 0


def cmd_show_ir(args) -> int:
    quals = _load_qualifiers(args)
    program = _load_program(args.file, quals)
    print(program_to_c(program))
    return 0


def cmd_infer(args) -> int:
    quals = _load_qualifiers(args)
    qdef = quals.get(args.qualifier)
    if qdef is None:
        print(f"unknown qualifier {args.qualifier!r}", file=sys.stderr)
        return 2
    report = _run_batch(args, _infer_worker(args, quals, qdef))
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code
    many = len(args.files) > 1
    for result in report.results:
        _print_unit_header(result.unit, many)
        if result.verdict == batch.SKIPPED:
            print("skipped (earlier unit failed; use --keep-going)")
            continue
        if result.error:
            print(f"error: {result.error}", file=sys.stderr)
            continue
        print(result.detail["summary"])
        for entity in result.detail["entities"]:
            print(f"  {args.qualifier} at {entity}")
    if many:
        print(report.summary())
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic type qualifiers: check, prove, run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_flow=True):
        p.add_argument("--quals", help="qualifier definition file")
        p.add_argument(
            "--no-std",
            action="store_true",
            help="do not load the standard qualifier library",
        )
        p.add_argument(
            "--trust-constants",
            action="store_true",
            help="treat constants as untainted (section 6.3)",
        )
        if with_flow:
            p.add_argument(
                "--flow-sensitive",
                action="store_true",
                help="enable guard refinement (section 8 extension)",
            )

    def batch_flags(p):
        p.add_argument(
            "--keep-going",
            action="store_true",
            help="continue past units that fail (ERROR/TIMEOUT/CRASH)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="run units in N worker processes (with per-child deadlines)",
        )
        p.add_argument(
            "--unit-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget per unit of work",
        )
        p.add_argument(
            "--format",
            choices=("text", "json"),
            default="text",
            help="report format (json: structured per-unit verdicts)",
        )

    p_check = sub.add_parser("check", help="qualifier-check C files")
    p_check.add_argument("files", nargs="+", metavar="file")
    common(p_check)
    batch_flags(p_check)
    p_check.set_defaults(fn=cmd_check)

    p_prove = sub.add_parser(
        "prove", help="soundness-check qualifier definitions"
    )
    p_prove.add_argument("files", nargs="+", metavar="file")
    p_prove.add_argument("--qualifier", help="prove only this qualifier")
    p_prove.add_argument("--time-limit", type=float, default=45.0)
    p_prove.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry GAVE_UP obligations up to N times with escalating "
        "budgets and exponential backoff",
    )
    batch_flags(p_prove)
    p_prove.set_defaults(fn=cmd_prove)

    p_run = sub.add_parser("run", help="execute a C file with runtime checks")
    p_run.add_argument("file")
    p_run.add_argument("--entry", default="main")
    p_run.add_argument("args", nargs="*", type=int)
    common(p_run, with_flow=False)
    p_run.set_defaults(fn=cmd_run)

    p_ir = sub.add_parser("show-ir", help="print the lowered CIL-style IR")
    p_ir.add_argument("file")
    common(p_ir, with_flow=False)
    p_ir.set_defaults(fn=cmd_show_ir)

    p_infer = sub.add_parser("infer", help="infer annotations for a qualifier")
    p_infer.add_argument("files", nargs="+", metavar="file")
    p_infer.add_argument("--qualifier", required=True)
    common(p_infer)
    batch_flags(p_infer)
    p_infer.set_defaults(fn=cmd_infer)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ParseError, LexError, LowerError, QualParseError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except UnicodeDecodeError as exc:
        print(f"error: input is not valid UTF-8: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:  # unreadable file, missing file, EACCES, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RecursionError:
        print(
            "error: input too deeply nested (recursion limit exceeded)",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
