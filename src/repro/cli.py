"""Command-line interface.

    python -m repro check FILE.c [--quals DEFS.qual] [--flow-sensitive]
    python -m repro prove DEFS.qual [--qualifier NAME]
    python -m repro run FILE.c [--entry MAIN]
    python -m repro show-ir FILE.c
    python -m repro infer FILE.c --qualifier NAME [--quals DEFS.qual]

``check`` exits nonzero when qualifier warnings are found; ``prove``
exits nonzero when any obligation fails — so both fit CI pipelines.
Qualifier definition files use the paper's rule language; without
``--quals`` the standard library (pos/neg/nonzero/nonnull/tainted/
untainted/unique/unaliased) is loaded.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cfront.parser import ParseError, parse_c
from repro.cil.lower import LowerError, lower_unit
from repro.cil.printer import program_to_c
from repro.core.checker.typecheck import QualifierChecker
from repro.core.qualifiers.ast import QualifierSet
from repro.core.qualifiers.library import standard_qualifiers
from repro.core.qualifiers.parser import QualParseError, parse_qualifiers
from repro.core.soundness.checker import check_soundness
from repro.semantics.csem import CRuntimeError, run_program


def _load_qualifiers(args) -> QualifierSet:
    defs = []
    if not getattr(args, "no_std", False):
        defs.extend(standard_qualifiers(trust_constants=args.trust_constants))
    if args.quals:
        with open(args.quals) as handle:
            for qdef in parse_qualifiers(handle.read()):
                defs = [d for d in defs if d.name != qdef.name]
                defs.append(qdef)
    return QualifierSet(defs)


def _load_program(path: str, quals: QualifierSet):
    with open(path) as handle:
        source = handle.read()
    unit = parse_c(source, qualifier_names=quals.names)
    return lower_unit(unit)


def cmd_check(args) -> int:
    quals = _load_qualifiers(args)
    program = _load_program(args.file, quals)
    checker = QualifierChecker(program, quals, flow_sensitive=args.flow_sensitive)
    report = checker.check()
    for diag in report.diagnostics:
        print(diag)
    if report.runtime_checks:
        print(f"{len(report.runtime_checks)} runtime check(s) inserted for casts")
    print(f"{report.error_count} qualifier warning(s)")
    return 1 if report.diagnostics else 0


def cmd_prove(args) -> int:
    with open(args.file) as handle:
        defs = parse_qualifiers(handle.read())
    quals = QualifierSet(
        list(standard_qualifiers())
        + [d for d in defs if d.name not in standard_qualifiers().names]
    )
    failed = 0
    for qdef in defs:
        if args.qualifier and qdef.name != args.qualifier:
            continue
        report = check_soundness(qdef, quals, time_limit=args.time_limit)
        print(report.summary())
        if not report.sound:
            failed += 1
    return 1 if failed else 0


def cmd_run(args) -> int:
    quals = _load_qualifiers(args)
    program = _load_program(args.file, quals)
    try:
        value, output = run_program(
            program, quals=quals, entry=args.entry, args=list(args.args)
        )
    except CRuntimeError as exc:
        print(f"runtime error: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write("".join(output))
    print(f"[exit value: {value}]")
    return 0


def cmd_show_ir(args) -> int:
    quals = _load_qualifiers(args)
    program = _load_program(args.file, quals)
    print(program_to_c(program))
    return 0


def cmd_infer(args) -> int:
    from repro.analysis.infer import infer_value_qualifier

    quals = _load_qualifiers(args)
    qdef = quals.get(args.qualifier)
    if qdef is None:
        print(f"unknown qualifier {args.qualifier!r}", file=sys.stderr)
        return 2
    program = _load_program(args.file, quals)
    result = infer_value_qualifier(
        program, qdef, quals, flow_sensitive=args.flow_sensitive
    )
    print(result.summary())
    for entity in sorted(result.inferred):
        print(f"  {args.qualifier} at {entity}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic type qualifiers: check, prove, run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_flow=True):
        p.add_argument("--quals", help="qualifier definition file")
        p.add_argument(
            "--no-std",
            action="store_true",
            help="do not load the standard qualifier library",
        )
        p.add_argument(
            "--trust-constants",
            action="store_true",
            help="treat constants as untainted (section 6.3)",
        )
        if with_flow:
            p.add_argument(
                "--flow-sensitive",
                action="store_true",
                help="enable guard refinement (section 8 extension)",
            )

    p_check = sub.add_parser("check", help="qualifier-check a C file")
    p_check.add_argument("file")
    common(p_check)
    p_check.set_defaults(fn=cmd_check)

    p_prove = sub.add_parser("prove", help="soundness-check qualifier definitions")
    p_prove.add_argument("file")
    p_prove.add_argument("--qualifier", help="prove only this qualifier")
    p_prove.add_argument("--time-limit", type=float, default=45.0)
    p_prove.set_defaults(fn=cmd_prove)

    p_run = sub.add_parser("run", help="execute a C file with runtime checks")
    p_run.add_argument("file")
    p_run.add_argument("--entry", default="main")
    p_run.add_argument("args", nargs="*", type=int)
    common(p_run, with_flow=False)
    p_run.set_defaults(fn=cmd_run)

    p_ir = sub.add_parser("show-ir", help="print the lowered CIL-style IR")
    p_ir.add_argument("file")
    common(p_ir, with_flow=False)
    p_ir.set_defaults(fn=cmd_show_ir)

    p_infer = sub.add_parser("infer", help="infer annotations for a qualifier")
    p_infer.add_argument("file")
    p_infer.add_argument("--qualifier", required=True)
    common(p_infer)
    p_infer.set_defaults(fn=cmd_infer)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ParseError, LowerError, QualParseError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
